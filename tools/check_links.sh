#!/usr/bin/env bash
# Relative-link checker for the repo's Markdown docs (a minimal
# `cargo deadlinks` stand-in, run in CI).
#
# Two kinds of cross-reference are verified, over every git-tracked *.md
# outside vendor/ (ISSUE.md is excluded: it is transient task state, not
# documentation):
#
#   1. inline Markdown links `[text](target)` whose target is not an
#      absolute URL or a pure fragment — resolved relative to the file
#      (a `#fragment` suffix is stripped; fragments themselves are not
#      checked);
#   2. backticked file mentions like `OBSERVABILITY.md` or
#      `crates/bench/tests/golden_trace.rs` — any `-escaped token ending
#      in .md, .rs, .sh, .toml or .yml with no spaces or placeholders —
#      resolved relative to the repo root, then the file's directory.
#      Tokens containing `<`, `*` or `$` (path templates such as
#      `results/trace/<exp>/<run>.jsonl`) are skipped.
#
# Exits non-zero listing every broken reference.

set -u
cd "$(dirname "$0")/.."

fail=0
complain() { # file, reference
    echo "BROKEN: $1 -> $2" >&2
    fail=1
}

while IFS= read -r md; do
    dir=$(dirname "$md")

    # 1. Inline links. One match per line is enough for these docs.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        [ -e "$dir/$path" ] || complain "$md" "($target)"
    done < <(grep -o '\][(][^)]*[)]' "$md" | sed 's/^](//; s/)$//')

    # 2. Backticked file mentions.
    while IFS= read -r token; do
        case "$token" in
        *'<'* | *'*'* | *'$'* | *' '*) continue ;;
        esac
        [ -e "$token" ] || [ -e "$dir/$token" ] || complain "$md" "\`$token\`"
    done < <(grep -o '`[^`]*`' "$md" | sed 's/^`//; s/`$//' |
        grep -E '^[A-Za-z0-9_./-]+\.(md|rs|sh|toml|yml)$')
done < <(git ls-files '*.md' ':!vendor/' ':!ISSUE.md')

if [ "$fail" -ne 0 ]; then
    echo "Markdown cross-references are broken (see above)." >&2
    exit 1
fi
echo "All Markdown cross-references resolve."
