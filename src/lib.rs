//! PCC Proteus — Rust reproduction of *PCC Proteus: Scavenger Transport And
//! Beyond* (SIGCOMM 2020).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the paper's contribution: the Proteus utility framework
//!   (Proteus-P / Proteus-S / Proteus-H), Vivace rate control and noise
//!   tolerance,
//! * [`baselines`] — CUBIC, BBR, BBR-S, COPA, LEDBAT, Reno and a fixed-rate
//!   probe,
//! * [`netsim`] — the deterministic dumbbell simulator used for every
//!   experiment,
//! * [`transport`] — the shared congestion-control interface and
//!   monitor-interval machinery,
//! * [`apps`] — DASH video (BOLA) and web workloads,
//! * [`stats`] — numeric helpers (CDFs, histograms, Jain index, …).
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! experiment harness regenerating each figure of the paper.

#![forbid(unsafe_code)]

pub use proteus_apps as apps;
pub use proteus_baselines as baselines;
pub use proteus_core as core;
pub use proteus_netsim as netsim;
pub use proteus_stats as stats;
pub use proteus_transport as transport;
