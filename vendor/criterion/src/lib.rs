//! Offline vendored subset of the `criterion` crate.
//!
//! Implements just enough of the criterion API for `benches/microbench.rs`
//! to compile and produce useful numbers without network access: a
//! [`Criterion`] driver, [`Bencher::iter`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! calibrated wall-clock loop (median of several batches) rather than
//! criterion's full statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Runs one benchmark's measured loop.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ≥ ~2 ms.
        let mut n = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || n >= 1 << 24 {
                break;
            }
            n = (n * 4).max(4);
        }
        // Measure: median of 5 batches.
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("{name:<40} {:>12.1} ns/iter", b.ns_per_iter);
}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks (`group/name` labels).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_cost() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
