//! Offline vendored subset of the `criterion` crate.
//!
//! Implements just enough of the criterion API for `benches/microbench.rs`
//! to compile and produce useful numbers without network access: a
//! [`Criterion`] driver, [`Bencher::iter`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! calibrated wall-clock loop (median of several batches) rather than
//! criterion's full statistical machinery.
//!
//! A subset of criterion's CLI is honored (parsed from `std::env::args`):
//!
//! * positional arguments — substring filters; a benchmark runs when its
//!   full `group/name` label contains *any* filter (criterion semantics),
//! * `--quick` — one fast pass per benchmark, for smoke runs,
//! * `--warm-up-time <secs>` / `--measurement-time <secs>` — calibration
//!   target and total measurement budget, floored at 0.2 ms / 0.5 ms so a
//!   smoke run can be fast but never degenerate,
//! * unknown flags (e.g. cargo's `--bench`) are ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Floor for `--warm-up-time`: below this, calibration picks iteration
/// counts too small to outweigh timer quantization.
const MIN_WARM_UP: Duration = Duration::from_micros(200);
/// Floor for `--measurement-time`.
const MIN_MEASUREMENT: Duration = Duration::from_micros(500);

/// Run configuration, parsed once from the command line.
#[derive(Debug, Clone)]
struct Config {
    /// Substring filters over `group/name` labels; empty = run everything.
    filters: Vec<String>,
    /// Calibration target: per-batch wall time the iteration count is
    /// scaled to reach.
    warm_up: Duration,
    /// Total measurement budget, split evenly across the batches.
    measurement: Duration,
    /// Number of measured batches (the median is reported).
    batches: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            filters: Vec::new(),
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(10),
            batches: 5,
        }
    }
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    cfg.warm_up = Duration::from_micros(500);
                    cfg.measurement = Duration::from_micros(1500);
                    cfg.batches = 3;
                }
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        cfg.warm_up = Duration::from_secs_f64(secs.max(0.0)).max(MIN_WARM_UP);
                    }
                }
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        cfg.measurement =
                            Duration::from_secs_f64(secs.max(0.0)).max(MIN_MEASUREMENT);
                    }
                }
                // Cargo and libtest pass harness flags we don't implement
                // (`--bench`, `--nocapture`, ...); swallow them silently
                // like upstream criterion does.
                flag if flag.starts_with('-') => {}
                filter => cfg.filters.push(filter.to_string()),
            }
        }
        cfg
    }

    fn matches(&self, label: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| label.contains(f))
    }
}

/// Runs one benchmark's measured loop.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    warm_up: Duration,
    per_batch: Duration,
    batches: usize,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ≥ the warm-up
        // target (doubling as the warm-up itself).
        let mut n = 1u64;
        let mut dt;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            dt = t0.elapsed();
            if dt >= self.warm_up || n >= 1 << 24 {
                break;
            }
            n = (n * 4).max(4);
        }
        // Rescale the iteration count so each measured batch spends about
        // its share of the measurement budget.
        let scale = self.per_batch.as_secs_f64() / dt.as_secs_f64().max(1e-9);
        let n = ((n as f64 * scale) as u64).clamp(1, 1 << 24);
        // Measure: median of the batches.
        let mut samples: Vec<f64> = (0..self.batches.max(1))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config::from_args(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Config, label: &str, mut f: F) {
    if !config.matches(label) {
        return;
    }
    let mut b = Bencher {
        ns_per_iter: 0.0,
        warm_up: config.warm_up,
        per_batch: config
            .measurement
            .checked_div(config.batches.max(1) as u32)
            .unwrap_or(MIN_MEASUREMENT),
        batches: config.batches,
    };
    f(&mut b);
    println!("{label:<40} {:>12.1} ns/iter", b.ns_per_iter);
}

impl Criterion {
    /// Runs a named benchmark (subject to the CLI filters).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.config, name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
        }
    }
}

/// A named group of benchmarks (`group/name` labels).
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group (subject to the CLI
    /// filters, matched against the full `group/name` label).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.parent.config, &format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_cost() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn filters_match_group_labels() {
        let cfg = Config {
            filters: vec!["per_ack".into(), "mi_tracker".into()],
            ..Config::default()
        };
        assert!(cfg.matches("per_ack/CUBIC"));
        assert!(cfg.matches("mi_tracker/100pkt_interval"));
        assert!(!cfg.matches("engine/paced_2s"));
        let all = Config::default();
        assert!(all.matches("anything/at_all"));
    }

    #[test]
    fn time_flags_are_floored() {
        // Mirror the parsing arms directly (env::args can't be faked here).
        let parsed = Duration::from_secs_f64(0.0001_f64.max(0.0)).max(MIN_WARM_UP);
        assert_eq!(parsed, MIN_WARM_UP);
        let parsed = Duration::from_secs_f64(0.5_f64.max(0.0)).max(MIN_MEASUREMENT);
        assert_eq!(parsed, Duration::from_secs_f64(0.5));
    }
}
