//! Offline vendored subset of the `proptest` crate.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the slice of the proptest DSL the workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range and `any::<bool>()` strategies,
//! `prop::collection::vec`, combinators ([`Strategy::prop_map`], [`Just`],
//! the weighted [`prop_oneof!`] macro), and the
//! `prop_assert!`/`prop_assert_eq!` macros. Cases are generated deterministically from the test name, so
//! failures are reproducible; there is no shrinking — the failing inputs
//! are reported by the assertion message instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; the [`proptest!`] macro derives the seed from
    /// the test name so each test gets an independent, stable stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, bound) for bound > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over a string; used to seed [`TestRng`] per test.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type (vastly simplified from upstream).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every drawn value through `f` (upstream `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_strategy_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_int_range_inclusive!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced values spanning many magnitudes.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(61) as i32) - 30;
        m * 2f64.powi(e)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Weighted choice between strategies that all yield the same value type.
/// Built by [`prop_oneof!`]; arms are boxed so heterogeneous strategy types
/// can share one union.
pub struct Union<V> {
    arms: Vec<(u32, BoxedDraw<V>)>,
}

type BoxedDraw<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V> Union<V> {
    /// A union with no arms yet (sampling panics until one is added).
    pub fn empty() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds an arm drawn with probability `weight / total_weight`.
    pub fn arm<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms
            .push((weight, Box::new(move |rng| strategy.sample(rng))));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        let mut pick = rng.below(total);
        for (weight, draw) in &self.arms {
            if pick < *weight as u64 {
                return draw(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick < total")
    }
}

/// Weighted (`w => strategy`) or uniform (`strategy, ..`) choice between
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.arm($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.arm(1, $strat))+
    };
}

/// Per-run configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Asserts a condition inside a property, reporting the case number.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The property-test DSL: wraps `fn name(arg in strategy, ..) { body }`
/// items into `#[test]` functions that draw `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    /// Upstream proptest exposes the crate itself as `prop` in its prelude
    /// (enabling `prop::collection::vec`); mirror that.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(
            x in 1.0_f64..2.0,
            n in 3_usize..7,
            b in any::<bool>(),
        ) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn combinators_compose(
            v in prop_oneof![
                3 => (0_u32..10).prop_map(|n| n * 2),
                1 => Just(99_u32),
            ],
            m in 5_u64..=7,
        ) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
            prop_assert!((5..=7).contains(&m));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0.0_f64..1.0, 1..5)) {
            prop_assert!((1..5).contains(&xs.len()));
            for x in xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_from_name("t"));
        let mut b = crate::TestRng::new(crate::seed_from_name("t"));
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }
}
