//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of the `rand` API it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64), [`SeedableRng::seed_from_u64`], and
//! the [`RngExt`] extension trait providing `random::<T>()` and
//! `random_range(..)`. All output is fully deterministic for a given seed,
//! which is exactly what the simulator requires; statistical quality matches
//! the upstream `SmallRng` (same generator family).

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits
/// (the `Standard`/`StandardUniform` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T>: Sized {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[lo, hi]` via unbiased rejection sampling.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "empty sampling range");
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full 64-bit range.
        return rng.next_u64();
    }
    // Reject the partial top interval to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return lo + v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                uniform_u64_inclusive(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                uniform_u64_inclusive(rng, *self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        let u = f64::sample_from(rng);
        self.start + (self.end - self.start) * u
    }
}

/// High-level sampling methods, mirroring upstream's `Rng` extension trait.
pub trait RngExt: RngCore {
    /// Samples a value of `T` from its standard uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from the given range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), the same
    /// family upstream `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<f64>() == b.random::<f64>())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..=12);
            assert!((10..=12).contains(&v));
            lo |= v == 10;
            hi |= v == 12;
        }
        assert!(lo && hi);
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut r = SmallRng::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues = {trues}");
    }
}
