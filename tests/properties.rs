//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;

use pcc_proteus::core::{
    evaluate, hybrid_ideal_allocation, solve_equilibrium, utility_primary, utility_scavenger,
    GameParams, MiObservation, Mode, SenderKind, UtilityParams,
};
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, Scenario};
use pcc_proteus::stats::{jain_index, percentile, Ecdf, Histogram};
use pcc_proteus::transport::{Dur, Time};

fn obs(rate: f64, loss: f64, grad: f64, dev: f64) -> MiObservation {
    MiObservation {
        rate_mbps: rate,
        loss_rate: loss,
        rtt_gradient: grad,
        rtt_deviation: dev,
        rtt_s: 0.05,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 1/2: utilities are concave in the sender's own rate for any
    /// admissible parameters — the Appendix-A existence requirement.
    #[test]
    fn utility_concave_in_rate(
        rate in 1.0_f64..400.0,
        loss in 0.0_f64..0.2,
        grad in 0.0_f64..0.05,
        dev in 0.0_f64..0.01,
    ) {
        let p = UtilityParams::default();
        let h = rate * 0.01;
        for f in [utility_primary, utility_scavenger] {
            let a = f(&p, &obs(rate - h, loss, grad, dev));
            let b = f(&p, &obs(rate, loss, grad, dev));
            let c = f(&p, &obs(rate + h, loss, grad, dev));
            prop_assert!(c - 2.0 * b + a < 1e-9, "not concave at {rate}");
        }
    }

    /// The scavenger utility never exceeds the primary utility (the
    /// deviation term is a pure penalty).
    #[test]
    fn scavenger_utility_below_primary(
        rate in 0.1_f64..400.0,
        dev in 0.0_f64..0.05,
    ) {
        let p = UtilityParams::default();
        let o = obs(rate, 0.0, 0.0, dev);
        prop_assert!(utility_scavenger(&p, &o) <= utility_primary(&p, &o) + 1e-12);
    }

    /// Proteus-H evaluates to exactly one of its two branches.
    #[test]
    fn hybrid_matches_branches(
        rate in 0.1_f64..100.0,
        threshold in 0.0_f64..100.0,
        dev in 0.0_f64..0.01,
    ) {
        let p = UtilityParams::default();
        let o = obs(rate, 0.0, 0.001, dev);
        let th = pcc_proteus::core::SharedThreshold::new(threshold);
        let h = evaluate(&Mode::Hybrid(th), &p, &o);
        let expect = if rate < threshold {
            utility_primary(&p, &o)
        } else {
            utility_scavenger(&p, &o)
        };
        prop_assert_eq!(h, expect);
    }

    /// §4.4 ideal allocation: always feasible, symmetric at the extremes,
    /// and each sender gets at most its "fair or threshold" due.
    #[test]
    fn hybrid_allocation_invariants(
        c in 0.1_f64..200.0,
        r1 in 0.1_f64..50.0,
        extra in 0.0_f64..50.0,
    ) {
        let r2 = r1 + extra;
        let (x1, x2) = hybrid_ideal_allocation(c, r1, r2);
        prop_assert!(x1 >= 0.0 && x2 >= 0.0);
        prop_assert!((x1 + x2 - c).abs() < 1e-9, "must allocate exactly C");
        prop_assert!(x1 <= x2 + 1e-9, "lower-threshold sender never gets more");
        // An unequal split always means someone is pinned at a threshold.
        if x1 < c / 2.0 - 1e-9 {
            prop_assert!(
                (x1 - r1).abs() < 1e-9 || (x2 - r2).abs() < 1e-9,
                "unequal split without a pinned sender: ({x1}, {x2})"
            );
        }
    }

    /// The Appendix-A game: symmetric primary games are fair and saturate
    /// for any moderate sender count and capacity.
    #[test]
    fn symmetric_primary_equilibrium_fair(
        n in 1_usize..6,
        capacity in 10.0_f64..500.0,
    ) {
        let params = GameParams::paper_defaults(capacity);
        let eq = solve_equilibrium(&params, &vec![SenderKind::Primary; n]);
        prop_assert!(eq.converged);
        let lo = eq.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = eq.rates.iter().cloned().fold(0.0_f64, f64::max);
        prop_assert!(lo / hi > 0.99, "unfair: {:?}", eq.rates);
        prop_assert!(eq.utilization(capacity) > 0.98);
    }

    /// Histogram: total probability mass is conserved.
    #[test]
    fn histogram_mass_conserved(xs in prop::collection::vec(-10.0_f64..10.0, 1..200)) {
        let mut h = Histogram::new(-5.0, 5.0, 17);
        h.extend(xs.iter().copied());
        let in_range = h.pmf().iter().sum::<f64>();
        let out = (h.underflow() + h.overflow()) as f64 / h.total() as f64;
        prop_assert!((in_range + out - 1.0).abs() < 1e-9);
    }

    /// ECDF: monotone, bounded, consistent with percentile().
    #[test]
    fn ecdf_invariants(xs in prop::collection::vec(0.0_f64..100.0, 1..200)) {
        let e = Ecdf::new(xs.iter().copied());
        let mut last = 0.0;
        for &(v, f) in e.series().iter() {
            prop_assert!(f >= last && f <= 1.0 + 1e-12);
            prop_assert!(e.eval(v) >= f - 1e-12);
            last = f;
        }
        let p50_a = e.median().unwrap();
        let p50_b = percentile(&xs, 50.0).unwrap();
        prop_assert_eq!(p50_a, p50_b);
    }

    /// Jain's index is bounded in [1/n, 1].
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.01_f64..100.0, 1..20)) {
        let j = jain_index(&xs).unwrap();
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
    }
}

proptest! {
    // Simulator invariants use few cases: each case runs a short simulation.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: what the sender sent is acked, declared lost, or still
    /// unresolved — never duplicated — for arbitrary link parameters.
    #[test]
    fn simulator_conserves_packets(
        bw in 5.0_f64..100.0,
        rtt_ms in 5_u64..100,
        buf_pkts in 4_u64..200,
        loss in 0.0_f64..0.05,
        seed in 0_u64..1000,
    ) {
        let link = LinkSpec::new(bw, Dur::from_millis(rtt_ms), buf_pkts * 1500)
            .with_random_loss(loss);
        let sc = Scenario::new(link, Dur::from_secs(8))
            .flow(FlowSpec::bulk("cubic", Dur::ZERO, || {
                Box::new(pcc_proteus::baselines::Cubic::new())
            }))
            .flow(FlowSpec::bulk("scav", Dur::from_secs(1), || {
                Box::new(pcc_proteus::core::ProteusSender::scavenger(7))
            }))
            .with_seed(seed);
        let res = run(sc);
        for f in &res.flows {
            prop_assert!(f.pkts_acked + f.pkts_lost <= f.pkts_sent);
            prop_assert!(f.bytes_acked <= f.bytes_sent);
        }
        // Goodput can never exceed capacity.
        let total: f64 = res
            .flows
            .iter()
            .map(|f| f.throughput_bps(Time::ZERO, Time::from_secs_f64(8.0)))
            .sum();
        prop_assert!(total <= bw * 1e6 * 1.001, "total {total} > capacity");
    }

    /// Determinism: identical scenarios produce identical results.
    #[test]
    fn simulator_is_deterministic(seed in 0_u64..500) {
        let mk = || {
            let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000)
                .with_random_loss(0.01);
            let sc = Scenario::new(link, Dur::from_secs(5))
                .flow(FlowSpec::bulk("b", Dur::ZERO, || {
                    Box::new(pcc_proteus::baselines::Bbr::new())
                }))
                .with_seed(seed);
            run(sc)
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.flows[0].bytes_acked, b.flows[0].bytes_acked);
        prop_assert_eq!(a.flows[0].pkts_lost, b.flows[0].pkts_lost);
    }
}
