//! Workspace-level integration tests exercising the full public API through
//! the `pcc-proteus` facade: simulator + baselines + Proteus + apps
//! together, in the paper's scenarios.

use pcc_proteus::apps::video::{corpus_1080p, VideoSession};
use pcc_proteus::apps::WebWorkload;
use pcc_proteus::baselines::{Bbr, Cubic, Ledbat};
use pcc_proteus::core::{
    solve_equilibrium, GameParams, ProteusSender, SenderKind, SharedThreshold,
};
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, NoiseConfig, Scenario};
use pcc_proteus::stats::jain_index;
use pcc_proteus::transport::{Application, Dur, Time};

fn paper_link() -> LinkSpec {
    LinkSpec::new(50.0, Dur::from_millis(30), 375_000)
}

fn tail(res: &pcc_proteus::netsim::SimResult, idx: usize, secs: f64) -> f64 {
    res.flows[idx].throughput_mbps(Time::from_secs_f64(secs / 3.0), Time::from_secs_f64(secs))
}

#[test]
fn the_headline_scenario() {
    // Proteus-S yields to BBR where LEDBAT starves it.
    let run_with = |scav: fn() -> Box<dyn pcc_proteus::transport::CongestionControl>| {
        let sc = Scenario::new(paper_link(), Dur::from_secs(45))
            .flow(FlowSpec::bulk("bbr", Dur::ZERO, || Box::new(Bbr::new())))
            .flow(FlowSpec::bulk("scav", Dur::from_secs(5), scav))
            .with_seed(11);
        let res = run(sc);
        tail(&res, 0, 45.0)
    };
    let with_proteus = run_with(|| Box::new(ProteusSender::scavenger(9)));
    let with_ledbat = run_with(|| Box::new(Ledbat::new()));
    assert!(
        with_proteus > 2.5 * with_ledbat,
        "BBR kept {with_proteus} vs {with_ledbat}"
    );
}

#[test]
fn theory_and_simulation_agree_on_yielding() {
    // The Appendix-A model predicts the scavenger's equilibrium share
    // against a primary; the simulator should land in the same regime
    // (scavenger ≪ primary, link still full).
    let params = GameParams::paper_defaults(50.0);
    let eq = solve_equilibrium(&params, &[SenderKind::Primary, SenderKind::Scavenger]);
    let predicted_share = eq.rates[1] / eq.total();

    let sc = Scenario::new(paper_link(), Dur::from_secs(60))
        .flow(FlowSpec::bulk("p", Dur::ZERO, || {
            Box::new(ProteusSender::primary(3))
        }))
        .flow(FlowSpec::bulk("s", Dur::from_secs(5), || {
            Box::new(ProteusSender::scavenger(9))
        }))
        .with_seed(11);
    let res = run(sc);
    let p = tail(&res, 0, 60.0);
    let s = tail(&res, 1, 60.0);
    let measured_share = s / (p + s);

    assert!(predicted_share < 0.2, "theory: {predicted_share}");
    assert!(measured_share < 0.35, "simulation: {measured_share}");
    assert!(p + s > 40.0, "utilization collapsed: {}", p + s);
}

#[test]
fn scavengers_fill_idle_capacity() {
    // Performance goal: two Proteus-S flows alone share fairly and use the
    // link.
    let sc = Scenario::new(paper_link(), Dur::from_secs(60))
        .flow(FlowSpec::bulk("a", Dur::ZERO, || {
            Box::new(ProteusSender::scavenger(3))
        }))
        .flow(FlowSpec::bulk("b", Dur::from_secs(10), || {
            Box::new(ProteusSender::scavenger(9))
        }))
        .with_seed(11);
    let res = run(sc);
    let a = tail(&res, 0, 60.0);
    let b = tail(&res, 1, 60.0);
    assert!(a + b > 38.0, "joint = {}", a + b);
    assert!(jain_index(&[a, b]).unwrap() > 0.85, "{a} vs {b}");
}

#[test]
fn video_session_over_hybrid_transport() {
    let spec = corpus_1080p(1, 5)[0].clone();
    let threshold = SharedThreshold::new(f64::INFINITY);
    let session = VideoSession::new(spec, Some(threshold.clone()));
    let stats = session.stats_handle();
    let cell = std::cell::RefCell::new(Some(session));
    let th = threshold.clone();
    let mut sc = Scenario::new(paper_link(), Dur::from_secs(90)).with_seed(11);
    sc.flows.push(FlowSpec {
        name: "video".into(),
        start: Dur::ZERO,
        stop: None,
        cc: Box::new(move || Box::new(ProteusSender::hybrid(1, th))),
        app: Box::new(move || {
            Box::new(cell.borrow_mut().take().expect("single use")) as Box<dyn Application>
        }),
        reliable: true,
        path: None,
    });
    run(sc);
    let s = stats.borrow();
    assert!(s.chunk_bitrates.len() > 20);
    assert!(s.rebuffer_ratio < 0.05, "rebuffer = {}", s.rebuffer_ratio);
    // The cross-layer policy must have moved the threshold off ∞.
    assert!(threshold.get().is_finite());
}

#[test]
fn web_pages_complete_with_background_scavenger() {
    let workload = WebWorkload {
        duration: Dur::from_secs(60),
        arrivals_per_sec: 0.2,
        ..WebWorkload::default()
    };
    let pages = workload.generate(3);
    assert!(!pages.is_empty());
    let mut sc = Scenario::new(
        LinkSpec::new(100.0, Dur::from_millis(30), 750_000),
        Dur::from_secs(120),
    )
    .with_seed(11);
    for (i, p) in pages.iter().enumerate() {
        sc = sc.flow(FlowSpec::sized(
            format!("page-{i}"),
            p.start,
            p.bytes,
            move || Box::new(Cubic::new()),
        ));
    }
    sc = sc.flow(FlowSpec::bulk("scav", Dur::ZERO, || {
        Box::new(ProteusSender::scavenger(9))
    }));
    let res = run(sc);
    let done = res
        .flows
        .iter()
        .filter(|f| f.name.starts_with("page-"))
        .filter(|f| f.completion_time().is_some())
        .count();
    assert_eq!(done, pages.len(), "all pages should finish");
}

#[test]
fn proteus_survives_wifi_noise() {
    let link =
        LinkSpec::new(30.0, Dur::from_millis(40), 300_000).with_noise(NoiseConfig::wifi_default());
    let sc = Scenario::new(link, Dur::from_secs(45))
        .flow(FlowSpec::bulk("s", Dur::ZERO, || {
            Box::new(ProteusSender::scavenger(3))
        }))
        .with_seed(11);
    let res = run(sc);
    let thpt = tail(&res, 0, 45.0);
    // Noise tolerance keeps the scavenger productive on a noisy idle link.
    assert!(thpt > 18.0, "Proteus-S on WiFi = {thpt}");
}

#[test]
fn facade_reexports_compile_and_link() {
    // Touch one symbol per re-exported crate.
    let _ = pcc_proteus::stats::percentile(&[1.0, 2.0], 50.0);
    let _ = pcc_proteus::transport::DEFAULT_PACKET_BYTES;
    let _ = pcc_proteus::baselines::Cubic::new();
    let _ = pcc_proteus::core::UtilityParams::default();
    let _ = pcc_proteus::netsim::LinkSpec::paper_default();
    let _ = pcc_proteus::apps::WebWorkload::default();
}
