//! Quickstart: run a Proteus-S scavenger next to a CUBIC primary and watch
//! it yield.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's core scenario in ~40 lines: a 50 Mbps / 30 ms
//! dumbbell with a 2-BDP buffer, one CUBIC download, and one background
//! Proteus-S flow that starts 5 seconds later. A good scavenger leaves the
//! primary's throughput and latency essentially untouched while soaking up
//! whatever is left.

use pcc_proteus::core::ProteusSender;
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, Scenario};
use pcc_proteus::transport::{Dur, Time};
use proteus_baselines::Cubic;

fn main() {
    // The paper's standard emulated bottleneck: 50 Mbps, 30 ms RTT, 375 KB.
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);

    let scenario = Scenario::new(link, Dur::from_secs(60))
        .flow(FlowSpec::bulk("CUBIC (primary)", Dur::ZERO, || {
            Box::new(Cubic::new())
        }))
        .flow(FlowSpec::bulk(
            "Proteus-S (scavenger)",
            Dur::from_secs(5),
            || Box::new(ProteusSender::scavenger(42)),
        ))
        .with_seed(7);

    let result = run(scenario);

    println!("flow                      throughput (20-60s)   p95 RTT");
    let from = Time::from_secs_f64(20.0);
    let to = Time::from_secs_f64(60.0);
    for flow in &result.flows {
        println!(
            "{:<24}  {:>8.2} Mbps          {:>6.1} ms",
            flow.name,
            flow.throughput_mbps(from, to),
            flow.rtt_percentile(95.0).unwrap_or(0.0) * 1e3,
        );
    }
    let primary = result.flows[0].throughput_mbps(from, to);
    let scav = result.flows[1].throughput_mbps(from, to);
    println!();
    println!(
        "primary kept {:.0}% of the link; joint utilization {:.0}%",
        primary / 50.0 * 100.0,
        (primary + scav) / 50.0 * 100.0
    );
}
