//! Dynamic mode switching: one flow moves between scavenger and primary
//! mid-transfer (the paper's *flexibility* goal).
//!
//! ```text
//! cargo run --release --example mode_switching
//! ```
//!
//! A Proteus-H sender shares a link with a Proteus-P flow. Its application
//! drives the shared threshold cell: 0 Mbps (pure scavenger) for the first
//! 40 s, then ∞ (pure primary). No connection restart, no second codebase —
//! the switch is just a cell write, exactly the "simple API call" of §3.

use pcc_proteus::core::{ProteusSender, SharedThreshold};
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, Scenario};
use pcc_proteus::transport::{Application, Dur, Time};

/// A bulk source that flips the shared threshold at a fixed time.
struct FlipAt {
    threshold: SharedThreshold,
    at: Time,
    done: bool,
}

impl Application for FlipAt {
    fn bytes_to_send(&mut self, _now: Time) -> u64 {
        u64::MAX
    }
    fn next_event(&self, _now: Time) -> Option<Time> {
        (!self.done).then_some(self.at)
    }
    fn on_wakeup(&mut self, now: Time) {
        if now >= self.at && !self.done {
            self.threshold.set(f64::INFINITY); // scavenger -> primary
            self.done = true;
        }
    }
}

fn main() {
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let threshold = SharedThreshold::new(0.0); // start as pure scavenger
    let th_cc = threshold.clone();
    let th_app = threshold.clone();

    let sc = Scenario::new(link, Dur::from_secs(80))
        .flow(FlowSpec::bulk("Proteus-P (primary)", Dur::ZERO, || {
            Box::new(ProteusSender::primary(3))
        }))
        .flow(
            FlowSpec::bulk("Proteus-H (switching)", Dur::from_secs(2), move || {
                Box::new(ProteusSender::hybrid(9, th_cc.clone()))
            })
            .with_app(move || {
                Box::new(FlipAt {
                    threshold: th_app.clone(),
                    at: Time::from_secs_f64(40.0),
                    done: false,
                })
            }),
        )
        .with_seed(11);

    let res = run(sc);

    println!(
        "time      {:<22} {:<22}",
        res.flows[0].name, res.flows[1].name
    );
    for bin in 0..8 {
        let from = Time::from_secs_f64(bin as f64 * 10.0);
        let to = Time::from_secs_f64((bin + 1) as f64 * 10.0);
        let marker = if bin == 4 {
            "  <- switch to primary"
        } else {
            ""
        };
        println!(
            "{:>3}-{:<3}s  {:>8.1} Mbps          {:>8.1} Mbps{}",
            bin * 10,
            (bin + 1) * 10,
            res.flows[0].throughput_mbps(from, to),
            res.flows[1].throughput_mbps(from, to),
            marker,
        );
    }
}
