//! Scavenger comparison matrix: Proteus-S vs LEDBAT against every primary
//! protocol of the paper.
//!
//! ```text
//! cargo run --release --example scavenger_matrix
//! ```
//!
//! For each primary (CUBIC, BBR, COPA, Proteus-P, PCC-Vivace) this runs
//! three scenarios — primary alone, primary + Proteus-S, primary + LEDBAT —
//! and prints the *primary throughput ratio* (with-scavenger / alone), the
//! metric of the paper's Fig. 6. Expect Proteus-S ≥ ~90 % everywhere while
//! LEDBAT takes most of the link from the latency-aware primaries.

use pcc_proteus::baselines::{Bbr, Copa, Cubic, Ledbat};
use pcc_proteus::core::ProteusSender;
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, Scenario};
use pcc_proteus::transport::{CongestionControl, Dur, Time};

const PRIMARIES: &[&str] = &["CUBIC", "BBR", "COPA", "Proteus-P", "PCC-Vivace"];

fn make(name: &str, seed: u64) -> Box<dyn CongestionControl> {
    match name {
        "CUBIC" => Box::new(Cubic::new()),
        "BBR" => Box::new(Bbr::new()),
        "COPA" => Box::new(Copa::new()),
        "Proteus-P" => Box::new(ProteusSender::primary(seed)),
        "PCC-Vivace" => Box::new(ProteusSender::vivace(seed)),
        "Proteus-S" => Box::new(ProteusSender::scavenger(seed)),
        "LEDBAT" => Box::new(Ledbat::new()),
        _ => unreachable!(),
    }
}

fn tail(res: &pcc_proteus::netsim::SimResult, idx: usize) -> f64 {
    res.flows[idx].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0))
}

fn main() {
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    println!("primary      alone    vs Proteus-S       vs LEDBAT");
    println!("----------  ------  --------------  --------------");
    for &primary in PRIMARIES {
        let alone = {
            let sc = Scenario::new(link, Dur::from_secs(60))
                .flow(FlowSpec::bulk(primary, Dur::ZERO, move || make(primary, 3)))
                .with_seed(11);
            tail(&run(sc), 0)
        };
        let mut ratios = Vec::new();
        for scav in ["Proteus-S", "LEDBAT"] {
            let sc = Scenario::new(link, Dur::from_secs(60))
                .flow(FlowSpec::bulk(primary, Dur::ZERO, move || make(primary, 3)))
                .flow(FlowSpec::bulk(scav, Dur::from_secs(5), move || {
                    make(scav, 9)
                }))
                .with_seed(11);
            let res = run(sc);
            ratios.push(tail(&res, 0) / alone);
        }
        println!(
            "{:<10}  {:>5.1}M  {:>13.1}%  {:>13.1}%",
            primary,
            alone,
            ratios[0] * 100.0,
            ratios[1] * 100.0
        );
    }
    println!();
    println!("ratio = primary throughput with scavenger present / alone (Fig. 6)");
}
