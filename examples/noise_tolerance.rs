//! Noise tolerance in action (§5): the same scavenger on a noisy WiFi-like
//! path with each tolerance mechanism removed.
//!
//! ```text
//! cargo run --release --example noise_tolerance
//! ```
//!
//! Proteus-S penalizes RTT deviation, so on a jittery path a naive
//! implementation reads channel noise as "competition" and starves itself.
//! The §5 mechanisms — per-ACK sample filtering, per-MI regression-error
//! tolerance, MI-history trending tolerance — let the full sender hold most
//! of the link anyway.

use pcc_proteus::core::{AdaptiveNoiseParams, Mode, NoiseTolerance, ProteusConfig, ProteusSender};
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, NoiseConfig, Scenario};
use pcc_proteus::transport::{Dur, Time};

/// Mean throughput over a handful of noisy paths (single-path results are
/// seed-sensitive; the fig9/ablation harness averages the same way).
fn throughput_with(noise: NoiseTolerance) -> f64 {
    let mut total = 0.0;
    let seeds = [3u64, 11, 23, 31];
    for &seed in &seeds {
        let link = LinkSpec::new(30.0, Dur::from_millis(40), 300_000)
            .with_noise(NoiseConfig::wifi_default());
        let sc = Scenario::new(link, Dur::from_secs(45))
            .flow(FlowSpec::bulk("scav", Dur::ZERO, move || {
                let mut cfg = ProteusConfig::proteus().with_seed(seed ^ 0xA5);
                cfg.noise = noise;
                Box::new(ProteusSender::with_config(cfg, Mode::Scavenger))
            }))
            .with_seed(seed);
        let res = run(sc);
        total += res.flows[0].throughput_mbps(Time::from_secs_f64(15.0), Time::from_secs_f64(45.0));
    }
    total / seeds.len() as f64
}

fn main() {
    let full = AdaptiveNoiseParams::default();
    let variants: Vec<(&str, NoiseTolerance)> = vec![
        (
            "full Proteus noise tolerance",
            NoiseTolerance::Adaptive(full),
        ),
        (
            "without per-ACK sample filter",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                ack_interval_ratio: f64::INFINITY,
                ..full
            }),
        ),
        (
            "without per-MI regression-error gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                per_mi_tolerance: false,
                ..full
            }),
        ),
        (
            "without trending gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                trending_tolerance: false,
                ..full
            }),
        ),
        (
            "flat threshold only (Vivace-style)",
            NoiseTolerance::FixedThreshold(0.01),
        ),
    ];

    println!("Proteus-S alone on a noisy 30 Mbps WiFi-like path (mean of 4 seeds):\n");
    for (label, noise) in variants {
        let mbps = throughput_with(noise);
        let bar = "#".repeat((mbps / 30.0 * 40.0).round() as usize);
        println!("{label:<38} {mbps:>5.1} Mbps  {bar}");
    }
    println!("\nThe per-MI regression-error gate is what keeps the deviation");
    println!("penalty from reading channel jitter as flow competition (§5).");
}
