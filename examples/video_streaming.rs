//! DASH video streaming with the Proteus-H hybrid mode and the §4.4
//! cross-layer threshold policy.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```
//!
//! One 4K and three 1080P BOLA-driven sessions share a 100 Mbps link for
//! three minutes — once with every flow on Proteus-P (pure primary, fair
//! shares) and once on Proteus-H (each video yields whatever exceeds its
//! bitrate needs). Compare average chunk bitrate and rebuffer ratio per
//! class, the metrics of the paper's Fig. 12.

use std::cell::RefCell;

use pcc_proteus::apps::video::{corpus_1080p, corpus_4k, VideoSession, VideoStatsHandle};
use pcc_proteus::apps::VideoSpec;
use pcc_proteus::core::{ProteusSender, SharedThreshold};
use pcc_proteus::netsim::{run, FlowSpec, LinkSpec, Scenario};
use pcc_proteus::transport::{Application, Dur};

fn add_video(sc: &mut Scenario, spec: VideoSpec, hybrid: bool, seed: u64) -> VideoStatsHandle {
    let threshold = hybrid.then(|| SharedThreshold::new(f64::INFINITY));
    let session = VideoSession::new(spec.clone(), threshold.clone());
    let stats = session.stats_handle();
    let cell = RefCell::new(Some(session));
    sc.flows.push(FlowSpec {
        name: format!("video-{}", spec.name),
        start: Dur::ZERO,
        stop: None,
        cc: Box::new(move || match threshold {
            Some(t) => Box::new(ProteusSender::hybrid(seed, t)),
            None => Box::new(ProteusSender::primary(seed)),
        }),
        app: Box::new(move || {
            Box::new(cell.borrow_mut().take().expect("single use")) as Box<dyn Application>
        }),
        reliable: true,
        path: None,
    });
    stats
}

fn streaming_run(hybrid: bool) -> (VideoStatsHandle, Vec<VideoStatsHandle>) {
    let link = LinkSpec::new(100.0, Dur::from_millis(30), 900_000);
    let mut sc = Scenario::new(link, Dur::from_secs(180))
        .with_seed(11)
        .with_rtt_stride(16);
    let h4k = add_video(&mut sc, corpus_4k(1, 3)[0].clone(), hybrid, 1);
    let h1080: Vec<_> = corpus_1080p(3, 3)
        .into_iter()
        .enumerate()
        .map(|(i, v)| add_video(&mut sc, v, hybrid, 10 + i as u64))
        .collect();
    run(sc);
    (h4k, h1080)
}

fn main() {
    for (label, hybrid) in [("Proteus-P", false), ("Proteus-H", true)] {
        let (h4k, h1080) = streaming_run(hybrid);
        let s4k = h4k.borrow();
        let avg1080: f64 =
            h1080.iter().map(|h| h.borrow().avg_bitrate()).sum::<f64>() / h1080.len() as f64;
        let rebuf1080: f64 =
            h1080.iter().map(|h| h.borrow().rebuffer_ratio).sum::<f64>() / h1080.len() as f64;
        println!("--- all flows on {label} ---");
        println!(
            "  4K video:    avg bitrate {:>6.2} Mbps, rebuffer {:>5.2}%",
            s4k.avg_bitrate(),
            s4k.rebuffer_ratio * 100.0
        );
        println!(
            "  1080P (x3):  avg bitrate {:>6.2} Mbps, rebuffer {:>5.2}%",
            avg1080,
            rebuf1080 * 100.0
        );
    }
    println!();
    println!("Proteus-H flows cap their appetite at 1.5x the video's top bitrate");
    println!("(and less as the playback buffer fills), freeing capacity for the");
    println!("flows that still need it — the mechanism behind the paper's Fig. 12.");
}
