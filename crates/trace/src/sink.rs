//! Sinks: where decision events go.
//!
//! Recording sites are generic over [`TraceSink`] and guard every emission
//! with `if S::ENABLED { ... }`. `ENABLED` is an associated *constant*, so
//! for [`NoopSink`] the branch — and everything needed only to build the
//! event — is dead code the optimizer removes entirely: tracing that is off
//! costs nothing on the per-ACK hot path.

use crate::event::DecisionEvent;

/// Destination for decision events.
pub trait TraceSink {
    /// Whether this sink records anything. Emission sites compile their
    /// event construction away when this is `false`.
    const ENABLED: bool;

    /// Records one event. Must not allocate in steady state (senders call
    /// this from the per-ACK path).
    fn record(&mut self, ev: DecisionEvent);

    /// Moves all buffered events into `out` (oldest first) and empties the
    /// sink. The caller owns `out`'s capacity, so repeated drains reuse it.
    fn drain_into(&mut self, out: &mut Vec<DecisionEvent>);
}

/// The default sink: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: DecisionEvent) {}

    #[inline(always)]
    fn drain_into(&mut self, _out: &mut Vec<DecisionEvent>) {}
}

/// A preallocated ring buffer keeping the most recent `capacity` events.
///
/// `record` never allocates: the backing vector is reserved up front and,
/// once full, the oldest event is overwritten (the overwrite count is kept
/// in [`RingSink::dropped`] so exporters can report truncation instead of
/// silently presenting a partial trace). Periodic draining — the simulation
/// engine drains every telemetry sample — keeps the ring far from full in
/// practice.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<DecisionEvent>,
    cap: usize,
    /// Oldest entry once the ring has wrapped; meaningless before that.
    next: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten before they could be drained (0 means the trace
    /// is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    const ENABLED: bool = true;

    fn record(&mut self, ev: DecisionEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn drain_into(&mut self, out: &mut Vec<DecisionEvent>) {
        // Chronological order: once wrapped, the oldest entry sits at `next`.
        if self.buf.len() == self.cap && self.next != 0 {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        self.buf.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AckFilter, EventKind};

    fn ev(t: u64) -> DecisionEvent {
        DecisionEvent {
            t_ns: t,
            kind: EventKind::AckFilter(AckFilter {
                dropping: false,
                accepted: t,
                dropped: 0,
            }),
        }
    }

    #[test]
    fn ring_keeps_order_before_wrap() {
        let mut s = RingSink::new(4);
        for t in 0..3 {
            s.record(ev(t));
        }
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out.iter().map(|e| e.t_ns).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_after_wrap() {
        let mut s = RingSink::new(3);
        for t in 0..5 {
            s.record(ev(t));
        }
        assert_eq!(s.dropped(), 2);
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out.iter().map(|e| e.t_ns).collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn ring_reusable_after_drain() {
        let mut s = RingSink::new(2);
        for t in 0..4 {
            s.record(ev(t));
        }
        let mut out = Vec::new();
        s.drain_into(&mut out);
        s.record(ev(9));
        out.clear();
        s.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t_ns, 9);
    }

    #[test]
    fn record_never_allocates_once_built() {
        // Capacity is reserved at construction; wraps reuse the same slots.
        let mut s = RingSink::new(8);
        let cap_before = s.buf.capacity();
        for t in 0..100 {
            s.record(ev(t));
        }
        assert_eq!(s.buf.capacity(), cap_before);
    }

    #[test]
    fn noop_sink_discards() {
        let mut s = NoopSink;
        s.record(ev(1));
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert!(out.is_empty());
        const {
            assert!(!NoopSink::ENABLED);
            assert!(RingSink::ENABLED);
        }
    }
}
