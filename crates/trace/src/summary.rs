//! Aggregate statistics over a decision trace.
//!
//! [`TraceSummary`] backs the `repro trace-summary` report mode: it counts
//! each event kind and the interesting boolean outcomes (gate suppressions,
//! probe decisions, implicit mode switches), either from in-memory events
//! via [`TraceSummary::record`] or from exported JSONL files via
//! [`TraceSummary::scan_jsonl_line`] — the two paths agree by construction
//! (tested below), so summarizing a stored artifact equals summarizing the
//! run that produced it.

use crate::event::EventKind;

/// Event counts and derived hit-rates for one trace (or a merge of several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events seen.
    pub events: u64,
    /// Completed monitor intervals.
    pub mi_closes: u64,
    /// §5 noise-gate verdicts.
    pub gate_verdicts: u64,
    /// Verdicts where the per-MI regression-error gate suppressed the
    /// gradient.
    pub per_mi_gated: u64,
    /// Verdicts where the trending gate restored a suppressed metric.
    pub trend_restored: u64,
    /// Per-ACK burst-filter episode boundaries.
    pub ack_filter_events: u64,
    /// Rate-controller state transitions.
    pub rate_transitions: u64,
    /// Concluded probe rounds.
    pub probe_outcomes: u64,
    /// Probe rounds that reached a decision.
    pub probe_decided: u64,
    /// Utility-function switches (explicit and implicit).
    pub mode_switches: u64,
    /// Switches caused by Proteus-H's implicit threshold rule.
    pub implicit_mode_switches: u64,
    /// Injected fault-layer events (link changes, outage edges, loss-burst
    /// episode boundaries).
    pub fault_events: u64,
}

impl TraceSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one in-memory event into the counts.
    pub fn record(&mut self, kind: &EventKind) {
        self.events += 1;
        match kind {
            EventKind::MiClose(_) => self.mi_closes += 1,
            EventKind::GateVerdict(g) => {
                self.gate_verdicts += 1;
                if g.per_mi_gated {
                    self.per_mi_gated += 1;
                }
                if g.trend_restored_gradient || g.trend_restored_deviation {
                    self.trend_restored += 1;
                }
            }
            EventKind::AckFilter(_) => self.ack_filter_events += 1,
            EventKind::RateTransition(_) => self.rate_transitions += 1,
            EventKind::ProbeOutcome(p) => {
                self.probe_outcomes += 1;
                if p.decided {
                    self.probe_decided += 1;
                }
            }
            EventKind::ModeSwitch(s) => {
                self.mode_switches += 1;
                if s.implicit {
                    self.implicit_mode_switches += 1;
                }
            }
            EventKind::Fault(_) => self.fault_events += 1,
        }
    }

    /// Folds one line of an exported JSONL trace into the counts.
    ///
    /// Matches on the stable `"event":"…"` tag plus the few boolean fields
    /// the summary cares about — deliberately a substring scan, not a JSON
    /// parser: the exporter (this crate) controls the format, every key
    /// appears exactly once per line, and keeping the scanner trivial lets
    /// `trace-summary` chew through large traces without a parse dependency.
    /// Lines that are not decision events (blank, or foreign) are ignored.
    pub fn scan_jsonl_line(&mut self, line: &str) {
        let tag = match find_str_field(line, "event") {
            Some(t) => t,
            None => return,
        };
        self.events += 1;
        match tag {
            "mi_close" => self.mi_closes += 1,
            "gate" => {
                self.gate_verdicts += 1;
                if has_true(line, "per_mi_gated") {
                    self.per_mi_gated += 1;
                }
                if has_true(line, "trend_restored_gradient")
                    || has_true(line, "trend_restored_deviation")
                {
                    self.trend_restored += 1;
                }
            }
            "ack_filter" => self.ack_filter_events += 1,
            "rate_transition" => self.rate_transitions += 1,
            "probe_outcome" => {
                self.probe_outcomes += 1;
                if has_true(line, "decided") {
                    self.probe_decided += 1;
                }
            }
            "mode_switch" => {
                self.mode_switches += 1;
                if has_true(line, "implicit") {
                    self.implicit_mode_switches += 1;
                }
            }
            "fault" => self.fault_events += 1,
            _ => self.events -= 1, // unknown tag: not one of ours
        }
    }

    /// Adds another summary's counts into this one (for aggregating the
    /// per-run files of an experiment).
    pub fn merge(&mut self, other: &TraceSummary) {
        self.events += other.events;
        self.mi_closes += other.mi_closes;
        self.gate_verdicts += other.gate_verdicts;
        self.per_mi_gated += other.per_mi_gated;
        self.trend_restored += other.trend_restored;
        self.ack_filter_events += other.ack_filter_events;
        self.rate_transitions += other.rate_transitions;
        self.probe_outcomes += other.probe_outcomes;
        self.probe_decided += other.probe_decided;
        self.mode_switches += other.mode_switches;
        self.implicit_mode_switches += other.implicit_mode_switches;
        self.fault_events += other.fault_events;
    }

    /// Fraction of gate verdicts where the per-MI gate suppressed the
    /// gradient (0 when no verdicts were seen).
    pub fn gate_hit_rate(&self) -> f64 {
        ratio(self.per_mi_gated, self.gate_verdicts)
    }

    /// Fraction of probe rounds that reached a decision.
    pub fn probe_decision_rate(&self) -> f64 {
        ratio(self.probe_decided, self.probe_outcomes)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Extracts the value of `"key":"value"` from a single-line JSON object.
fn find_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Whether the line contains `"key":true`.
fn has_true(line: &str, key: &str) -> bool {
    line.contains(&format!("\"{key}\":true"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::export::{to_jsonl, FlowEvent};

    fn sample() -> Vec<FlowEvent> {
        let mk = |t_ns, kind| FlowEvent {
            flow: 0,
            event: DecisionEvent { t_ns, kind },
        };
        vec![
            mk(
                1,
                EventKind::GateVerdict(GateVerdict {
                    raw_gradient: 0.2,
                    raw_deviation: 0.001,
                    gradient_error: 0.5,
                    per_mi_gated: true,
                    trend_restored_gradient: false,
                    trend_restored_deviation: true,
                    out_gradient: 0.0,
                    out_deviation: 0.001,
                }),
            ),
            mk(
                2,
                EventKind::MiClose(MiClose {
                    mi_start_ns: 0,
                    rate_mbps: 10.0,
                    goodput_mbps: 9.0,
                    loss_rate: 0.0,
                    raw_loss_rate: 0.0,
                    rtt_mean_s: 0.03,
                    rtt_dev_s: 0.0,
                    rtt_gradient: 0.0,
                    utility: 5.0,
                    term_rate: 5.0,
                    term_gradient: 0.0,
                    term_loss: 0.0,
                    term_deviation: 0.0,
                    mode: "Proteus-P",
                }),
            ),
            mk(
                3,
                EventKind::ProbeOutcome(ProbeOutcome {
                    base_mbps: 10.0,
                    decided: true,
                    vote: 2,
                    gradient: 0.4,
                }),
            ),
            mk(
                4,
                EventKind::ProbeOutcome(ProbeOutcome {
                    base_mbps: 10.0,
                    decided: false,
                    vote: 0,
                    gradient: 0.0,
                }),
            ),
            mk(
                5,
                EventKind::ModeSwitch(ModeSwitch {
                    from: "Proteus-P",
                    to: "Proteus-S",
                    implicit: true,
                    threshold_mbps: 10.0,
                    rate_mbps: 12.0,
                }),
            ),
            mk(
                6,
                EventKind::RateTransition(RateTransition {
                    from: CtlPhase::Starting,
                    to: CtlPhase::Probing,
                    rate_mbps: 12.0,
                }),
            ),
            mk(
                7,
                EventKind::AckFilter(AckFilter {
                    dropping: true,
                    accepted: 100,
                    dropped: 3,
                }),
            ),
            mk(
                8,
                EventKind::Fault(Fault {
                    kind: FaultKind::OutageStart,
                    value: 0.0,
                }),
            ),
        ]
    }

    #[test]
    fn record_counts_every_kind() {
        let mut s = TraceSummary::new();
        for fe in sample() {
            s.record(&fe.event.kind);
        }
        assert_eq!(s.events, 8);
        assert_eq!(s.mi_closes, 1);
        assert_eq!(s.gate_verdicts, 1);
        assert_eq!(s.per_mi_gated, 1);
        assert_eq!(s.trend_restored, 1);
        assert_eq!(s.probe_outcomes, 2);
        assert_eq!(s.probe_decided, 1);
        assert_eq!(s.mode_switches, 1);
        assert_eq!(s.implicit_mode_switches, 1);
        assert_eq!(s.rate_transitions, 1);
        assert_eq!(s.ack_filter_events, 1);
        assert_eq!(s.fault_events, 1);
        assert_eq!(s.gate_hit_rate(), 1.0);
        assert_eq!(s.probe_decision_rate(), 0.5);
    }

    #[test]
    fn jsonl_scan_matches_in_memory_record() {
        let events = sample();
        let mut direct = TraceSummary::new();
        for fe in &events {
            direct.record(&fe.event.kind);
        }
        let text = to_jsonl(&events, &["Proteus-H"]);
        let mut scanned = TraceSummary::new();
        for line in text.lines() {
            scanned.scan_jsonl_line(line);
        }
        assert_eq!(direct, scanned);
    }

    #[test]
    fn scan_ignores_foreign_lines() {
        let mut s = TraceSummary::new();
        s.scan_jsonl_line("");
        s.scan_jsonl_line("{\"t\":1.0,\"goodput\":5.0}");
        s.scan_jsonl_line("{\"event\":\"something_else\"}");
        assert_eq!(s, TraceSummary::new());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TraceSummary::new();
        for fe in sample() {
            a.record(&fe.event.kind);
        }
        let b = a;
        a.merge(&b);
        assert_eq!(a.events, 16);
        assert_eq!(a.probe_decided, 2);
        assert_eq!(a.fault_events, 2);
    }
}
