//! The decision-event vocabulary.
//!
//! Every record is a fixed-size `Copy` struct (no strings beyond `'static`
//! mode names, no heap), so recording one into a [`crate::RingSink`] is a
//! bounded memcpy. Field units are spelled out per field; timestamps are
//! simulation-time nanoseconds since the run's `Time::ZERO`.

/// One timestamped decision record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEvent {
    /// Event time, nanoseconds of simulation time.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The decision taken (see the per-variant structs for field meanings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A monitor interval completed and was fed to the utility function.
    MiClose(MiClose),
    /// A §5 noise-gate verdict on a completed MI's latency metrics.
    GateVerdict(GateVerdict),
    /// The §5 per-ACK burst filter started or stopped dropping samples.
    AckFilter(AckFilter),
    /// The rate controller changed state (Starting/Probing/Moving).
    RateTransition(RateTransition),
    /// A probe round concluded (decided or inconclusive).
    ProbeOutcome(ProbeOutcome),
    /// The sender's utility function changed (§4.4), explicitly via
    /// `set_mode` or implicitly via the Proteus-H threshold rule.
    ModeSwitch(ModeSwitch),
    /// An injected fault took effect on the simulated path (link-scoped:
    /// recorded with the reserved flow id [`crate::export::LINK_FLOW`], not
    /// attributed to any sender).
    Fault(Fault),
}

impl EventKind {
    /// Stable machine-readable tag used by the exporters
    /// (`"mi_close"`, `"gate"`, `"ack_filter"`, `"rate_transition"`,
    /// `"probe_outcome"`, `"mode_switch"`, `"fault"`).
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::MiClose(_) => "mi_close",
            EventKind::GateVerdict(_) => "gate",
            EventKind::AckFilter(_) => "ack_filter",
            EventKind::RateTransition(_) => "rate_transition",
            EventKind::ProbeOutcome(_) => "probe_outcome",
            EventKind::ModeSwitch(_) => "mode_switch",
            EventKind::Fault(_) => "fault",
        }
    }
}

/// Rate-controller phase (the §4.3 state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlPhase {
    /// Slow start: the rate doubles each MI while utility rises.
    Starting,
    /// Randomized ±ε probe pairs around the base rate.
    Probing,
    /// Gradient-ascent stepping.
    Moving,
}

impl CtlPhase {
    /// Display name (`"Starting"`, `"Probing"`, `"Moving"`).
    pub fn name(&self) -> &'static str {
        match self {
            CtlPhase::Starting => "Starting",
            CtlPhase::Probing => "Probing",
            CtlPhase::Moving => "Moving",
        }
    }
}

/// A completed monitor interval, with the utility value and its per-term
/// breakdown. The terms satisfy
/// `utility = term_rate − term_gradient − term_loss − term_deviation`
/// (each `term_*` is the signed amount subtracted; Vivace's negative-
/// gradient *reward* shows up as a negative `term_gradient`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiClose {
    /// MI start, nanoseconds (the event's `t_ns` is the MI end).
    pub mi_start_ns: u64,
    /// Target sending rate of the MI, Mbit/s.
    pub rate_mbps: f64,
    /// Achieved goodput over the MI, Mbit/s.
    pub goodput_mbps: f64,
    /// Smoothed loss rate the utility function consumed (short EWMA).
    pub loss_rate: f64,
    /// Raw per-MI loss rate before smoothing.
    pub raw_loss_rate: f64,
    /// Mean RTT over the MI, seconds.
    pub rtt_mean_s: f64,
    /// RTT deviation the utility consumed (post-gating), seconds.
    pub rtt_dev_s: f64,
    /// RTT gradient the utility consumed (post-gating), dimensionless.
    pub rtt_gradient: f64,
    /// Resulting utility value.
    pub utility: f64,
    /// Throughput term `x^d` (Allegro: `x·(1−L)·sigmoid`).
    pub term_rate: f64,
    /// Subtracted latency-gradient penalty `b·x·grad` (may be negative for
    /// Vivace's reward).
    pub term_gradient: f64,
    /// Subtracted loss penalty `c·x·L` (Allegro: `x·L`).
    pub term_loss: f64,
    /// Subtracted RTT-deviation penalty `d·x·σ(RTT)` (scavenger terms only).
    pub term_deviation: f64,
    /// Utility-function name at evaluation time (e.g. `"Proteus-S"`).
    pub mode: &'static str,
}

/// Verdict of the §5 noise gates on one MI (regression-error tolerance and
/// the trending override).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateVerdict {
    /// Raw RTT gradient measured by the MI's linear fit.
    pub raw_gradient: f64,
    /// Raw RTT deviation measured over the MI, seconds.
    pub raw_deviation: f64,
    /// Normalized RMS residual of the fit (the gate's noise yardstick).
    pub gradient_error: f64,
    /// Whether the per-MI regression-error gate judged the gradient noise.
    pub per_mi_gated: bool,
    /// Whether the trending gate restored the suppressed gradient.
    pub trend_restored_gradient: bool,
    /// Whether the trending gate restored the suppressed deviation.
    pub trend_restored_deviation: bool,
    /// Gradient actually handed to the utility function.
    pub out_gradient: f64,
    /// Deviation actually handed to the utility function, seconds.
    pub out_deviation: f64,
}

/// A per-ACK burst-filter episode boundary (§5 "RTT Sample Filtering").
///
/// The filter takes a verdict on *every* ACK; recording each would swamp any
/// bounded buffer at simulated ACK rates, so the trace records the episode
/// *transitions* (started dropping / resumed accepting) together with the
/// cumulative counters, from which per-episode drop counts are recoverable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckFilter {
    /// `true`: the filter just started dropping RTT samples;
    /// `false`: a sample at/below the moving average ended the episode.
    pub dropping: bool,
    /// Cumulative accepted RTT samples at this boundary.
    pub accepted: u64,
    /// Cumulative dropped RTT samples at this boundary.
    pub dropped: u64,
}

/// A rate-controller state transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateTransition {
    /// Phase before the transition.
    pub from: CtlPhase,
    /// Phase after the transition.
    pub to: CtlPhase,
    /// Base rate after the transition, Mbit/s.
    pub rate_mbps: f64,
}

/// Conclusion of one probe round (all ±ε trials reported).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// Base rate the round probed around, Mbit/s.
    pub base_mbps: f64,
    /// Whether the rule (majority/agreement) reached a decision.
    pub decided: bool,
    /// Per-pair vote sum (+1 up / −1 down per pair); 0 on a tie.
    pub vote: i32,
    /// Measured utility gradient, utility-units per Mbit/s (signed by the
    /// vote under majority rule).
    pub gradient: f64,
}

/// A §4.4 utility-function switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSwitch {
    /// Utility function before the switch.
    pub from: &'static str,
    /// Utility function after the switch.
    pub to: &'static str,
    /// `true` when the switch is Proteus-H's implicit threshold rule
    /// (`rate < threshold → primary terms, else scavenger terms`); `false`
    /// for an explicit application `set_mode` call.
    pub implicit: bool,
    /// Threshold in force, Mbit/s (`NaN` when not hybrid).
    pub threshold_mbps: f64,
    /// Sending rate compared against the threshold, Mbit/s.
    pub rate_mbps: f64,
}

/// An injected fault-layer event on the simulated path (netsim's
/// `FaultSchedule`). These are link-scoped — the path misbehaved, not a
/// sender — and exist so decision traces can be correlated with the fault
/// that provoked them (e.g. an ACK-compression episode immediately followed
/// by `ack_filter` `dropping:true`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Which fault took effect.
    pub kind: FaultKind,
    /// Kind-specific magnitude (see [`FaultKind`] for units); `0.0` where
    /// the kind carries no magnitude.
    pub value: f64,
}

/// The fault vocabulary, mirroring netsim's `LinkChange` plus the
/// stochastic loss-burst episode boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Bottleneck bandwidth changed; `value` is the new rate in Mbit/s.
    Bandwidth,
    /// Base RTT changed (route change); `value` is the new RTT in seconds.
    Rtt,
    /// The link went down; `value` is `0.0`.
    OutageStart,
    /// The link came back up; `value` is `0.0`.
    OutageEnd,
    /// The Gilbert–Elliott chain entered the bad (lossy) state; `value` is
    /// the bad-state per-packet loss probability.
    LossBurstStart,
    /// The chain returned to the good state; `value` is `0.0`.
    LossBurstEnd,
}

impl FaultKind {
    /// Display name, stable for exporters and log scanners.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Bandwidth => "bandwidth",
            FaultKind::Rtt => "rtt",
            FaultKind::OutageStart => "outage_start",
            FaultKind::OutageEnd => "outage_end",
            FaultKind::LossBurstStart => "loss_burst_start",
            FaultKind::LossBurstEnd => "loss_burst_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_tags_and_names_are_stable() {
        let ev = EventKind::Fault(Fault {
            kind: FaultKind::Bandwidth,
            value: 15.0,
        });
        assert_eq!(ev.tag(), "fault");
        assert_eq!(FaultKind::OutageStart.name(), "outage_start");
        assert_eq!(FaultKind::LossBurstEnd.name(), "loss_burst_end");
    }

    #[test]
    fn tags_are_stable() {
        let ev = EventKind::RateTransition(RateTransition {
            from: CtlPhase::Starting,
            to: CtlPhase::Probing,
            rate_mbps: 12.0,
        });
        assert_eq!(ev.tag(), "rate_transition");
        assert_eq!(CtlPhase::Moving.name(), "Moving");
    }

    #[test]
    fn events_are_copy_and_small() {
        // The ring buffer copies events by value; keep the record compact.
        assert!(std::mem::size_of::<DecisionEvent>() <= 144);
        let a = DecisionEvent {
            t_ns: 5,
            kind: EventKind::AckFilter(AckFilter {
                dropping: true,
                accepted: 10,
                dropped: 1,
            }),
        };
        let b = a; // Copy
        assert_eq!(a, b);
    }
}
