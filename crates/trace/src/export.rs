//! Exporters: JSONL and Chrome `trace_event` renderings of a recorded run.
//!
//! Both exporters consume the same input — the run's drained events, each
//! labelled with its flow id — and are pure functions of it, so a
//! deterministic simulation yields byte-identical trace files (the golden
//! trace test pins exactly that).
//!
//! JSON is emitted by a small local writer rather than a serialization
//! dependency: every value is a bool, integer, finite float or short name
//! string, and non-finite floats are rendered as `null` (JSON has no
//! `NaN`/`Infinity`).

use crate::event::{DecisionEvent, EventKind};

/// Reserved flow id for link-scoped records ([`EventKind::Fault`]): the
/// event belongs to the simulated path itself, not to any sender. Exporters
/// label it `"link"`.
pub const LINK_FLOW: u32 = u32::MAX;

/// One drained event attributed to the flow that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// Flow id within the scenario, or [`LINK_FLOW`] for path-scoped
    /// fault records.
    pub flow: u32,
    /// The decision record.
    pub event: DecisionEvent,
}

/// Minimal JSON object writer (append-only, insertion order preserved).
struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    fn num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            // Rust's `Display` for f64 is shortest-roundtrip decimal — valid
            // JSON and stable across runs.
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    fn int(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&format!("{v}"));
        self
    }

    fn signed(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&format!("{v}"));
        self
    }

    fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_json_string(&mut self.buf, v);
        self
    }

    /// Nested raw JSON (already rendered).
    fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    fn render(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn flow_name<'a>(names: &'a [&'a str], flow: u32) -> &'a str {
    if flow == LINK_FLOW {
        return "link";
    }
    names.get(flow as usize).copied().unwrap_or("?")
}

/// Appends the kind-specific fields of `ev` to `o`.
fn payload_fields(o: &mut Obj, ev: &DecisionEvent) {
    match &ev.kind {
        EventKind::MiClose(m) => {
            o.num("mi_start", m.mi_start_ns as f64 / 1e9)
                .num("rate_mbps", m.rate_mbps)
                .num("goodput_mbps", m.goodput_mbps)
                .num("loss_rate", m.loss_rate)
                .num("raw_loss_rate", m.raw_loss_rate)
                .num("rtt_mean_s", m.rtt_mean_s)
                .num("rtt_dev_s", m.rtt_dev_s)
                .num("rtt_gradient", m.rtt_gradient)
                .num("utility", m.utility)
                .num("term_rate", m.term_rate)
                .num("term_gradient", m.term_gradient)
                .num("term_loss", m.term_loss)
                .num("term_deviation", m.term_deviation)
                .str("mode", m.mode);
        }
        EventKind::GateVerdict(g) => {
            o.num("raw_gradient", g.raw_gradient)
                .num("raw_deviation", g.raw_deviation)
                .num("gradient_error", g.gradient_error)
                .bool("per_mi_gated", g.per_mi_gated)
                .bool("trend_restored_gradient", g.trend_restored_gradient)
                .bool("trend_restored_deviation", g.trend_restored_deviation)
                .num("out_gradient", g.out_gradient)
                .num("out_deviation", g.out_deviation);
        }
        EventKind::AckFilter(a) => {
            o.bool("dropping", a.dropping)
                .int("accepted", a.accepted)
                .int("dropped", a.dropped);
        }
        EventKind::RateTransition(t) => {
            o.str("from", t.from.name())
                .str("to", t.to.name())
                .num("rate_mbps", t.rate_mbps);
        }
        EventKind::ProbeOutcome(p) => {
            o.num("base_mbps", p.base_mbps)
                .bool("decided", p.decided)
                .signed("vote", p.vote as i64)
                .num("gradient", p.gradient);
        }
        EventKind::ModeSwitch(s) => {
            o.str("from", s.from)
                .str("to", s.to)
                .bool("implicit", s.implicit)
                .num("threshold_mbps", s.threshold_mbps)
                .num("rate_mbps", s.rate_mbps);
        }
        EventKind::Fault(f) => {
            o.str("fault", f.kind.name()).num("value", f.value);
        }
    }
}

/// Renders events as JSONL: one object per line, schema documented in
/// `OBSERVABILITY.md`. `names[flow]` labels each line with its protocol
/// name.
pub fn to_jsonl(events: &[FlowEvent], names: &[&str]) -> String {
    let mut out = String::new();
    for fe in events {
        let mut o = Obj::new();
        o.num("t", fe.event.t_ns as f64 / 1e9)
            .int("flow", fe.flow as u64)
            .str("name", flow_name(names, fe.flow))
            .str("event", fe.event.kind.tag());
        payload_fields(&mut o, &fe.event);
        out.push_str(&o.render());
        out.push('\n');
    }
    out
}

/// Renders events in Chrome `trace_event` format (the JSON object form with
/// a `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
///
/// Mapping: each flow becomes a thread (`tid` = flow id) of one process;
/// MI closes become complete spans (`ph:"X"`) covering the interval, with
/// per-flow `rate`/`utility` counter tracks (`ph:"C"`); every other decision
/// becomes a thread-scoped instant (`ph:"i"`). Timestamps are microseconds,
/// as the format requires.
pub fn to_chrome_trace(events: &[FlowEvent], names: &[&str]) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Thread-name metadata for every flow that produced events.
    let mut seen: Vec<u32> = events.iter().map(|e| e.flow).collect();
    seen.sort_unstable();
    seen.dedup();
    for flow in seen {
        let mut o = Obj::new();
        o.str("name", "thread_name")
            .str("ph", "M")
            .int("pid", 1)
            .int("tid", flow as u64);
        let mut args = Obj::new();
        let label = if flow == LINK_FLOW {
            "link (injected faults)".to_string()
        } else {
            format!("flow {flow}: {}", flow_name(names, flow))
        };
        args.str("name", &label);
        o.raw("args", &args.render());
        entries.push(o.render());
    }

    for fe in events {
        let ts_us = fe.event.t_ns as f64 / 1e3;
        let mut o = Obj::new();
        match &fe.event.kind {
            EventKind::MiClose(m) => {
                let start_us = m.mi_start_ns as f64 / 1e3;
                o.str("name", "MI")
                    .str("cat", "mi")
                    .str("ph", "X")
                    .int("pid", 1)
                    .int("tid", fe.flow as u64)
                    .num("ts", start_us)
                    .num("dur", (ts_us - start_us).max(0.0));
                let mut args = Obj::new();
                payload_fields(&mut args, &fe.event);
                o.raw("args", &args.render());
                entries.push(o.render());

                // Counter tracks: rate and utility over time.
                let mut rate = Obj::new();
                rate.str("name", &format!("rate_mbps/flow{}", fe.flow))
                    .str("ph", "C")
                    .int("pid", 1)
                    .num("ts", ts_us);
                let mut rargs = Obj::new();
                rargs.num("mbps", m.rate_mbps);
                rate.raw("args", &rargs.render());
                entries.push(rate.render());

                let mut util = Obj::new();
                util.str("name", &format!("utility/flow{}", fe.flow))
                    .str("ph", "C")
                    .int("pid", 1)
                    .num("ts", ts_us);
                let mut uargs = Obj::new();
                uargs.num("u", m.utility);
                util.raw("args", &uargs.render());
                entries.push(util.render());
            }
            other => {
                let cat = match other {
                    EventKind::GateVerdict(_) | EventKind::AckFilter(_) => "noise",
                    EventKind::RateTransition(_) | EventKind::ProbeOutcome(_) => "control",
                    EventKind::ModeSwitch(_) => "mode",
                    EventKind::Fault(_) => "fault",
                    EventKind::MiClose(_) => unreachable!(),
                };
                // Link-scoped faults render as globally-scoped instants (a
                // vertical marker across every flow's track); flow decisions
                // stay thread-scoped.
                let scope = if fe.flow == LINK_FLOW { "g" } else { "t" };
                o.str("name", other.tag())
                    .str("cat", cat)
                    .str("ph", "i")
                    .str("s", scope)
                    .int("pid", 1)
                    .int("tid", fe.flow as u64)
                    .num("ts", ts_us);
                let mut args = Obj::new();
                payload_fields(&mut args, &fe.event);
                o.raw("args", &args.render());
                entries.push(o.render());
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;

    fn sample_events() -> Vec<FlowEvent> {
        vec![
            FlowEvent {
                flow: 0,
                event: DecisionEvent {
                    t_ns: 30_000_000,
                    kind: EventKind::MiClose(MiClose {
                        mi_start_ns: 0,
                        rate_mbps: 12.5,
                        goodput_mbps: 11.0,
                        loss_rate: 0.01,
                        raw_loss_rate: 0.02,
                        rtt_mean_s: 0.03,
                        rtt_dev_s: 0.001,
                        rtt_gradient: 0.0,
                        utility: 9.5,
                        term_rate: 9.7,
                        term_gradient: 0.0,
                        term_loss: 0.2,
                        term_deviation: 0.0,
                        mode: "Proteus-S",
                    }),
                },
            },
            FlowEvent {
                flow: 1,
                event: DecisionEvent {
                    t_ns: 31_000_000,
                    kind: EventKind::ModeSwitch(ModeSwitch {
                        from: "Proteus-P",
                        to: "Proteus-S",
                        implicit: true,
                        threshold_mbps: 10.0,
                        rate_mbps: 12.5,
                    }),
                },
            },
        ]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let text = to_jsonl(&sample_events(), &["Proteus-S", "Proteus-H"]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"mi_close\""));
        assert!(lines[0].contains("\"t\":0.03"));
        assert!(lines[0].contains("\"utility\":9.5"));
        assert!(lines[1].contains("\"event\":\"mode_switch\""));
        assert!(lines[1].contains("\"implicit\":true"));
        assert!(lines[1].contains("\"name\":\"Proteus-H\""));
    }

    #[test]
    fn jsonl_nonfinite_floats_become_null() {
        let ev = vec![FlowEvent {
            flow: 0,
            event: DecisionEvent {
                t_ns: 0,
                kind: EventKind::ModeSwitch(ModeSwitch {
                    from: "a",
                    to: "b",
                    implicit: false,
                    threshold_mbps: f64::INFINITY,
                    rate_mbps: 1.0,
                }),
            },
        }];
        let text = to_jsonl(&ev, &["x"]);
        assert!(text.contains("\"threshold_mbps\":null"));
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_spans_and_instants() {
        let text = to_chrome_trace(&sample_events(), &["Proteus-S", "Proteus-H"]);
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        // Two thread metadata + 1 span + 2 counters + 1 instant.
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"dur\":30000"));
        // Braces balance (cheap structural sanity; the format is plain JSON).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn fault_events_are_link_scoped() {
        let ev = vec![FlowEvent {
            flow: LINK_FLOW,
            event: DecisionEvent {
                t_ns: 2_000_000_000,
                kind: EventKind::Fault(Fault {
                    kind: FaultKind::Bandwidth,
                    value: 15.0,
                }),
            },
        }];
        let text = to_jsonl(&ev, &["CUBIC"]);
        assert!(text.contains("\"event\":\"fault\""));
        assert!(text.contains("\"name\":\"link\""));
        assert!(text.contains("\"fault\":\"bandwidth\""));
        assert!(text.contains("\"value\":15"));

        let chrome = to_chrome_trace(&ev, &["CUBIC"]);
        assert!(chrome.contains("\"cat\":\"fault\""));
        assert!(chrome.contains("\"s\":\"g\""));
        assert!(chrome.contains("link (injected faults)"));
    }

    #[test]
    fn string_escaping() {
        let mut buf = String::new();
        push_json_string(&mut buf, "a\"b\\c\nd");
        assert_eq!(buf, "\"a\\\"b\\\\c\\u000ad\"");
    }
}
