//! Zero-cost structured decision tracing for the PCC Proteus reproduction.
//!
//! PCC-family senders are driven by per-MI *decisions* — utility evaluations
//! (paper Eqs. 1–3), gradient-ascent state transitions (§4.3), §4.4 utility
//! switching and the §5 noise-tolerance verdicts. This crate defines the
//! fixed-size event records for those decision points ([`DecisionEvent`]),
//! the sink abstraction they are recorded through ([`TraceSink`]), and the
//! exporters that turn a recorded run into analysis artifacts:
//!
//! * [`NoopSink`] — the default; `ENABLED = false`, so every recording site
//!   compiles to nothing (the per-ACK hot path stays allocation-free and
//!   branch-free, guarded by `crates/core/tests/alloc_free.rs` and the
//!   `per_ack` microbenches),
//! * [`RingSink`] — a preallocated per-flow ring buffer that keeps the most
//!   recent events and never allocates after construction,
//! * [`export::to_jsonl`] — one JSON object per event (grep/jq-friendly),
//! * [`export::to_chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`,
//! * [`TraceSummary`] — aggregate mode-switch counts and filter hit-rates
//!   (the `repro trace-summary` report mode).
//!
//! The crate is dependency-free and sits below `proteus-transport` in the
//! workspace graph, so every layer (controller, simulator, runner) can share
//! the event vocabulary without cycles. See `OBSERVABILITY.md` at the repo
//! root for the full schema reference and a worked trace-reading example.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod export;
pub mod sink;
pub mod summary;

pub use event::{
    AckFilter, CtlPhase, DecisionEvent, EventKind, Fault, FaultKind, GateVerdict, MiClose,
    ModeSwitch, ProbeOutcome, RateTransition,
};
pub use export::{FlowEvent, LINK_FLOW};
pub use sink::{NoopSink, RingSink, TraceSink};
pub use summary::TraceSummary;
