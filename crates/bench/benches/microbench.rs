//! Criterion micro-benchmarks for the hot paths of the reproduction: per-ACK
//! controller costs, MI accounting, utility evaluation and raw simulator
//! event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proteus_core::{evaluate, MiObservation, Mode, ProteusSender, SharedThreshold, UtilityParams};
use proteus_netsim::{
    run, AckCompression, FaultSchedule, FlowSpec, GilbertElliott, LinkSpec, ReorderConfig,
    Scenario, WirePath,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, MiStats, MiTracker, SentPacket, Time};

fn ack(seq: u64, sent_ms: u64, rtt_ms: u64) -> AckInfo {
    AckInfo {
        seq,
        bytes: 1500,
        sent_at: Time::from_millis(sent_ms),
        recv_at: Time::from_millis(sent_ms + rtt_ms),
        rtt: Dur::from_millis(rtt_ms),
        one_way_delay: Dur::from_millis(rtt_ms / 2),
    }
}

fn bench_utility(c: &mut Criterion) {
    let params = UtilityParams::default();
    let obs = MiObservation {
        rate_mbps: 47.3,
        loss_rate: 0.01,
        rtt_gradient: 0.004,
        rtt_deviation: 0.0006,
        rtt_s: 0.034,
    };
    c.bench_function("utility/proteus_s", |b| {
        b.iter(|| evaluate(&Mode::Scavenger, black_box(&params), black_box(&obs)))
    });
    c.bench_function("utility/proteus_p", |b| {
        b.iter(|| evaluate(&Mode::Primary, black_box(&params), black_box(&obs)))
    });
}

fn bench_mi_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("mi_tracker");
    // One full 100-packet MI: send, roll, drain every ACK. `out` is reused
    // across iterations like the senders reuse their scratch buffer.
    group.bench_function("100pkt_interval", |b| {
        let mut out: Vec<MiStats> = Vec::new();
        b.iter(|| {
            let mut t = MiTracker::new();
            t.start_mi(Time::ZERO, 6e6);
            for i in 0..100u64 {
                t.on_sent(&SentPacket {
                    seq: i,
                    bytes: 1500,
                    sent_at: Time::from_micros(i * 300),
                });
            }
            t.start_mi(Time::from_millis(30), 6e6);
            let mut done = 0;
            for i in 0..100u64 {
                out.clear();
                t.on_ack_into(&ack(i, i * 3 / 10, 30), &mut out);
                done += out.len();
            }
            black_box(done)
        })
    });
    // Same interval with every RTT sample excluded (`keep_rtt = false`):
    // the path Proteus' per-ACK noise filter takes during a burst episode.
    group.bench_function("100pkt_interval_filtered", |b| {
        let mut out: Vec<MiStats> = Vec::new();
        b.iter(|| {
            let mut t = MiTracker::new();
            t.start_mi(Time::ZERO, 6e6);
            for i in 0..100u64 {
                t.on_sent(&SentPacket {
                    seq: i,
                    bytes: 1500,
                    sent_at: Time::from_micros(i * 300),
                });
            }
            t.start_mi(Time::from_millis(30), 6e6);
            let mut done = 0;
            for i in 0..100u64 {
                out.clear();
                t.on_ack_filtered_into(&ack(i, i * 3 / 10, 30), false, &mut out);
                done += out.len();
            }
            black_box(done)
        })
    });
    group.finish();
}

fn bench_cc_per_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_ack");
    for name in ["CUBIC", "BBR", "COPA", "LEDBAT", "Proteus-S"] {
        group.bench_function(name, |b| {
            let mut cc = proteus_bench::cc(name, 1);
            cc.on_flow_start(Time::ZERO);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                cc.on_packet_sent(
                    Time::from_millis(seq),
                    &SentPacket {
                        seq,
                        bytes: 1500,
                        sent_at: Time::from_millis(seq),
                    },
                );
                cc.on_ack(Time::from_millis(seq + 30), &ack(seq, seq, 30));
                black_box(cc.cwnd_bytes())
            })
        });
    }
    // Per-ACK cost at BDP-like occupancy: 256 packets stay in flight and
    // the controller's own MI timer fires, so seq attribution spans
    // hundreds of live packets across several pending MIs and every ~30th
    // ACK closes an interval (regression fit, utility, rate update) — the
    // shape a saturated 60 ms flow presents, where the single-outstanding
    // loop above keeps every structure trivially small.
    group.bench_function("Proteus-S-256inflight", |b| {
        let mut cc = proteus_bench::cc("Proteus-S", 1);
        cc.on_flow_start(Time::ZERO);
        let mut seq = 0u64;
        for _ in 0..256 {
            seq += 1;
            cc.on_packet_sent(
                Time::from_millis(seq),
                &SentPacket {
                    seq,
                    bytes: 1500,
                    sent_at: Time::from_millis(seq),
                },
            );
        }
        b.iter(|| {
            seq += 1;
            let now = Time::from_millis(seq);
            if cc.next_timer().is_some_and(|t| t <= now) {
                cc.on_timer(now);
            }
            cc.on_packet_sent(
                now,
                &SentPacket {
                    seq,
                    bytes: 1500,
                    sent_at: now,
                },
            );
            let old = seq - 256;
            cc.on_ack(now, &ack(old, old, 30));
            black_box(cc.cwnd_bytes())
        })
    });
    // Proteus-H with live mode switching: every 64 ACKs the sender flips
    // between hybrid and scavenger objectives and the application retunes
    // the shared threshold — the §4.4 cross-layer path, so the per-ACK cost
    // of mode churn is tracked alongside the steady modes.
    group.bench_function("Proteus-H-switching", |b| {
        let threshold = SharedThreshold::new(25.0);
        let mut cc = ProteusSender::hybrid(1, threshold.clone());
        cc.on_flow_start(Time::ZERO);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            if seq.is_multiple_of(64) {
                if (seq / 64).is_multiple_of(2) {
                    threshold.set(5.0);
                    cc.set_mode(Mode::Hybrid(threshold.clone()));
                } else {
                    threshold.set(50.0);
                    cc.set_mode(Mode::Scavenger);
                }
            }
            cc.on_packet_sent(
                Time::from_millis(seq),
                &SentPacket {
                    seq,
                    bytes: 1500,
                    sent_at: Time::from_millis(seq),
                },
            );
            cc.on_ack(Time::from_millis(seq + 30), &ack(seq, seq, 30));
            black_box(cc.rate_mbps())
        })
    });
    // Decision tracing enabled (RingSink): the same single-outstanding
    // Proteus-S loop as above, so the delta against `per_ack/Proteus-S`
    // is the full cost of recording MI-close/gate/transition events. The
    // untraced rows must not move at all — with the default NoopSink the
    // recording sites compile away (the ≤2% acceptance bound vs
    // BENCH_controller.json).
    group.bench_function("Proteus-S-traced", |b| {
        let mut cc = ProteusSender::scavenger(1).with_sink(proteus_trace::RingSink::new(
            proteus_bench::mi_trace::MI_RING_CAPACITY,
        ));
        cc.on_flow_start(Time::ZERO);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            cc.on_packet_sent(
                Time::from_millis(seq),
                &SentPacket {
                    seq,
                    bytes: 1500,
                    sent_at: Time::from_millis(seq),
                },
            );
            cc.on_ack(Time::from_millis(seq + 30), &ack(seq, seq, 30));
            black_box(cc.rate_mbps())
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim/cubic_2s_50mbps", |b| {
        b.iter(|| {
            let sc = Scenario::new(
                LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
                Dur::from_secs(2),
            )
            .flow(FlowSpec::bulk("c", Dur::ZERO, || {
                proteus_bench::cc("CUBIC", 1)
            }))
            .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
}

/// Fixed congestion window: pure ACK-clocking, no pacing events. Isolates
/// the engine's per-packet cost (heap, in-flight tracking, metrics) from
/// controller logic.
struct FixedWindow {
    cwnd: u64,
}

impl proteus_transport::CongestionControl for FixedWindow {
    fn name(&self) -> &str {
        "fixed-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &proteus_transport::LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// Fixed pacing rate: every transmission goes through the pacing gate, so
/// this shape stresses the Pace-event path of the engine.
struct FixedPaced {
    rate: f64, // bytes/sec
}

impl proteus_transport::CongestionControl for FixedPaced {
    fn name(&self) -> &str {
        "fixed-paced"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &proteus_transport::LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Engine-loop benchmarks: raw discrete-event throughput for the two flow
/// shapes every experiment reduces to (ACK-clocked and paced), clean and
/// lossy. Reported as ns per simulated run; lower is faster engine.
fn bench_engine_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let link = || LinkSpec::new(50.0, Dur::from_millis(30), 375_000);

    group.bench_function("ack_clocked_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                    Box::new(FixedWindow { cwnd: 375_000 })
                }))
                .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.bench_function("ack_clocked_lossy_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link().with_random_loss(0.01), Dur::from_secs(2))
                .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                    Box::new(FixedWindow { cwnd: 375_000 })
                }))
                .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.bench_function("paced_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(FlowSpec::bulk("p", Dur::ZERO, || {
                    Box::new(FixedPaced { rate: 5_000_000.0 }) // 40 Mbps
                }))
                .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.bench_function("paced_lossy_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link().with_random_loss(0.01), Dur::from_secs(2))
                .flow(FlowSpec::bulk("p", Dur::ZERO, || {
                    Box::new(FixedPaced { rate: 5_000_000.0 })
                }))
                .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.finish();
}

/// Wire-path benchmarks: the per-packet `QueueDrain` → `Delivery` →
/// `AckArrival` chain in isolation, fused against the staged reference on
/// the same scenarios (ACK-clocked and paced — the two shapes every
/// experiment reduces to), plus a faulted scenario where `Fused` must
/// transparently fall back to staged, pricing the gate itself. The
/// fused/staged delta is the tentpole win: three scheduler push/pop pairs
/// per packet collapsed into one wire-ring slot with three cursors.
fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/wire");
    let link = || LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let win = || FlowSpec::bulk("w", Dur::ZERO, || Box::new(FixedWindow { cwnd: 375_000 }));
    let paced = || {
        FlowSpec::bulk("p", Dur::ZERO, || {
            Box::new(FixedPaced { rate: 5_000_000.0 }) // 40 Mbps
        })
    };

    for (name, path) in [
        ("ack_clocked_fused_2s", WirePath::Fused),
        ("ack_clocked_staged_2s", WirePath::Staged),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sc = Scenario::new(link(), Dur::from_secs(2))
                    .flow(win())
                    .with_seed(7)
                    .with_wire_path(path);
                black_box(run(sc).flows[0].bytes_acked)
            })
        });
    }
    for (name, path) in [
        ("paced_fused_2s", WirePath::Fused),
        ("paced_staged_2s", WirePath::Staged),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sc = Scenario::new(link(), Dur::from_secs(2))
                    .flow(paced())
                    .with_seed(7)
                    .with_wire_path(path);
                black_box(run(sc).flows[0].bytes_acked)
            })
        });
    }
    // Fallback price: Fused selected but a fault schedule forces staged
    // execution — should cost the same as explicit Staged on this scenario.
    group.bench_function("faulted_fallback_2s", |b| {
        b.iter(|| {
            let faults = FaultSchedule::new()
                .bandwidth_step(Dur::from_millis(500), 25.0)
                .with_burst_loss(GilbertElliott::default());
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(win())
                .with_seed(7)
                .with_faults(faults)
                .with_wire_path(WirePath::Fused);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.finish();
}

/// Fault-injection path benchmarks: the ACK-clocked 2 s scenario of the
/// `engine` group run (a) with no schedule at all, (b) with an *empty*
/// `FaultSchedule` (normalized away at scenario build time, so it must cost
/// nothing), and (c) with a populated schedule exercising every fault class
/// at once — bandwidth steps, Gilbert–Elliott burst loss, bounded
/// reordering and ACK-compression episodes. The (c)−(a) delta is the price
/// of the fault branches in `Link::transmit` plus the injected work itself.
fn bench_fault_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault");
    let link = || LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let flow = || FlowSpec::bulk("w", Dur::ZERO, || Box::new(FixedWindow { cwnd: 375_000 }));

    group.bench_function("clean_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(flow())
                .with_seed(7);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.bench_function("empty_schedule_2s", |b| {
        b.iter(|| {
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(flow())
                .with_seed(7)
                .with_faults(FaultSchedule::new());
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.bench_function("populated_2s", |b| {
        b.iter(|| {
            let faults = FaultSchedule::new()
                .bandwidth_step(Dur::from_millis(500), 25.0)
                .bandwidth_step(Dur::from_millis(1000), 50.0)
                .outage(Dur::from_millis(1400), Dur::from_millis(100))
                .with_burst_loss(GilbertElliott::default())
                .with_reorder(ReorderConfig {
                    prob: 0.01,
                    max_extra: Dur::from_millis(2),
                })
                .with_ack_compression(AckCompression {
                    every: Dur::from_millis(500),
                    hold: Dur::from_millis(40),
                });
            let sc = Scenario::new(link(), Dur::from_secs(2))
                .flow(flow())
                .with_seed(7)
                .with_faults(faults);
            black_box(run(sc).flows[0].bytes_acked)
        })
    });
    group.finish();
}

/// Population-scale benchmarks for the timing-wheel scheduler (DESIGN.md
/// §4c), in two layers:
///
/// * `sched_{wheel,heap}_{1k,10k}` — steady-state pop-one/push-one through
///   the `EventQueue` facade with N events pending, deltas cycling through
///   every wheel region (same slot, low levels, overflow). This is the
///   O(1)-vs-O(log n) comparison in isolation: per-operation cost, so the
///   wheel's advantage should *grow* from 1k to 10k.
/// * `e2e_churn_{wheel,heap}` — a full churning simulation (250 warm-start
///   paced flows, Poisson arrivals, 4 s), identical except for the
///   scheduler, so the delta is the wheel's end-to-end win on the workload
///   the `scale` campaign runs at 40× the size.
fn bench_scale(c: &mut Criterion) {
    use proteus_netsim::sched::EventQueue;
    use proteus_netsim::{ChurnClass, ChurnSpec, Scheduler};

    let mut group = c.benchmark_group("scale");
    // Delta mix matching the engine's event-horizon distribution on a
    // churning 10k-flow link: mostly pacing/serialization gaps (sub-ms),
    // a band of delivery/ACK horizons (one-way delay ~15 ms) and CC
    // timers (~MI length), and one RTO-class outlier (300 ms) per 16 —
    // RTOs are the only long timers and the one-live-event rule keeps
    // them rare.
    const DELTAS: [u64; 16] = [
        0,
        300,
        800,
        1_500,
        3_000,
        8_000,
        12_000,
        30_000,
        90_000,
        200_000,
        400_000,
        900_000,
        2_500_000,
        15_000_000,
        30_000_000,
        300_000_000,
    ];
    for (n, wheel_label, heap_label) in [
        (1_000usize, "sched_wheel_1k", "sched_heap_1k"),
        (10_000, "sched_wheel_10k", "sched_heap_10k"),
    ] {
        for (label, kind) in [
            (wheel_label, Scheduler::Wheel),
            (heap_label, Scheduler::Heap),
        ] {
            group.bench_function(label, |b| {
                let mut q: EventQueue<u64> = EventQueue::new(kind, n);
                let mut seq = 0u64;
                for i in 0..n {
                    seq += 1;
                    q.push(Time::from_nanos(DELTAS[i % DELTAS.len()]), seq, seq);
                }
                b.iter(|| {
                    let (at, _, v) = q.pop().expect("queue holds n events");
                    seq += 1;
                    let delta = DELTAS[(seq as usize) % DELTAS.len()];
                    q.push(Time::from_nanos(at.as_nanos() + delta), seq, seq);
                    black_box(v)
                })
            });
        }
    }

    for (label, kind) in [
        ("e2e_churn_wheel", Scheduler::Wheel),
        ("e2e_churn_heap", Scheduler::Heap),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let classes = vec![ChurnClass::new(
                    "paced",
                    1.0,
                    proteus_transport::factory(|_| FixedPaced { rate: 125_000.0 }),
                )];
                let sc = Scenario::new(
                    LinkSpec::new(250.0, Dur::from_millis(30), 1_875_000),
                    Dur::from_secs(4),
                )
                .with_churn(ChurnSpec::new(50.0, Dur::from_secs(5), classes).with_initial(250))
                .with_rtt_stride(64)
                .with_throughput_bin(Dur::from_secs(1))
                .with_scheduler(kind)
                .with_seed(7);
                black_box(run(sc).flows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_utility,
    bench_mi_tracker,
    bench_cc_per_ack,
    bench_simulator,
    bench_engine_loop,
    bench_wire,
    bench_fault_path,
    bench_scale
);
criterion_main!(benches);
