//! The `stress` robustness campaign: deterministic, invariant-clean, and
//! pinned against a committed golden report.
//!
//! Everything env-dependent lives in the single `#[test]` below —
//! `PROTEUS_RESULTS_DIR` is process-global, so a second env-touching test in
//! this binary would race it. The pure ACK-compression test at the bottom
//! touches no environment and may run concurrently.

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::stress;
use proteus_bench::RunCfg;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Runs the quick campaign twice (single-threaded, then on 4 workers) and
/// checks: byte-identical reports, all invariants pass, and the report
/// matches `results/golden/stress_quick.txt`.
#[test]
fn stress_campaign_is_deterministic_and_invariants_hold() {
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("stress_robustness");
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("PROTEUS_RESULTS_DIR", &scratch);

    // No cache: both runs must actually simulate, or the byte-identity
    // check would just compare a cache entry with itself.
    let cfg = RunCfg {
        cache: false,
        ..RunCfg::quick()
    };
    let serial = stress::run_with_outcome(cfg);
    let parallel = stress::run_with_outcome(RunCfg { jobs: 4, ..cfg });
    std::env::remove_var("PROTEUS_RESULTS_DIR");

    assert_eq!(
        serial.report, parallel.report,
        "stress report differs between --jobs 1 and --jobs 4 runs"
    );
    assert!(
        serial.all_pass(),
        "stress invariants failed:\n{:#?}",
        serial.failures()
    );
    // The campaign wrote its report files where the docs promise.
    assert!(scratch.join("stress/robustness.txt").is_file());
    assert!(scratch.join("stress/invariants.csv").is_file());

    // Golden pin: quick-mode stress must reproduce the committed report
    // byte for byte. Re-bless with
    // `PROTEUS_BLESS=1 cargo test -p proteus-bench --test stress_robustness`.
    let golden_path = repo_path("results/golden/stress_quick.txt");
    if std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty()) {
        fs::create_dir_all(golden_path.parent().unwrap()).expect("create results/golden");
        fs::write(&golden_path, &serial.report).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("missing results/golden/stress_quick.txt — bless it with PROTEUS_BLESS=1");
    assert_eq!(
        serial.report, golden,
        "quick-mode stress no longer matches results/golden/stress_quick.txt. \
         If intentional: PROTEUS_BLESS=1 cargo test -p proteus-bench --test \
         stress_robustness, regenerate results/stress with `repro --no-cache \
         stress`, and commit both."
    );
}

/// The pathology→mechanism link the campaign's `ack-filter-trips` invariant
/// summarizes, asserted directly on trace events: injected ACK compression
/// makes the §5 per-ACK burst filter start dropping RTT samples.
#[test]
fn ack_compression_trips_the_per_ack_filter() {
    use proteus_bench::cc_traced;
    use proteus_netsim::{run, AckCompression, FaultSchedule, FlowSpec, LinkSpec, Scenario};
    use proteus_trace::EventKind;
    use proteus_transport::Dur;

    let mk = |faults: FaultSchedule| {
        run(Scenario::new(LinkSpec::paper_default(), Dur::from_secs(20))
            .flow(FlowSpec::bulk("Proteus-P", Dur::ZERO, || {
                cc_traced("Proteus-P", 9)
            }))
            .with_seed(9)
            .with_trace(Dur::from_millis(100))
            .with_faults(faults))
    };
    let trips = |res: &proteus_netsim::SimResult| {
        res.decisions
            .iter()
            .filter(|fe| matches!(fe.event.kind, EventKind::AckFilter(a) if a.dropping))
            .count()
    };

    let clean = mk(FaultSchedule::new());
    let compressed = mk(FaultSchedule::new().with_ack_compression(AckCompression {
        every: Dur::from_secs(2),
        hold: Dur::from_millis(60),
    }));

    assert!(compressed.fault_stats.compressed_acks > 100);
    assert!(
        trips(&compressed) >= 1,
        "ACK compression did not trip the §5 per-ACK filter; decisions: {} events",
        compressed.decisions.len()
    );
    // The filter engages *because of* the injected pathology: the same
    // run without faults stays quiet.
    assert_eq!(trips(&clean), 0, "filter tripped on a clean path");
}
