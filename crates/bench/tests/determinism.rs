//! Campaign determinism and cache behaviour, end to end with real
//! simulation jobs.
//!
//! The runner's contract is that results are a pure function of the job
//! set: the same campaign must produce byte-identical reports whether it
//! runs on one worker or eight, and a warm cache must short-circuit every
//! simulation.

use std::fs;
use std::path::PathBuf;

use proteus_bench::report::Table;
use proteus_bench::runner::{decode_single, link_tag, pair_job, single_job, Traces};
use proteus_netsim::LinkSpec;
use proteus_runner::{Campaign, CampaignOpts, JobKey, SimJob};
use proteus_transport::Dur;

/// A small but real job grid: 2 links × 2 single flows + 2 pairs.
fn job_grid(seed: u64) -> Vec<SimJob> {
    let links = [
        LinkSpec::new(20.0, Dur::from_millis(20), 100_000),
        LinkSpec::new(50.0, Dur::from_millis(30), 75_000),
    ];
    let mut jobs = Vec::new();
    for link in links {
        let tag = link_tag(&link);
        for proto in ["CUBIC", "BBR"] {
            jobs.push(single_job(
                "det",
                &tag,
                proto,
                link,
                8.0,
                seed,
                Traces::off(),
            ));
        }
        jobs.push(pair_job(
            "det",
            &tag,
            "CUBIC",
            "LEDBAT",
            link,
            12.0,
            seed,
            Traces::off(),
        ));
    }
    jobs
}

/// Runs the grid on `workers` threads (no cache) and returns
/// `(keys, outputs)` in submission order.
fn run_grid(workers: usize, seed: u64) -> (Vec<JobKey>, Vec<String>) {
    let mut camp = Campaign::new(
        "determinism",
        CampaignOpts {
            jobs: workers,
            ..CampaignOpts::default()
        },
    );
    let mut keys = Vec::new();
    for job in job_grid(seed) {
        keys.push(job.key());
        camp.push(job);
    }
    (keys, camp.run().outputs)
}

/// Renders the single-flow outputs as the kind of CSV report the
/// experiments write.
fn csv_report(outputs: &[String]) -> String {
    let mut t = Table::new("determinism", &["job", "tail_mbps", "p95_rtt_s", "loss"]);
    for (i, out) in outputs.iter().enumerate().filter(|(i, _)| i % 3 != 2) {
        let s = decode_single(out);
        t.row(vec![
            i.to_string(),
            format!("{:?}", s.tail_mbps),
            format!("{:?}", s.p95_rtt_s),
            format!("{:?}", s.loss_rate),
        ]);
    }
    t.to_csv()
}

#[test]
fn parallel_campaign_matches_serial_bit_for_bit() {
    let (keys1, out1) = run_grid(1, 42);
    let (keys8, out8) = run_grid(8, 42);

    // Identical cache keys, independent of worker count.
    assert_eq!(keys1, keys8);
    // Byte-identical payloads, in submission order.
    assert_eq!(out1, out8);
    // And therefore byte-identical CSV reports.
    assert_eq!(csv_report(&out1), csv_report(&out8));
}

#[test]
fn warm_cache_skips_every_simulation() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "det-cache-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = fs::remove_dir_all(&dir);

    let opts = || CampaignOpts {
        jobs: 2,
        cache: Some(dir.clone()),
        ..CampaignOpts::default()
    };

    let mut cold = Campaign::new("warm", opts());
    for job in job_grid(7) {
        cold.push(job);
    }
    let n = cold.len();
    let cold = cold.run();
    assert_eq!(cold.stats.executed, n);
    assert_eq!(cold.stats.cached, 0);

    let mut warm = Campaign::new("warm", opts());
    for job in job_grid(7) {
        warm.push(job);
    }
    let warm = warm.run();
    assert_eq!(
        warm.stats.executed, 0,
        "warm cache must skip all simulation"
    );
    assert_eq!(warm.stats.cached, n);
    assert_eq!(warm.outputs, cold.outputs);

    let _ = fs::remove_dir_all(&dir);
}
