//! Golden decision-trace pins: the structured traces `--trace-mi` records
//! must stay byte-stable for deterministic scenarios.
//!
//! Two pins, both under `results/golden/`:
//!
//! * `decision_trace_tiny.jsonl` / `decision_trace_tiny.trace.json` — the
//!   complete JSONL and Chrome exports of a tiny two-flow scenario (CUBIC
//!   vs a traced Proteus-S on a 20 Mbps dumbbell, 4 s). Small enough to
//!   read in review, it pins the whole event vocabulary: gate verdicts,
//!   MI closes with the utility breakdown, rate transitions and probe
//!   outcomes.
//! * `fig2_quick_decision.jsonl` — the MI-close and mode-switch lines of
//!   the quick-mode Fig.-2 decision companion (`repro --quick --trace-mi
//!   fig2`), the ISSUE's acceptance scenario. Filtered to the decision
//!   lines so the pin tracks *what the controller decided*, not incidental
//!   event volume.
//!
//! When a change intentionally shifts controller numerics (it will also
//! trip `golden_outputs.rs`), re-bless with:
//!
//! ```text
//! PROTEUS_BLESS=1 cargo test -p proteus-bench --test golden_trace
//! ```
//!
//! and commit the regenerated files, explaining the delta (see
//! EXPERIMENTS.md, "Golden pins").

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::fig2;
use proteus_bench::{cc, cc_traced, TRACE_EVERY};
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario, SimResult};
use proteus_trace::export::{to_chrome_trace, to_jsonl};
use proteus_transport::Dur;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

fn blessing() -> bool {
    std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty())
}

/// Compares `fresh` against the committed golden `name`, or rewrites it
/// under `PROTEUS_BLESS=1`.
fn check_or_bless(name: &str, fresh: &str) {
    let path = golden_dir().join(name);
    if blessing() {
        fs::create_dir_all(golden_dir()).expect("create results/golden");
        fs::write(&path, fresh).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {name} ({e}) — bless with PROTEUS_BLESS=1 \
             cargo test -p proteus-bench --test golden_trace"
        )
    });
    assert!(
        golden == *fresh,
        "decision trace no longer matches results/golden/{name}.\n\
         If the change is intentional: PROTEUS_BLESS=1 cargo test -p \
         proteus-bench --test golden_trace, and explain the delta in the \
         commit. First differing line:\n  golden: {:?}\n  fresh:  {:?}",
        golden
            .lines()
            .zip(fresh.lines())
            .find(|(a, b)| a != b)
            .map(|(a, _)| a)
            .unwrap_or("<line count differs>"),
        golden
            .lines()
            .zip(fresh.lines())
            .find(|(a, b)| a != b)
            .map(|(_, b)| b)
            .unwrap_or("<line count differs>"),
    );
}

fn exports(res: &SimResult) -> (String, String) {
    let names: Vec<&str> = res.flows.iter().map(|f| f.name.as_str()).collect();
    (
        to_jsonl(&res.decisions, &names),
        to_chrome_trace(&res.decisions, &names),
    )
}

/// Keeps only the controller-decision lines the acceptance criterion pins.
fn decision_lines(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines() {
        if line.contains("\"event\":\"mi_close\"") || line.contains("\"event\":\"mode_switch\"") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn tiny_deterministic_decision_trace_matches_golden() {
    let link = LinkSpec::new(20.0, Dur::from_millis(40), 200_000);
    let sc = Scenario::new(link, Dur::from_secs_f64(4.0))
        .flow(FlowSpec::bulk("CUBIC", Dur::ZERO, || cc("CUBIC", 40)))
        .flow(FlowSpec::bulk("Proteus-S", Dur::from_secs(1), || {
            cc_traced("Proteus-S", 41)
        }))
        .with_seed(7)
        .with_trace(TRACE_EVERY);
    let res = run(sc);
    let (jsonl, chrome) = exports(&res);
    assert!(
        jsonl.contains("\"event\":\"mi_close\""),
        "tiny scenario produced no MI closes"
    );
    check_or_bless("decision_trace_tiny.jsonl", &jsonl);
    check_or_bless("decision_trace_tiny.trace.json", &chrome);
}

#[test]
fn quick_fig2_decision_trace_matches_golden() {
    // The same scenario `repro --quick --trace-mi fig2` exports (30 s quick
    // horizon, seed 1).
    let res = run(fig2::decision_scenario(30.0, 1));
    let (jsonl, chrome) = exports(&res);

    let pinned = decision_lines(&jsonl);
    assert!(!pinned.is_empty(), "companion produced no decision lines");
    check_or_bless("fig2_quick_decision.jsonl", &pinned);

    // The Chrome export is derived from the same events: one "X" span per
    // MI close, and it must stay loadable (balanced JSON object).
    let mi_closes = pinned
        .lines()
        .filter(|l| l.contains("\"event\":\"mi_close\""))
        .count();
    assert_eq!(chrome.matches("\"ph\":\"X\"").count(), mi_closes);
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert!(chrome.starts_with("{\"displayTimeUnit\""));
}
