//! The `rtc` real-time-media campaign: deterministic, invariant-clean, and
//! pinned against a committed golden report.
//!
//! Everything env-dependent lives in the single `#[test]` below —
//! `PROTEUS_RESULTS_DIR` is process-global, so a second env-touching test in
//! this binary would race it.

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::rtc;
use proteus_bench::RunCfg;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Runs the quick campaign twice (single-threaded, then on 4 workers) and
/// checks: byte-identical reports, all invariants pass, and the report
/// matches `results/golden/rtc_quick.txt`.
#[test]
fn rtc_campaign_is_deterministic_and_invariants_hold() {
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("rtc_invariants");
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("PROTEUS_RESULTS_DIR", &scratch);

    // No cache: both runs must actually simulate, or the byte-identity
    // check would just compare a cache entry with itself.
    let cfg = RunCfg {
        cache: false,
        ..RunCfg::quick()
    };
    let serial = rtc::run_with_outcome(cfg);
    let parallel = rtc::run_with_outcome(RunCfg { jobs: 4, ..cfg });
    std::env::remove_var("PROTEUS_RESULTS_DIR");

    assert_eq!(
        serial.report, parallel.report,
        "rtc report differs between --jobs 1 and --jobs 4 runs"
    );
    assert!(
        serial.all_pass(),
        "rtc invariants failed:\n{:#?}",
        serial.failures()
    );
    // The campaign wrote its report files where the docs promise.
    assert!(scratch.join("rtc/report.txt").is_file());
    assert!(scratch.join("rtc/harm.csv").is_file());
    assert!(scratch.join("rtc/invariants.csv").is_file());

    // Golden pin: quick-mode rtc must reproduce the committed report byte
    // for byte. Re-bless with
    // `PROTEUS_BLESS=1 cargo test -p proteus-bench --test rtc_invariants`.
    let golden_path = repo_path("results/golden/rtc_quick.txt");
    if std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty()) {
        fs::create_dir_all(golden_path.parent().unwrap()).expect("create results/golden");
        fs::write(&golden_path, &serial.report).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("missing results/golden/rtc_quick.txt — bless it with PROTEUS_BLESS=1");
    assert_eq!(
        serial.report, golden,
        "quick-mode rtc no longer matches results/golden/rtc_quick.txt. \
         If intentional: PROTEUS_BLESS=1 cargo test -p proteus-bench --test \
         rtc_invariants, regenerate results/rtc with `repro --no-cache rtc`, \
         and commit both."
    );
}
