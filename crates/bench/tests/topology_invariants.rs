//! The `topology` multi-bottleneck campaign: deterministic,
//! invariant-clean, and pinned against a committed golden report.
//!
//! Everything env-dependent lives in the single `#[test]` below —
//! `PROTEUS_RESULTS_DIR` is process-global, so a second env-touching test in
//! this binary would race it.

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::topology;
use proteus_bench::RunCfg;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Runs the quick campaign twice (single-threaded, then on 4 workers) and
/// checks: byte-identical reports, all invariants pass, and the report
/// matches `results/golden/topology_quick.txt`.
#[test]
fn topology_campaign_is_deterministic_and_invariants_hold() {
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("topology_invariants");
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("PROTEUS_RESULTS_DIR", &scratch);

    // No cache: both runs must actually simulate, or the byte-identity
    // check would just compare a cache entry with itself.
    let cfg = RunCfg {
        cache: false,
        ..RunCfg::quick()
    };
    let serial = topology::run_with_outcome(cfg);
    let parallel = topology::run_with_outcome(RunCfg { jobs: 4, ..cfg });
    std::env::remove_var("PROTEUS_RESULTS_DIR");

    assert_eq!(
        serial.report, parallel.report,
        "topology report differs between --jobs 1 and --jobs 4 runs"
    );
    assert!(
        serial.all_pass(),
        "topology invariants failed:\n{:#?}",
        serial.failures()
    );
    // The campaign wrote its report files where the docs promise.
    assert!(scratch.join("topology/report.txt").is_file());
    assert!(scratch.join("topology/invariants.csv").is_file());

    // Golden pin: quick-mode topology must reproduce the committed report
    // byte for byte. Re-bless with
    // `PROTEUS_BLESS=1 cargo test -p proteus-bench --test topology_invariants`.
    let golden_path = repo_path("results/golden/topology_quick.txt");
    if std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty()) {
        fs::create_dir_all(golden_path.parent().unwrap()).expect("create results/golden");
        fs::write(&golden_path, &serial.report).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("missing results/golden/topology_quick.txt — bless it with PROTEUS_BLESS=1");
    assert_eq!(
        serial.report, golden,
        "quick-mode topology no longer matches results/golden/topology_quick.txt. \
         If intentional: PROTEUS_BLESS=1 cargo test -p proteus-bench --test \
         topology_invariants, regenerate results/topology with `repro --no-cache \
         topology`, and commit both."
    );
}
