//! Golden-output pin: the quick-mode `tune` search trajectory must
//! reproduce `results/golden/tune_quick_*` byte for byte.
//!
//! The tuner is deterministic end to end — grid enumeration, GA draws,
//! simulation, ranking, rendering — so its quick leaderboard doubles as a
//! wide numeric regression net: any change to the controller, the engine
//! or the search policy shifts it and fails here instead of silently
//! re-ranking the published winner.
//!
//! When a change is *supposed* to shift the numbers, re-bless with
//! `PROTEUS_BLESS=1 cargo test -p proteus-bench --test golden_tune` and
//! commit the updated goldens alongside the change.

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::registry;
use proteus_bench::RunCfg;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn quick_tune_matches_golden() {
    // Scratch results dir: never clobber the committed reports, and never
    // read the shared cache (a warm cache would mask stale numerics).
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_tune");
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("PROTEUS_RESULTS_DIR", &scratch);

    let tune = registry()
        .into_iter()
        .find(|e| e.id == "tune")
        .expect("tune registered");
    let report = (tune.run)(RunCfg {
        cache: false,
        ..RunCfg::quick()
    });
    std::env::remove_var("PROTEUS_RESULTS_DIR");
    assert!(
        report.contains("maximize scav_util"),
        "tune report lost its objective line:\n{report}"
    );

    let golden_dir = repo_path("results/golden");
    let bless = std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty());
    if bless {
        fs::create_dir_all(&golden_dir).expect("create results/golden");
    }

    let mut mismatches = Vec::new();
    for name in ["leaderboard.csv", "frontier.csv", "best_config.json"] {
        let fresh = fs::read_to_string(scratch.join("tune").join(name))
            .unwrap_or_else(|e| panic!("tune did not write {name}: {e}"));
        let golden_path = golden_dir.join(format!("tune_quick_{name}"));
        if bless {
            fs::write(&golden_path, &fresh).expect("write golden");
            continue;
        }
        match fs::read_to_string(&golden_path) {
            Ok(golden) if golden == fresh => {}
            Ok(_) => mismatches.push(format!("{name}: differs from {golden_path:?}")),
            Err(e) => mismatches.push(format!("{name}: missing golden ({e})")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "quick-mode tune no longer matches the committed goldens.\n  {}\n\
         If the change is intentional: PROTEUS_BLESS=1 cargo test -p \
         proteus-bench --test golden_tune, then commit the updated \
         results/golden/tune_quick_* files.",
        mismatches.join("\n  ")
    );
}
