//! Golden-output pin: quick-mode Fig. 2 must reproduce `results/golden/`
//! byte for byte.
//!
//! The committed `results/` are full-fidelity runs of the same code paths,
//! so any numerics change that alters them also alters this quick run —
//! and fails here loudly instead of leaving stale committed reports behind.
//! Fig. 2 is the pin because it exercises the widest numeric surface:
//! the discrete-event engine, CUBIC cross-traffic, Welford deviations and
//! per-window regression fits.
//!
//! When a change is *supposed* to shift the numbers:
//!
//! 1. re-bless the golden: `PROTEUS_BLESS=1 cargo test -p proteus-bench
//!    --test golden_outputs`,
//! 2. regenerate the committed reports: `cargo run --release -p
//!    proteus-bench --bin repro -- --no-cache all`,
//! 3. commit both, explaining the delta (see DESIGN.md §4d for the
//!    streaming-regression tolerance that motivated this guard).

use std::fs;
use std::path::PathBuf;

use proteus_bench::experiments::registry;
use proteus_bench::RunCfg;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn quick_fig2_matches_golden() {
    // Redirect report side-effects to a scratch dir: this test must never
    // overwrite the committed full-fidelity `results/` with quick runs.
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_fig2");
    let _ = fs::remove_dir_all(&scratch);
    std::env::set_var("PROTEUS_RESULTS_DIR", &scratch);

    let fig2 = registry()
        .into_iter()
        .find(|e| e.id == "fig2")
        .expect("fig2 registered");
    // No cache: a warm cache would serve pre-change outputs and mask
    // exactly the staleness this test exists to catch.
    let report = (fig2.run)(RunCfg {
        cache: false,
        ..RunCfg::quick()
    });
    std::env::remove_var("PROTEUS_RESULTS_DIR");

    let golden_dir = repo_path("results/golden");
    let bless = std::env::var_os("PROTEUS_BLESS").is_some_and(|v| !v.is_empty());
    if bless {
        fs::create_dir_all(&golden_dir).expect("create results/golden");
    }

    // The text report plus every CSV the experiment wrote, under stable
    // names (fig2_quick.txt, fig2_quick_1.csv, ...).
    let mut artifacts = vec![("fig2_quick.txt".to_string(), report)];
    let mut csvs: Vec<_> = fs::read_dir(&scratch)
        .expect("scratch dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
        .map(|e| e.path())
        .collect();
    csvs.sort();
    assert!(!csvs.is_empty(), "fig2 wrote no CSV tables to {scratch:?}");
    for path in csvs {
        let name = path.file_name().expect("file name").to_string_lossy();
        let golden_name = name.replace("fig2", "fig2_quick");
        let content = fs::read_to_string(&path).expect("read scratch csv");
        artifacts.push((golden_name, content));
    }

    let mut mismatches = Vec::new();
    for (name, fresh) in &artifacts {
        let golden_path = golden_dir.join(name);
        if bless {
            fs::write(&golden_path, fresh).expect("write golden");
            continue;
        }
        match fs::read_to_string(&golden_path) {
            Ok(golden) if &golden == fresh => {}
            Ok(_) => mismatches.push(format!("{name}: differs from results/golden/{name}")),
            Err(e) => mismatches.push(format!("{name}: missing golden ({e})")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "quick-mode Fig. 2 no longer matches the committed goldens — the \
         committed full-fidelity results/ are stale too.\n  {}\n\
         If the change is intentional: PROTEUS_BLESS=1 cargo test -p \
         proteus-bench --test golden_outputs, then regenerate results/ with \
         `cargo run --release -p proteus-bench --bin repro -- --no-cache all` \
         and commit both.",
        mismatches.join("\n  ")
    );
}
