//! Ad-hoc scenario runner: compose arbitrary flow mixes on a dumbbell from
//! the command line.
//!
//! ```text
//! proteus-sim [options] --flow <PROTO[@START_S]> [--flow ...]
//!
//!   --bw <Mbps>        bottleneck bandwidth      (default 50)
//!   --rtt <ms>         base RTT                  (default 30)
//!   --links <N>        chain of N identical bottlenecks (default 1); the
//!                      base RTT is split evenly so the end-to-end path RTT
//!                      stays at --rtt, and every flow crosses all N links.
//!                      Fault flags keep targeting the first link.
//!   --buffer <KB|xBDP> bottleneck buffer         (default 2xBDP; "375" = KB)
//!   --loss <rate>      random loss, e.g. 0.01    (default 0)
//!   --wifi             WiFi-style latency noise
//!   --secs <s>         duration                  (default 60)
//!   --seed <n>         RNG seed                  (default 1)
//!   --churn <a,l>      Poisson flow churn: `a` arrivals/sec, mean
//!                      lifetime `l` seconds; arrivals draw uniformly from
//!                      the --flow protocol list (equal-weight classes)
//!   --population <N>   N long-lived background flows of the same class
//!                      mix, started at t=0 (with --churn: the warm-start
//!                      population)
//!   --media <FPS,L1:L2:...>
//!                      make the FIRST --flow a frame-paced media source:
//!                      FPS frames/sec on the ascending bitrate ladder
//!                      L1:L2:... (Mbps). The flow turns reliable and
//!                      app-limited; per-frame latency stats are printed
//!                      after the flow table (see SCENARIOS.md "Media
//!                      sources")
//!   --timeline         print 5-second per-flow throughput bins
//!   --trace <file>     write per-flow telemetry JSONL (100 ms samples)
//!   --trace-mi         record structured decision traces (see OBSERVABILITY.md)
//!   --trace-format <f> decision-trace format: jsonl, chrome or both
//!   --trace-out <dir>  decision-trace directory (default results/trace-mi)
//!
//! Fault injection (see SCENARIOS.md; all flags repeatable where sensible):
//!
//!   --bw-step <T:MBPS>      set bottleneck bandwidth to MBPS at T seconds
//!   --rtt-step <T:MS>       set base RTT to MS at T seconds (route change)
//!   --outage <T:LEN>        link down at T seconds for LEN seconds
//!   --burst-loss <PE:PX:PB> Gilbert-Elliott loss: p_enter, p_exit, loss_bad
//!   --reorder <PROB:MS>     delay PROB of packets by up to MS past FIFO order
//!   --ack-comp <EVERY:HOLD> hold ACKs for HOLD ms roughly every EVERY seconds
//! ```
//!
//! Protocols: CUBIC, Reno, Vegas, BBR, BBR-S, COPA, LEDBAT, LEDBAT-25,
//! Proteus-P, Proteus-S, PCC-Vivace, PCC-Allegro, `probe:<mbps>`.
//!
//! Example — the paper's headline scenario:
//!
//! ```text
//! proteus-sim --bw 50 --rtt 30 --flow BBR --flow Proteus-S@5 --timeline
//! ```
//!
//! Example — a 30 fps call (Cross) with a Proteus-S scavenger underneath:
//!
//! ```text
//! proteus-sim --media 30,0.35:0.75:1.5:2.5 --flow Cross --flow Proteus-S@5
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use proteus_apps::{MediaSource, MediaSpec};
use proteus_bench::{cc, cc_traced, mi_trace, trace_jsonl, MiTraceSink, TraceFormat, TRACE_EVERY};
use proteus_netsim::{
    run, AckCompression, ChurnClass, ChurnSpec, FaultSchedule, FlowSpec, GilbertElliott, LinkSpec,
    NoiseConfig, ReorderConfig, Scenario, Topology,
};
use proteus_transport::{Dur, Time};

struct Args {
    bw: f64,
    rtt_ms: u64,
    links: usize,
    buffer: String,
    loss: f64,
    wifi: bool,
    secs: f64,
    seed: u64,
    timeline: bool,
    trace: Option<String>,
    trace_mi: bool,
    trace_format: TraceFormat,
    flows: Vec<(String, f64)>,
    /// `(fps, bitrate ladder in Mbps)` for the first flow, from `--media`.
    media: Option<(f64, Vec<f64>)>,
    faults: FaultSchedule,
    /// `(arrivals_per_sec, mean_lifetime_secs)`.
    churn: Option<(f64, f64)>,
    population: usize,
}

/// Splits `spec` into exactly `n` colon-separated floats.
fn floats(spec: &str, n: usize, what: &str) -> Result<Vec<f64>, String> {
    let vals: Result<Vec<f64>, _> = spec.split(':').map(str::parse).collect();
    match vals {
        Ok(v) if v.len() == n => Ok(v),
        _ => Err(format!(
            "{what} expects {n} colon-separated numbers, got {spec:?}"
        )),
    }
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        bw: 50.0,
        rtt_ms: 30,
        links: 1,
        buffer: "2xBDP".into(),
        loss: 0.0,
        wifi: false,
        secs: 60.0,
        seed: 1,
        timeline: false,
        trace: None,
        trace_mi: false,
        trace_format: TraceFormat::Both,
        flows: Vec::new(),
        media: None,
        faults: FaultSchedule::new(),
        churn: None,
        population: 0,
    };
    let mut it = env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, what: &str| {
        it.next().ok_or(format!("{what} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bw" => a.bw = need(&mut it, "--bw")?.parse().map_err(|e| format!("{e}"))?,
            "--rtt" => {
                a.rtt_ms = need(&mut it, "--rtt")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--links" => {
                a.links = need(&mut it, "--links")?
                    .parse()
                    .map_err(|e| format!("bad --links: {e}"))?;
                if a.links == 0 {
                    return Err("--links needs at least 1".into());
                }
            }
            "--buffer" => a.buffer = need(&mut it, "--buffer")?,
            "--loss" => {
                a.loss = need(&mut it, "--loss")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--wifi" => a.wifi = true,
            "--secs" => {
                a.secs = need(&mut it, "--secs")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--seed" => {
                a.seed = need(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--churn" => {
                let v = need(&mut it, "--churn")?;
                let (arr, life) = v.split_once(',').ok_or(format!(
                    "--churn expects ARRIVALS,LIFETIME (e.g. 50,10), got {v:?}"
                ))?;
                let arrivals: f64 = arr
                    .parse()
                    .map_err(|e| format!("bad --churn arrival rate: {e}"))?;
                let lifetime: f64 = life
                    .parse()
                    .map_err(|e| format!("bad --churn mean lifetime: {e}"))?;
                if !arrivals.is_finite()
                    || arrivals < 0.0
                    || !lifetime.is_finite()
                    || lifetime <= 0.0
                {
                    return Err(format!(
                        "--churn needs arrivals >= 0 and lifetime > 0, got {v:?}"
                    ));
                }
                a.churn = Some((arrivals, lifetime));
            }
            "--population" => {
                a.population = need(&mut it, "--population")?
                    .parse()
                    .map_err(|e| format!("bad --population: {e}"))?
            }
            "--media" => {
                let v = need(&mut it, "--media")?;
                let (fps, ladder) = v.split_once(',').ok_or(format!(
                    "--media expects FPS,L1:L2:... (e.g. 30,0.35:0.75:1.5:2.5), got {v:?}"
                ))?;
                let fps: f64 = fps.parse().map_err(|e| format!("bad --media fps: {e}"))?;
                let ladder: Vec<f64> = ladder
                    .split(':')
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --media ladder: {e}"))?;
                if !fps.is_finite() || fps <= 0.0 {
                    return Err(format!("--media needs fps > 0, got {fps}"));
                }
                if ladder.is_empty()
                    || ladder.iter().any(|r| !r.is_finite() || *r <= 0.0)
                    || ladder.windows(2).any(|w| w[1] <= w[0])
                {
                    return Err(format!(
                        "--media ladder must be strictly ascending positive Mbps, got {v:?}"
                    ));
                }
                a.media = Some((fps, ladder));
            }
            "--timeline" => a.timeline = true,
            "--trace" => a.trace = Some(need(&mut it, "--trace")?),
            "--trace-mi" => a.trace_mi = true,
            "--trace-format" => {
                let v = need(&mut it, "--trace-format")?;
                a.trace_format = TraceFormat::parse(&v).ok_or(format!(
                    "--trace-format must be jsonl, chrome or both, got {v:?}"
                ))?;
            }
            "--trace-out" => mi_trace::set_mi_trace_dir(need(&mut it, "--trace-out")?),
            "--bw-step" => {
                let v = floats(&need(&mut it, "--bw-step")?, 2, "--bw-step")?;
                a.faults =
                    std::mem::take(&mut a.faults).bandwidth_step(Dur::from_secs_f64(v[0]), v[1]);
            }
            "--rtt-step" => {
                let v = floats(&need(&mut it, "--rtt-step")?, 2, "--rtt-step")?;
                a.faults = std::mem::take(&mut a.faults)
                    .rtt_step(Dur::from_secs_f64(v[0]), Dur::from_secs_f64(v[1] / 1e3));
            }
            "--outage" => {
                let v = floats(&need(&mut it, "--outage")?, 2, "--outage")?;
                a.faults = std::mem::take(&mut a.faults)
                    .outage(Dur::from_secs_f64(v[0]), Dur::from_secs_f64(v[1]));
            }
            "--burst-loss" => {
                let v = floats(&need(&mut it, "--burst-loss")?, 3, "--burst-loss")?;
                a.faults = std::mem::take(&mut a.faults).with_burst_loss(GilbertElliott {
                    p_enter: v[0],
                    p_exit: v[1],
                    loss_good: 0.0,
                    loss_bad: v[2],
                });
            }
            "--reorder" => {
                let v = floats(&need(&mut it, "--reorder")?, 2, "--reorder")?;
                a.faults = std::mem::take(&mut a.faults).with_reorder(ReorderConfig {
                    prob: v[0],
                    max_extra: Dur::from_secs_f64(v[1] / 1e3),
                });
            }
            "--ack-comp" => {
                let v = floats(&need(&mut it, "--ack-comp")?, 2, "--ack-comp")?;
                a.faults = std::mem::take(&mut a.faults).with_ack_compression(AckCompression {
                    every: Dur::from_secs_f64(v[0]),
                    hold: Dur::from_secs_f64(v[1] / 1e3),
                });
            }
            "--flow" => {
                let spec = need(&mut it, "--flow")?;
                let (proto, start) = match spec.split_once('@') {
                    Some((p, s)) => (
                        p.to_string(),
                        s.parse::<f64>()
                            .map_err(|e| format!("bad start time: {e}"))?,
                    ),
                    None => (spec, 0.0),
                };
                a.flows.push((proto, start));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if a.flows.is_empty() {
        return Err("at least one --flow is required".into());
    }
    Ok(a)
}

fn buffer_bytes(spec: &str, link: LinkSpec) -> Result<u64, String> {
    if let Some(x) = spec.strip_suffix("xBDP") {
        let mult: f64 = x.parse().map_err(|e| format!("bad buffer: {e}"))?;
        Ok(link.with_buffer_bdp(mult).buffer_bytes)
    } else {
        let kb: f64 = spec.parse().map_err(|e| format!("bad buffer: {e}"))?;
        Ok((kb * 1000.0) as u64)
    }
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: proteus-sim [--bw Mbps] [--rtt ms] [--links N] [--buffer KB|xBDP] [--loss p] \
                 [--wifi] [--secs s] [--seed n] [--timeline] [--trace FILE] \
                 [--trace-mi] [--trace-format jsonl|chrome|both] [--trace-out DIR] \
                 [--churn ARRIVALS,LIFETIME] [--population N] [--media FPS,L1:L2:...] \
                 [--bw-step T:MBPS] [--rtt-step T:MS] [--outage T:LEN] \
                 [--burst-loss PE:PX:PB] [--reorder PROB:MS] [--ack-comp EVERY:HOLD] \
                 --flow PROTO[@START] ..."
            );
            return ExitCode::from(2);
        }
    };

    let mut link = LinkSpec::new(args.bw, Dur::from_millis(args.rtt_ms), 1);
    link.buffer_bytes = match buffer_bytes(&args.buffer, link) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    link = link.with_random_loss(args.loss);
    if args.wifi {
        link = link.with_noise(NoiseConfig::wifi_default());
    }

    // --links N: a chain of N identical bottlenecks. The base RTT is split
    // evenly across the hops so the end-to-end path RTT (and the BDP the
    // buffer was sized against) is unchanged; fault flags keep targeting
    // the first link, matching the single-link default.
    let topology = if args.links == 1 {
        Topology::single(link)
    } else {
        let mut hop = link;
        hop.rtt = Dur::from_secs_f64(link.rtt.as_secs_f64() / args.links as f64);
        Topology::chain(std::iter::repeat_n(hop, args.links))
    };
    let mut sc = Scenario::over(topology, Dur::from_secs_f64(args.secs))
        .with_seed(args.seed)
        .with_faults(args.faults.clone());
    if args.trace.is_some() || args.trace_mi {
        sc = sc.with_trace(TRACE_EVERY);
    }
    for (i, (proto, start)) in args.flows.iter().enumerate() {
        let name = format!("{proto}#{i}");
        let proto = proto.clone();
        let seed = args.seed + i as u64;
        let decisions = args.trace_mi;
        let mut spec = FlowSpec::bulk(name, Dur::from_secs_f64(*start), move || {
            if decisions {
                cc_traced(&proto, seed)
            } else {
                cc(&proto, seed)
            }
        });
        if i == 0 {
            if let Some((fps, ladder)) = &args.media {
                let media = MediaSpec {
                    fps: *fps,
                    ladder_mbps: ladder.clone(),
                    seed: args.seed ^ 0x4EC,
                    ..MediaSpec::default()
                };
                spec = spec
                    .with_app(move || Box::new(MediaSource::new(media)))
                    .with_reliability(true);
            }
        }
        sc = sc.flow(spec);
    }
    if args.churn.is_some() || args.population > 0 {
        // One churn class per --flow protocol, equal weight; listing a
        // protocol twice doubles its share. Churn flows draw per-id seeds
        // from the scenario seed so each arrival gets a distinct CC RNG.
        let classes: Vec<ChurnClass> = args
            .flows
            .iter()
            .map(|(proto, _)| {
                let proto = proto.clone();
                let seed = args.seed;
                ChurnClass::new(
                    proto.clone(),
                    1.0,
                    Box::new(move |id| cc(&proto, seed.wrapping_add(id as u64))),
                )
            })
            .collect();
        let (arrivals, lifetime) = match args.churn {
            Some((a, l)) => (a, l),
            // --population alone: a fixed background population whose mean
            // lifetime far exceeds the run, so departures are negligible.
            None => (0.0, args.secs * 1000.0),
        };
        sc = sc.with_churn(
            ChurnSpec::new(arrivals, Dur::from_secs_f64(lifetime), classes)
                .with_initial(args.population),
        );
        eprintln!(
            "churn: {arrivals}/s arrivals, mean lifetime {lifetime}s, warm-start {}",
            args.population
        );
    }

    eprintln!(
        "link: {} Mbps, {} ms RTT over {} hop(s), {} KB buffer/hop, loss {}, noise {}",
        args.bw,
        args.rtt_ms,
        args.links,
        link.buffer_bytes / 1000,
        args.loss,
        if args.wifi { "wifi" } else { "none" }
    );
    let res = run(sc);
    if let Some(path) = &args.trace {
        match fs::write(path, trace_jsonl(&res)) {
            Ok(()) => eprintln!("trace: {} samples -> {path}", res.trace.len()),
            Err(e) => {
                eprintln!("error: cannot write trace to {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.trace_mi {
        let mix = args
            .flows
            .iter()
            .map(|(p, _)| p.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let sink = MiTraceSink::new("adhoc", format!("{mix}-s{}", args.seed), args.trace_format);
        sink.write(&res);
        for path in sink.paths() {
            eprintln!(
                "decision trace: {} events -> {}",
                res.decisions.len(),
                path.display()
            );
        }
    }

    let from = Time::from_secs_f64(args.secs / 3.0);
    let to = Time::from_secs_f64(args.secs);
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8}",
        "flow", "mbps(tail)", "p50 RTT", "p95 RTT", "loss"
    );
    for f in &res.flows {
        println!(
            "{:<18} {:>10.2} {:>8.1}ms {:>8.1}ms {:>7.2}%",
            f.name,
            f.throughput_mbps(from, to),
            f.rtt_percentile(50.0).unwrap_or(0.0) * 1e3,
            f.rtt_percentile(95.0).unwrap_or(0.0) * 1e3,
            f.loss_rate() * 100.0,
        );
    }
    let util = res.utilization(from, to);
    println!("joint utilization: {:.1}%", util * 100.0);
    if args.media.is_some() {
        if let Some(m) = res.flows[0].media() {
            println!(
                "media: {}/{} frames ({} pending), p95 {:.1} ms, p99 {:.1} ms, \
                 {} freeze(s) ({:.2} s frozen)",
                m.frames_completed(),
                m.frames_generated(),
                m.frames_pending(),
                m.frame_delay_percentile(95.0).unwrap_or(0.0) * 1e3,
                m.frame_delay_percentile(99.0).unwrap_or(0.0) * 1e3,
                m.freeze_count(),
                m.time_in_freeze(),
            );
        }
    }
    if !args.faults.is_empty() {
        let s = res.fault_stats;
        println!(
            "faults: {} link change(s), {} outage drop(s), {} burst loss(es) in {} episode(s), \
             {} reordered pkt(s), {} compressed ACK(s)",
            s.link_changes,
            s.outage_drops,
            s.burst_losses,
            s.loss_episodes,
            s.reordered_pkts,
            s.compressed_acks
        );
    }

    if args.timeline {
        println!();
        let bins = (args.secs / 5.0).ceil() as usize;
        print!("{:>5}", "t");
        for f in &res.flows {
            print!(" {:>12}", &f.name[..f.name.len().min(12)]);
        }
        println!();
        for b in 0..bins {
            let from = Time::from_secs_f64(b as f64 * 5.0);
            let to = Time::from_secs_f64((b as f64 + 1.0) * 5.0);
            print!("{:>4}s", b * 5);
            for f in &res.flows {
                print!(" {:>12.2}", f.throughput_mbps(from, to));
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
