//! Regenerates the paper's figures/tables from the simulation.
//!
//! ```text
//! repro [--quick] [--seed N] <id>... | all | list
//! ```

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use proteus_bench::experiments::registry;
use proteus_bench::RunCfg;

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 1u64;
    let mut ids: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed requires a number");
            }
            other => ids.push(other.to_string()),
        }
    }

    let experiments = registry();
    if ids.is_empty() || ids.iter().any(|i| i == "list") {
        eprintln!("usage: repro [--quick] [--seed N] <id>... | all");
        eprintln!("experiments:");
        for e in &experiments {
            eprintln!("  {:8}  {}", e.id, e.description);
        }
        return ExitCode::from(if ids.is_empty() { 2 } else { 0 });
    }

    let run_all = ids.iter().any(|i| i == "all");
    let mut cfg = if quick { RunCfg::quick() } else { RunCfg::full() };
    cfg.seed = seed;

    let mut unknown = Vec::new();
    for id in &ids {
        if id != "all" && !experiments.iter().any(|e| e.id == id) {
            unknown.push(id.clone());
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {}", unknown.join(", "));
        return ExitCode::from(2);
    }

    for e in &experiments {
        if run_all || ids.iter().any(|i| i == e.id) {
            eprintln!("=== {} — {} ===", e.id, e.description);
            let t0 = Instant::now();
            let report = (e.run)(cfg);
            println!("{report}");
            eprintln!("=== {} done in {:.1}s ===\n", e.id, t0.elapsed().as_secs_f64());
        }
    }
    ExitCode::SUCCESS
}
