//! Regenerates the paper's figures/tables from the simulation.
//!
//! ```text
//! repro [--quick] [--seed N] [--jobs N] [--shard I/N] [--no-cache]
//!       [--trace] [--trace-mi] [--trace-format jsonl|chrome|both]
//!       [--trace-out DIR] <id>... | all | list | trace-summary
//! ```
//!
//! `--jobs N` runs each experiment's simulation campaign on `N` worker
//! threads (`0` = one per core); results are identical to `--jobs 1`.
//! `--shard I/N` (1-based, e.g. `--shard 2/4`) executes only the cache-miss
//! jobs whose content hash falls in shard `I` of `N`; out-of-shard misses
//! are skipped, so N invocations — one per shard, sharing or later merging
//! `results/.cache/` — split a cold campaign across machines. Sharded
//! reports contain placeholder zeros for skipped cells: after all shards
//! finish, re-run without `--shard` for complete reports (pure cache
//! replay).
//! `--no-cache` bypasses the disk result cache under `results/.cache/`.
//! `--trace` records per-flow telemetry JSONL under `results/trace/`.
//! `--trace-mi` records structured decision traces (MI closes, mode
//! switches, filter verdicts — see `OBSERVABILITY.md`) under
//! `results/trace-mi/` (or `--trace-out DIR` / `$PROTEUS_TRACE_DIR`), in
//! the format(s) `--trace-format` selects. The pseudo-experiment
//! `trace-summary` aggregates previously recorded decision traces instead
//! of running simulations.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use proteus_bench::experiments::registry;
use proteus_bench::{mi_trace, RunCfg, TraceFormat};

const USAGE: &str = "usage: repro [--quick] [--seed N] [--jobs N] [--shard I/N] [--no-cache] \
     [--trace] [--trace-mi] [--trace-format jsonl|chrome|both] [--trace-out DIR] \
     <id>... | all | list | trace-summary";

/// Parsed command line: the run configuration plus experiment ids.
struct Cli {
    cfg_quick: bool,
    seed: u64,
    jobs: usize,
    no_cache: bool,
    trace: bool,
    trace_mi: bool,
    trace_format: TraceFormat,
    shard: Option<(u32, u32)>,
    ids: Vec<String>,
}

/// Parses `--shard I/N` (1-based shard `I` of `N`) into the 0-based
/// `(index, count)` the campaign layer expects.
fn parse_shard(v: &str) -> Result<(u32, u32), String> {
    let err = || format!("--shard requires I/N with 1 <= I <= N, got {v:?}");
    let (i, n) = v.split_once('/').ok_or_else(err)?;
    let i: u32 = i.trim().parse().map_err(|_| err())?;
    let n: u32 = n.trim().parse().map_err(|_| err())?;
    if i == 0 || n == 0 || i > n {
        return Err(err());
    }
    Ok((i - 1, n))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg_quick: false,
        seed: 1,
        jobs: 1,
        no_cache: false,
        trace: false,
        trace_mi: false,
        trace_format: TraceFormat::Both,
        shard: None,
        ids: Vec::new(),
    };
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.cfg_quick = true,
            "--no-cache" => cli.no_cache = true,
            "--trace" => cli.trace = true,
            "--trace-mi" => cli.trace_mi = true,
            "--trace-format" => {
                let v = args.next().ok_or("--trace-format requires a value")?;
                cli.trace_format = TraceFormat::parse(&v).ok_or(format!(
                    "--trace-format must be jsonl, chrome or both, got {v:?}"
                ))?;
            }
            "--trace-out" => {
                let v = args.next().ok_or("--trace-out requires a value")?;
                mi_trace::set_mi_trace_dir(v);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                cli.seed = v
                    .parse()
                    .map_err(|_| format!("--seed requires a number, got {v:?}"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                cli.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs requires a number, got {v:?}"))?;
            }
            "--shard" => {
                let v = args.next().ok_or("--shard requires a value (I/N)")?;
                cli.shard = Some(parse_shard(&v)?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => cli.ids.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let experiments = registry();
    if cli.ids.is_empty() || cli.ids.iter().any(|i| i == "list") {
        eprintln!("{USAGE}");
        eprintln!("experiments:");
        for e in &experiments {
            eprintln!("  {:8}  {}", e.id, e.description);
        }
        return ExitCode::from(if cli.ids.is_empty() { 2 } else { 0 });
    }

    let run_all = cli.ids.iter().any(|i| i == "all");
    let trace_summary = cli.ids.iter().any(|i| i == "trace-summary");
    let mut cfg = if cli.cfg_quick {
        RunCfg::quick()
    } else {
        RunCfg::full()
    };
    cfg.seed = cli.seed;
    cfg.jobs = cli.jobs;
    cfg.cache = !cli.no_cache;
    cfg.trace = cli.trace;
    cfg.trace_mi = cli.trace_mi;
    cfg.trace_format = cli.trace_format;
    cfg.shard = cli.shard;
    if let Some((index, count)) = cfg.shard {
        eprintln!(
            "shard {}/{count}: skipping out-of-shard cache misses; re-run unsharded after all \
             shards for complete reports",
            index + 1
        );
    }

    let mut unknown = Vec::new();
    for id in &cli.ids {
        if id != "all" && id != "trace-summary" && !experiments.iter().any(|e| e.id == id) {
            unknown.push(id.clone());
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {}", unknown.join(", "));
        return ExitCode::from(2);
    }

    proteus_runner::take_session_stats(); // discard anything pre-run
    proteus_netsim::take_session_event_totals(); // same for engine totals
    let mut timings: Vec<ExperimentTiming> = Vec::new();
    for e in &experiments {
        if run_all || cli.ids.iter().any(|i| i == e.id) {
            eprintln!("=== {} — {} ===", e.id, e.description);
            let t0 = Instant::now();
            let report = (e.run)(cfg);
            println!("{report}");
            let secs = t0.elapsed().as_secs_f64();
            // Drained per experiment: everything since the last drain is
            // this experiment's engine traffic (cached cells run no sims
            // and naturally report zero events).
            let events = proteus_netsim::take_session_event_totals();
            timings.push(ExperimentTiming {
                id: e.id,
                secs,
                events,
            });
            eprintln!("=== {} done in {:.1}s ===\n", e.id, secs);
        }
    }

    if trace_summary {
        // After any requested experiments, so `repro --trace-mi fig6
        // trace-summary` aggregates the traces it just recorded.
        print!("{}", mi_trace::summary_report());
    }

    print_run_summary(&timings, &proteus_runner::take_session_stats());
    ExitCode::SUCCESS
}

/// Wall time plus engine event totals for one experiment.
struct ExperimentTiming {
    id: &'static str,
    secs: f64,
    events: proteus_netsim::SessionEventTotals,
}

/// End-of-run accounting: per-experiment wall time with engine event
/// throughput and the fused-path share, then per-campaign cache hit/miss
/// counts aggregated over the whole invocation.
fn print_run_summary(timings: &[ExperimentTiming], campaigns: &[proteus_runner::CampaignStats]) {
    if timings.len() > 1 {
        eprintln!("=== wall time by experiment ===");
        for t in timings {
            let (evps, fused) = if t.events.dispatched > 0 && t.secs > 0.0 {
                (
                    format!("{:9.2}M ev/s", t.events.dispatched as f64 / t.secs / 1e6),
                    format!(
                        "{:5.1}% fused",
                        100.0 * t.events.fused as f64 / t.events.dispatched as f64
                    ),
                )
            } else {
                // Fully cached (or sim-free) experiment: no engine events.
                (format!("{:>14}", "—"), format!("{:>11}", "—"))
            };
            eprintln!("  {:8} {:6.1}s  {evps}  {fused}", t.id, t.secs);
        }
        let total: f64 = timings.iter().map(|t| t.secs).sum();
        eprintln!("  {:8} {total:6.1}s", "total");
    }
    if !campaigns.is_empty() {
        eprintln!("=== cache by campaign ===");
        for s in campaigns {
            let skipped = if s.skipped > 0 {
                format!(", {} skipped (shard)", s.skipped)
            } else {
                String::new()
            };
            eprintln!(
                "  {:8} {} job(s): {} cached, {} executed{skipped} ({:.1}s)",
                s.name, s.total, s.cached, s.executed, s.wall_secs
            );
        }
        let (total, cached, executed): (usize, usize, usize) =
            campaigns.iter().fold((0, 0, 0), |(t, c, e), s| {
                (t + s.total, c + s.cached, e + s.executed)
            });
        eprintln!(
            "  {:8} {total} job(s): {cached} cached, {executed} executed",
            "total"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing() {
        assert_eq!(parse_shard("1/4"), Ok((0, 4)));
        assert_eq!(parse_shard("4/4"), Ok((3, 4)));
        assert_eq!(parse_shard("1/1"), Ok((0, 1)));
        for bad in ["0/4", "5/4", "4", "a/b", "1/0", "/", ""] {
            assert!(parse_shard(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cli_accepts_shard_flag() {
        let cli = parse_args(
            ["--quick", "--shard", "2/3", "tune"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(cli.shard, Some((1, 3)));
        assert!(cli.cfg_quick);
        assert_eq!(cli.ids, ["tune"]);
        assert!(parse_args(["--shard", "9"].into_iter().map(String::from)).is_err());
    }
}
