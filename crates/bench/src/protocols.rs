//! The protocol registry: every congestion controller the paper evaluates,
//! constructible by name.

use proteus_baselines::{Bbr, Copa, Cross, Cubic, FixedRateProbe, Ledbat, Reno, ScavengerMod};
use proteus_core::{Mode, ProteusSender, SharedThreshold};
use proteus_trace::RingSink;
use proteus_transport::CongestionControl;

/// The primary protocols of §6 (plus Reno as an extra reference).
pub const PRIMARIES: &[&str] = &["CUBIC", "BBR", "COPA", "Proteus-P", "PCC-Vivace"];

/// The scavengers compared throughout §6 (plus the Appendix-B LEDBAT-25 and
/// the §7.1 BBR-S).
pub const SCAVENGERS: &[&str] = &["Proteus-S", "LEDBAT", "LEDBAT-25", "BBR-S"];

/// All single-flow protocols of Fig. 3/4/5.
pub const ALL_FIG3: &[&str] = &[
    "Proteus-S",
    "LEDBAT",
    "CUBIC",
    "BBR",
    "Proteus-P",
    "COPA",
    "PCC-Vivace",
];

/// Builds a controller by display name. Probe rates are written as
/// `"probe:<mbps>"`. Hybrid senders are built via [`hybrid`].
///
/// # Panics
/// Panics on an unknown name.
pub fn cc(name: &str, seed: u64) -> Box<dyn CongestionControl> {
    match name {
        "CUBIC" => Box::new(Cubic::new()),
        "Reno" => Box::new(Reno::new()),
        "BBR" => Box::new(Bbr::new()),
        "BBR-S" => Box::new(Bbr::scavenger_with(ScavengerMod::calibrated_for_sim())),
        "COPA" => Box::new(Copa::new()),
        "LEDBAT" => Box::new(Ledbat::new()),
        "LEDBAT-25" => Box::new(Ledbat::draft25()),
        "Cross" => Box::new(Cross::new()),
        "Proteus-P" => Box::new(ProteusSender::primary(seed)),
        "Proteus-S" => Box::new(ProteusSender::scavenger(seed)),
        "PCC-Vivace" => Box::new(ProteusSender::vivace(seed)),
        "PCC-Allegro" => Box::new(ProteusSender::allegro(seed)),
        "Vegas" => Box::new(proteus_baselines::Vegas::new()),
        other => {
            if let Some(rate) = other.strip_prefix("probe:") {
                let mbps: f64 = rate.parse().expect("probe:<mbps>");
                return Box::new(FixedRateProbe::mbps(mbps));
            }
            panic!("unknown protocol {other}")
        }
    }
}

/// Builds a Proteus-H sender bound to a shared threshold cell.
pub fn hybrid(seed: u64, threshold: SharedThreshold) -> Box<dyn CongestionControl> {
    Box::new(ProteusSender::with_config(
        proteus_core::ProteusConfig::proteus().with_seed(seed),
        Mode::Hybrid(threshold),
    ))
}

/// Like [`cc`], but PCC-family senders carry a [`RingSink`] decision
/// recorder (drained into `SimResult::decisions` by the engine). The other
/// protocols have no MI decision points, so they are returned untraced —
/// the run itself is unchanged either way.
pub fn cc_traced(name: &str, seed: u64) -> Box<dyn CongestionControl> {
    let ring = || RingSink::new(crate::mi_trace::MI_RING_CAPACITY);
    match name {
        "Proteus-P" => Box::new(ProteusSender::primary(seed).with_sink(ring())),
        "Proteus-S" => Box::new(ProteusSender::scavenger(seed).with_sink(ring())),
        "PCC-Vivace" => Box::new(ProteusSender::vivace(seed).with_sink(ring())),
        "PCC-Allegro" => Box::new(ProteusSender::allegro(seed).with_sink(ring())),
        other => cc(other, seed),
    }
}

/// Traced [`hybrid`]: a Proteus-H sender recording decisions (including the
/// §4.4 mode switches) into a [`RingSink`].
pub fn hybrid_traced(seed: u64, threshold: SharedThreshold) -> Box<dyn CongestionControl> {
    Box::new(
        ProteusSender::with_config(
            proteus_core::ProteusConfig::proteus().with_seed(seed),
            Mode::Hybrid(threshold),
        )
        .with_sink(RingSink::new(crate::mi_trace::MI_RING_CAPACITY)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_everything() {
        for name in PRIMARIES.iter().chain(SCAVENGERS).chain(ALL_FIG3) {
            let c = cc(name, 1);
            assert!(!c.name().is_empty());
        }
        let p = cc("probe:20", 1);
        assert_eq!(p.pacing_rate(), Some(2_500_000.0));
        let x = cc("Cross", 1);
        assert_eq!(x.name(), "Cross");
        assert!(x.pacing_rate().is_some());
        let h = hybrid(1, SharedThreshold::new(10.0));
        assert_eq!(h.name(), "Proteus-H");
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        let _ = cc("TCP-Tahoe", 1);
    }

    #[test]
    fn traced_registry_builds_everything() {
        for name in PRIMARIES.iter().chain(SCAVENGERS).chain(ALL_FIG3) {
            let c = cc_traced(name, 1);
            assert_eq!(c.name(), cc(name, 1).name());
        }
        let h = hybrid_traced(1, SharedThreshold::new(10.0));
        assert_eq!(h.name(), "Proteus-H");
    }
}
