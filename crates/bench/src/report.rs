//! Result tables: aligned text output plus CSV persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple result table mirroring one figure/series of the paper.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Fig 3(a): throughput vs buffer size"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Directory where experiment reports are written: `results/` at the repo
/// root, or `$PROTEUS_RESULTS_DIR` when set (the golden-output test points
/// this at a scratch directory so running experiments cannot clobber the
/// committed full-fidelity reports).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var_os("PROTEUS_RESULTS_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    };
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes one experiment's text report (and each table's CSV) to
/// `results/`.
pub fn write_report(id: &str, text: &str, tables: &[&Table]) {
    let dir = results_dir();
    let _ = fs::write(dir.join(format!("{id}.txt")), text);
    for (i, t) in tables.iter().enumerate() {
        let suffix = if tables.len() == 1 {
            String::new()
        } else {
            format!("_{}", i + 1)
        };
        let _ = fs::write(dir.join(format!("{id}{suffix}.csv")), t.to_csv());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Example", &["proto", "mbps"]);
        t.row(vec!["CUBIC".into(), "49.9".into()]);
        t.row(vec!["LEDBAT-25".into(), "5.0".into()]);
        let s = t.render();
        assert!(s.contains("## Example"));
        assert!(s.contains("CUBIC"));
        // All lines (under the title) equally wide.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len().max(lines[1].len()));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(0.914), "91.4%");
    }
}
