//! Shared scenario runners and campaign plumbing for the experiment
//! modules.
//!
//! The grid experiments submit their cells as [`SimJob`]s through a
//! [`Campaign`] (built by [`campaign`] from the CLI's `--jobs` /
//! `--no-cache` knobs). The job builders here cover the two shapes nearly
//! every sweep reduces to — one bulk flow on a link ([`single_job`]) and a
//! primary/scavenger pair ([`pair_job`]) — with stable descriptors shared
//! across experiments, so e.g. Fig. 6 and Fig. 19 reuse each other's
//! cached "primary alone" baselines.

use std::fs;
use std::path::PathBuf;

use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario, SimResult};
use proteus_runner::json::Obj;
use proteus_runner::{payload, Campaign, CampaignOpts, SimJob};
use proteus_transport::{Dur, Time};

use crate::mi_trace::{MiTraceSink, TraceFormat};
use crate::protocols::{cc, cc_traced};
use crate::report::results_dir;
use crate::RunCfg;

/// Telemetry sampling period for traced runs.
pub const TRACE_EVERY: Dur = Dur::from_millis(100);

/// Measurement window: the last 2/3 of a run (skipping convergence).
pub fn tail_window(secs: f64) -> (Time, Time) {
    (Time::from_secs_f64(secs / 3.0), Time::from_secs_f64(secs))
}

/// Mean goodput of flow `idx` over the tail window, Mbps.
pub fn tail_mbps(res: &SimResult, idx: usize, secs: f64) -> f64 {
    let (a, b) = tail_window(secs);
    res.flows[idx].throughput_mbps(a, b)
}

/// Builds a [`Campaign`] wired to the invocation's `--jobs`/`--no-cache`
/// knobs. The result cache lives under `results/.cache/`; each run appends
/// its accounting line to `results/campaigns.jsonl` (the machine-readable
/// perf trajectory).
pub fn campaign(name: &str, cfg: RunCfg) -> Campaign {
    Campaign::new(
        name,
        CampaignOpts {
            jobs: cfg.jobs,
            cache: cfg.cache.then(|| results_dir().join(".cache")),
            progress: cfg.jobs != 1,
            summary: Some(results_dir().join("campaigns.jsonl")),
            shard: cfg.shard,
        },
    )
}

/// Stable cache tag for a clean dumbbell link. Links with noise models
/// (WiFi paths) must use a caller-provided tag that pins the path identity
/// instead.
pub fn link_tag(link: &LinkSpec) -> String {
    format!(
        "bw={:?},rtt={:?}ms,buf={},loss={:?}",
        link.bandwidth_mbps,
        link.rtt.as_secs_f64() * 1e3,
        link.buffer_bytes,
        link.random_loss
    )
}

// ---------------------------------------------------------------------------
// Telemetry sink
// ---------------------------------------------------------------------------

/// Destination for one run's per-flow telemetry:
/// `results/trace/<exp>/<run>.jsonl`.
#[derive(Debug, Clone)]
pub struct TraceSink {
    exp: String,
    run: String,
}

impl TraceSink {
    /// Creates a sink; path components are sanitized for the filesystem.
    pub fn new(exp: impl Into<String>, run: impl Into<String>) -> Self {
        let clean = |s: String| s.replace(['/', '\\', ' '], "_");
        Self {
            exp: clean(exp.into()),
            run: clean(run.into()),
        }
    }

    /// Where this sink writes.
    pub fn path(&self) -> PathBuf {
        results_dir()
            .join("trace")
            .join(&self.exp)
            .join(format!("{}.jsonl", self.run))
    }

    /// Writes the run's trace as JSONL, one object per sample. I/O errors
    /// are ignored: telemetry must never fail an experiment.
    pub fn write(&self, res: &SimResult) {
        let path = self.path();
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let _ = fs::write(path, trace_jsonl(res));
    }
}

/// Renders a run's telemetry trace as JSONL, one object per sample.
pub fn trace_jsonl(res: &SimResult) -> String {
    let mut out = String::new();
    for e in &res.trace {
        let mut o = Obj::new();
        o.num("t", e.t)
            .int("flow", e.flow as u64)
            .str("name", &res.flows[e.flow].name);
        match e.rate_mbps {
            Some(r) => o.num("rate_mbps", r),
            None => o.raw("rate_mbps", "null"),
        };
        match e.cwnd_bytes {
            Some(w) => o.int("cwnd_bytes", w),
            None => o.raw("cwnd_bytes", "null"),
        };
        o.int("inflight_bytes", e.inflight_bytes);
        match e.srtt_ms {
            Some(v) => o.num("srtt_ms", v),
            None => o.raw("srtt_ms", "null"),
        };
        match e.rttvar_ms {
            Some(v) => o.num("rttvar_ms", v),
            None => o.raw("rttvar_ms", "null"),
        };
        match e.utility {
            Some(u) => o.num("utility", u),
            None => o.raw("utility", "null"),
        };
        match e.mode {
            Some(m) => o.str("mode", m),
            None => o.raw("mode", "null"),
        };
        o.int("mode_switches", e.mode_switches);
        out.push_str(&o.render());
        out.push('\n');
    }
    out
}

/// Runs a scenario, recording telemetry first if a sink is given.
pub fn run_traced(sc: Scenario, trace: Option<&TraceSink>) -> SimResult {
    run_job(sc, trace, None)
}

/// Runs a scenario, writing telemetry and/or decision traces. Any active
/// sink turns on 100 ms trace sampling, which also makes the engine drain
/// the flows' decision rings on the same cadence.
fn run_job(
    sc: Scenario,
    telemetry: Option<&TraceSink>,
    decisions: Option<&MiTraceSink>,
) -> SimResult {
    let res = if telemetry.is_some() || decisions.is_some() {
        run(sc.with_trace(TRACE_EVERY))
    } else {
        run(sc)
    };
    if let Some(sink) = telemetry {
        sink.write(&res);
    }
    if let Some(sink) = decisions {
        sink.write(&res);
    }
    res
}

// ---------------------------------------------------------------------------
// Trace selection
// ---------------------------------------------------------------------------

/// Which trace streams a job records, derived from the CLI flags
/// (`--trace`, `--trace-mi`, `--trace-format`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Traces {
    /// Per-flow telemetry JSONL under `results/trace/` (`--trace`).
    pub telemetry: bool,
    /// Structured decision traces under the MI-trace directory
    /// (`--trace-mi`), with the selected export format(s).
    pub decisions: Option<TraceFormat>,
}

impl Traces {
    /// No tracing (the job-builder default for tests and helpers).
    pub fn off() -> Self {
        Self::default()
    }

    /// The trace selection an invocation's [`RunCfg`] asks for.
    pub fn from_cfg(cfg: &RunCfg) -> Self {
        Self {
            telemetry: cfg.trace,
            decisions: cfg.trace_mi.then_some(cfg.trace_format),
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario builders (shared by direct runners and jobs)
// ---------------------------------------------------------------------------

fn single_scenario(
    name: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
    decisions: bool,
) -> Scenario {
    let build = move || {
        if decisions {
            cc_traced(name, seed ^ 0xA5)
        } else {
            cc(name, seed ^ 0xA5)
        }
    };
    Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk(name, Dur::ZERO, build))
        .with_seed(seed)
        .with_rtt_stride(2)
}

fn pair_scenario(
    primary: &'static str,
    scavenger: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
    decisions: bool,
) -> Scenario {
    let build = move |name: &'static str, salt: u64| {
        move || {
            if decisions {
                cc_traced(name, seed ^ salt)
            } else {
                cc(name, seed ^ salt)
            }
        }
    };
    Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk(primary, Dur::ZERO, build(primary, 0xA5)))
        .flow(FlowSpec::bulk(
            scavenger,
            Dur::from_secs(5),
            build(scavenger, 0x5A),
        ))
        .with_seed(seed)
        .with_rtt_stride(2)
}

/// Runs one bulk flow of `name` over `link` for `secs` seconds.
pub fn run_single(name: &'static str, link: LinkSpec, secs: f64, seed: u64) -> SimResult {
    run(single_scenario(name, link, secs, seed, false))
}

/// Runs `primary` (starting at 0) against `scavenger` (starting at 5 s).
/// Flow 0 is the primary.
pub fn run_pair(
    primary: &'static str,
    scavenger: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
) -> SimResult {
    run(pair_scenario(primary, scavenger, link, secs, seed, false))
}

// ---------------------------------------------------------------------------
// Campaign jobs
// ---------------------------------------------------------------------------

pub(crate) fn trace_suffix(traces: Traces) -> String {
    // Traced and untraced runs are simulated identically, but they get
    // distinct cache identities so enabling --trace / --trace-mi actually
    // (re)writes the exports instead of short-circuiting on a cached
    // payload. (Decision-trace files are additionally declared as cache
    // artifacts, so even a warm hit replays them from the cache.)
    let mut s = String::new();
    if traces.telemetry {
        s.push_str("/trace");
    }
    if let Some(fmt) = traces.decisions {
        s.push_str("/mi-trace=");
        s.push_str(fmt.tag());
    }
    s
}

/// Decoded [`single_job`] payload.
#[derive(Debug, Clone, Copy)]
pub struct SingleOut {
    /// Tail-window goodput, Mbps.
    pub tail_mbps: f64,
    /// 95th-percentile RTT, seconds (0 when unmeasured).
    pub p95_rtt_s: f64,
    /// Sender-observed loss rate.
    pub loss_rate: f64,
}

/// Decodes a [`single_job`] payload.
pub fn decode_single(payload_text: &str) -> SingleOut {
    let v = payload::decode_floats(payload_text);
    SingleOut {
        tail_mbps: v[0],
        p95_rtt_s: v[1],
        loss_rate: v[2],
    }
}

/// One bulk flow of `proto` on `link`: payload
/// `[tail_mbps, p95_rtt_s, loss_rate]` (see [`decode_single`]).
///
/// `tag` must fully identify the link (use [`link_tag`] for clean links);
/// it is part of the cache descriptor shared across experiments.
pub fn single_job(
    exp: &'static str,
    tag: &str,
    proto: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
    traces: Traces,
) -> SimJob {
    let descriptor = format!(
        "single/{tag}/proto={proto}/secs={secs:?}/seed={seed}{}/v1",
        trace_suffix(traces)
    );
    let run_name = format!("single-{tag}-{proto}-s{seed}");
    let sink = traces.telemetry.then(|| TraceSink::new(exp, &run_name));
    let mi = traces
        .decisions
        .map(|fmt| MiTraceSink::new(exp, &run_name, fmt));
    let artifacts: Vec<_> = mi.iter().flat_map(|s| s.paths()).collect();
    let decisions = mi.is_some();
    let mut job = SimJob::new(descriptor, format!("{proto} alone"), move || {
        let res = run_job(
            single_scenario(proto, link, secs, seed, decisions),
            sink.as_ref(),
            mi.as_ref(),
        );
        payload::encode_floats(&[
            tail_mbps(&res, 0, secs),
            res.flows[0].rtt_percentile(95.0).unwrap_or(0.0),
            res.flows[0].loss_rate(),
        ])
    });
    for path in artifacts {
        job = job.with_artifact(path);
    }
    job
}

/// Decoded [`pair_job`] payload.
#[derive(Debug, Clone, Copy)]
pub struct PairOut {
    /// Primary's tail-window goodput, Mbps.
    pub primary_mbps: f64,
    /// Scavenger's tail-window goodput, Mbps.
    pub scav_mbps: f64,
    /// Primary's 95th-percentile RTT over the whole run, seconds.
    pub p95_rtt_s: f64,
}

/// Decodes a [`pair_job`] payload.
pub fn decode_pair(payload_text: &str) -> PairOut {
    let v = payload::decode_floats(payload_text);
    PairOut {
        primary_mbps: v[0],
        scav_mbps: v[1],
        p95_rtt_s: v[2],
    }
}

/// `primary` vs `scavenger` (starting 5 s later) on `link`: payload
/// `[primary_mbps, scav_mbps, primary_p95_rtt_s]` (see [`decode_pair`]).
#[allow(clippy::too_many_arguments)]
pub fn pair_job(
    exp: &'static str,
    tag: &str,
    primary: &'static str,
    scavenger: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
    traces: Traces,
) -> SimJob {
    let descriptor = format!(
        "pair/{tag}/primary={primary}/scav={scavenger}/secs={secs:?}/seed={seed}{}/v1",
        trace_suffix(traces)
    );
    let run_name = format!("pair-{tag}-{primary}-vs-{scavenger}-s{seed}");
    let sink = traces.telemetry.then(|| TraceSink::new(exp, &run_name));
    let mi = traces
        .decisions
        .map(|fmt| MiTraceSink::new(exp, &run_name, fmt));
    let artifacts: Vec<_> = mi.iter().flat_map(|s| s.paths()).collect();
    let decisions = mi.is_some();
    let mut job = SimJob::new(descriptor, format!("{primary} vs {scavenger}"), move || {
        let res = run_job(
            pair_scenario(primary, scavenger, link, secs, seed, decisions),
            sink.as_ref(),
            mi.as_ref(),
        );
        payload::encode_floats(&[
            tail_mbps(&res, 0, secs),
            tail_mbps(&res, 1, secs),
            res.flows[0].rtt_percentile(95.0).unwrap_or(0.0),
        ])
    });
    for path in artifacts {
        job = job.with_artifact(path);
    }
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_runner_produces_throughput() {
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let res = run_single("CUBIC", link, 10.0, 3);
        assert!(tail_mbps(&res, 0, 10.0) > 15.0);
    }

    #[test]
    fn pair_runner_orders_flows() {
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let res = run_pair("CUBIC", "LEDBAT", link, 15.0, 3);
        assert_eq!(res.flows[0].name, "CUBIC");
        assert_eq!(res.flows[1].name, "LEDBAT");
        assert!(res.flows[1].started_at.unwrap() > res.flows[0].started_at.unwrap());
    }

    #[test]
    fn single_job_matches_direct_run() {
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let job = single_job(
            "test",
            &link_tag(&link),
            "CUBIC",
            link,
            10.0,
            3,
            Traces::off(),
        );
        let out = decode_single(&job.execute());
        let direct = run_single("CUBIC", link, 10.0, 3);
        assert_eq!(out.tail_mbps, tail_mbps(&direct, 0, 10.0));
        assert_eq!(out.p95_rtt_s, direct.flows[0].rtt_percentile(95.0).unwrap());
    }

    #[test]
    fn job_descriptors_are_stable_identities() {
        let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
        let tag = link_tag(&link);
        let a = single_job("x", &tag, "BBR", link, 30.0, 7, Traces::off());
        let b = single_job("y", &tag, "BBR", link, 30.0, 7, Traces::off());
        // Same cell from different experiments shares one cache identity.
        assert_eq!(a.key(), b.key());
        // Each trace selection gets its own identity.
        let telemetry = Traces {
            telemetry: true,
            ..Traces::off()
        };
        let t = single_job("x", &tag, "BBR", link, 30.0, 7, telemetry);
        assert_ne!(a.key(), t.key());
        let mi = Traces {
            decisions: Some(TraceFormat::Both),
            ..Traces::off()
        };
        let m = single_job("x", &tag, "BBR", link, 30.0, 7, mi);
        assert_ne!(a.key(), m.key());
        assert_ne!(t.key(), m.key());
        // Decision-tracing jobs declare their export files as artifacts.
        assert_eq!(a.artifacts().len(), 0);
        assert_eq!(m.artifacts().len(), 2);
    }

    #[test]
    fn traced_controllers_do_not_change_results() {
        // The decision sink must be an observer: a run with RingSink-backed
        // senders is byte-identical to the untraced run.
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let plain = run(pair_scenario(
            "Proteus-P",
            "Proteus-S",
            link,
            12.0,
            3,
            false,
        ));
        let traced = run(pair_scenario("Proteus-P", "Proteus-S", link, 12.0, 3, true));
        assert_eq!(
            tail_mbps(&plain, 0, 12.0),
            tail_mbps(&traced, 0, 12.0),
            "primary goodput differs under tracing"
        );
        assert_eq!(tail_mbps(&plain, 1, 12.0), tail_mbps(&traced, 1, 12.0));
        assert!(plain.decisions.is_empty());
        assert!(
            traced
                .decisions
                .iter()
                .any(|fe| matches!(fe.event.kind, proteus_trace::EventKind::MiClose(_))),
            "traced run recorded no MI closes"
        );
    }

    #[test]
    fn link_tag_distinguishes_links() {
        let a = link_tag(&LinkSpec::new(50.0, Dur::from_millis(30), 375_000));
        let b = link_tag(&LinkSpec::new(50.0, Dur::from_millis(30), 75_000));
        let c =
            link_tag(&LinkSpec::new(50.0, Dur::from_millis(30), 375_000).with_random_loss(0.01));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
