//! Shared scenario runners for the experiment modules.

use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario, SimResult};
use proteus_transport::{Dur, Time};

use crate::protocols::cc;

/// Measurement window: the last 2/3 of a run (skipping convergence).
pub fn tail_window(secs: f64) -> (Time, Time) {
    (Time::from_secs_f64(secs / 3.0), Time::from_secs_f64(secs))
}

/// Mean goodput of flow `idx` over the tail window, Mbps.
pub fn tail_mbps(res: &SimResult, idx: usize, secs: f64) -> f64 {
    let (a, b) = tail_window(secs);
    res.flows[idx].throughput_mbps(a, b)
}

/// Runs one bulk flow of `name` over `link` for `secs` seconds.
pub fn run_single(name: &'static str, link: LinkSpec, secs: f64, seed: u64) -> SimResult {
    let sc = Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk(name, Dur::ZERO, move || cc(name, seed ^ 0xA5)))
        .with_seed(seed)
        .with_rtt_stride(2);
    run(sc)
}

/// Runs `primary` (starting at 0) against `scavenger` (starting at 5 s).
/// Flow 0 is the primary.
pub fn run_pair(
    primary: &'static str,
    scavenger: &'static str,
    link: LinkSpec,
    secs: f64,
    seed: u64,
) -> SimResult {
    let sc = Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk(primary, Dur::ZERO, move || {
            cc(primary, seed ^ 0xA5)
        }))
        .flow(FlowSpec::bulk(scavenger, Dur::from_secs(5), move || {
            cc(scavenger, seed ^ 0x5A)
        }))
        .with_seed(seed)
        .with_rtt_stride(2);
    run(sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_runner_produces_throughput() {
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let res = run_single("CUBIC", link, 10.0, 3);
        assert!(tail_mbps(&res, 0, 10.0) > 15.0);
    }

    #[test]
    fn pair_runner_orders_flows() {
        let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
        let res = run_pair("CUBIC", "LEDBAT", link, 15.0, 3);
        assert_eq!(res.flows[0].name, "CUBIC");
        assert_eq!(res.flows[1].name, "LEDBAT");
        assert!(res.flows[1].started_at.unwrap() > res.flows[0].started_at.unwrap());
    }
}
