//! Decision-trace ("MI trace") export plumbing for `--trace-mi`.
//!
//! Telemetry traces (`--trace`, see [`crate::runner::TraceSink`]) sample
//! *state* every 100 ms; decision traces record the discrete *decisions*
//! the controllers make — MI closes with the full utility breakdown, rate
//! transitions, probe outcomes, §4.4 mode switches and §5 filter verdicts
//! (see `proteus-trace` and `OBSERVABILITY.md`). This module decides where
//! those exports land and writes them in the formats the CLI selected.
//!
//! Files go under [`mi_trace_dir`] — `results/trace-mi/` by default,
//! `$PROTEUS_TRACE_DIR` or `--trace-out DIR` when set — as
//! `<exp>/<run>.jsonl` (one event per line) and `<exp>/<run>.trace.json`
//! (Chrome `trace_event`, loadable in Perfetto).

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proteus_netsim::SimResult;
use proteus_trace::export::{to_chrome_trace, to_jsonl};
use proteus_trace::TraceSummary;

use crate::report::{results_dir, Table};

/// Environment variable overriding the decision-trace output directory
/// (the `--trace-out` flag sets the same override in-process).
pub const TRACE_DIR_ENV: &str = "PROTEUS_TRACE_DIR";

/// Capacity of each per-flow decision ring. Proteus closes one MI every
/// 1–2 RTTs and the engine drains rings every 100 ms on traced runs, so a
/// few events per drain is typical; 4096 keeps minutes of history even if
/// draining stalls, while costing ~0.6 MB per flow up front.
pub const MI_RING_CAPACITY: usize = 4096;

/// Export format(s) for decision traces (`--trace-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// JSONL only (`<run>.jsonl`).
    Jsonl,
    /// Chrome `trace_event` only (`<run>.trace.json`).
    Chrome,
    /// Both files (the default).
    #[default]
    Both,
}

impl TraceFormat {
    /// Parses a `--trace-format` value (`jsonl`, `chrome`, or `both`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "jsonl" => Some(Self::Jsonl),
            "chrome" => Some(Self::Chrome),
            "both" => Some(Self::Both),
            _ => None,
        }
    }

    /// Stable tag used in cache descriptors and `--trace-format` values.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Jsonl => "jsonl",
            Self::Chrome => "chrome",
            Self::Both => "both",
        }
    }

    /// Whether the JSONL file is written.
    pub fn jsonl(self) -> bool {
        matches!(self, Self::Jsonl | Self::Both)
    }

    /// Whether the Chrome-trace file is written.
    pub fn chrome(self) -> bool {
        matches!(self, Self::Chrome | Self::Both)
    }
}

static DIR_OVERRIDE: OnceLock<PathBuf> = OnceLock::new();

/// Installs the `--trace-out` directory override for this process. Only the
/// first call wins (the CLI parses flags once).
pub fn set_mi_trace_dir(dir: impl Into<PathBuf>) {
    let _ = DIR_OVERRIDE.set(dir.into());
}

/// Where decision traces are written: the `--trace-out` override, else
/// `$PROTEUS_TRACE_DIR`, else `results/trace-mi/`.
pub fn mi_trace_dir() -> PathBuf {
    if let Some(dir) = DIR_OVERRIDE.get() {
        return dir.clone();
    }
    match std::env::var_os(TRACE_DIR_ENV) {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => results_dir().join("trace-mi"),
    }
}

/// Destination for one run's decision trace:
/// `<mi_trace_dir>/<exp>/<run>.jsonl` and/or `<run>.trace.json`.
#[derive(Debug, Clone)]
pub struct MiTraceSink {
    exp: String,
    run: String,
    format: TraceFormat,
}

impl MiTraceSink {
    /// Creates a sink; path components are sanitized for the filesystem.
    pub fn new(exp: impl Into<String>, run: impl Into<String>, format: TraceFormat) -> Self {
        let clean = |s: String| s.replace(['/', '\\', ' '], "_");
        Self {
            exp: clean(exp.into()),
            run: clean(run.into()),
            format,
        }
    }

    /// Path of the JSONL export.
    pub fn jsonl_path(&self) -> PathBuf {
        mi_trace_dir()
            .join(&self.exp)
            .join(format!("{}.jsonl", self.run))
    }

    /// Path of the Chrome `trace_event` export.
    pub fn chrome_path(&self) -> PathBuf {
        mi_trace_dir()
            .join(&self.exp)
            .join(format!("{}.trace.json", self.run))
    }

    /// Every file this sink writes, in a stable order — jobs declare these
    /// as cache artifacts (`SimJob::with_artifact`) so warm cache hits
    /// replay the stored traces instead of leaving the files stale or
    /// missing.
    pub fn paths(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        if self.format.jsonl() {
            out.push(self.jsonl_path());
        }
        if self.format.chrome() {
            out.push(self.chrome_path());
        }
        out
    }

    /// Writes the run's decision trace in the selected format(s). I/O
    /// errors are ignored: tracing must never fail an experiment.
    pub fn write(&self, res: &SimResult) {
        let names: Vec<&str> = res.flows.iter().map(|f| f.name.as_str()).collect();
        if self.format.jsonl() {
            let path = self.jsonl_path();
            if let Some(parent) = path.parent() {
                let _ = fs::create_dir_all(parent);
            }
            let _ = fs::write(path, to_jsonl(&res.decisions, &names));
        }
        if self.format.chrome() {
            let path = self.chrome_path();
            if let Some(parent) = path.parent() {
                let _ = fs::create_dir_all(parent);
            }
            let _ = fs::write(path, to_chrome_trace(&res.decisions, &names));
        }
    }
}

/// The `repro trace-summary` report: aggregates every JSONL decision trace
/// under [`mi_trace_dir`] into per-experiment mode-switch counts and §5
/// filter hit-rates.
pub fn summary_report() -> String {
    let dir = mi_trace_dir();
    let mut exps: Vec<(String, TraceSummary, usize)> = Vec::new();
    let entries = match fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => {
            return format!(
                "no decision traces under {} — run an experiment with --trace-mi first\n",
                dir.display()
            );
        }
    };
    let mut subdirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subdirs.sort();
    for sub in subdirs {
        let exp = sub
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut sum = TraceSummary::default();
        let mut files = 0usize;
        let mut traces: Vec<PathBuf> = fs::read_dir(&sub)
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        traces.sort();
        for path in traces {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            files += 1;
            for line in text.lines() {
                sum.scan_jsonl_line(line);
            }
        }
        if files > 0 {
            exps.push((exp, sum, files));
        }
    }
    if exps.is_empty() {
        return format!(
            "no decision traces under {} — run an experiment with --trace-mi first\n",
            dir.display()
        );
    }

    let mut t = Table::new(
        format!("Decision-trace summary ({})", dir.display()),
        &[
            "experiment",
            "traces",
            "events",
            "mi_closes",
            "mode_sw",
            "implicit",
            "gate_hit%",
            "filter_ev",
            "probes",
            "decided%",
            "faults",
        ],
    );
    let pct = |x: f64| {
        if x.is_nan() {
            "-".to_string()
        } else {
            format!("{:.1}", x * 100.0)
        }
    };
    let mut total = TraceSummary::default();
    let mut total_files = 0usize;
    for (exp, s, files) in &exps {
        total.merge(s);
        total_files += files;
        t.row(vec![
            exp.clone(),
            files.to_string(),
            s.events.to_string(),
            s.mi_closes.to_string(),
            s.mode_switches.to_string(),
            s.implicit_mode_switches.to_string(),
            pct(s.gate_hit_rate()),
            s.ack_filter_events.to_string(),
            s.probe_outcomes.to_string(),
            pct(s.probe_decision_rate()),
            s.fault_events.to_string(),
        ]);
    }
    if exps.len() > 1 {
        t.row(vec![
            "total".into(),
            total_files.to_string(),
            total.events.to_string(),
            total.mi_closes.to_string(),
            total.mode_switches.to_string(),
            total.implicit_mode_switches.to_string(),
            pct(total.gate_hit_rate()),
            total.ack_filter_events.to_string(),
            total.probe_outcomes.to_string(),
            pct(total.probe_decision_rate()),
            total.fault_events.to_string(),
        ]);
    }
    format!("{}\n", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parses_and_selects_files() {
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("both"), Some(TraceFormat::Both));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert!(TraceFormat::Jsonl.jsonl() && !TraceFormat::Jsonl.chrome());
        assert!(!TraceFormat::Chrome.jsonl() && TraceFormat::Chrome.chrome());
        assert!(TraceFormat::Both.jsonl() && TraceFormat::Both.chrome());
        for f in [TraceFormat::Jsonl, TraceFormat::Chrome, TraceFormat::Both] {
            assert_eq!(TraceFormat::parse(f.tag()), Some(f));
        }
    }

    #[test]
    fn sink_paths_follow_format() {
        let s = MiTraceSink::new("fig6", "pair a/b", TraceFormat::Both);
        let paths = s.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("fig6/pair_a_b.jsonl"));
        assert!(paths[1].ends_with("fig6/pair_a_b.trace.json"));
        assert_eq!(
            MiTraceSink::new("x", "r", TraceFormat::Jsonl).paths().len(),
            1
        );
    }
}
