//! `stress`: the robustness campaign — fault profiles × protocols, with an
//! invariant checker and a generated `results/stress/` report.
//!
//! The paper's §5 noise-tolerance mechanisms are motivated by pathologies
//! (ACK compression, latency spikes, bursty loss) that the clean dumbbell
//! experiments never exercise. This campaign injects each pathology
//! deliberately via netsim's `FaultSchedule` (see `SCENARIOS.md`) and checks
//! that every protocol's *qualitative* contract survives:
//!
//! * **finite-utility** — no NaN/∞ ever reaches a utility value or a traced
//!   sending rate, on any profile;
//! * **rate-bounded** — PCC-family pacing stays within its configured bounds
//!   (`min_rate_mbps` from below, a generous multiple of the nominal link
//!   rate from above), even while the path misbehaves;
//! * **progress** — every flow still moves bytes over the measurement tail
//!   (faults degrade, they must not wedge);
//! * **scavenger-yields** — CUBIC competing with Proteus-S keeps ≥ 70% of
//!   the throughput it gets alone on the *same* faulty path (the yielding
//!   property is not a fair-weather behaviour);
//! * **ack-filter-trips** — under the ACK-compression profile the §5 per-ACK
//!   burst filter actually starts dropping samples (trace events
//!   `ack_filter dropping:true`), i.e. the defence the paper designed for
//!   this pathology engages.
//!
//! The matrix runs {Proteus-P, Proteus-S, CUBIC, BBR} alone on every
//! profile, plus a CUBIC-vs-Proteus-S pair per profile. Reports land in
//! `results/stress/robustness.txt` (+ CSVs); the whole campaign is
//! deterministic, so two runs produce byte-identical reports.

use std::fs;

use proteus_netsim::{
    run, AckCompression, FaultSchedule, FlowSpec, GilbertElliott, LinkSpec, ReorderConfig,
    Scenario, SimResult,
};
use proteus_trace::EventKind;
use proteus_transport::Dur;

use proteus_runner::{payload, SimJob};

use crate::mi_trace::MiTraceSink;
use crate::protocols::cc_traced;
use crate::report::{f2, results_dir, Table};
use crate::runner::{campaign, tail_mbps, trace_suffix, TraceSink, Traces, TRACE_EVERY};
use crate::RunCfg;

/// The fault profiles of the robustness matrix, in report order.
pub const PROFILES: &[&str] = &[
    "clean",
    "flap",
    "bw_step",
    "route_change",
    "burst_loss",
    "reorder",
    "ack_comp",
];

/// The protocols stressed alone on every profile.
pub const PROTOCOLS: &[&str] = &["Proteus-P", "Proteus-S", "CUBIC", "BBR"];

/// Ceiling for any traced sending rate, as a multiple of the nominal link
/// rate. Generous on purpose: slow-start overshoot is legitimate, a rate
/// that runs away by an order of magnitude beyond this is a bug.
const RATE_CAP_X: f64 = 16.0;

/// The Proteus rate floor (`ProteusConfig::min_rate_mbps`), Mbit/s.
const MIN_RATE_MBPS: f64 = 0.10;

/// Builds the named fault profile, scaled to a `secs`-second run on the
/// paper-default link. Pure: `(name, secs)` fully determines the schedule.
///
/// # Panics
/// Panics on an unknown profile name.
pub fn profile_schedule(name: &str, secs: f64) -> FaultSchedule {
    let at = |frac: f64| Dur::from_secs_f64(secs * frac);
    match name {
        // No faults: the control row every invariant must also hold on.
        "clean" => FaultSchedule::new(),
        // The link drops out for 400 ms, three times, starting mid-run.
        "flap" => FaultSchedule::new().flapping(
            at(0.4),
            Dur::from_millis(400),
            Dur::from_secs_f64(secs * 0.12),
            3,
        ),
        // Capacity collapses 50 -> 12.5 Mbps and stays there.
        "bw_step" => FaultSchedule::new().bandwidth_step(at(0.4), 12.5),
        // A route change triples the base RTT (30 ms -> 90 ms).
        "route_change" => FaultSchedule::new().rtt_step(at(0.4), Dur::from_millis(90)),
        // Gilbert-Elliott bursty loss: rare episodes, 30% loss inside one.
        "burst_loss" => FaultSchedule::new().with_burst_loss(GilbertElliott {
            p_enter: 0.001,
            p_exit: 0.05,
            loss_good: 0.0,
            loss_bad: 0.3,
        }),
        // 1% of packets delayed by up to 10 ms past their FIFO slot.
        "reorder" => FaultSchedule::new().with_reorder(ReorderConfig {
            prob: 0.01,
            max_extra: Dur::from_millis(10),
        }),
        // Every ~2 s the reverse path batches ACKs for 60 ms — the >50x
        // inter-ACK collapse the §5 per-ACK filter exists for.
        "ack_comp" => FaultSchedule::new().with_ack_compression(AckCompression {
            every: Dur::from_secs(2),
            hold: Dur::from_millis(60),
        }),
        other => panic!("unknown stress profile {other}"),
    }
}

// ---------------------------------------------------------------------------
// Per-run derived measurements (computed inside the job, cached as payload)
// ---------------------------------------------------------------------------

/// Count of non-finite values anywhere a utility or rate is reported:
/// telemetry samples and traced MI closes.
fn non_finite_count(res: &SimResult) -> u64 {
    let mut n = 0;
    for e in &res.trace {
        if e.utility.is_some_and(|u| !u.is_finite()) {
            n += 1;
        }
        if e.rate_mbps.is_some_and(|r| !r.is_finite()) {
            n += 1;
        }
    }
    for fe in &res.decisions {
        if let EventKind::MiClose(m) = fe.event.kind {
            if !m.utility.is_finite() || !m.rate_mbps.is_finite() {
                n += 1;
            }
        }
    }
    n
}

/// (max, min) traced sending rate across telemetry samples and MI closes,
/// Mbit/s. Returns `(0, +inf)` when nothing reported a rate (pure
/// window-based senders).
fn rate_envelope(res: &SimResult) -> (f64, f64) {
    let mut max = 0.0_f64;
    let mut min = f64::INFINITY;
    for e in &res.trace {
        if let Some(r) = e.rate_mbps {
            max = max.max(r);
            min = min.min(r);
        }
    }
    for fe in &res.decisions {
        if let EventKind::MiClose(m) = fe.event.kind {
            max = max.max(m.rate_mbps);
            min = min.min(m.rate_mbps);
        }
    }
    (max, min)
}

/// Number of §5 per-ACK filter episodes that *started* (dropping=true).
fn ack_filter_trips(res: &SimResult) -> u64 {
    res.decisions
        .iter()
        .filter(|fe| matches!(fe.event.kind, EventKind::AckFilter(a) if a.dropping))
        .count() as u64
}

/// Decoded stress-single payload.
#[derive(Debug, Clone, Copy)]
pub struct StressSingleOut {
    /// Tail-window goodput, Mbps.
    pub tail_mbps: f64,
    /// 95th-percentile RTT, seconds.
    pub p95_rtt_s: f64,
    /// Sender-observed loss rate.
    pub loss_rate: f64,
    /// Maximum traced sending rate, Mbps (0 when untraced).
    pub max_rate_mbps: f64,
    /// Minimum traced sending rate, Mbps (+inf when untraced).
    pub min_rate_mbps: f64,
    /// Non-finite utility/rate values observed.
    pub non_finite: u64,
    /// §5 per-ACK filter episodes started.
    pub ack_filter_trips: u64,
}

fn decode_stress_single(payload_text: &str) -> StressSingleOut {
    let v = payload::decode_floats(payload_text);
    StressSingleOut {
        tail_mbps: v[0],
        p95_rtt_s: v[1],
        loss_rate: v[2],
        max_rate_mbps: v[3],
        min_rate_mbps: v[4],
        non_finite: v[5] as u64,
        ack_filter_trips: v[6] as u64,
    }
}

/// Decoded stress-pair payload.
#[derive(Debug, Clone, Copy)]
pub struct StressPairOut {
    /// Primary's tail goodput, Mbps.
    pub primary_mbps: f64,
    /// Scavenger's tail goodput, Mbps.
    pub scav_mbps: f64,
    /// Non-finite utility/rate values observed (either flow).
    pub non_finite: u64,
}

fn decode_stress_pair(payload_text: &str) -> StressPairOut {
    let v = payload::decode_floats(payload_text);
    StressPairOut {
        primary_mbps: v[0],
        scav_mbps: v[1],
        non_finite: v[2] as u64,
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

fn stress_scenario(
    flows: Vec<(&'static str, f64, u64)>, // (proto, start_s, salt)
    secs: f64,
    seed: u64,
    sched: FaultSchedule,
) -> Scenario {
    let mut sc = Scenario::new(LinkSpec::paper_default(), Dur::from_secs_f64(secs))
        .with_seed(seed)
        .with_rtt_stride(2)
        // Decision traces are always on: the invariant checker reads them.
        .with_trace(TRACE_EVERY)
        .with_faults(sched);
    for (proto, start, salt) in flows {
        sc = sc.flow(FlowSpec::bulk(
            proto,
            Dur::from_secs_f64(start),
            move || cc_traced(proto, seed ^ salt),
        ));
    }
    sc
}

fn stress_single_job(
    profile: &'static str,
    proto: &'static str,
    secs: f64,
    seed: u64,
    traces: Traces,
) -> SimJob {
    let descriptor = format!(
        "stress-single/profile={profile}/proto={proto}/secs={secs:?}/seed={seed}{}/v1",
        trace_suffix(traces)
    );
    let run_name = format!("stress-{profile}-{proto}-s{seed}");
    let sink = traces
        .telemetry
        .then(|| TraceSink::new("stress", &run_name));
    let mi = traces
        .decisions
        .map(|fmt| MiTraceSink::new("stress", &run_name, fmt));
    let artifacts: Vec<_> = mi.iter().flat_map(|s| s.paths()).collect();
    let mut job = SimJob::new(descriptor, format!("{proto} under {profile}"), move || {
        let res = run(stress_scenario(
            vec![(proto, 0.0, 0xA5)],
            secs,
            seed,
            profile_schedule(profile, secs),
        ));
        if let Some(s) = &sink {
            s.write(&res);
        }
        if let Some(s) = &mi {
            s.write(&res);
        }
        let (max_rate, min_rate) = rate_envelope(&res);
        payload::encode_floats(&[
            tail_mbps(&res, 0, secs),
            res.flows[0].rtt_percentile(95.0).unwrap_or(0.0),
            res.flows[0].loss_rate(),
            max_rate,
            min_rate,
            non_finite_count(&res) as f64,
            ack_filter_trips(&res) as f64,
        ])
    });
    for path in artifacts {
        job = job.with_artifact(path);
    }
    job
}

fn stress_pair_job(
    profile: &'static str,
    primary: &'static str,
    scavenger: &'static str,
    secs: f64,
    seed: u64,
    traces: Traces,
) -> SimJob {
    let descriptor = format!(
        "stress-pair/profile={profile}/primary={primary}/scav={scavenger}/secs={secs:?}/seed={seed}{}/v1",
        trace_suffix(traces)
    );
    let run_name = format!("stress-{profile}-{primary}-vs-{scavenger}-s{seed}");
    let sink = traces
        .telemetry
        .then(|| TraceSink::new("stress", &run_name));
    let mi = traces
        .decisions
        .map(|fmt| MiTraceSink::new("stress", &run_name, fmt));
    let artifacts: Vec<_> = mi.iter().flat_map(|s| s.paths()).collect();
    let mut job = SimJob::new(
        descriptor,
        format!("{primary} vs {scavenger} under {profile}"),
        move || {
            let res = run(stress_scenario(
                vec![(primary, 0.0, 0xA5), (scavenger, 5.0, 0x5A)],
                secs,
                seed,
                profile_schedule(profile, secs),
            ));
            if let Some(s) = &sink {
                s.write(&res);
            }
            if let Some(s) = &mi {
                s.write(&res);
            }
            payload::encode_floats(&[
                tail_mbps(&res, 0, secs),
                tail_mbps(&res, 1, secs),
                non_finite_count(&res) as f64,
            ])
        },
    );
    for path in artifacts {
        job = job.with_artifact(path);
    }
    job
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

/// One invariant verdict: a named check on one (profile, subject) cell.
#[derive(Debug, Clone)]
pub struct InvariantCheck {
    /// Fault profile the run used.
    pub profile: &'static str,
    /// Protocol or pair the check applies to.
    pub subject: String,
    /// Check name (`finite-utility`, `rate-bounded`, `progress`,
    /// `scavenger-yields`, `ack-filter-trips`).
    pub check: &'static str,
    /// The measured value the verdict was taken on.
    pub value: f64,
    /// Whether the invariant held.
    pub pass: bool,
}

/// The machine-checkable result of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// Every invariant verdict, in matrix order.
    pub checks: Vec<InvariantCheck>,
    /// The rendered report text.
    pub report: String,
}

impl StressOutcome {
    /// Whether every invariant held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed.
    pub fn failures(&self) -> Vec<&InvariantCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

fn verdict(pass: bool) -> String {
    if pass { "PASS" } else { "FAIL" }.into()
}

// ---------------------------------------------------------------------------
// The experiment
// ---------------------------------------------------------------------------

/// Runs the robustness campaign and returns both the rendered report and
/// the machine-checkable invariant verdicts.
pub fn run_with_outcome(cfg: RunCfg) -> StressOutcome {
    let secs = if cfg.quick { 24.0 } else { 60.0 };
    let nominal_mbps = LinkSpec::paper_default().bandwidth_mbps;
    let traces = Traces::from_cfg(&cfg);

    let mut camp = campaign("stress", cfg);
    let mut single_slots: Vec<Vec<usize>> = Vec::new(); // [profile][proto]
    let mut pair_slots: Vec<usize> = Vec::new(); // [profile]
    for &profile in PROFILES {
        single_slots.push(
            PROTOCOLS
                .iter()
                .map(|&proto| {
                    camp.push_dedup(stress_single_job(profile, proto, secs, cfg.seed, traces))
                })
                .collect(),
        );
        pair_slots.push(camp.push_dedup(stress_pair_job(
            profile,
            "CUBIC",
            "Proteus-S",
            secs,
            cfg.seed,
            traces,
        )));
    }
    let result = camp.run();

    // ---- Measurement table. ----
    let mut matrix = Table::new(
        "Stress matrix: tail goodput (Mbps) per fault profile",
        &[
            "profile",
            "Proteus-P",
            "Proteus-S",
            "CUBIC",
            "BBR",
            "CUBIC|Proteus-S",
        ],
    );
    let mut checks: Vec<InvariantCheck> = Vec::new();
    for (fi, &profile) in PROFILES.iter().enumerate() {
        let singles: Vec<StressSingleOut> = single_slots[fi]
            .iter()
            .map(|&s| decode_stress_single(&result.outputs[s]))
            .collect();
        let pair = decode_stress_pair(&result.outputs[pair_slots[fi]]);
        let mut row = vec![profile.to_string()];
        row.extend(singles.iter().map(|o| f2(o.tail_mbps)));
        row.push(format!("{}|{}", f2(pair.primary_mbps), f2(pair.scav_mbps)));
        matrix.row(row);

        for (pi, &proto) in PROTOCOLS.iter().enumerate() {
            let o = &singles[pi];
            checks.push(InvariantCheck {
                profile,
                subject: proto.into(),
                check: "finite-utility",
                value: o.non_finite as f64,
                pass: o.non_finite == 0,
            });
            // The profile's own capacity floor: bw_step leaves 12.5 Mbps,
            // an outage-free tail still spans the flap windows — 0.5 Mbps
            // of progress just asserts "not wedged".
            checks.push(InvariantCheck {
                profile,
                subject: proto.into(),
                check: "progress",
                value: o.tail_mbps,
                pass: o.tail_mbps > 0.5,
            });
            // Rate bounds only bind where a rate is traced at all; the
            // PCC family additionally must respect its configured floor.
            if o.max_rate_mbps > 0.0 {
                let capped = o.max_rate_mbps <= RATE_CAP_X * nominal_mbps;
                let floored =
                    !proto.starts_with("Proteus") || o.min_rate_mbps >= MIN_RATE_MBPS * 0.999;
                checks.push(InvariantCheck {
                    profile,
                    subject: proto.into(),
                    check: "rate-bounded",
                    value: o.max_rate_mbps,
                    pass: capped && floored,
                });
            }
            if profile == "ack_comp" && proto.starts_with("Proteus") {
                checks.push(InvariantCheck {
                    profile,
                    subject: proto.into(),
                    check: "ack-filter-trips",
                    value: o.ack_filter_trips as f64,
                    pass: o.ack_filter_trips >= 1,
                });
            }
        }
        // Yielding is judged the way the paper judges it (Fig. 6/10): the
        // primary keeps (almost) the throughput it had *alone on the same
        // faulty path*. A share-based check would wrongly fail profiles
        // where the fault itself cripples the primary (e.g. reordering
        // collapses CUBIC) and the scavenger correctly picks up capacity
        // the primary cannot use.
        let cubic_alone = singles[PROTOCOLS
            .iter()
            .position(|&p| p == "CUBIC")
            .expect("CUBIC is in the matrix")]
        .tail_mbps;
        let ratio = pair.primary_mbps / cubic_alone.max(1e-9);
        checks.push(InvariantCheck {
            profile,
            subject: "CUBIC vs Proteus-S".into(),
            check: "scavenger-yields",
            value: ratio,
            pass: ratio >= 0.7,
        });
        checks.push(InvariantCheck {
            profile,
            subject: "CUBIC vs Proteus-S".into(),
            check: "finite-utility",
            value: pair.non_finite as f64,
            pass: pair.non_finite == 0,
        });
    }

    let mut inv = Table::new(
        "Invariants: qualitative contracts under every fault profile",
        &["profile", "subject", "check", "value", "verdict"],
    );
    for c in &checks {
        inv.row(vec![
            c.profile.into(),
            c.subject.clone(),
            c.check.into(),
            format!("{:.4}", c.value),
            verdict(c.pass),
        ]);
    }

    let failed = checks.iter().filter(|c| !c.pass).count();
    let summary = format!(
        "invariants: {}/{} passed{}\n",
        checks.len() - failed,
        checks.len(),
        if failed == 0 {
            String::new()
        } else {
            format!(" — {failed} FAILED")
        }
    );
    let text = format!("{}\n{}\n{summary}", matrix.render(), inv.render());

    // The robustness report gets its own directory, as promised by the
    // docs: results/stress/robustness.{txt,csv}.
    let dir = results_dir().join("stress");
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("robustness.txt"), &text);
    let _ = fs::write(dir.join("matrix.csv"), matrix.to_csv());
    let _ = fs::write(dir.join("invariants.csv"), inv.to_csv());

    StressOutcome {
        checks,
        report: text,
    }
}

/// Registry entry point: runs the campaign and returns the report.
pub fn run_experiment(cfg: RunCfg) -> String {
    run_with_outcome(cfg).report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_defined_and_clean_is_empty() {
        for &p in PROFILES {
            let s = profile_schedule(p, 24.0);
            assert_eq!(s.is_empty(), p == "clean", "{p}");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_profile_panics() {
        let _ = profile_schedule("gremlins", 24.0);
    }

    #[test]
    fn stress_jobs_have_distinct_identities() {
        let a = stress_single_job("flap", "CUBIC", 24.0, 1, Traces::off());
        let b = stress_single_job("bw_step", "CUBIC", 24.0, 1, Traces::off());
        let c = stress_single_job("flap", "BBR", 24.0, 1, Traces::off());
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        let p = stress_pair_job("flap", "CUBIC", "Proteus-S", 24.0, 1, Traces::off());
        assert_ne!(a.key(), p.key());
    }

    #[test]
    fn invariant_outcome_reports_failures() {
        let mk = |pass| StressOutcome {
            checks: vec![InvariantCheck {
                profile: "clean",
                subject: "CUBIC".into(),
                check: "progress",
                value: 1.0,
                pass,
            }],
            report: String::new(),
        };
        assert!(mk(true).all_pass());
        assert!(!mk(false).all_pass());
        assert_eq!(mk(false).failures().len(), 1);
    }
}
