//! Fig. 6: yielding to primary flows (§6.2).
//!
//! One primary flow, then one "scavenger" 5 s later, on 50 Mbps / 30 ms
//! with shallow (75 KB, 0.4 BDP) and large (375 KB, 2 BDP) buffers. Four
//! protocols play the scavenger role — LEDBAT, Proteus-S, Proteus-P, COPA
//! — against five primaries. Reports the *primary throughput ratio*
//! (throughput with scavenger / throughput alone) and the joint capacity
//! utilization.

use proteus_netsim::LinkSpec;
use proteus_transport::Dur;

use crate::protocols::PRIMARIES;
use crate::report::{f2, pct, write_report, Table};
use crate::runner::{run_pair, run_single, tail_mbps};
use crate::RunCfg;

/// The scavenger-role protocols of Fig. 6(a–d).
pub const SCAV_ROLES: &[&str] = &["LEDBAT", "Proteus-S", "Proteus-P", "COPA"];

/// One cell of the Fig.-6 matrix.
#[derive(Debug, Clone, Copy)]
pub struct YieldCell {
    /// Primary throughput with the scavenger present, Mbps.
    pub primary_mbps: f64,
    /// Primary throughput running alone, Mbps.
    pub alone_mbps: f64,
    /// Scavenger throughput, Mbps.
    pub scav_mbps: f64,
}

impl YieldCell {
    /// `primary with scavenger / primary alone`.
    pub fn ratio(&self) -> f64 {
        if self.alone_mbps <= 0.0 {
            0.0
        } else {
            self.primary_mbps / self.alone_mbps
        }
    }

    /// Joint utilization of a 50 Mbps link.
    pub fn utilization(&self) -> f64 {
        (self.primary_mbps + self.scav_mbps) / 50.0
    }
}

/// Measures one (primary, scavenger, buffer) cell.
pub fn measure_cell(
    primary: &'static str,
    scavenger: &'static str,
    buffer: u64,
    secs: f64,
    seed: u64,
) -> YieldCell {
    let link = LinkSpec::new(50.0, Dur::from_millis(30), buffer);
    let alone = run_single(primary, link, secs, seed);
    let both = run_pair(primary, scavenger, link, secs, seed);
    YieldCell {
        primary_mbps: tail_mbps(&both, 0, secs),
        alone_mbps: tail_mbps(&alone, 0, secs),
        scav_mbps: tail_mbps(&both, 1, secs),
    }
}

/// Runs the Fig.-6 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 25.0 } else { 60.0 };
    let buffers: &[(u64, &str)] = &[(75_000, "75KB"), (375_000, "375KB")];

    let mut tables = Vec::new();
    for &scav in SCAV_ROLES {
        let mut t = Table::new(
            format!("Fig 6: {scav} as scavenger — primary throughput ratio / joint utilization"),
            &["primary", "ratio@75KB", "util@75KB", "ratio@375KB", "util@375KB"],
        );
        for &primary in PRIMARIES {
            if primary == scav {
                continue; // the paper doesn't run a protocol against itself here
            }
            let mut row = vec![primary.to_string()];
            for &(buf, _) in buffers {
                let cell = measure_cell(primary, scav, buf, secs, cfg.seed);
                row.push(pct(cell.ratio()));
                row.push(f2(cell.utilization()));
            }
            // Reorder: ratio75, util75, ratio375, util375 (already in order).
            t.row(row);
        }
        tables.push(t);
    }

    let mut text = String::new();
    for t in &tables {
        text.push_str(&t.render());
        text.push('\n');
    }
    let refs: Vec<&Table> = tables.iter().collect();
    write_report("fig6", &text, &refs);
    text
}
