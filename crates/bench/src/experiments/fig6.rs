//! Fig. 6: yielding to primary flows (§6.2).
//!
//! One primary flow, then one "scavenger" 5 s later, on 50 Mbps / 30 ms
//! with shallow (75 KB, 0.4 BDP) and large (375 KB, 2 BDP) buffers. Four
//! protocols play the scavenger role — LEDBAT, Proteus-S, Proteus-P, COPA
//! — against five primaries. Reports the *primary throughput ratio*
//! (throughput with scavenger / throughput alone) and the joint capacity
//! utilization.

use proteus_netsim::LinkSpec;
use proteus_transport::Dur;

use crate::protocols::PRIMARIES;
use crate::report::{f2, pct, write_report, Table};
use crate::runner::{campaign, decode_pair, decode_single, link_tag, pair_job, single_job, Traces};
use crate::RunCfg;

/// The scavenger-role protocols of Fig. 6(a–d).
pub const SCAV_ROLES: &[&str] = &["LEDBAT", "Proteus-S", "Proteus-P", "COPA"];

/// One cell of the Fig.-6 matrix.
#[derive(Debug, Clone, Copy)]
pub struct YieldCell {
    /// Primary throughput with the scavenger present, Mbps.
    pub primary_mbps: f64,
    /// Primary throughput running alone, Mbps.
    pub alone_mbps: f64,
    /// Scavenger throughput, Mbps.
    pub scav_mbps: f64,
}

impl YieldCell {
    /// `primary with scavenger / primary alone`.
    pub fn ratio(&self) -> f64 {
        if self.alone_mbps <= 0.0 {
            0.0
        } else {
            self.primary_mbps / self.alone_mbps
        }
    }

    /// Joint utilization of a 50 Mbps link.
    pub fn utilization(&self) -> f64 {
        (self.primary_mbps + self.scav_mbps) / 50.0
    }
}

/// Submits the alone + pair jobs for one (primary, scavenger, buffer)
/// cell into `camp`, returning the two output slots. Alone baselines are
/// deduplicated across scavengers and across experiments (Fig. 19 uses
/// the same descriptors).
#[allow(clippy::too_many_arguments)]
pub fn push_cell(
    camp: &mut proteus_runner::Campaign,
    exp: &'static str,
    primary: &'static str,
    scavenger: &'static str,
    buffer: u64,
    secs: f64,
    seed: u64,
    trace: Traces,
) -> (usize, usize) {
    let link = LinkSpec::new(50.0, Dur::from_millis(30), buffer);
    let tag = link_tag(&link);
    let alone = camp.push_dedup(single_job(exp, &tag, primary, link, secs, seed, trace));
    let both = camp.push_dedup(pair_job(
        exp, &tag, primary, scavenger, link, secs, seed, trace,
    ));
    (alone, both)
}

/// Reads one cell back out of campaign outputs.
pub fn cell_from_outputs(outputs: &[String], slots: (usize, usize)) -> YieldCell {
    let alone = decode_single(&outputs[slots.0]);
    let both = decode_pair(&outputs[slots.1]);
    YieldCell {
        primary_mbps: both.primary_mbps,
        alone_mbps: alone.tail_mbps,
        scav_mbps: both.scav_mbps,
    }
}

/// Runs the Fig.-6 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 25.0 } else { 60.0 };
    let buffers: &[(u64, &str)] = &[(75_000, "75KB"), (375_000, "375KB")];

    let mut camp = campaign("fig6", cfg);
    let mut slots = Vec::new();
    for &scav in SCAV_ROLES {
        for &primary in PRIMARIES {
            if primary == scav {
                continue; // the paper doesn't run a protocol against itself here
            }
            for &(buf, _) in buffers {
                slots.push(push_cell(
                    &mut camp,
                    "fig6",
                    primary,
                    scav,
                    buf,
                    secs,
                    cfg.seed,
                    Traces::from_cfg(&cfg),
                ));
            }
        }
    }
    let result = camp.run();
    let mut slot = slots.into_iter();

    let mut tables = Vec::new();
    for &scav in SCAV_ROLES {
        let mut t = Table::new(
            format!("Fig 6: {scav} as scavenger — primary throughput ratio / joint utilization"),
            &[
                "primary",
                "ratio@75KB",
                "util@75KB",
                "ratio@375KB",
                "util@375KB",
            ],
        );
        for &primary in PRIMARIES {
            if primary == scav {
                continue;
            }
            let mut row = vec![primary.to_string()];
            for _ in buffers {
                let cell = cell_from_outputs(&result.outputs, slot.next().expect("slot per cell"));
                row.push(pct(cell.ratio()));
                row.push(f2(cell.utilization()));
            }
            // Reorder: ratio75, util75, ratio375, util375 (already in order).
            t.row(row);
        }
        tables.push(t);
    }

    let mut text = String::new();
    for t in &tables {
        text.push_str(&t.render());
        text.push('\n');
    }
    let refs: Vec<&Table> = tables.iter().collect();
    write_report("fig6", &text, &refs);
    text
}
