//! Fig. 4: random-loss tolerance (§6.1.2).
//!
//! Single flow, 50 Mbps / 30 ms / 375 KB (2 BDP), random loss swept from 0
//! to 6 %. The paper's claims: Proteus/Vivace tolerate the 5 % design
//! point (Proteus-P somewhat better than Vivace thanks to its noise
//! control), LEDBAT collapses at even 0.001 %, and BBR/COPA barely react.

use proteus_netsim::LinkSpec;
use proteus_transport::Dur;

use crate::protocols::ALL_FIG3;
use crate::report::{f2, write_report, Table};
use crate::runner::{run_single, tail_mbps};
use crate::RunCfg;

fn loss_rates(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.02]
    } else {
        vec![0.0, 1e-5, 1e-4, 1e-3, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06]
    }
}

/// Runs the Fig.-4 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let mut t = Table::new("Fig 4: throughput (Mbps) vs random loss rate", &{
        let mut h = vec!["loss"];
        h.extend(ALL_FIG3);
        h
    });
    for &loss in &loss_rates(cfg.quick) {
        let mut row = vec![format!("{loss}")];
        for &proto in ALL_FIG3 {
            let mut sum = 0.0;
            for trial in 0..cfg.trials {
                let link =
                    LinkSpec::new(50.0, Dur::from_millis(30), 375_000).with_random_loss(loss);
                let res = run_single(proto, link, secs, cfg.seed + 31 * trial);
                sum += tail_mbps(&res, 0, secs);
            }
            row.push(f2(sum / cfg.trials as f64));
        }
        t.row(row);
    }
    let text = format!("{}\n", t.render());
    write_report("fig4", &text, &[&t]);
    text
}
