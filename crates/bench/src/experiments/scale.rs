//! `scale`: ISP-scale flow populations — 1k/10k/100k-flow cells with
//! equilibrium-fairness and scavenger-harm invariants.
//!
//! The paper's Appendix A argues a unique fair equilibrium among competing
//! Proteus senders, and the scavenger contract promises "harm ≤ ε" to
//! primary traffic — but both the paper and the small-N figure campaigns
//! only ever run a handful of flows. This campaign drives the engine's
//! timing-wheel scheduler and struct-of-arrays flow table (see DESIGN.md
//! §4c) at population scale: thousands of concurrent flows with Poisson
//! arrival/departure churn (`ChurnSpec`, see SCENARIOS.md), and checks the
//! claims that small-N experiments cannot:
//!
//! * **equilibrium-jain** — a static population of same-class Proteus-P
//!   flows at fig-5-like per-flow rates (≥ 40 Mbps each) reaches Jain's
//!   fairness ≥ 0.9 over the measurement tail. Thin-flow cells (1k/10k
//!   flows at 0.5–2 Mbps each) are *reported unchecked*: convergence needs
//!   ≈ 2.4 Gb delivered per flow, and below that the MI gradient estimate
//!   starves (see [`fair_cells`]);
//! * **population-churns** — churn cells actually turn their population
//!   over (total flows ≥ warm-start + 80% of the expected Poisson
//!   arrivals), and the 100k cell really exceeds 100 000 total flows;
//! * **progress** — a churning mixed population keeps the bottleneck busy
//!   (utilization ≥ 50% over the tail; arrivals never wedge the link);
//! * **scavenger-harm** — a churning Proteus-S population costs the static
//!   CUBIC primary class at most 30% of the aggregate throughput it gets
//!   alone on the same link (the paper's harm ≤ ε, at population scale).
//!
//! Every cell runs without telemetry tracing and with coarse RTT/throughput
//! sampling (`rtt_stride`, `throughput_bin`): at 10k+ flows, per-ACK
//! sampling would dominate the run. Reports land in
//! `results/scale/scale.txt` (+ CSVs); the campaign is deterministic, so
//! two runs produce byte-identical reports.

use std::fs;

use proteus_netsim::{run, ChurnClass, ChurnSpec, FlowSpec, LinkSpec, Scenario, SimResult};
use proteus_stats::jain_index;
use proteus_transport::Dur;

use proteus_runner::{payload, SimJob};

use crate::protocols::cc;
use crate::report::{f2, results_dir, Table};
use crate::runner::campaign;
use crate::RunCfg;

/// The mixed churn population, `(class, weight)`: mostly primaries with a
/// substantial scavenger share, like an access link would see.
pub const CHURN_MIX: &[(&str, f64)] = &[
    ("Proteus-P", 4.0),
    ("Proteus-S", 3.0),
    ("CUBIC", 2.0),
    ("BBR", 1.0),
];

/// One population cell of the scale matrix.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Row label, e.g. `"churn-10k"`.
    pub name: &'static str,
    /// Warm-start population (`ChurnSpec::initial`).
    pub initial: usize,
    /// Poisson arrival rate, flows/sec (0 = static population).
    pub arrivals_per_sec: f64,
    /// Mean exponential lifetime, seconds (ignored for static cells, whose
    /// lifetime is pinned far beyond the run).
    pub mean_lifetime_s: f64,
    /// Bottleneck bandwidth, Mbit/s (sized per concurrent flow).
    pub bw_mbps: f64,
    /// Run length, seconds.
    pub secs: f64,
}

impl Cell {
    /// Expected total flow count: warm start + mean Poisson arrivals.
    pub fn expected_total(&self) -> f64 {
        self.initial as f64 + self.arrivals_per_sec * self.secs
    }
}

/// Static same-class Proteus-P populations for the equilibrium check.
/// The bool marks whether the cell's Jain index is invariant-checked.
///
/// Calibration: Proteus-P's MI controller needs ≈ 2.4 Gb of per-flow
/// traffic (rate × time) before the population converges — at 1 Mbps per
/// flow the per-MI ACK sample count starves the gradient estimate and
/// Jain plateaus near 0.2–0.4 no matter how long the run. The *checked*
/// cells therefore run at 40 Mbps per flow (fig. 5's regime, 10× its flow
/// count); the 1k/10k thin-flow cells are *reported* so the degradation
/// is visible in the matrix, not hidden by cell selection.
pub fn fair_cells(quick: bool) -> Vec<(Cell, bool)> {
    let fair = |name, initial, bw_mbps, secs| Cell {
        name,
        initial,
        arrivals_per_sec: 0.0,
        mean_lifetime_s: 0.0,
        bw_mbps,
        secs,
    };
    if quick {
        vec![(fair("fair-32", 32, 1280.0, 36.0), true)]
    } else {
        vec![
            (fair("fair-100", 100, 4000.0, 90.0), true),
            // ~2 Mbps per flow at 1k, ~0.5 Mbps at 10k: the regime the
            // ROADMAP's "millions of users" north star cares about is many
            // small flows — where fairness measurably degrades.
            (fair("fair-1k", 1000, 2000.0, 30.0), false),
            (fair("fair-10k", 10_000, 5000.0, 30.0), false),
        ]
    }
}

/// Churning mixed populations. Arrival rate × mean lifetime = warm-start
/// size, so each cell holds its concurrency roughly constant (M/G/∞).
pub fn churn_cells(quick: bool) -> Vec<Cell> {
    if quick {
        vec![Cell {
            name: "churn-250",
            initial: 250,
            arrivals_per_sec: 50.0,
            mean_lifetime_s: 5.0,
            bw_mbps: 250.0,
            secs: 16.0,
        }]
    } else {
        vec![
            Cell {
                name: "churn-1k",
                initial: 1000,
                arrivals_per_sec: 100.0,
                mean_lifetime_s: 10.0,
                bw_mbps: 1000.0,
                secs: 60.0,
            },
            Cell {
                name: "churn-10k",
                initial: 10_000,
                arrivals_per_sec: 833.3,
                mean_lifetime_s: 12.0,
                bw_mbps: 5000.0,
                secs: 60.0,
            },
            // The 100k cell: same 10k-concurrent operating point held for
            // 120 s, so >100 000 distinct flows traverse the bottleneck.
            Cell {
                name: "churn-100k",
                initial: 10_000,
                arrivals_per_sec: 833.3,
                mean_lifetime_s: 12.0,
                bw_mbps: 5000.0,
                secs: 120.0,
            },
        ]
    }
}

/// The scavenger-harm cell: `primaries` static CUBIC flows, alone and then
/// against a churning Proteus-S population.
#[derive(Debug, Clone, Copy)]
pub struct HarmCell {
    /// Row label, e.g. `"harm-500"`.
    pub name: &'static str,
    /// Number of static CUBIC primary flows.
    pub primaries: usize,
    /// The churning Proteus-S background population (link + run length).
    pub scavengers: Cell,
}

/// The invariant-checked scavenger-harm cell: an access-link operating
/// point (100 Mbps, 4 CUBIC primaries, ~10 concurrent churning
/// scavengers). Calibration showed the ≥ 70% contract holds here with
/// margin (ratio ≈ 0.84) but decays as scavenger density grows — see
/// [`harm_dense_cell`].
pub fn harm_cell(quick: bool) -> HarmCell {
    HarmCell {
        name: "harm-10",
        primaries: 4,
        scavengers: Cell {
            name: "harm-10",
            initial: 10,
            arrivals_per_sec: 2.0,
            mean_lifetime_s: 5.0,
            bw_mbps: 100.0,
            secs: if quick { 16.0 } else { 40.0 },
        },
    }
}

/// The dense companion cell — 100 concurrent churning scavengers on the
/// same link. Reported but *not* invariant-checked: sustained churn keeps
/// every scavenger a latecomer (its base-RTT estimate forms inside the
/// standing queue, so the deviation signal it yields on never fires), and
/// per-flow shares near the rate floor starve the estimator of ACK
/// samples. The measured yield ratio collapses (≈ 0.27 static, ≈ 0.03
/// under churn) — the population-scale failure mode this campaign exists
/// to surface.
pub fn harm_dense_cell(quick: bool) -> HarmCell {
    HarmCell {
        name: "harm-100",
        primaries: 4,
        scavengers: Cell {
            name: "harm-100",
            initial: 100,
            arrivals_per_sec: 20.0,
            mean_lifetime_s: 5.0,
            bw_mbps: 100.0,
            secs: if quick { 16.0 } else { 40.0 },
        },
    }
}

// ---------------------------------------------------------------------------
// Scenario assembly
// ---------------------------------------------------------------------------

/// Tail measurement window: the last third of the run, once the warm-start
/// transient has churned out.
fn tail(secs: f64) -> (proteus_transport::Time, proteus_transport::Time) {
    (
        proteus_transport::Time::from_secs_f64(secs * 2.0 / 3.0),
        proteus_transport::Time::from_secs_f64(secs),
    )
}

/// Population scenarios never trace: coarse RTT sampling and 2 s throughput
/// bins keep 10k-flow metrics from dominating the run.
fn scale_scenario(cell: Cell, seed: u64, classes: Vec<ChurnClass>) -> Scenario {
    // Static cells pin the mean lifetime three orders of magnitude beyond
    // the run, so departures are negligible (the exponential tail still
    // technically exists — determinism, not semantics, is what matters).
    let lifetime = if cell.arrivals_per_sec > 0.0 {
        cell.mean_lifetime_s
    } else {
        cell.secs * 1000.0
    };
    Scenario::new(
        LinkSpec::new(cell.bw_mbps, Dur::from_millis(30), 1).with_buffer_bdp(4.0),
        Dur::from_secs_f64(cell.secs),
    )
    .with_seed(seed)
    .with_rtt_stride(64)
    .with_throughput_bin(Dur::from_secs(2))
    .with_churn(
        ChurnSpec::new(cell.arrivals_per_sec, Dur::from_secs_f64(lifetime), classes)
            .with_initial(cell.initial),
    )
}

/// One equal-share class per entry of `mix`; each spawned flow derives its
/// CC seed from the scenario seed and its flow id.
fn classes(mix: &'static [(&'static str, f64)], seed: u64) -> Vec<ChurnClass> {
    mix.iter()
        .map(|&(proto, weight)| {
            ChurnClass::new(
                proto,
                weight,
                Box::new(move |id| cc(proto, seed ^ (id as u64).wrapping_mul(0x9E37_79B9))),
            )
        })
        .collect()
}

/// Sum of tail goodput over flows selected by `pred`, Mbps.
/// Per-cell engine accounting on stderr: events dispatched, events/sec of
/// simulated work, and the share served by the fused wire path (DESIGN.md
/// §4f). Stderr only — committed reports must stay byte-identical across
/// wire-path changes — and inside the job closure, so cached cells (which
/// run no simulation) print nothing.
fn eprint_cell_events(cell: &str, res: &SimResult) {
    let ev = &res.events;
    eprintln!(
        "    [{cell}] {:.1}M events dispatched, {:.1}% fused, peak queue {}",
        ev.dispatched() as f64 / 1e6,
        100.0 * ev.fused_fraction(),
        ev.peak_queue
    );
}

fn aggregate_mbps(res: &SimResult, secs: f64, pred: impl Fn(&str) -> bool) -> f64 {
    let (from, to) = tail(secs);
    res.flows
        .iter()
        .filter(|f| pred(&f.name))
        .map(|f| f.throughput_mbps(from, to))
        .sum()
}

// ---------------------------------------------------------------------------
// Jobs (in-job aggregation: payloads stay a handful of floats regardless of
// population size)
// ---------------------------------------------------------------------------

/// Decoded fairness-cell payload.
#[derive(Debug, Clone, Copy)]
pub struct FairOut {
    /// Jain's index over per-flow tail goodput.
    pub jain: f64,
    /// Aggregate tail goodput, Mbps.
    pub agg_mbps: f64,
    /// Total flows the run created.
    pub total_flows: u64,
}

fn fair_job(cell: Cell, seed: u64) -> SimJob {
    let descriptor = format!(
        "scale-fair/cell={}/n={}/bw={:?}/secs={:?}/seed={seed}/v1",
        cell.name, cell.initial, cell.bw_mbps, cell.secs
    );
    SimJob::new(
        descriptor,
        format!("{} Proteus-P flows at equilibrium", cell.initial),
        move || {
            let res = run(scale_scenario(
                cell,
                seed,
                classes(&[("Proteus-P", 1.0)], seed),
            ));
            eprint_cell_events(cell.name, &res);
            let (from, to) = tail(cell.secs);
            let rates: Vec<f64> = res
                .flows
                .iter()
                .map(|f| f.throughput_mbps(from, to))
                .collect();
            payload::encode_floats(&[
                jain_index(&rates).unwrap_or(0.0),
                rates.iter().sum(),
                res.flows.len() as f64,
            ])
        },
    )
}

fn decode_fair(payload_text: &str) -> FairOut {
    let v = payload::decode_floats(payload_text);
    FairOut {
        jain: v[0],
        agg_mbps: v[1],
        total_flows: v[2] as u64,
    }
}

/// Decoded churn-cell payload.
#[derive(Debug, Clone)]
pub struct ChurnOut {
    /// Total flows the run created (warm start + arrivals).
    pub total_flows: u64,
    /// Aggregate tail goodput, Mbps.
    pub agg_mbps: f64,
    /// Bottleneck utilization over the tail.
    pub utilization: f64,
    /// Aggregate tail goodput per churn class, `CHURN_MIX` order.
    pub class_mbps: Vec<f64>,
}

fn churn_job(cell: Cell, seed: u64) -> SimJob {
    let descriptor = format!(
        "scale-churn/cell={}/n={}/arr={:?}/life={:?}/bw={:?}/secs={:?}/seed={seed}/v1",
        cell.name,
        cell.initial,
        cell.arrivals_per_sec,
        cell.mean_lifetime_s,
        cell.bw_mbps,
        cell.secs
    );
    SimJob::new(
        descriptor,
        format!(
            "{} concurrent mixed flows, {}/s churn",
            cell.initial, cell.arrivals_per_sec
        ),
        move || {
            let res = run(scale_scenario(cell, seed, classes(CHURN_MIX, seed)));
            eprint_cell_events(cell.name, &res);
            let (from, to) = tail(cell.secs);
            let mut out = vec![
                res.flows.len() as f64,
                aggregate_mbps(&res, cell.secs, |_| true),
                res.utilization(from, to),
            ];
            for &(proto, _) in CHURN_MIX {
                // Churned flows are named `{class}~{n}`.
                let prefix = format!("{proto}~");
                out.push(aggregate_mbps(&res, cell.secs, |n| n.starts_with(&prefix)));
            }
            payload::encode_floats(&out)
        },
    )
}

fn decode_churn(payload_text: &str) -> ChurnOut {
    let v = payload::decode_floats(payload_text);
    ChurnOut {
        total_flows: v[0] as u64,
        agg_mbps: v[1],
        utilization: v[2],
        class_mbps: v[3..].to_vec(),
    }
}

/// `with_scavengers = false` runs only the static CUBIC primary class (the
/// alone-throughput baseline); `true` adds the churning Proteus-S
/// population on the same link and seed.
fn harm_job(cell: HarmCell, with_scavengers: bool, seed: u64) -> SimJob {
    // The alone baseline has no scavengers, so its identity deliberately
    // omits the cell name and population: every harm cell on the same link
    // shares one baseline run (deduped by the campaign).
    let descriptor = if with_scavengers {
        format!(
            "scale-harm/cell={}/primaries={}/scav={}/arr={:?}/life={:?}/bw={:?}/secs={:?}/seed={seed}/pair/v1",
            cell.name,
            cell.primaries,
            cell.scavengers.initial,
            cell.scavengers.arrivals_per_sec,
            cell.scavengers.mean_lifetime_s,
            cell.scavengers.bw_mbps,
            cell.scavengers.secs
        )
    } else {
        format!(
            "scale-harm/primaries={}/bw={:?}/secs={:?}/seed={seed}/alone/v1",
            cell.primaries, cell.scavengers.bw_mbps, cell.scavengers.secs
        )
    };
    SimJob::new(
        descriptor,
        format!(
            "{} CUBIC primaries {}",
            cell.primaries,
            if with_scavengers {
                "vs churning Proteus-S population"
            } else {
                "alone"
            }
        ),
        move || {
            let sc = cell.scavengers;
            let mut scenario = Scenario::new(
                LinkSpec::new(sc.bw_mbps, Dur::from_millis(30), 1).with_buffer_bdp(1.0),
                Dur::from_secs_f64(sc.secs),
            )
            .with_seed(seed)
            .with_rtt_stride(64)
            .with_throughput_bin(Dur::from_secs(2));
            for i in 0..cell.primaries {
                scenario =
                    scenario.flow(FlowSpec::bulk(format!("CUBIC#{i}"), Dur::ZERO, move || {
                        cc("CUBIC", seed ^ (0xC0B1C + i as u64))
                    }));
            }
            if with_scavengers {
                scenario = scenario.with_churn(
                    ChurnSpec::new(
                        sc.arrivals_per_sec,
                        Dur::from_secs_f64(sc.mean_lifetime_s),
                        classes(&[("Proteus-S", 1.0)], seed),
                    )
                    .with_initial(sc.initial),
                );
            }
            let res = run(scenario);
            eprint_cell_events(
                if with_scavengers {
                    cell.name
                } else {
                    "harm-alone"
                },
                &res,
            );
            payload::encode_floats(&[
                aggregate_mbps(&res, sc.secs, |n| n.starts_with("CUBIC#")),
                aggregate_mbps(&res, sc.secs, |n| n.starts_with("Proteus-S~")),
                res.flows.len() as f64,
            ])
        },
    )
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

/// One invariant verdict on one population cell.
#[derive(Debug, Clone)]
pub struct ScaleCheck {
    /// Cell the check ran on.
    pub cell: &'static str,
    /// Check name (`equilibrium-jain`, `population-churns`, `progress`,
    /// `scavenger-harm`, `100k-flows`).
    pub check: &'static str,
    /// The measured value the verdict was taken on.
    pub value: f64,
    /// Whether the invariant held.
    pub pass: bool,
}

/// The machine-checkable result of a scale campaign.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Every invariant verdict, in matrix order.
    pub checks: Vec<ScaleCheck>,
    /// The rendered report text.
    pub report: String,
}

impl ScaleOutcome {
    /// Whether every invariant held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed.
    pub fn failures(&self) -> Vec<&ScaleCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

fn verdict(pass: bool) -> String {
    if pass { "PASS" } else { "FAIL" }.into()
}

// ---------------------------------------------------------------------------
// The experiment
// ---------------------------------------------------------------------------

/// Runs the population-scale campaign and returns both the rendered report
/// and the machine-checkable invariant verdicts.
pub fn run_with_outcome(cfg: RunCfg) -> ScaleOutcome {
    let fairs = fair_cells(cfg.quick);
    let churns = churn_cells(cfg.quick);
    let harm = harm_cell(cfg.quick);

    let mut camp = campaign("scale", cfg);
    let fair_slots: Vec<usize> = fairs
        .iter()
        .map(|&(c, _)| camp.push_dedup(fair_job(c, cfg.seed)))
        .collect();
    let churn_slots: Vec<usize> = churns
        .iter()
        .map(|&c| camp.push_dedup(churn_job(c, cfg.seed)))
        .collect();
    // The harm ratio is the one noisy measurement in the matrix (a single
    // churn realization can swing it by ±0.1), so the checked pair cell
    // averages three seeds against the alone baseline. The dense companion
    // is reported single-seed: its collapse is an order-of-magnitude
    // effect, not a marginal verdict.
    let dense = harm_dense_cell(cfg.quick);
    let alone_slot = camp.push_dedup(harm_job(harm, false, cfg.seed));
    let pair_slots_h: Vec<usize> = (0..3)
        .map(|t| camp.push_dedup(harm_job(harm, true, cfg.seed + t)))
        .collect();
    let dense_slot = camp.push_dedup(harm_job(dense, true, cfg.seed));
    let result = camp.run();

    let mut checks: Vec<ScaleCheck> = Vec::new();

    // ---- Equilibrium fairness. ----
    let mut fair_table = Table::new(
        "Equilibrium: static same-class Proteus-P populations",
        &["cell", "flows", "Jain(tail)", "aggregate Mbps"],
    );
    for (i, &(cell, checked)) in fairs.iter().enumerate() {
        let o = decode_fair(&result.outputs[fair_slots[i]]);
        fair_table.row(vec![
            cell.name.into(),
            o.total_flows.to_string(),
            format!("{:.4}", o.jain),
            f2(o.agg_mbps),
        ]);
        if checked {
            checks.push(ScaleCheck {
                cell: cell.name,
                check: "equilibrium-jain",
                value: o.jain,
                pass: o.jain >= 0.9,
            });
        }
    }

    // ---- Churning mixed populations. ----
    let mut churn_table = Table::new(
        "Churn: mixed populations (Poisson arrivals, exp. lifetimes)",
        &[
            "cell",
            "flows(total)",
            "agg Mbps",
            "util%",
            "Proteus-P",
            "Proteus-S",
            "CUBIC",
            "BBR",
        ],
    );
    for (i, cell) in churns.iter().enumerate() {
        let o = decode_churn(&result.outputs[churn_slots[i]]);
        let mut row = vec![
            cell.name.into(),
            o.total_flows.to_string(),
            f2(o.agg_mbps),
            format!("{:.1}", o.utilization * 100.0),
        ];
        row.extend(o.class_mbps.iter().map(|&m| f2(m)));
        churn_table.row(row);

        // The Poisson arrival count concentrates hard at this scale
        // (σ/µ < 4% even in the quick cell): 80% of the mean only fails
        // if the churn stream silently stopped spawning.
        let floor = cell.initial as f64 + 0.8 * cell.arrivals_per_sec * cell.secs;
        checks.push(ScaleCheck {
            cell: cell.name,
            check: "population-churns",
            value: o.total_flows as f64,
            pass: (o.total_flows as f64) >= floor,
        });
        checks.push(ScaleCheck {
            cell: cell.name,
            check: "progress",
            value: o.utilization,
            pass: o.utilization >= 0.5,
        });
        if cell.name == "churn-100k" {
            checks.push(ScaleCheck {
                cell: cell.name,
                check: "100k-flows",
                value: o.total_flows as f64,
                pass: o.total_flows >= 100_000,
            });
        }
    }

    // ---- Scavenger harm under churn. ----
    let alone = payload::decode_floats(&result.outputs[alone_slot]);
    let pairs: Vec<Vec<f64>> = pair_slots_h
        .iter()
        .map(|&s| payload::decode_floats(&result.outputs[s]))
        .collect();
    let mean = |i: usize| pairs.iter().map(|p| p[i]).sum::<f64>() / pairs.len() as f64;
    let pair = [mean(0), mean(1), mean(2)];
    let ratio = pair[0] / alone[0].max(1e-9);
    let dense_pair = payload::decode_floats(&result.outputs[dense_slot]);
    let dense_ratio = dense_pair[0] / alone[0].max(1e-9);
    let mut harm_table = Table::new(
        "Scavenger harm: CUBIC primary aggregate, alone vs under Proteus-S churn",
        &[
            "cell",
            "alone Mbps",
            "w/ scav Mbps",
            "ratio",
            "scav Mbps",
            "flows",
        ],
    );
    harm_table.row(vec![
        harm.name.into(),
        f2(alone[0]),
        f2(pair[0]),
        format!("{ratio:.3}"),
        f2(pair[1]),
        format!("{}", pair[2] as u64),
    ]);
    harm_table.row(vec![
        dense.name.into(),
        f2(alone[0]),
        f2(dense_pair[0]),
        format!("{dense_ratio:.3}"),
        f2(dense_pair[1]),
        format!("{}", dense_pair[2] as u64),
    ]);
    checks.push(ScaleCheck {
        cell: harm.name,
        check: "scavenger-harm",
        value: ratio,
        pass: ratio >= 0.7,
    });

    // ---- Invariant table + summary. ----
    let mut inv = Table::new(
        "Invariants: population-scale contracts",
        &["cell", "check", "value", "verdict"],
    );
    for c in &checks {
        inv.row(vec![
            c.cell.into(),
            c.check.into(),
            format!("{:.4}", c.value),
            verdict(c.pass),
        ]);
    }
    let failed = checks.iter().filter(|c| !c.pass).count();
    let summary = format!(
        "invariants: {}/{} passed{}\n",
        checks.len() - failed,
        checks.len(),
        if failed == 0 {
            String::new()
        } else {
            format!(" — {failed} FAILED")
        }
    );
    let text = format!(
        "{}\n{}\n{}\n{}\n{summary}",
        fair_table.render(),
        churn_table.render(),
        harm_table.render(),
        inv.render()
    );

    let dir = results_dir().join("scale");
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("scale.txt"), &text);
    let _ = fs::write(dir.join("cells.csv"), churn_table.to_csv());
    let _ = fs::write(dir.join("invariants.csv"), inv.to_csv());

    ScaleOutcome {
        checks,
        report: text,
    }
}

/// Registry entry point: runs the campaign and returns the report.
pub fn run_experiment(cfg: RunCfg) -> String {
    run_with_outcome(cfg).report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_hold_concurrency_constant() {
        for cell in churn_cells(false).into_iter().chain(churn_cells(true)) {
            // M/G/∞: offered concurrency = arrival rate × mean lifetime.
            let offered = cell.arrivals_per_sec * cell.mean_lifetime_s;
            let drift = (offered - cell.initial as f64).abs() / cell.initial as f64;
            assert!(
                drift < 0.01,
                "{}: offered {offered} vs {}",
                cell.name,
                cell.initial
            );
        }
    }

    #[test]
    fn the_100k_cell_expects_over_100k_flows() {
        let cells = churn_cells(false);
        let big = cells.iter().find(|c| c.name == "churn-100k").unwrap();
        assert!(big.expected_total() > 105_000.0);
    }

    #[test]
    fn scale_jobs_have_distinct_identities() {
        let cells = churn_cells(false);
        let a = churn_job(cells[0], 1);
        let b = churn_job(cells[1], 1);
        let f = fair_job(fair_cells(false)[0].0, 1);
        let h0 = harm_job(harm_cell(false), false, 1);
        let h1 = harm_job(harm_cell(false), true, 1);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), f.key());
        assert_ne!(h0.key(), h1.key());
    }

    #[test]
    fn outcome_reports_failures() {
        let mk = |pass| ScaleOutcome {
            checks: vec![ScaleCheck {
                cell: "fair-1k",
                check: "equilibrium-jain",
                value: 0.95,
                pass,
            }],
            report: String::new(),
        };
        assert!(mk(true).all_pass());
        assert!(!mk(false).all_pass());
        assert_eq!(mk(false).failures().len(), 1);
    }
}
