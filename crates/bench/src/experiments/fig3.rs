//! Fig. 3: bottleneck saturation with varying buffer size (§6.1.1).
//!
//! Single flow, 50 Mbps / 30 ms bottleneck, 100 s runs, buffer swept from
//! ~1 KB to 1 MB. Reports (a) throughput and (b) the 95th-percentile
//! inflation ratio `(p95 RTT − base RTT)/(buffer/bandwidth)`.

use proteus_netsim::LinkSpec;
use proteus_transport::Dur;

use crate::protocols::ALL_FIG3;
use crate::report::{f2, write_report, Table};
use crate::runner::{run_single, tail_mbps};
use crate::RunCfg;

const BASE_RTT_S: f64 = 0.030;

/// Buffer sizes swept, bytes.
fn buffers(quick: bool) -> Vec<u64> {
    if quick {
        vec![4_500, 75_000, 375_000]
    } else {
        vec![
            1_500, 3_000, 4_500, 7_500, 15_000, 37_500, 75_000, 150_000, 375_000, 625_000,
            1_000_000,
        ]
    }
}

/// Runs the Fig.-3 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let mut thpt = Table::new("Fig 3(a): single-flow throughput (Mbps) vs buffer size", &{
        let mut h = vec!["buffer_KB"];
        h.extend(ALL_FIG3);
        h
    });
    let mut infl = Table::new(
        "Fig 3(b): 95th-percentile inflation ratio vs buffer size",
        &{
            let mut h = vec!["buffer_KB"];
            h.extend(ALL_FIG3);
            h
        },
    );

    for &buf in &buffers(cfg.quick) {
        let mut trow = vec![format!("{:.1}", buf as f64 / 1e3)];
        let mut irow = vec![format!("{:.1}", buf as f64 / 1e3)];
        for &proto in ALL_FIG3 {
            let link = LinkSpec::new(50.0, Dur::from_millis(30), buf);
            let res = run_single(proto, link, secs, cfg.seed);
            trow.push(f2(tail_mbps(&res, 0, secs)));
            let p95 = res.flows[0].rtt_percentile(95.0).unwrap_or(BASE_RTT_S);
            let max_queue_s = buf as f64 * 8.0 / 50e6;
            let ratio = ((p95 - BASE_RTT_S) / max_queue_s).max(0.0);
            irow.push(f2(ratio));
        }
        thpt.row(trow);
        infl.row(irow);
    }

    // The headline claim: buffer needed for ≥ 90 % utilization.
    let mut need = Table::new(
        "Buffer needed for >=90% utilization (45 Mbps); paper: Proteus 4.5 KB, LEDBAT 150 KB (32x)",
        &["protocol", "buffer_KB"],
    );
    for &proto in ALL_FIG3 {
        let mut found = None;
        for &buf in &buffers(cfg.quick) {
            let link = LinkSpec::new(50.0, Dur::from_millis(30), buf);
            let res = run_single(proto, link, secs, cfg.seed + 17);
            if tail_mbps(&res, 0, secs) >= 45.0 {
                found = Some(buf);
                break;
            }
        }
        need.row(vec![
            proto.to_string(),
            found
                .map(|b| format!("{:.1}", b as f64 / 1e3))
                .unwrap_or_else(|| ">max".into()),
        ]);
    }

    let text = format!("{}\n{}\n{}\n", thpt.render(), infl.render(), need.render());
    write_report("fig3", &text, &[&thpt, &infl, &need]);
    text
}
