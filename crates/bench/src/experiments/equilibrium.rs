//! Theory tables: the Appendix-A equilibrium model and the §4.4 Proteus-H
//! ideal-allocation formula, checked numerically.

use proteus_core::{hybrid_ideal_allocation, solve_equilibrium, GameParams, SenderKind};

use crate::report::{f2, write_report, Table};
use crate::RunCfg;

/// Runs the theory tables.
pub fn run_experiment(_cfg: RunCfg) -> String {
    // --- Symmetric and mixed equilibria of the Appendix-A game. ---
    let mut eq = Table::new(
        "Appendix A: numeric equilibria of the simplified game (C = 100 Mbps)",
        &["senders", "rates_Mbps", "total", "utilization"],
    );
    let cases: Vec<(&str, Vec<SenderKind>)> = vec![
        ("1 P", vec![SenderKind::Primary]),
        ("1 S", vec![SenderKind::Scavenger]),
        ("4 P", vec![SenderKind::Primary; 4]),
        ("3 S", vec![SenderKind::Scavenger; 3]),
        ("P + S", vec![SenderKind::Primary, SenderKind::Scavenger]),
        (
            "2P + 2S",
            vec![
                SenderKind::Primary,
                SenderKind::Primary,
                SenderKind::Scavenger,
                SenderKind::Scavenger,
            ],
        ),
    ];
    let params = GameParams::paper_defaults(100.0);
    for (label, kinds) in cases {
        let sol = solve_equilibrium(&params, &kinds);
        let rates: Vec<String> = sol.rates.iter().map(|r| f2(*r)).collect();
        eq.row(vec![
            label.into(),
            rates.join(" "),
            f2(sol.total()),
            f2(sol.utilization(100.0)),
        ]);
    }

    // --- §4.4 ideal allocation for two Proteus-H senders. ---
    let mut hy = Table::new(
        "S4.4: ideal allocation of two Proteus-H senders (r1 = 10, r2 = 20 Mbps)",
        &["capacity", "x1", "x2", "regime"],
    );
    for &c in &[10.0, 15.0, 25.0, 28.0, 35.0, 45.0, 60.0] {
        let (x1, x2) = hybrid_ideal_allocation(c, 10.0, 20.0);
        let regime = if c < 20.0 {
            "C<2r1: fair"
        } else if c < 30.0 {
            "sender1 pinned at r1"
        } else if c < 40.0 {
            "sender2 pinned at r2"
        } else {
            "C>2r2: fair"
        };
        hy.row(vec![f2(c), f2(x1), f2(x2), regime.into()]);
    }

    let text = format!("{}\n{}\n", eq.render(), hy.render());
    write_report("tbl_equilibrium", &text, &[&eq, &hy]);
    text
}
