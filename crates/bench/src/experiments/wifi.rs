//! Figs. 9 & 10: single-flow throughput and yielding on noisy "WiFi" paths
//! (§6.2.1).
//!
//! The paper measures 64 real source–destination WiFi pairs (4 locations ×
//! 16 AWS regions). We substitute seeded synthetic paths whose bandwidth,
//! RTT and noise parameters span the envelope the paper describes (typical
//! RTT deviation up to ~5 ms, occasional spikes of tens of ms, bursty ACK
//! reception). Fig. 9 reports per-path normalized single-flow throughput;
//! Fig. 10 the primary-throughput-ratio CDFs against each scavenger.

use proteus_netsim::{LinkSpec, NoiseConfig, WifiNoiseConfig};
use proteus_stats::Ecdf;
use proteus_transport::Dur;

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

use crate::protocols::{ALL_FIG3, PRIMARIES};
use crate::report::{pct, write_report, Table};
use crate::runner::{campaign, decode_pair, decode_single, pair_job, single_job, Traces};
use crate::RunCfg;

/// Builds `n` synthetic WiFi paths.
pub fn wifi_paths(n: usize, seed: u64) -> Vec<LinkSpec> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x31F1);
    (0..n)
        .map(|_| {
            let bw = 15.0 + rng.random::<f64>() * 60.0; // 15–75 Mbps uplink
            let rtt_ms = 20.0 + rng.random::<f64>() * 60.0; // 20–80 ms
            let noise = WifiNoiseConfig {
                jitter_std: Dur::from_micros((500.0 + rng.random::<f64>() * 2_500.0) as u64),
                spike_prob: 0.001 + rng.random::<f64>() * 0.008,
                spike_min: Dur::from_millis(8 + (rng.random::<f64>() * 10.0) as u64),
                spike_alpha: 1.5 + rng.random::<f64>(),
                ack_burst_interval: Dur::from_millis(4 + (rng.random::<f64>() * 8.0) as u64),
                ack_burst_duty: 0.1 + rng.random::<f64>() * 0.5,
            };
            LinkSpec::new(bw, Dur::from_secs_f64(rtt_ms / 1e3), 1)
                .with_buffer_bdp(1.0 + rng.random::<f64>())
                .with_noise(NoiseConfig::Wifi(noise))
        })
        .collect()
}

/// Stable cache tag for synthetic path `ci` of [`wifi_paths`] seeded with
/// `path_seed`. A path is a pure function of `(path_seed, ci)` — the RNG
/// draws a fixed number of values per path — so this pins its identity
/// without spelling out every noise parameter.
pub fn path_tag(path_seed: u64, ci: usize) -> String {
    format!("wifipath={ci},pathseed={path_seed}")
}

/// Runs the Fig.-9 + Fig.-10 experiments.
pub fn run_experiment(cfg: RunCfg) -> String {
    let n_paths = if cfg.quick { 3 } else { 16 };
    let secs = if cfg.quick { 20.0 } else { 40.0 };
    let paths = wifi_paths(n_paths, cfg.seed);
    let scavs: &[&str] = &["Proteus-S", "LEDBAT", "LEDBAT-25"];

    // One campaign for both figures. Fig. 9's singles double as Fig. 10's
    // "alone" baselines for the primary protocols (same descriptors, so
    // push_dedup collapses them).
    let mut camp = campaign("fig9_10", cfg);
    let mut single_slots: Vec<Vec<usize>> = Vec::new(); // [path][proto]
    let mut pair_slots: Vec<Vec<Vec<usize>>> = Vec::new(); // [path][primary][scav]
    let mut alone_slots: Vec<Vec<usize>> = Vec::new(); // [path][primary]
    for (ci, link) in paths.iter().enumerate() {
        let tag = path_tag(cfg.seed, ci);
        let seed = cfg.seed + 7 * ci as u64;
        single_slots.push(
            ALL_FIG3
                .iter()
                .map(|&proto| {
                    camp.push_dedup(single_job(
                        "fig9",
                        &tag,
                        proto,
                        *link,
                        secs,
                        seed,
                        Traces::from_cfg(&cfg),
                    ))
                })
                .collect(),
        );
        alone_slots.push(
            PRIMARIES
                .iter()
                .map(|&primary| {
                    camp.push_dedup(single_job(
                        "fig10",
                        &tag,
                        primary,
                        *link,
                        secs,
                        seed,
                        Traces::from_cfg(&cfg),
                    ))
                })
                .collect(),
        );
        pair_slots.push(
            PRIMARIES
                .iter()
                .map(|&primary| {
                    scavs
                        .iter()
                        .map(|&scav| {
                            camp.push_dedup(pair_job(
                                "fig10",
                                &tag,
                                primary,
                                scav,
                                *link,
                                secs,
                                seed,
                                Traces::from_cfg(&cfg),
                            ))
                        })
                        .collect()
                })
                .collect(),
        );
    }
    let result = camp.run();

    // ---- Fig. 9: normalized single-flow throughput. ----
    let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); ALL_FIG3.len()];
    for slots in &single_slots {
        let per_path: Vec<f64> = slots
            .iter()
            .map(|&s| decode_single(&result.outputs[s]).tail_mbps)
            .collect();
        let best = per_path.iter().cloned().fold(0.0_f64, f64::max).max(1e-9);
        for (pi, v) in per_path.iter().enumerate() {
            normalized[pi].push(v / best);
        }
    }
    let mut fig9 = Table::new(
        "Fig 9: normalized single-flow throughput on WiFi paths (CDF quantiles)",
        &["protocol", "p25", "median", "p75", "mean"],
    );
    for (pi, &proto) in ALL_FIG3.iter().enumerate() {
        let e = Ecdf::new(normalized[pi].iter().copied());
        fig9.row(vec![
            proto.into(),
            pct(e.quantile(0.25).unwrap_or(0.0)),
            pct(e.median().unwrap_or(0.0)),
            pct(e.quantile(0.75).unwrap_or(0.0)),
            pct(e.mean().unwrap_or(0.0)),
        ]);
    }

    // ---- Fig. 10: yielding on the same paths. ----
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); PRIMARIES.len() * scavs.len()];
    for (ci, _) in paths.iter().enumerate() {
        for (pi, _) in PRIMARIES.iter().enumerate() {
            let alone_mbps = decode_single(&result.outputs[alone_slots[ci][pi]])
                .tail_mbps
                .max(1e-6);
            for (si, _) in scavs.iter().enumerate() {
                let both = decode_pair(&result.outputs[pair_slots[ci][pi][si]]);
                let ratio = (both.primary_mbps / alone_mbps).min(1.2);
                ratios[pi * scavs.len() + si].push(ratio);
            }
        }
    }
    let mut fig10 = Table::new(
        "Fig 10 (+Fig 22): primary throughput ratio on WiFi paths",
        &[
            "primary",
            "scavenger",
            "p25",
            "median",
            "p75",
            ">=90% of cases",
        ],
    );
    for (pi, &primary) in PRIMARIES.iter().enumerate() {
        for (si, &scav) in scavs.iter().enumerate() {
            let e = Ecdf::new(ratios[pi * scavs.len() + si].iter().copied());
            fig10.row(vec![
                primary.into(),
                scav.into(),
                pct(e.quantile(0.25).unwrap_or(0.0)),
                pct(e.median().unwrap_or(0.0)),
                pct(e.quantile(0.75).unwrap_or(0.0)),
                pct(e.fraction_at_least(0.90)),
            ]);
        }
    }

    let text = format!("{}\n{}\n", fig9.render(), fig10.render());
    write_report("fig9_10", &text, &[&fig9, &fig10]);
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_deterministic_and_in_envelope() {
        let a = wifi_paths(8, 3);
        let b = wifi_paths(8, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bandwidth_mbps, y.bandwidth_mbps);
            assert_eq!(x.rtt, y.rtt);
        }
        for p in &a {
            assert!((15.0..=75.0).contains(&p.bandwidth_mbps));
            assert!(p.rtt >= Dur::from_millis(20) && p.rtt <= Dur::from_millis(80));
            assert!(matches!(p.noise, NoiseConfig::Wifi(_)));
        }
    }
}
