//! Appendix B: "Tuning target extra delay cannot save LEDBAT" (Figs.
//! 15–20).
//!
//! Re-runs the core single-flow and competition sweeps with LEDBAT-25 (the
//! original IETF draft's 25 ms target) next to LEDBAT-100 and Proteus:
//! saturation vs buffer (Fig. 15), random-loss tolerance (Fig. 16),
//! multi-flow fairness (Fig. 17), the 4-flow latecomer timeline (Fig. 18),
//! yielding to primaries (Fig. 19) and the RTT-impact bars (Fig. 20).
//! The WiFi comparisons (Figs. 21/22) are produced by the `wifi` module,
//! which includes an LEDBAT-25 column.

use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_transport::{Dur, Time};

use crate::experiments::fig5::fairness_run;
use crate::experiments::fig6::measure_cell;
use crate::protocols::{cc, PRIMARIES};
use crate::report::{f2, f3, pct, write_report, Table};
use crate::runner::{run_single, tail_mbps};
use crate::RunCfg;

const LEDBATS: &[&str] = &["LEDBAT-25", "LEDBAT", "Proteus-S", "Proteus-P"];

fn fig15(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let buffers: &[u64] = if cfg.quick {
        &[75_000, 625_000]
    } else {
        &[4_500, 37_500, 150_000, 375_000, 625_000, 1_000_000]
    };
    let mut t = Table::new(
        "Fig 15: saturation with varying buffer (throughput Mbps / inflation ratio)",
        &["buffer_KB", "LEDBAT-25", "LEDBAT-100", "Proteus-S", "Proteus-P"],
    );
    for &buf in buffers {
        let mut row = vec![format!("{:.1}", buf as f64 / 1e3)];
        for &proto in &["LEDBAT-25", "LEDBAT", "Proteus-S", "Proteus-P"] {
            let link = LinkSpec::new(50.0, Dur::from_millis(30), buf);
            let res = run_single(proto, link, secs, cfg.seed);
            let thpt = tail_mbps(&res, 0, secs);
            let p95 = res.flows[0].rtt_percentile(95.0).unwrap_or(0.030);
            let infl = ((p95 - 0.030) / (buf as f64 * 8.0 / 50e6)).max(0.0);
            row.push(format!("{:.1}/{:.2}", thpt, infl));
        }
        t.row(row);
    }
    t
}

fn fig16(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let losses: &[f64] = if cfg.quick {
        &[0.0, 0.01]
    } else {
        &[0.0, 1e-4, 1e-3, 0.01, 0.03, 0.05]
    };
    let mut t = Table::new("Fig 16: throughput (Mbps) under random loss", &{
        let mut h = vec!["loss"];
        h.extend(LEDBATS);
        h
    });
    for &loss in losses {
        let mut row = vec![format!("{loss}")];
        for &proto in LEDBATS {
            let link = LinkSpec::new(50.0, Dur::from_millis(30), 1_000_000).with_random_loss(loss);
            let res = run_single(proto, link, secs, cfg.seed);
            row.push(f2(tail_mbps(&res, 0, secs)));
        }
        t.row(row);
    }
    t
}

fn fig17(cfg: RunCfg) -> Table {
    let measure = if cfg.quick { 40.0 } else { 120.0 };
    let counts: &[usize] = if cfg.quick { &[4] } else { &[2, 4, 6, 8, 10] };
    let mut t = Table::new("Fig 17: Jain's index with competing flows", &{
        let mut h = vec!["n"];
        h.extend(LEDBATS);
        h
    });
    for &n in counts {
        let mut row = vec![n.to_string()];
        for &proto in LEDBATS {
            row.push(f3(fairness_run(proto, n, measure, cfg.seed)));
        }
        t.row(row);
    }
    t
}

fn fig18(cfg: RunCfg) -> Vec<Table> {
    // 4 staggered flows on a large buffer; print per-flow rates over time.
    let stagger = 60.0;
    let total = if cfg.quick { 200.0 } else { 400.0 };
    let mut tables = Vec::new();
    for &proto in &["LEDBAT-25", "LEDBAT", "Proteus-S", "Proteus-P"] {
        let link = LinkSpec::new(80.0, Dur::from_millis(30), 4_000_000);
        let mut sc = Scenario::new(link, Dur::from_secs_f64(total))
            .with_seed(cfg.seed)
            .with_rtt_stride(64);
        for i in 0..4usize {
            sc = sc.flow(FlowSpec::bulk(
                format!("{proto}-{i}"),
                Dur::from_secs_f64(stagger * i as f64),
                move || cc(proto, cfg.seed + i as u64),
            ));
        }
        let res = run(sc);
        let mut t = Table::new(
            format!("Fig 18: 4-flow competition over time — {proto} (Mbps per 40 s bin)"),
            &["t_s", "flow1", "flow2", "flow3", "flow4"],
        );
        let bins = (total / 40.0) as usize;
        for b in 0..bins {
            let from = Time::from_secs_f64(b as f64 * 40.0);
            let to = Time::from_secs_f64((b + 1) as f64 * 40.0);
            let mut row = vec![format!("{}", b * 40)];
            for f in 0..4 {
                row.push(f2(res.flows[f].throughput_mbps(from, to)));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

fn fig19(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 25.0 } else { 60.0 };
    let mut t = Table::new(
        "Fig 19: LEDBAT-25 as scavenger — primary throughput ratio",
        &["primary", "ratio@75KB", "ratio@375KB"],
    );
    for &primary in PRIMARIES {
        let mut row = vec![primary.to_string()];
        for &buf in &[75_000u64, 375_000] {
            let cell = measure_cell(primary, "LEDBAT-25", buf, secs, cfg.seed);
            row.push(pct(cell.ratio()));
        }
        t.row(row);
    }
    t
}

/// Runs the whole Appendix-B suite.
pub fn run_experiment(cfg: RunCfg) -> String {
    let t15 = fig15(cfg);
    let t16 = fig16(cfg);
    let t17 = fig17(cfg);
    let t18 = fig18(cfg);
    let t19 = fig19(cfg);
    let mut text = format!(
        "{}\n{}\n{}\n",
        t15.render(),
        t16.render(),
        t17.render()
    );
    for t in &t18 {
        text.push_str(&t.render());
        text.push('\n');
    }
    text.push_str(&t19.render());
    text.push('\n');
    let mut refs: Vec<&Table> = vec![&t15, &t16, &t17];
    refs.extend(t18.iter());
    refs.push(&t19);
    write_report("appendixB", &text, &refs);
    text
}
