//! Appendix B: "Tuning target extra delay cannot save LEDBAT" (Figs.
//! 15–20).
//!
//! Re-runs the core single-flow and competition sweeps with LEDBAT-25 (the
//! original IETF draft's 25 ms target) next to LEDBAT-100 and Proteus:
//! saturation vs buffer (Fig. 15), random-loss tolerance (Fig. 16),
//! multi-flow fairness (Fig. 17), the 4-flow latecomer timeline (Fig. 18),
//! yielding to primaries (Fig. 19) and the RTT-impact bars (Fig. 20).
//! The WiFi comparisons (Figs. 21/22) are produced by the `wifi` module,
//! which includes an LEDBAT-25 column.
//!
//! The whole suite is submitted as one campaign; its single-flow,
//! fairness and yield cells share cache descriptors with Figs. 3/5/6, so
//! a full `repro all` simulates each overlapping cell only once.

use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_runner::{payload, Campaign, SimJob};
use proteus_transport::{Dur, Time};

use crate::experiments::fig5::fairness_job;
use crate::experiments::fig6::{cell_from_outputs, push_cell};
use crate::protocols::{cc, PRIMARIES};
use crate::report::{f2, f3, pct, write_report, Table};
use crate::runner::{campaign, decode_single, link_tag, single_job, Traces};
use crate::RunCfg;

const LEDBATS: &[&str] = &["LEDBAT-25", "LEDBAT", "Proteus-S", "Proteus-P"];

fn fig15_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<Vec<usize>> {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let buffers: &[u64] = if cfg.quick {
        &[75_000, 625_000]
    } else {
        &[4_500, 37_500, 150_000, 375_000, 625_000, 1_000_000]
    };
    buffers
        .iter()
        .map(|&buf| {
            LEDBATS
                .iter()
                .map(|&proto| {
                    let link = LinkSpec::new(50.0, Dur::from_millis(30), buf);
                    camp.push_dedup(single_job(
                        "fig15",
                        &link_tag(&link),
                        proto,
                        link,
                        secs,
                        cfg.seed,
                        Traces::from_cfg(&cfg),
                    ))
                })
                .collect()
        })
        .collect()
}

fn fig15_table(cfg: RunCfg, outputs: &[String], slots: &[Vec<usize>]) -> Table {
    let buffers: &[u64] = if cfg.quick {
        &[75_000, 625_000]
    } else {
        &[4_500, 37_500, 150_000, 375_000, 625_000, 1_000_000]
    };
    let mut t = Table::new(
        "Fig 15: saturation with varying buffer (throughput Mbps / inflation ratio)",
        &[
            "buffer_KB",
            "LEDBAT-25",
            "LEDBAT-100",
            "Proteus-S",
            "Proteus-P",
        ],
    );
    for (bi, &buf) in buffers.iter().enumerate() {
        let mut row = vec![format!("{:.1}", buf as f64 / 1e3)];
        for &slot in &slots[bi] {
            let out = decode_single(&outputs[slot]);
            let p95 = if out.p95_rtt_s > 0.0 {
                out.p95_rtt_s
            } else {
                0.030
            };
            let infl = ((p95 - 0.030) / (buf as f64 * 8.0 / 50e6)).max(0.0);
            row.push(format!("{:.1}/{:.2}", out.tail_mbps, infl));
        }
        t.row(row);
    }
    t
}

fn fig16_losses(quick: bool) -> &'static [f64] {
    if quick {
        &[0.0, 0.01]
    } else {
        &[0.0, 1e-4, 1e-3, 0.01, 0.03, 0.05]
    }
}

fn fig16_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<Vec<usize>> {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    fig16_losses(cfg.quick)
        .iter()
        .map(|&loss| {
            LEDBATS
                .iter()
                .map(|&proto| {
                    let link =
                        LinkSpec::new(50.0, Dur::from_millis(30), 1_000_000).with_random_loss(loss);
                    camp.push_dedup(single_job(
                        "fig16",
                        &link_tag(&link),
                        proto,
                        link,
                        secs,
                        cfg.seed,
                        Traces::from_cfg(&cfg),
                    ))
                })
                .collect()
        })
        .collect()
}

fn fig16_table(cfg: RunCfg, outputs: &[String], slots: &[Vec<usize>]) -> Table {
    let mut t = Table::new("Fig 16: throughput (Mbps) under random loss", &{
        let mut h = vec!["loss"];
        h.extend(LEDBATS);
        h
    });
    for (li, &loss) in fig16_losses(cfg.quick).iter().enumerate() {
        let mut row = vec![format!("{loss}")];
        for &slot in &slots[li] {
            row.push(f2(decode_single(&outputs[slot]).tail_mbps));
        }
        t.row(row);
    }
    t
}

fn fig17_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[4]
    } else {
        &[2, 4, 6, 8, 10]
    }
}

fn fig17_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<Vec<usize>> {
    let measure = if cfg.quick { 40.0 } else { 120.0 };
    fig17_counts(cfg.quick)
        .iter()
        .map(|&n| {
            LEDBATS
                .iter()
                .map(|&proto| camp.push_dedup(fairness_job(proto, n, measure, cfg.seed)))
                .collect()
        })
        .collect()
}

fn fig17_table(cfg: RunCfg, outputs: &[String], slots: &[Vec<usize>]) -> Table {
    let mut t = Table::new("Fig 17: Jain's index with competing flows", &{
        let mut h = vec!["n"];
        h.extend(LEDBATS);
        h
    });
    for (ni, &n) in fig17_counts(cfg.quick).iter().enumerate() {
        let mut row = vec![n.to_string()];
        for &slot in &slots[ni] {
            row.push(f3(payload::decode_floats(&outputs[slot])[0]));
        }
        t.row(row);
    }
    t
}

fn fig18_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<usize> {
    // 4 staggered flows on a large buffer; payload = row-major
    // [flow][40 s bin] throughput matrix.
    let stagger = 60.0;
    let total = if cfg.quick { 200.0 } else { 400.0 };
    let bins = (total / 40.0) as usize;
    LEDBATS
        .iter()
        .map(|&proto| {
            let seed = cfg.seed;
            camp.push_dedup(SimJob::new(
                format!("fig18/proto={proto}/total={total:?}/seed={seed}/v1"),
                format!("fig18 {proto} x4"),
                move || {
                    let link = LinkSpec::new(80.0, Dur::from_millis(30), 4_000_000);
                    let mut sc = Scenario::new(link, Dur::from_secs_f64(total))
                        .with_seed(seed)
                        .with_rtt_stride(64);
                    for i in 0..4usize {
                        sc = sc.flow(FlowSpec::bulk(
                            format!("{proto}-{i}"),
                            Dur::from_secs_f64(stagger * i as f64),
                            move || cc(proto, seed + i as u64),
                        ));
                    }
                    let res = run(sc);
                    let mut vals = Vec::with_capacity(4 * bins);
                    for f in 0..4 {
                        for b in 0..bins {
                            let from = Time::from_secs_f64(b as f64 * 40.0);
                            let to = Time::from_secs_f64((b + 1) as f64 * 40.0);
                            vals.push(res.flows[f].throughput_mbps(from, to));
                        }
                    }
                    payload::encode_floats(&vals)
                },
            ))
        })
        .collect()
}

fn fig18_tables(cfg: RunCfg, outputs: &[String], slots: &[usize]) -> Vec<Table> {
    let total = if cfg.quick { 200.0 } else { 400.0 };
    let bins = (total / 40.0) as usize;
    LEDBATS
        .iter()
        .zip(slots)
        .map(|(&proto, &slot)| {
            let vals = payload::decode_floats(&outputs[slot]);
            let mut t = Table::new(
                format!("Fig 18: 4-flow competition over time — {proto} (Mbps per 40 s bin)"),
                &["t_s", "flow1", "flow2", "flow3", "flow4"],
            );
            for b in 0..bins {
                let mut row = vec![format!("{}", b * 40)];
                for f in 0..4 {
                    row.push(f2(vals[f * bins + b]));
                }
                t.row(row);
            }
            t
        })
        .collect()
}

type Fig19Slots = Vec<Vec<(usize, usize)>>;

fn fig19_submit(cfg: RunCfg, camp: &mut Campaign) -> Fig19Slots {
    let secs = if cfg.quick { 25.0 } else { 60.0 };
    PRIMARIES
        .iter()
        .map(|&primary| {
            [75_000u64, 375_000]
                .iter()
                .map(|&buf| {
                    push_cell(
                        camp,
                        "fig19",
                        primary,
                        "LEDBAT-25",
                        buf,
                        secs,
                        cfg.seed,
                        Traces::from_cfg(&cfg),
                    )
                })
                .collect()
        })
        .collect()
}

fn fig19_table(outputs: &[String], slots: &Fig19Slots) -> Table {
    let mut t = Table::new(
        "Fig 19: LEDBAT-25 as scavenger — primary throughput ratio",
        &["primary", "ratio@75KB", "ratio@375KB"],
    );
    for (pi, &primary) in PRIMARIES.iter().enumerate() {
        let mut row = vec![primary.to_string()];
        for &cell_slots in &slots[pi] {
            row.push(pct(cell_from_outputs(outputs, cell_slots).ratio()));
        }
        t.row(row);
    }
    t
}

/// Runs the whole Appendix-B suite.
pub fn run_experiment(cfg: RunCfg) -> String {
    let mut camp = campaign("appendixB", cfg);
    let s15 = fig15_submit(cfg, &mut camp);
    let s16 = fig16_submit(cfg, &mut camp);
    let s17 = fig17_submit(cfg, &mut camp);
    let s18 = fig18_submit(cfg, &mut camp);
    let s19 = fig19_submit(cfg, &mut camp);
    let result = camp.run();
    let out = &result.outputs;

    let t15 = fig15_table(cfg, out, &s15);
    let t16 = fig16_table(cfg, out, &s16);
    let t17 = fig17_table(cfg, out, &s17);
    let t18 = fig18_tables(cfg, out, &s18);
    let t19 = fig19_table(out, &s19);
    let mut text = format!("{}\n{}\n{}\n", t15.render(), t16.render(), t17.render());
    for t in &t18 {
        text.push_str(&t.render());
        text.push('\n');
    }
    text.push_str(&t19.render());
    text.push('\n');
    let mut refs: Vec<&Table> = vec![&t15, &t16, &t17];
    refs.extend(t18.iter());
    refs.push(&t19);
    write_report("appendixB", &text, &refs);
    text
}
