//! Fig. 2: PDF of RTT deviation / |RTT gradient| under Poisson CUBIC
//! cross-traffic, plus the confusion-probability comparison (§4.2).
//!
//! Setup (paper): 100 Mbps, 60 ms RTT, 1500 KB (2 BDP) buffer; short CUBIC
//! flows with uniform sizes in [20, 100] KB and Poisson arrivals at
//! 0/3/6/9 flows/sec; a fixed-rate 20 Mbps UDP probe measures RTT in
//! consecutive 1.5-RTT (90 ms) windows over a 2-minute run.

use proteus_netsim::{run, CrossTrafficSpec, FlowSpec, LinkSpec, Scenario};
use proteus_stats::{Histogram, LinearRegression, Welford};
use proteus_transport::{factory, Dur};

use crate::mi_trace::MiTraceSink;
use crate::protocols::{cc, cc_traced};
use crate::report::{f3, write_report, Table};
use crate::runner::TRACE_EVERY;
use crate::RunCfg;

/// Windowed (deviation, |gradient|) metrics from a probe's RTT samples.
fn window_metrics(samples: &[(f64, f64)], window_s: f64) -> (Vec<f64>, Vec<f64>) {
    let mut devs = Vec::new();
    let mut grads = Vec::new();
    let mut idx = 0;
    if samples.is_empty() {
        return (devs, grads);
    }
    let t_end = samples.last().expect("non-empty").0;
    let mut w_start = samples[0].0;
    while w_start < t_end {
        let w_end = w_start + window_s;
        let mut acc = Welford::new();
        let mut pts = Vec::new();
        while idx < samples.len() && samples[idx].0 < w_end {
            let (t, rtt) = samples[idx];
            acc.add(rtt);
            pts.push((t, rtt));
            idx += 1;
        }
        if acc.count() >= 5 {
            devs.push(acc.std_dev());
            if let Some(fit) = LinearRegression::fit(&pts) {
                grads.push(fit.slope.abs());
            }
        }
        w_start = w_end;
    }
    (devs, grads)
}

/// `P(metric(congested) < metric(idle))` over uniform random pairs — the
/// paper's confusion probability, computed exactly from the two sample
/// sets.
fn confusion_probability(idle: &[f64], congested: &[f64]) -> f64 {
    if idle.is_empty() || congested.is_empty() {
        return f64::NAN;
    }
    let mut idle_sorted = idle.to_vec();
    idle_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut wins = 0u64;
    for &c in congested {
        // Number of idle samples strictly greater than the congested one.
        let gt = idle_sorted.len() - idle_sorted.partition_point(|&x| x <= c);
        wins += gt as u64;
    }
    wins as f64 / (idle.len() as f64 * congested.len() as f64)
}

/// Runs the probe under the given cross-traffic arrival rate; returns
/// per-window (deviations, |gradients|) in seconds and s/s.
fn probe_run(rate_per_sec: f64, secs: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let link = LinkSpec::new(100.0, Dur::from_millis(60), 1_500_000);
    let mut sc = Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk("probe", Dur::ZERO, || cc("probe:20", 0)))
        .with_seed(seed);
    if rate_per_sec > 0.0 {
        sc = sc.with_cross_traffic(CrossTrafficSpec {
            arrivals_per_sec: rate_per_sec,
            size_range: (20_000, 100_000),
            cc: factory(|_| proteus_baselines::Cubic::new()),
            start: Dur::ZERO,
            stop: Dur::from_secs_f64(secs),
        });
    }
    let res = run(sc);
    window_metrics(&res.flows[0].rtt_samples, 0.090)
}

/// The decision-trace companion scenario for `--trace-mi` runs of Fig. 2
/// (and the golden decision-trace pin, see
/// `crates/bench/tests/golden_trace.rs`): the figure's own probe is a
/// fixed-rate UDP source with no MI decision points, so a Proteus-S flow on
/// the same link under the figure's densest cross-traffic (9 flows/s)
/// stands in as the decision-producing subject. Fully determined by
/// `(secs, seed)`.
pub fn decision_scenario(secs: f64, seed: u64) -> Scenario {
    let link = LinkSpec::new(100.0, Dur::from_millis(60), 1_500_000);
    Scenario::new(link, Dur::from_secs_f64(secs))
        .flow(FlowSpec::bulk("Proteus-S", Dur::ZERO, move || {
            cc_traced("Proteus-S", seed ^ 0xA5)
        }))
        .with_cross_traffic(CrossTrafficSpec {
            arrivals_per_sec: 9.0,
            size_range: (20_000, 100_000),
            cc: factory(|_| proteus_baselines::Cubic::new()),
            start: Dur::ZERO,
            stop: Dur::from_secs_f64(secs),
        })
        .with_seed(seed)
        .with_trace(TRACE_EVERY)
}

/// Runs the Fig.-2 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 30.0 } else { 120.0 };
    let rates = [0.0, 3.0, 6.0, 9.0];

    let mut dev_hist = Table::new(
        "Fig 2(a): PDF of RTT deviation (probability per bin, bins of 0.1 ms)",
        &["bin_ms", "0/s", "3/s", "6/s", "9/s"],
    );
    let mut grad_hist = Table::new(
        "Fig 2(b): PDF of |RTT gradient| (probability per bin, bins of 0.001)",
        &["bin", "0/s", "3/s", "6/s", "9/s"],
    );

    let mut dev_sets = Vec::new();
    let mut grad_sets = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let (devs, grads) = probe_run(rate, secs, cfg.seed + i as u64);
        dev_sets.push(devs);
        grad_sets.push(grads);
    }

    let mut dev_h: Vec<Histogram> = (0..4).map(|_| Histogram::new(0.0, 1.4e-3, 14)).collect();
    let mut grad_h: Vec<Histogram> = (0..4).map(|_| Histogram::new(0.0, 0.020, 20)).collect();
    for i in 0..4 {
        dev_h[i].extend(dev_sets[i].iter().copied());
        grad_h[i].extend(grad_sets[i].iter().copied());
    }
    for b in 0..14 {
        let mut row = vec![format!("{:.2}", dev_h[0].bin_center(b) * 1e3)];
        for h in &dev_h {
            row.push(f3(h.pmf()[b]));
        }
        dev_hist.row(row);
    }
    for b in 0..20 {
        let mut row = vec![format!("{:.4}", grad_h[0].bin_center(b))];
        for h in &grad_h {
            row.push(f3(h.pmf()[b]));
        }
        grad_hist.row(row);
    }

    let conf_dev = confusion_probability(&dev_sets[0], &dev_sets[3]);
    let conf_grad = confusion_probability(&grad_sets[0], &grad_sets[3]);
    let mut conf = Table::new(
        "Confusion probability (0 vs 9 flows/s; paper: deviation 0.6%, gradient 8.0%)",
        &["metric", "confusion"],
    );
    conf.row(vec![
        "RTT deviation".into(),
        format!("{:.1}%", conf_dev * 100.0),
    ]);
    conf.row(vec![
        "|RTT gradient|".into(),
        format!("{:.1}%", conf_grad * 100.0),
    ]);

    if cfg.trace_mi {
        let res = run(decision_scenario(secs, cfg.seed));
        MiTraceSink::new("fig2", format!("decision-s{}", cfg.seed), cfg.trace_format).write(&res);
    }

    let text = format!(
        "{}\n{}\n{}\n",
        dev_hist.render(),
        grad_hist.render(),
        conf.render()
    );
    write_report("fig2", &text, &[&dev_hist, &grad_hist, &conf]);
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_probability_extremes() {
        // Fully separated sets: no confusion.
        let idle = [1.0, 2.0, 3.0];
        let congested = [10.0, 20.0];
        assert_eq!(confusion_probability(&idle, &congested), 0.0);
        // Reversed: full confusion.
        assert_eq!(confusion_probability(&congested, &idle), 1.0);
        // Identical distributions: NaN-free, around 0 (ties don't count).
        let p = confusion_probability(&idle, &idle);
        assert!((0.0..=0.5).contains(&p));
    }

    #[test]
    fn window_metrics_basic() {
        // Flat RTT: zero deviation and gradient.
        let flat: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.01, 0.060)).collect();
        let (devs, grads) = window_metrics(&flat, 0.09);
        assert!(!devs.is_empty());
        assert!(devs.iter().all(|&d| d < 1e-12));
        assert!(grads.iter().all(|&g| g < 1e-9));
        // Oscillating RTT: positive deviation.
        let wavy: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                (
                    i as f64 * 0.01,
                    0.060 + if i % 2 == 0 { 0.002 } else { 0.0 },
                )
            })
            .collect();
        let (devs, _) = window_metrics(&wavy, 0.09);
        assert!(devs.iter().all(|&d| d > 5e-4));
    }

    #[test]
    fn empty_input() {
        let (d, g) = window_metrics(&[], 0.09);
        assert!(d.is_empty() && g.is_empty());
        assert!(confusion_probability(&[], &[1.0]).is_nan());
    }
}
