//! `rtc`: the real-time media campaign — a frame-paced interactive call
//! (Cross over a [`MediaSource`]) alone and against each background
//! protocol, with latency-SLO invariants and a generated `results/rtc/`
//! report.
//!
//! The paper's scavenger contract is only ever evaluated against bulk
//! primaries; this campaign asks the question users actually care about:
//! *does Proteus-S stay out of a video call's way better than LEDBAT
//! does?* The call is a 30 fps source on a WebRTC-ish bitrate ladder
//! (SCENARIOS.md "Media sources"), congestion-controlled by the
//! delay-gradient Cross baseline, measured by the per-frame latency
//! metrics (p95/p99 completion delay, freezes, time-in-freeze).
//!
//! Cells: {clean, faulted, two_hop} × {alone, +Proteus-S, +LEDBAT,
//! +CUBIC}. Invariants:
//!
//! * **progress** — the call completes most of its frames and moves bytes
//!   over the tail on every cell (background traffic may degrade, it must
//!   not wedge the call);
//! * **clean-slo** — alone on a clean path the call never freezes and its
//!   p95 frame delay sits inside the playout deadline;
//! * **scavenger-harm** — with Proteus-S underneath, the call's p95 frame
//!   delay stays within [`HARM_X`]× (+[`HARM_SLACK_S`]) of its alone-run
//!   on the *same* profile (floored at the blackout length on the faulted
//!   one) — the headline scavenger-vs-interactive bound;
//! * **finite** — every reported metric is finite.
//!
//! The harm table carries the LEDBAT and CUBIC columns next to Proteus-S,
//! so the measured harm ordering is one `results/rtc/harm.csv` away.
//! Reports land in `results/rtc/`; the campaign is deterministic, so two
//! runs (at any worker count) produce byte-identical reports.

use std::fs;

use proteus_apps::{MediaSource, MediaSpec};
use proteus_netsim::{run, FaultSchedule, FlowSpec, LinkSpec, Scenario, SimResult, Topology};
use proteus_transport::Dur;

use proteus_runner::{payload, SimJob};

use crate::protocols::cc;
use crate::report::{f2, results_dir, Table};
use crate::runner::{campaign, tail_mbps};
use crate::RunCfg;

/// The path profiles of the RTC matrix, in report order.
pub const PROFILES: &[&str] = &["clean", "faulted", "two_hop"];

/// Background traffic per cell; `"alone"` is the control column.
pub const COMPANIONS: &[&str] = &["alone", "Proteus-S", "LEDBAT", "CUBIC"];

/// Scavenger-harm bound: with Proteus-S underneath, p95 frame delay may
/// reach at most `HARM_X × reference + HARM_SLACK_S`, where the reference
/// is the alone-run p95 on the same profile, floored at the profile's
/// intrinsic delay scale (the blackout length on the faulted profile — a
/// 2 s outage forces a 2 s frame backlog on *any* controller, and at full
/// fidelity those frames are too few to register in the alone-run p95, so
/// a pure ratio would misread inevitable backlog as scavenger harm).
pub const HARM_X: f64 = 2.0;
/// Additive slack of the scavenger-harm bound, seconds (absorbs the
/// near-zero alone-run baselines where a ratio alone is meaningless).
pub const HARM_SLACK_S: f64 = 0.030;

/// Minimum fraction of nominal frames the call must complete per cell.
const MIN_FRAMES_FRACTION: f64 = 0.5;

/// Blackout length of the faulted profile, seconds — also the intrinsic
/// delay scale the harm invariant floors its reference at there.
const FAULTED_OUTAGE_S: f64 = 2.0;

/// The faulted profile: a mid-run blackout plus a lasting capacity drop —
/// 50 → 12.5 Mbit/s still leaves ~5× the ladder's top rung, so the call
/// must recover. Pure: `secs` fully determines the schedule.
fn faulted_schedule(secs: f64) -> FaultSchedule {
    FaultSchedule::new()
        .outage(
            Dur::from_secs_f64(secs * 0.35),
            Dur::from_secs_f64(FAULTED_OUTAGE_S),
        )
        .bandwidth_step(Dur::from_secs_f64(secs * 0.6), 12.5)
}

/// The two-hop profile: the paper-default path split across two equal
/// bottlenecks (15 ms each); every flow traverses both.
fn two_hop_chain() -> Topology {
    Topology::chain(vec![
        LinkSpec::new(50.0, Dur::from_millis(15), 375_000),
        LinkSpec::new(50.0, Dur::from_millis(15), 375_000),
    ])
}

/// Builds one cell's scenario: the RTC call from t = 0, the companion (if
/// any) from t = 5 s.
fn rtc_scenario(
    profile: &'static str,
    companion: Option<&'static str>,
    secs: f64,
    seed: u64,
) -> Scenario {
    let duration = Dur::from_secs_f64(secs);
    let mut sc = match profile {
        "two_hop" => Scenario::over(two_hop_chain(), duration),
        "clean" | "faulted" => Scenario::new(LinkSpec::paper_default(), duration),
        other => panic!("unknown rtc profile {other}"),
    }
    .with_seed(seed)
    .with_rtt_stride(2);
    if profile == "faulted" {
        sc = sc.with_faults(faulted_schedule(secs));
    }
    // Frame-size jitter draws from the source's private stream, so the
    // media seed only has to be stable — not coordinated with the sim RNG.
    let spec = MediaSpec {
        seed: seed ^ 0x4EC,
        ..MediaSpec::default()
    };
    sc = sc.flow(
        FlowSpec::bulk("RTC", Dur::ZERO, move || cc("Cross", seed ^ 0xC1))
            .with_app(move || Box::new(MediaSource::new(spec)))
            .with_reliability(true),
    );
    if let Some(comp) = companion {
        sc = sc.flow(FlowSpec::bulk(comp, Dur::from_secs(5), move || {
            cc(comp, seed ^ 0xC2)
        }));
    }
    sc
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Decoded rtc payload: everything the tables and invariants consume.
#[derive(Debug, Clone, Copy)]
pub struct RtcCellOut {
    /// The call's tail-window goodput, Mbps.
    pub rtc_mbps: f64,
    /// 95th / 99th percentile frame completion delay, seconds.
    pub p95_frame_s: f64,
    /// 99th percentile frame completion delay, seconds.
    pub p99_frame_s: f64,
    /// Completed frames that missed the playout deadline.
    pub freezes: u64,
    /// Seconds spent beyond frame deadlines, summed.
    pub time_in_freeze_s: f64,
    /// Frames encoded / fully acknowledged / unfinished at run end.
    pub frames_generated: u64,
    /// Frames fully acknowledged.
    pub frames_completed: u64,
    /// Frames unfinished at run end.
    pub frames_pending: u64,
    /// Companion's tail-window goodput, Mbps (0 in alone cells).
    pub companion_mbps: f64,
    /// The call's 95th-percentile RTT, seconds.
    pub p95_rtt_s: f64,
}

fn decode_cell(payload_text: &str) -> RtcCellOut {
    let v = payload::decode_floats(payload_text);
    RtcCellOut {
        rtc_mbps: v[0],
        p95_frame_s: v[1],
        p99_frame_s: v[2],
        freezes: v[3] as u64,
        time_in_freeze_s: v[4],
        frames_generated: v[5] as u64,
        frames_completed: v[6] as u64,
        frames_pending: v[7] as u64,
        companion_mbps: v[8],
        p95_rtt_s: v[9],
    }
}

fn encode_cell(res: &SimResult, has_companion: bool, secs: f64) -> String {
    let m = res.flows[0]
        .media()
        .expect("RTC flow carries media metrics");
    payload::encode_floats(&[
        tail_mbps(res, 0, secs),
        m.frame_delay_percentile(95.0).unwrap_or(0.0),
        m.frame_delay_percentile(99.0).unwrap_or(0.0),
        m.freeze_count() as f64,
        m.time_in_freeze(),
        m.frames_generated() as f64,
        m.frames_completed() as f64,
        m.frames_pending() as f64,
        if has_companion {
            tail_mbps(res, 1, secs)
        } else {
            0.0
        },
        res.flows[0].rtt_percentile(95.0).unwrap_or(0.0),
    ])
}

fn rtc_job(profile: &'static str, companion: &'static str, secs: f64, seed: u64) -> SimJob {
    let descriptor =
        format!("rtc/profile={profile}/companion={companion}/secs={secs:?}/seed={seed}/v1");
    let comp = (companion != "alone").then_some(companion);
    SimJob::new(
        descriptor,
        format!(
            "RTC {} on {profile}",
            comp.map_or("alone".into(), |c| format!("vs {c}"))
        ),
        move || {
            let res = run(rtc_scenario(profile, comp, secs, seed));
            encode_cell(&res, comp.is_some(), secs)
        },
    )
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

/// One invariant verdict: a named check on one (profile, cell).
#[derive(Debug, Clone)]
pub struct RtcCheck {
    /// Path profile the run used.
    pub profile: &'static str,
    /// Cell the check applies to (e.g. `"RTC vs Proteus-S"`).
    pub subject: String,
    /// Check name (`progress`, `clean-slo`, `scavenger-harm`, `finite`).
    pub check: &'static str,
    /// The measured value the verdict was taken on.
    pub value: f64,
    /// Whether the invariant held.
    pub pass: bool,
}

/// The machine-checkable result of an RTC campaign.
#[derive(Debug, Clone)]
pub struct RtcOutcome {
    /// Every invariant verdict, in matrix order.
    pub checks: Vec<RtcCheck>,
    /// The rendered report text.
    pub report: String,
}

impl RtcOutcome {
    /// Whether every invariant held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed.
    pub fn failures(&self) -> Vec<&RtcCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

fn verdict(pass: bool) -> String {
    if pass { "PASS" } else { "FAIL" }.into()
}

/// p95 inflation of a companioned cell over the alone run, as `"x.xx"`.
fn inflation(cell: &RtcCellOut, alone: &RtcCellOut) -> f64 {
    cell.p95_frame_s / alone.p95_frame_s.max(1e-6)
}

// ---------------------------------------------------------------------------
// The experiment
// ---------------------------------------------------------------------------

/// Runs the RTC campaign and returns both the rendered report and the
/// machine-checkable invariant verdicts.
pub fn run_with_outcome(cfg: RunCfg) -> RtcOutcome {
    let secs = if cfg.quick { 24.0 } else { 60.0 };
    let nominal_frames = secs * MediaSpec::default().fps;

    let mut camp = campaign("rtc", cfg);
    let mut slots: Vec<Vec<usize>> = Vec::new(); // [profile][companion]
    for &profile in PROFILES {
        slots.push(
            COMPANIONS
                .iter()
                .map(|&comp| camp.push_dedup(rtc_job(profile, comp, secs, cfg.seed)))
                .collect(),
        );
    }
    let result = camp.run();

    // ---- Measurement matrix. ----
    let mut matrix = Table::new(
        "RTC matrix: the call's latency SLO per profile and companion",
        &[
            "profile",
            "companion",
            "rtc_mbps",
            "p95_frame_ms",
            "p99_frame_ms",
            "freezes",
            "freeze_s",
            "frames",
            "companion_mbps",
        ],
    );
    let mut harm = Table::new(
        "Scavenger harm to the call: p95 frame delay vs the alone run",
        &[
            "profile",
            "alone_ms",
            "proteus_s_ms",
            "ledbat_ms",
            "cubic_ms",
            "proteus_s_x",
            "ledbat_x",
            "cubic_x",
        ],
    );
    let mut checks: Vec<RtcCheck> = Vec::new();
    for (fi, &profile) in PROFILES.iter().enumerate() {
        let cells: Vec<RtcCellOut> = slots[fi]
            .iter()
            .map(|&s| decode_cell(&result.outputs[s]))
            .collect();
        for (ci, &comp) in COMPANIONS.iter().enumerate() {
            let o = &cells[ci];
            matrix.row(vec![
                profile.into(),
                comp.into(),
                f2(o.rtc_mbps),
                f2(o.p95_frame_s * 1e3),
                f2(o.p99_frame_s * 1e3),
                format!("{}", o.freezes),
                f2(o.time_in_freeze_s),
                format!("{}/{}", o.frames_completed, o.frames_generated),
                f2(o.companion_mbps),
            ]);

            let subject = if comp == "alone" {
                "RTC alone".to_string()
            } else {
                format!("RTC vs {comp}")
            };
            let finite = o.rtc_mbps.is_finite()
                && o.p95_frame_s.is_finite()
                && o.p99_frame_s.is_finite()
                && o.time_in_freeze_s.is_finite();
            checks.push(RtcCheck {
                profile,
                subject: subject.clone(),
                check: "finite",
                value: if finite { 0.0 } else { 1.0 },
                pass: finite,
            });
            // The call must keep running everywhere: most frames complete
            // and bytes still move over the tail.
            let frac = o.frames_completed as f64 / nominal_frames;
            checks.push(RtcCheck {
                profile,
                subject,
                check: "progress",
                value: frac,
                pass: frac >= MIN_FRAMES_FRACTION && o.rtc_mbps > 0.05,
            });
        }

        let alone = &cells[0];
        let scav = &cells[1];
        let ledbat = &cells[2];
        let cubic = &cells[3];
        harm.row(vec![
            profile.into(),
            f2(alone.p95_frame_s * 1e3),
            f2(scav.p95_frame_s * 1e3),
            f2(ledbat.p95_frame_s * 1e3),
            f2(cubic.p95_frame_s * 1e3),
            f2(inflation(scav, alone)),
            f2(inflation(ledbat, alone)),
            f2(inflation(cubic, alone)),
        ]);

        if profile == "clean" {
            checks.push(RtcCheck {
                profile,
                subject: "RTC alone".into(),
                check: "clean-slo",
                value: alone.p95_frame_s,
                pass: alone.freezes == 0
                    && alone.p95_frame_s <= MediaSpec::default().deadline.as_secs_f64(),
            });
        }
        // The headline bound: Proteus-S underneath may not blow up the
        // call's p95 frame delay relative to its alone run on the same
        // profile.
        let reference = if profile == "faulted" {
            alone.p95_frame_s.max(FAULTED_OUTAGE_S)
        } else {
            alone.p95_frame_s
        };
        let bound = HARM_X * reference + HARM_SLACK_S;
        checks.push(RtcCheck {
            profile,
            subject: "RTC vs Proteus-S".into(),
            check: "scavenger-harm",
            value: scav.p95_frame_s,
            pass: scav.p95_frame_s <= bound,
        });
    }

    let mut inv = Table::new(
        "Invariants: the call's latency SLO under background traffic",
        &["profile", "subject", "check", "value", "verdict"],
    );
    for c in &checks {
        inv.row(vec![
            c.profile.into(),
            c.subject.clone(),
            c.check.into(),
            format!("{:.4}", c.value),
            verdict(c.pass),
        ]);
    }

    let failed = checks.iter().filter(|c| !c.pass).count();
    let summary = format!(
        "invariants: {}/{} passed{}\n",
        checks.len() - failed,
        checks.len(),
        if failed == 0 {
            String::new()
        } else {
            format!(" — {failed} FAILED")
        }
    );
    let text = format!(
        "{}\n{}\n{}\n{summary}",
        matrix.render(),
        harm.render(),
        inv.render()
    );

    let dir = results_dir().join("rtc");
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("report.txt"), &text);
    let _ = fs::write(dir.join("matrix.csv"), matrix.to_csv());
    let _ = fs::write(dir.join("harm.csv"), harm.to_csv());
    let _ = fs::write(dir.join("invariants.csv"), inv.to_csv());

    RtcOutcome {
        checks,
        report: text,
    }
}

/// Registry entry point: runs the campaign and returns the report.
pub fn run_experiment(cfg: RunCfg) -> String {
    run_with_outcome(cfg).report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtc_jobs_have_distinct_identities() {
        let a = rtc_job("clean", "alone", 24.0, 1);
        let b = rtc_job("clean", "Proteus-S", 24.0, 1);
        let c = rtc_job("faulted", "alone", 24.0, 1);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(b.key(), c.key());
    }

    #[test]
    #[should_panic]
    fn unknown_profile_panics() {
        let _ = run(rtc_scenario("gremlins", None, 1.0, 1));
    }

    #[test]
    fn faulted_schedule_is_nonempty_and_scaled() {
        assert!(!faulted_schedule(24.0).is_empty());
    }

    #[test]
    fn outcome_reports_failures() {
        let mk = |pass| RtcOutcome {
            checks: vec![RtcCheck {
                profile: "clean",
                subject: "RTC alone".into(),
                check: "progress",
                value: 1.0,
                pass,
            }],
            report: String::new(),
        };
        assert!(mk(true).all_pass());
        assert!(!mk(false).all_pass());
        assert_eq!(mk(false).failures().len(), 1);
    }
}
