//! Fig. 11: application benchmarks with a background scavenger (§6.2.2).
//!
//! (a) 1/2/4/8 concurrent DASH videos on a ~100 Mbps downlink, with a
//! single background bulk flow running nothing / Proteus-S / LEDBAT /
//! CUBIC; reports the average chunk bitrate.
//! (b) Poisson web page loads (top-30-style sizes, 1 request / 10 s over a
//! 10-minute run) with the same backgrounds; reports page-load-time
//! quantiles.

use proteus_apps::video::corpus_1080p;
use proteus_apps::WebWorkload;
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_stats::Ecdf;
use proteus_transport::Dur;

use crate::experiments::video_util::{add_video_flow, VideoTransport};
use crate::protocols::cc;
use crate::report::{f2, write_report, Table};
use crate::RunCfg;

const BACKGROUNDS: &[&str] = &["none", "Proteus-S", "LEDBAT", "CUBIC"];

fn link() -> LinkSpec {
    // Wired ~100 Mbps downlink (the paper's Xfinity line).
    LinkSpec::new(100.0, Dur::from_millis(30), 750_000)
}

fn add_background(sc: &mut Scenario, bg: &'static str, start: Dur) {
    if bg == "none" {
        return;
    }
    sc.flows
        .push(FlowSpec::bulk("background", start, move || cc(bg, 0xBADA)));
}

fn dash_table(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 60.0 } else { 150.0 };
    let counts: &[usize] = if cfg.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut t = Table::new(
        "Fig 11(a): average DASH chunk bitrate (Mbps) vs concurrent videos",
        &{
            let mut h = vec!["videos"];
            h.extend(BACKGROUNDS);
            h
        },
    );
    for &n in counts {
        let mut row = vec![n.to_string()];
        for &bg in BACKGROUNDS {
            let mut sc = Scenario::new(link(), Dur::from_secs_f64(secs))
                .with_seed(cfg.seed)
                .with_rtt_stride(16);
            let corpus = corpus_1080p(n, cfg.seed);
            let handles: Vec<_> = corpus
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    add_video_flow(
                        &mut sc,
                        v,
                        VideoTransport::Primary,
                        cfg.seed + i as u64,
                        false,
                        Dur::ZERO,
                    )
                })
                .collect();
            add_background(&mut sc, bg, Dur::ZERO);
            run(sc);
            let avg: f64 = handles
                .iter()
                .map(|h| h.borrow().avg_bitrate())
                .sum::<f64>()
                / n as f64;
            row.push(f2(avg));
        }
        t.row(row);
    }
    t
}

fn web_table(cfg: RunCfg) -> Table {
    let duration = if cfg.quick {
        Dur::from_secs(120)
    } else {
        Dur::from_secs(600)
    };
    let mut t = Table::new(
        "Fig 11(b): page load time (seconds) with background flows",
        &["background", "median", "mean", "p90", "pages"],
    );
    for &bg in BACKGROUNDS {
        let workload = WebWorkload {
            duration,
            ..WebWorkload::default()
        };
        let pages = workload.generate(cfg.seed);
        let mut sc = Scenario::new(link(), duration + Dur::from_secs(60))
            .with_seed(cfg.seed)
            .with_rtt_stride(16);
        for (i, p) in pages.iter().enumerate() {
            sc = sc.flow(FlowSpec::sized(
                format!("page-{i}"),
                p.start,
                p.bytes,
                move || cc("CUBIC", i as u64),
            ));
        }
        add_background(&mut sc, bg, Dur::ZERO);
        let res = run(sc);
        let plts: Vec<f64> = res
            .flows
            .iter()
            .filter(|f| f.name.starts_with("page-"))
            .filter_map(|f| f.completion_time().map(|d| d.as_secs_f64()))
            .collect();
        let e = Ecdf::new(plts.iter().copied());
        t.row(vec![
            bg.into(),
            f2(e.median().unwrap_or(f64::NAN)),
            f2(e.mean().unwrap_or(f64::NAN)),
            f2(e.quantile(0.9).unwrap_or(f64::NAN)),
            e.len().to_string(),
        ]);
    }
    t
}

/// Runs the Fig.-11 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let dash = dash_table(cfg);
    let web = web_table(cfg);
    let text = format!("{}\n{}\n", dash.render(), web.render());
    write_report("fig11", &text, &[&dash, &web]);
    text
}
