//! Figs. 12 & 13: the Proteus-H hybrid mode in adaptive video streaming
//! (§6.3).
//!
//! One 4K video + three 1080P videos stream simultaneously for ~3 minutes
//! over a 30 ms / 900 KB bottleneck of varying bandwidth, all on Proteus-H
//! (with the §4.4 threshold rules) or all on Proteus-P. Fig. 12 uses BOLA
//! adaptation and reports average chunk bitrate and rebuffer ratio per
//! class; Fig. 13 forces the highest rung to expose the rebuffering gap.

use proteus_apps::video::{corpus_1080p, corpus_4k};
use proteus_netsim::{run, LinkSpec, Scenario};
use proteus_transport::Dur;

use crate::experiments::video_util::{add_video_flow, VideoTransport};
use crate::report::{f2, pct, write_report, Table};
use crate::RunCfg;

/// Outcome of one 1×4K + 3×1080P run.
struct ClassStats {
    bitrate_4k: f64,
    bitrate_1080: f64,
    rebuffer_4k: f64,
    rebuffer_1080: f64,
}

fn streaming_run(
    bw_mbps: f64,
    transport: VideoTransport,
    forced_max: bool,
    secs: f64,
    seed: u64,
) -> ClassStats {
    let link = LinkSpec::new(bw_mbps, Dur::from_millis(30), 900_000);
    let mut sc = Scenario::new(link, Dur::from_secs_f64(secs))
        .with_seed(seed)
        .with_rtt_stride(16);
    // The corpus is fixed across trials; only the dynamics seeds vary.
    let v4k = corpus_4k(1, 1)[0].clone();
    let v1080 = corpus_1080p(3, 1);
    let h4k = add_video_flow(&mut sc, v4k, transport, seed + 1, forced_max, Dur::ZERO);
    let h1080: Vec<_> = v1080
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            add_video_flow(
                &mut sc,
                v,
                transport,
                seed + 10 + i as u64,
                forced_max,
                Dur::ZERO,
            )
        })
        .collect();
    run(sc);
    let b4k = h4k.borrow();
    ClassStats {
        bitrate_4k: b4k.avg_bitrate(),
        rebuffer_4k: b4k.rebuffer_ratio,
        bitrate_1080: h1080.iter().map(|h| h.borrow().avg_bitrate()).sum::<f64>() / 3.0,
        rebuffer_1080: h1080.iter().map(|h| h.borrow().rebuffer_ratio).sum::<f64>() / 3.0,
    }
}

/// Averages [`streaming_run`] over `trials` seeds (rebuffering outcomes are
/// seed-sensitive; the paper averages ≥ 10 trials).
fn averaged_run(
    bw: f64,
    transport: VideoTransport,
    forced: bool,
    secs: f64,
    base_seed: u64,
    trials: u64,
) -> ClassStats {
    let mut acc = ClassStats {
        bitrate_4k: 0.0,
        bitrate_1080: 0.0,
        rebuffer_4k: 0.0,
        rebuffer_1080: 0.0,
    };
    for t in 0..trials {
        let s = streaming_run(bw, transport, forced, secs, base_seed + 101 * t);
        acc.bitrate_4k += s.bitrate_4k;
        acc.bitrate_1080 += s.bitrate_1080;
        acc.rebuffer_4k += s.rebuffer_4k;
        acc.rebuffer_1080 += s.rebuffer_1080;
    }
    let n = trials as f64;
    ClassStats {
        bitrate_4k: acc.bitrate_4k / n,
        bitrate_1080: acc.bitrate_1080 / n,
        rebuffer_4k: acc.rebuffer_4k / n,
        rebuffer_1080: acc.rebuffer_1080 / n,
    }
}

/// Runs Fig. 12 (BOLA-adaptive).
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 60.0 } else { 180.0 };
    let bws: &[f64] = if cfg.quick {
        &[90.0, 110.0]
    } else {
        &[70.0, 80.0, 90.0, 100.0, 110.0, 120.0]
    };
    let mut t = Table::new(
        "Fig 12: Proteus-H vs Proteus-P, BOLA adaptive streaming (1x4K + 3x1080P)",
        &[
            "bw_Mbps",
            "4K_bitrate_H",
            "4K_bitrate_P",
            "1080_bitrate_H",
            "1080_bitrate_P",
            "4K_rebuf_H",
            "4K_rebuf_P",
            "1080_rebuf_H",
            "1080_rebuf_P",
        ],
    );
    for &bw in bws {
        let h = averaged_run(
            bw,
            VideoTransport::Hybrid,
            false,
            secs,
            cfg.seed,
            cfg.trials,
        );
        let p = averaged_run(
            bw,
            VideoTransport::Primary,
            false,
            secs,
            cfg.seed,
            cfg.trials,
        );
        t.row(vec![
            format!("{bw:.0}"),
            f2(h.bitrate_4k),
            f2(p.bitrate_4k),
            f2(h.bitrate_1080),
            f2(p.bitrate_1080),
            pct(h.rebuffer_4k),
            pct(p.rebuffer_4k),
            pct(h.rebuffer_1080),
            pct(p.rebuffer_1080),
        ]);
    }
    let text = format!("{}\n", t.render());
    write_report("fig12", &text, &[&t]);
    text
}

/// Runs Fig. 13 (forced highest bitrate).
pub fn run_experiment_forced(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 60.0 } else { 180.0 };
    let bws: &[f64] = if cfg.quick {
        &[110.0]
    } else {
        &[90.0, 100.0, 110.0, 120.0, 130.0, 140.0]
    };
    let mut t = Table::new(
        "Fig 13: forced-highest-bitrate rebuffer ratio, Proteus-H vs Proteus-P",
        &[
            "bw_Mbps",
            "4K_rebuf_H",
            "4K_rebuf_P",
            "1080_rebuf_H",
            "1080_rebuf_P",
        ],
    );
    for &bw in bws {
        let h = averaged_run(bw, VideoTransport::Hybrid, true, secs, cfg.seed, cfg.trials);
        let p = averaged_run(
            bw,
            VideoTransport::Primary,
            true,
            secs,
            cfg.seed,
            cfg.trials,
        );
        t.row(vec![
            format!("{bw:.0}"),
            pct(h.rebuffer_4k),
            pct(p.rebuffer_4k),
            pct(h.rebuffer_1080),
            pct(p.rebuffer_1080),
        ]);
    }
    let text = format!("{}\n", t.render());
    write_report("fig13", &text, &[&t]);
    text
}
