//! One module per figure/table of the paper; see each module's docs for the
//! exact setup. [`registry`] lists every runnable experiment.

pub mod ablation;
pub mod appendix_b;
pub mod equilibrium;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod rtc;
pub mod scale;
pub mod stress;
pub mod topology;
pub mod tune;
pub mod video_util;
pub mod wifi;

use crate::RunCfg;

/// A runnable experiment.
pub struct Experiment {
    /// CLI identifier (e.g. `"fig3"`).
    pub id: &'static str,
    /// What it reproduces.
    pub description: &'static str,
    /// Entry point.
    pub run: fn(RunCfg) -> String,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            description:
                "PDF of RTT deviation/gradient under Poisson CUBIC flows + confusion probability",
            run: fig2::run_experiment,
        },
        Experiment {
            id: "fig3",
            description: "Bottleneck saturation with varying buffer size (throughput + inflation)",
            run: fig3::run_experiment,
        },
        Experiment {
            id: "fig4",
            description: "Random-loss tolerance",
            run: fig4::run_experiment,
        },
        Experiment {
            id: "fig5",
            description: "Jain's fairness index vs number of flows",
            run: fig5::run_experiment,
        },
        Experiment {
            id: "fig6",
            description: "Scavenger vs primary: throughput ratio and utilization",
            run: fig6::run_experiment,
        },
        Experiment {
            id: "fig7",
            description: "95th-percentile RTT ratio under competition",
            run: fig7::run_experiment,
        },
        Experiment {
            id: "fig8",
            description: "Primary throughput ratio CDF across bottleneck configurations",
            run: fig8::run_experiment,
        },
        Experiment {
            id: "fig9",
            description: "WiFi single-flow throughput + yielding CDFs (also covers fig10/21/22)",
            run: wifi::run_experiment,
        },
        Experiment {
            id: "fig11",
            description: "DASH bitrate and page-load time with background scavengers",
            run: fig11::run_experiment,
        },
        Experiment {
            id: "fig12",
            description: "Proteus-H vs Proteus-P: adaptive video bitrate/rebuffering",
            run: fig12::run_experiment,
        },
        Experiment {
            id: "fig13",
            description: "Proteus-H vs Proteus-P: forced-max-bitrate rebuffering",
            run: fig12::run_experiment_forced,
        },
        Experiment {
            id: "fig14",
            description: "BBR-S: RTT-deviation yielding grafted onto BBR",
            run: fig14::run_experiment,
        },
        Experiment {
            id: "appB",
            description: "Appendix B: LEDBAT-25 cannot be saved by tuning (figs 15-20)",
            run: appendix_b::run_experiment,
        },
        Experiment {
            id: "ablation",
            description:
                "Design ablations: each S5 noise mechanism, majority rule, deviation coefficient",
            run: ablation::run_experiment,
        },
        Experiment {
            id: "theory",
            description: "Appendix A equilibria + S4.4 hybrid ideal allocation",
            run: equilibrium::run_experiment,
        },
        Experiment {
            id: "stress",
            description:
                "Robustness: fault profiles (outages, bursty loss, reordering, ACK compression) x protocols + invariant checker",
            run: stress::run_experiment,
        },
        Experiment {
            id: "scale",
            description:
                "ISP-scale populations: 1k/10k/100k churning flows with equilibrium-fairness and scavenger-harm invariants",
            run: scale::run_experiment,
        },
        Experiment {
            id: "topology",
            description:
                "Multi-bottleneck topologies: parking-lot fairness, RTT-unfairness chain, scavenger harm behind two bottlenecks",
            run: topology::run_experiment,
        },
        Experiment {
            id: "rtc",
            description:
                "Real-time media: frame-paced call (Cross) alone and vs Proteus-S/LEDBAT/CUBIC with latency-SLO invariants",
            run: rtc::run_experiment,
        },
        Experiment {
            id: "tune",
            description:
                "Offline parameter search + utility ablation: grid sweep and genetic refinement over ProteusConfig space",
            run: tune::run_experiment,
        },
    ]
}
