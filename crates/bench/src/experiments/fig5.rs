//! Fig. 5: intra-protocol fairness (§6.1.3).
//!
//! `n ∈ 2..10` flows of the same protocol on a `20·n` Mbps / 30 ms link
//! with a `300·n` KB buffer; each flow starts 20 s after the previous.
//! Jain's index over mean per-flow throughput measured after all flows
//! are up. LEDBAT's latecomer advantage shows as a dip that recovers once
//! the sum of delay targets exceeds the buffer.

use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_runner::{payload, SimJob};
use proteus_stats::jain_index;
use proteus_transport::{Dur, Time};

use crate::protocols::{cc, ALL_FIG3};
use crate::report::{f3, write_report, Table};
use crate::runner::campaign;
use crate::RunCfg;

fn flow_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 4]
    } else {
        vec![2, 3, 4, 5, 6, 7, 8, 9, 10]
    }
}

/// Jain index of `n` same-protocol flows (staggered starts).
pub fn fairness_run(proto: &'static str, n: usize, measure_secs: f64, seed: u64) -> f64 {
    let link = LinkSpec::new(20.0 * n as f64, Dur::from_millis(30), 300_000 * n as u64);
    let last_start = 20.0 * (n - 1) as f64;
    let total = last_start + measure_secs;
    let mut sc = Scenario::new(link, Dur::from_secs_f64(total))
        .with_seed(seed)
        .with_rtt_stride(64);
    for i in 0..n {
        sc = sc.flow(FlowSpec::bulk(
            format!("{proto}-{i}"),
            Dur::from_secs_f64(20.0 * i as f64),
            move || cc(proto, seed + i as u64),
        ));
    }
    let res = run(sc);
    let from = Time::from_secs_f64(last_start);
    let to = Time::from_secs_f64(total);
    let rates: Vec<f64> = res
        .flows
        .iter()
        .map(|f| f.throughput_mbps(from, to))
        .collect();
    jain_index(&rates).unwrap_or(0.0)
}

/// Campaign job for one intra-protocol fairness cell; payload `[jain]`.
/// The descriptor is shared with Appendix B's Fig. 17, so overlapping
/// cells are simulated (and cached) once.
pub fn fairness_job(proto: &'static str, n: usize, measure_secs: f64, seed: u64) -> SimJob {
    SimJob::new(
        format!("fairness/proto={proto}/n={n}/measure={measure_secs:?}/seed={seed}/v1"),
        format!("fairness {proto} n={n}"),
        move || payload::encode_floats(&[fairness_run(proto, n, measure_secs, seed)]),
    )
}

/// Runs the Fig.-5 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let measure = if cfg.quick { 40.0 } else { 120.0 };
    let counts = flow_counts(cfg.quick);

    let mut camp = campaign("fig5", cfg);
    for &n in &counts {
        for &proto in ALL_FIG3 {
            camp.push(fairness_job(proto, n, measure, cfg.seed));
        }
    }
    let result = camp.run();
    let mut outputs = result.outputs.iter();

    let mut t = Table::new("Fig 5: Jain's fairness index vs number of flows", &{
        let mut h = vec!["n"];
        h.extend(ALL_FIG3);
        h
    });
    for &n in &counts {
        let mut row = vec![n.to_string()];
        for _ in ALL_FIG3 {
            let jain = payload::decode_floats(outputs.next().expect("one output per job"))[0];
            row.push(f3(jain));
        }
        t.row(row);
    }
    let text = format!("{}\n", t.render());
    write_report("fig5", &text, &[&t]);
    text
}
