//! Ablations of Proteus' design choices.
//!
//! §5's closing note says each tolerance mechanism matters but the paper
//! "does not have enough space to show how each... contributes". This
//! module fills that gap:
//!
//! 1. **Noise mechanisms** — Proteus-S single-flow throughput on noisy
//!    WiFi paths with each §5 mechanism disabled in turn (the per-ACK
//!    filter, per-MI regression-error tolerance, trending tolerance), plus
//!    Vivace's flat threshold as the no-adaptation baseline.
//! 2. **Majority rule** — three-pair majority vs Vivace's two-pair
//!    agreement probing, same noisy paths.
//! 3. **Deviation coefficient** — the scavenger's equilibrium share against
//!    a Proteus-P primary as `d` sweeps around the paper's 1500.
//! 4. **Stable-link sanity** — per-MI tolerance is what lets a Proteus
//!    sender saturate even a clean bottleneck (the paper's stated reason
//!    for mechanism 2).

use proteus_core::{
    AdaptiveNoiseParams, Mode, NoiseTolerance, ProbeRule, ProteusConfig, ProteusSender,
    UtilityParams,
};
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_transport::{CongestionControl, Dur};

use crate::experiments::wifi::wifi_paths;
use crate::report::{f2, pct, write_report, Table};
use crate::runner::{run_single, tail_mbps, tail_window};
use crate::RunCfg;

/// Named noise-tolerance variants for ablation runs.
fn noise_variants() -> Vec<(&'static str, NoiseTolerance)> {
    let full = AdaptiveNoiseParams::default();
    vec![
        ("full (paper)", NoiseTolerance::Adaptive(full)),
        (
            "no ACK filter",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                ack_interval_ratio: f64::INFINITY,
                ..full
            }),
        ),
        (
            "no per-MI gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                per_mi_tolerance: false,
                ..full
            }),
        ),
        (
            "no trending gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                trending_tolerance: false,
                ..full
            }),
        ),
        ("flat threshold (Vivace)", NoiseTolerance::FixedThreshold(0.01)),
    ]
}

fn scavenger_with_noise(noise: NoiseTolerance, seed: u64) -> Box<dyn CongestionControl> {
    let mut cfg = ProteusConfig::proteus().with_seed(seed);
    cfg.noise = noise;
    Box::new(ProteusSender::with_config(cfg, Mode::Scavenger))
}

fn noise_mechanism_table(cfg: RunCfg) -> Table {
    let n_paths = if cfg.quick { 2 } else { 10 };
    let secs = if cfg.quick { 20.0 } else { 40.0 };
    let paths = wifi_paths(n_paths, cfg.seed ^ 0xAB1);
    let mut t = Table::new(
        "Ablation 1: Proteus-S mean utilization on noisy WiFi paths, one §5 mechanism removed at a time",
        &["variant", "mean_utilization"],
    );
    for (label, noise) in noise_variants() {
        let mut total = 0.0;
        for (ci, link) in paths.iter().enumerate() {
            // A fresh factory per run (the closure captures the config).
            let noise_copy = noise;
            let seed = cfg.seed + ci as u64;
            let sc = Scenario::new(*link, Dur::from_secs_f64(secs))
                .flow(FlowSpec::bulk("s", Dur::ZERO, move || {
                    scavenger_with_noise(noise_copy, seed)
                }))
                .with_seed(seed)
                .with_rtt_stride(2);
            let res = run(sc);
            total += tail_mbps(&res, 0, secs) / link.bandwidth_mbps;
        }
        t.row(vec![label.into(), pct(total / paths.len() as f64)]);
    }
    t
}

fn majority_rule_table(cfg: RunCfg) -> Table {
    let n_paths = if cfg.quick { 2 } else { 10 };
    let secs = if cfg.quick { 20.0 } else { 40.0 };
    let paths = wifi_paths(n_paths, cfg.seed ^ 0xAB2);
    let mut t = Table::new(
        "Ablation 2: probing decision rule on noisy paths (Proteus-S utilization)",
        &["rule", "mean_utilization"],
    );
    for (label, rule) in [
        ("3-pair majority (Proteus)", ProbeRule::Majority),
        ("2-pair agreement (Vivace)", ProbeRule::Agreement),
    ] {
        let mut total = 0.0;
        for (ci, link) in paths.iter().enumerate() {
            let seed = cfg.seed + ci as u64;
            let sc = Scenario::new(*link, Dur::from_secs_f64(secs))
                .flow(FlowSpec::bulk("s", Dur::ZERO, move || {
                    let mut c = ProteusConfig::proteus().with_seed(seed);
                    c.rate_control.probe_rule = rule;
                    Box::new(ProteusSender::with_config(c, Mode::Scavenger))
                }))
                .with_seed(seed)
                .with_rtt_stride(2);
            let res = run(sc);
            total += tail_mbps(&res, 0, secs) / link.bandwidth_mbps;
        }
        t.row(vec![label.into(), pct(total / paths.len() as f64)]);
    }
    t
}

fn deviation_coef_table(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 30.0 } else { 60.0 };
    let coefs: &[f64] = if cfg.quick {
        &[1500.0]
    } else {
        &[375.0, 750.0, 1500.0, 3000.0, 6000.0]
    };
    let mut t = Table::new(
        "Ablation 3: scavenger share vs deviation coefficient d (vs Proteus-P primary; paper default d = 1500)",
        &["d", "primary_Mbps", "scavenger_Mbps", "scavenger_share"],
    );
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    for &d in coefs {
        let sc = Scenario::new(link, Dur::from_secs_f64(secs))
            .flow(FlowSpec::bulk("p", Dur::ZERO, move || {
                Box::new(ProteusSender::primary(cfg.seed ^ 0xA5))
            }))
            .flow(FlowSpec::bulk("s", Dur::from_secs(5), move || {
                let mut c = ProteusConfig::proteus().with_seed(cfg.seed ^ 0x5A);
                c.utility = UtilityParams {
                    deviation_coef: d,
                    ..UtilityParams::default()
                };
                Box::new(ProteusSender::with_config(c, Mode::Scavenger))
            }))
            .with_seed(cfg.seed)
            .with_rtt_stride(2);
        let res = run(sc);
        let (a, b) = tail_window(secs);
        let p = res.flows[0].throughput_mbps(a, b);
        let s = res.flows[1].throughput_mbps(a, b);
        t.row(vec![
            format!("{d:.0}"),
            f2(p),
            f2(s),
            pct(s / (p + s).max(1e-9)),
        ]);
    }
    t
}

fn stable_link_table(cfg: RunCfg) -> Table {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let mut t = Table::new(
        "Ablation 4: clean 50 Mbps bottleneck — per-MI tolerance and saturation",
        &["variant", "throughput_Mbps"],
    );
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    for (label, noise) in noise_variants() {
        let sc = Scenario::new(link, Dur::from_secs_f64(secs))
            .flow(FlowSpec::bulk("s", Dur::ZERO, move || {
                scavenger_with_noise(noise, cfg.seed ^ 0xA5)
            }))
            .with_seed(cfg.seed)
            .with_rtt_stride(2);
        let res = run(sc);
        t.row(vec![label.into(), f2(tail_mbps(&res, 0, secs))]);
    }
    // Reference: Proteus-P on the same link.
    let res = run_single("Proteus-P", link, secs, cfg.seed);
    t.row(vec!["Proteus-P reference".into(), f2(tail_mbps(&res, 0, secs))]);
    t
}

/// Runs the ablation suite.
pub fn run_experiment(cfg: RunCfg) -> String {
    let t1 = noise_mechanism_table(cfg);
    let t2 = majority_rule_table(cfg);
    let t3 = deviation_coef_table(cfg);
    let t4 = stable_link_table(cfg);
    let text = format!(
        "{}\n{}\n{}\n{}\n",
        t1.render(),
        t2.render(),
        t3.render(),
        t4.render()
    );
    write_report("ablation", &text, &[&t1, &t2, &t3, &t4]);
    text
}
