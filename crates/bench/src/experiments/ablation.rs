//! Ablations of Proteus' design choices.
//!
//! §5's closing note says each tolerance mechanism matters but the paper
//! "does not have enough space to show how each... contributes". This
//! module fills that gap:
//!
//! 1. **Noise mechanisms** — Proteus-S single-flow throughput on noisy
//!    WiFi paths with each §5 mechanism disabled in turn (the per-ACK
//!    filter, per-MI regression-error tolerance, trending tolerance), plus
//!    Vivace's flat threshold as the no-adaptation baseline.
//! 2. **Majority rule** — three-pair majority vs Vivace's two-pair
//!    agreement probing, same noisy paths.
//! 3. **Deviation coefficient** — the scavenger's equilibrium share against
//!    a Proteus-P primary as `d` sweeps around the paper's 1500.
//! 4. **Stable-link sanity** — per-MI tolerance is what lets a Proteus
//!    sender saturate even a clean bottleneck (the paper's stated reason
//!    for mechanism 2).
//!
//! All four sweeps are submitted as one campaign; the Proteus-P reference
//! run shares its cache descriptor with Fig. 6's alone baselines.

use proteus_core::{
    AdaptiveNoiseParams, Mode, NoiseTolerance, ProbeRule, ProteusConfig, ProteusSender,
    UtilityParams,
};
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_runner::{payload, Campaign, SimJob};
use proteus_transport::{CongestionControl, Dur};

use crate::experiments::wifi::{path_tag, wifi_paths};
use crate::report::{f2, pct, write_report, Table};
use crate::runner::{
    campaign, decode_single, link_tag, single_job, tail_mbps, tail_window, Traces,
};
use crate::RunCfg;

/// Named noise-tolerance variants for ablation runs.
fn noise_variants() -> Vec<(&'static str, NoiseTolerance)> {
    let full = AdaptiveNoiseParams::default();
    vec![
        ("full (paper)", NoiseTolerance::Adaptive(full)),
        (
            "no ACK filter",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                ack_interval_ratio: f64::INFINITY,
                ..full
            }),
        ),
        (
            "no per-MI gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                per_mi_tolerance: false,
                ..full
            }),
        ),
        (
            "no trending gate",
            NoiseTolerance::Adaptive(AdaptiveNoiseParams {
                trending_tolerance: false,
                ..full
            }),
        ),
        (
            "flat threshold (Vivace)",
            NoiseTolerance::FixedThreshold(0.01),
        ),
    ]
}

fn scavenger_with_noise(noise: NoiseTolerance, seed: u64) -> Box<dyn CongestionControl> {
    let mut cfg = ProteusConfig::proteus().with_seed(seed);
    cfg.noise = noise;
    Box::new(ProteusSender::with_config(cfg, Mode::Scavenger))
}

/// One scavenger flow with the given tolerance on `link`; payload
/// `[utilization]`.
fn noise_job(
    exp: &'static str,
    label: &'static str,
    tag: &str,
    noise: NoiseTolerance,
    link: LinkSpec,
    secs: f64,
    seed: u64,
) -> SimJob {
    SimJob::new(
        format!("{exp}/variant={label}/{tag}/secs={secs:?}/seed={seed}/v1"),
        format!("{exp} {label} {tag}"),
        move || {
            let sc = Scenario::new(link, Dur::from_secs_f64(secs))
                .flow(FlowSpec::bulk("s", Dur::ZERO, move || {
                    scavenger_with_noise(noise, seed)
                }))
                .with_seed(seed)
                .with_rtt_stride(2);
            let res = run(sc);
            payload::encode_floats(&[tail_mbps(&res, 0, secs) / link.bandwidth_mbps])
        },
    )
}

fn ablation1_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<Vec<usize>> {
    let n_paths = if cfg.quick { 2 } else { 10 };
    let secs = if cfg.quick { 20.0 } else { 40.0 };
    let path_seed = cfg.seed ^ 0xAB1;
    let paths = wifi_paths(n_paths, path_seed);
    noise_variants()
        .into_iter()
        .map(|(label, noise)| {
            paths
                .iter()
                .enumerate()
                .map(|(ci, link)| {
                    camp.push_dedup(noise_job(
                        "ablation1",
                        label,
                        &path_tag(path_seed, ci),
                        noise,
                        *link,
                        secs,
                        cfg.seed + ci as u64,
                    ))
                })
                .collect()
        })
        .collect()
}

fn ablation1_table(outputs: &[String], slots: &[Vec<usize>]) -> Table {
    let mut t = Table::new(
        "Ablation 1: Proteus-S mean utilization on noisy WiFi paths, one §5 mechanism removed at a time",
        &["variant", "mean_utilization"],
    );
    for ((label, _), per_path) in noise_variants().into_iter().zip(slots) {
        let total: f64 = per_path
            .iter()
            .map(|&s| payload::decode_floats(&outputs[s])[0])
            .sum();
        t.row(vec![label.into(), pct(total / per_path.len() as f64)]);
    }
    t
}

const RULES: &[(&str, ProbeRule)] = &[
    ("3-pair majority (Proteus)", ProbeRule::Majority),
    ("2-pair agreement (Vivace)", ProbeRule::Agreement),
];

fn ablation2_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<Vec<usize>> {
    let n_paths = if cfg.quick { 2 } else { 10 };
    let secs = if cfg.quick { 20.0 } else { 40.0 };
    let path_seed = cfg.seed ^ 0xAB2;
    let paths = wifi_paths(n_paths, path_seed);
    RULES
        .iter()
        .map(|&(label, rule)| {
            paths
                .iter()
                .enumerate()
                .map(|(ci, link)| {
                    let link = *link;
                    let seed = cfg.seed + ci as u64;
                    camp.push_dedup(SimJob::new(
                        format!(
                            "ablation2/rule={label}/{}/secs={secs:?}/seed={seed}/v1",
                            path_tag(path_seed, ci)
                        ),
                        format!("ablation2 {label} path{ci}"),
                        move || {
                            let sc = Scenario::new(link, Dur::from_secs_f64(secs))
                                .flow(FlowSpec::bulk("s", Dur::ZERO, move || {
                                    let mut c = ProteusConfig::proteus().with_seed(seed);
                                    c.rate_control.probe_rule = rule;
                                    Box::new(ProteusSender::with_config(c, Mode::Scavenger))
                                }))
                                .with_seed(seed)
                                .with_rtt_stride(2);
                            let res = run(sc);
                            payload::encode_floats(
                                &[tail_mbps(&res, 0, secs) / link.bandwidth_mbps],
                            )
                        },
                    ))
                })
                .collect()
        })
        .collect()
}

fn ablation2_table(outputs: &[String], slots: &[Vec<usize>]) -> Table {
    let mut t = Table::new(
        "Ablation 2: probing decision rule on noisy paths (Proteus-S utilization)",
        &["rule", "mean_utilization"],
    );
    for (&(label, _), per_path) in RULES.iter().zip(slots) {
        let total: f64 = per_path
            .iter()
            .map(|&s| payload::decode_floats(&outputs[s])[0])
            .sum();
        t.row(vec![label.into(), pct(total / per_path.len() as f64)]);
    }
    t
}

fn ablation3_coefs(quick: bool) -> &'static [f64] {
    if quick {
        &[1500.0]
    } else {
        &[375.0, 750.0, 1500.0, 3000.0, 6000.0]
    }
}

fn ablation3_submit(cfg: RunCfg, camp: &mut Campaign) -> Vec<usize> {
    let secs = if cfg.quick { 30.0 } else { 60.0 };
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    ablation3_coefs(cfg.quick)
        .iter()
        .map(|&d| {
            let seed = cfg.seed;
            camp.push_dedup(SimJob::new(
                format!("ablation3/d={d:?}/secs={secs:?}/seed={seed}/v1"),
                format!("ablation3 d={d:.0}"),
                move || {
                    let sc = Scenario::new(link, Dur::from_secs_f64(secs))
                        .flow(FlowSpec::bulk("p", Dur::ZERO, move || {
                            Box::new(ProteusSender::primary(seed ^ 0xA5))
                        }))
                        .flow(FlowSpec::bulk("s", Dur::from_secs(5), move || {
                            let mut c = ProteusConfig::proteus().with_seed(seed ^ 0x5A);
                            c.utility = UtilityParams {
                                deviation_coef: d,
                                ..UtilityParams::default()
                            };
                            Box::new(ProteusSender::with_config(c, Mode::Scavenger))
                        }))
                        .with_seed(seed)
                        .with_rtt_stride(2);
                    let res = run(sc);
                    let (a, b) = tail_window(secs);
                    payload::encode_floats(&[
                        res.flows[0].throughput_mbps(a, b),
                        res.flows[1].throughput_mbps(a, b),
                    ])
                },
            ))
        })
        .collect()
}

fn ablation3_table(cfg: RunCfg, outputs: &[String], slots: &[usize]) -> Table {
    let mut t = Table::new(
        "Ablation 3: scavenger share vs deviation coefficient d (vs Proteus-P primary; paper default d = 1500)",
        &["d", "primary_Mbps", "scavenger_Mbps", "scavenger_share"],
    );
    for (&d, &slot) in ablation3_coefs(cfg.quick).iter().zip(slots) {
        let vals = payload::decode_floats(&outputs[slot]);
        let (p, s) = (vals[0], vals[1]);
        t.row(vec![
            format!("{d:.0}"),
            f2(p),
            f2(s),
            pct(s / (p + s).max(1e-9)),
        ]);
    }
    t
}

/// `(variant slots, Proteus-P reference slot)`.
fn ablation4_submit(cfg: RunCfg, camp: &mut Campaign) -> (Vec<usize>, usize) {
    let secs = if cfg.quick { 20.0 } else { 60.0 };
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let tag = link_tag(&link);
    let variants = noise_variants()
        .into_iter()
        .map(|(label, noise)| {
            camp.push_dedup(noise_job(
                "ablation4",
                label,
                &tag,
                noise,
                link,
                secs,
                cfg.seed ^ 0xA5,
            ))
        })
        .collect();
    // Reference: Proteus-P on the same link, via the shared single-flow
    // descriptor (cache-compatible with Fig. 6's alone baselines).
    let reference = camp.push_dedup(single_job(
        "ablation4",
        &tag,
        "Proteus-P",
        link,
        secs,
        cfg.seed,
        Traces::from_cfg(&cfg),
    ));
    (variants, reference)
}

fn ablation4_table(outputs: &[String], slots: &(Vec<usize>, usize)) -> Table {
    let mut t = Table::new(
        "Ablation 4: clean 50 Mbps bottleneck — per-MI tolerance and saturation",
        &["variant", "throughput_Mbps"],
    );
    for ((label, _), &slot) in noise_variants().into_iter().zip(&slots.0) {
        // Variant payloads are utilizations of the 50 Mbps link.
        let util = payload::decode_floats(&outputs[slot])[0];
        t.row(vec![label.into(), f2(util * 50.0)]);
    }
    let reference = decode_single(&outputs[slots.1]);
    t.row(vec!["Proteus-P reference".into(), f2(reference.tail_mbps)]);
    t
}

/// Runs the ablation suite.
pub fn run_experiment(cfg: RunCfg) -> String {
    let mut camp = campaign("ablation", cfg);
    let s1 = ablation1_submit(cfg, &mut camp);
    let s2 = ablation2_submit(cfg, &mut camp);
    let s3 = ablation3_submit(cfg, &mut camp);
    let s4 = ablation4_submit(cfg, &mut camp);
    let result = camp.run();
    let out = &result.outputs;

    let t1 = ablation1_table(out, &s1);
    let t2 = ablation2_table(out, &s2);
    let t3 = ablation3_table(cfg, out, &s3);
    let t4 = ablation4_table(out, &s4);
    let text = format!(
        "{}\n{}\n{}\n{}\n",
        t1.render(),
        t2.render(),
        t3.render(),
        t4.render()
    );
    write_report("ablation", &text, &[&t1, &t2, &t3, &t4]);
    text
}
