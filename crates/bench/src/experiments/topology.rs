//! `topology`: multi-bottleneck campaigns on netsim's link DAGs — the
//! parking lot, an RTT-unfairness chain, and scavenger harm behind two
//! bottlenecks — with an invariant checker and a generated
//! `results/topology/` report.
//!
//! The paper's dumbbell experiments share one bottleneck by construction.
//! Real paths cross several, and the classic multi-bottleneck effects the
//! congestion-control literature predicts are exactly the ones a
//! reproduction should be able to demonstrate (see `SCENARIOS.md` for the
//! topology schema and `EXPERIMENTS.md` for the campaign contract):
//!
//! * **parking lot** — N+1 flows over an N-link chain: one "long" flow
//!   crosses every link, N "short" flows each cross one. Loss-based
//!   control is biased against the long flow (it sees N drop points and
//!   N links' worth of RTT), so `long ≤ avg(short)`; the shorts, being
//!   symmetric, stay fair among themselves; every link stays utilized;
//! * **rtt-unfairness** — two flows share one bottleneck but the far flow
//!   first crosses an overprovisioned high-latency hop. CUBIC's RTT bias
//!   hands the near flow a super-proportional share (`near/far ≥ 1.3`)
//!   while the bottleneck itself stays saturated;
//! * **scavenger-harm** — a CUBIC primary per link of a two-link chain and
//!   one Proteus-S scavenger crossing both, arriving late: each primary
//!   keeps ≥ 70% of what it gets alone on the same topology — the §3
//!   yielding contract must survive a scavenger that is policed by *two*
//!   bottlenecks' deviation signals at once.
//!
//! Reports land in `results/topology/report.txt` (+ CSVs); the campaign is
//! deterministic, so two runs produce byte-identical reports.

use std::fs;

use proteus_netsim::{run, FlowSpec, LinkId, LinkSpec, Scenario, Topology};
use proteus_stats::jain_index;
use proteus_transport::Dur;

use proteus_runner::{payload, SimJob};

use crate::protocols::cc;
use crate::report::{f2, results_dir, Table};
use crate::runner::{campaign, tail_mbps};
use crate::RunCfg;

/// Parking-lot chain lengths exercised by the campaign.
pub const PARKING_SIZES: &[usize] = &[2, 3];

/// Protocols driven through the parking lot (every flow uses the same one).
pub const PARKING_PROTOCOLS: &[&str] = &["CUBIC", "Proteus-P"];

/// One parking-lot link: the paper-default rate with a short per-hop RTT so
/// a three-hop path still has a moderate base RTT.
fn parking_link() -> LinkSpec {
    LinkSpec::new(50.0, Dur::from_millis(10), 375_000)
}

/// The RTT-unfairness chain: an overprovisioned, high-latency access hop in
/// front of the shared bottleneck. `links[1]` is the bottleneck.
fn rtt_chain() -> Topology {
    Topology::chain(vec![
        LinkSpec::new(500.0, Dur::from_millis(60), 2_500_000),
        LinkSpec::new(50.0, Dur::from_millis(20), 375_000),
    ])
}

/// The scavenger-harm chain: two equal bottlenecks, one primary each.
fn harm_chain() -> Topology {
    Topology::chain(vec![
        LinkSpec::new(50.0, Dur::from_millis(15), 375_000),
        LinkSpec::new(50.0, Dur::from_millis(15), 375_000),
    ])
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// N+1 flows over an N-link parking lot, all running `proto`. Payload:
/// `[long_mbps, short_mbps × n, link_utilization × n]`.
fn parking_job(n: usize, proto: &'static str, secs: f64, seed: u64) -> SimJob {
    let descriptor = format!("topology-parking/n={n}/proto={proto}/secs={secs:?}/seed={seed}/v1");
    SimJob::new(
        descriptor,
        format!("{proto} parking lot, {n} links"),
        move || {
            let mut sc = Scenario::over(
                Topology::parking_lot(n, parking_link()),
                Dur::from_secs_f64(secs),
            )
            .with_seed(seed)
            .with_rtt_stride(2)
            .flow(FlowSpec::bulk("long", Dur::ZERO, move || {
                cc(proto, seed ^ 0xB0)
            }));
            for i in 0..n {
                let salt = 0xB1 + i as u64;
                sc = sc.flow(
                    FlowSpec::bulk("short", Dur::ZERO, move || cc(proto, seed ^ salt))
                        .with_path([i as LinkId]),
                );
            }
            let res = run(sc);
            let mut v = vec![tail_mbps(&res, 0, secs)];
            for i in 0..n {
                v.push(tail_mbps(&res, 1 + i, secs));
            }
            for l in &res.links {
                v.push(l.utilization(Dur::from_secs_f64(secs)));
            }
            payload::encode_floats(&v)
        },
    )
}

/// Near (bottleneck only) vs far (access hop + bottleneck) flow, both
/// running `proto`. Payload: `[near_mbps, far_mbps, bottleneck_util]`.
fn rtt_job(proto: &'static str, secs: f64, seed: u64) -> SimJob {
    let descriptor = format!("topology-rtt/proto={proto}/secs={secs:?}/seed={seed}/v1");
    SimJob::new(
        descriptor,
        format!("{proto} RTT-unfairness chain"),
        move || {
            let res = run(Scenario::over(rtt_chain(), Dur::from_secs_f64(secs))
                .with_seed(seed)
                .with_rtt_stride(2)
                .flow(
                    FlowSpec::bulk("near", Dur::ZERO, move || cc(proto, seed ^ 0xC0))
                        .with_path([1]),
                )
                .flow(
                    FlowSpec::bulk("far", Dur::ZERO, move || cc(proto, seed ^ 0xC1))
                        .with_path([0, 1]),
                ));
            payload::encode_floats(&[
                tail_mbps(&res, 0, secs),
                tail_mbps(&res, 1, secs),
                res.links[1].utilization(Dur::from_secs_f64(secs)),
            ])
        },
    )
}

/// One CUBIC primary per link of the two-link chain; `scav` adds a late
/// Proteus-S flow crossing both. Payload:
/// `[primary0_mbps, primary1_mbps, scav_mbps (0 when absent)]`.
fn harm_job(scav: bool, secs: f64, seed: u64) -> SimJob {
    let descriptor = format!("topology-harm/scav={scav}/secs={secs:?}/seed={seed}/v1");
    let what = if scav {
        "CUBIC per link vs late Proteus-S across both"
    } else {
        "CUBIC per link, no scavenger (baseline)"
    };
    SimJob::new(descriptor, what, move || {
        let mut sc = Scenario::over(harm_chain(), Dur::from_secs_f64(secs))
            .with_seed(seed)
            .with_rtt_stride(2)
            .flow(
                FlowSpec::bulk("primary-0", Dur::ZERO, move || cc("CUBIC", seed ^ 0xD0))
                    .with_path([0]),
            )
            .flow(
                FlowSpec::bulk("primary-1", Dur::ZERO, move || cc("CUBIC", seed ^ 0xD1))
                    .with_path([1]),
            );
        if scav {
            sc = sc.flow(FlowSpec::bulk(
                "scavenger",
                Dur::from_secs_f64(secs * 0.2),
                move || cc("Proteus-S", seed ^ 0xD2),
            ));
        }
        let res = run(sc);
        payload::encode_floats(&[
            tail_mbps(&res, 0, secs),
            tail_mbps(&res, 1, secs),
            if scav { tail_mbps(&res, 2, secs) } else { 0.0 },
        ])
    })
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

/// One invariant verdict: a named check on one campaign cell.
#[derive(Debug, Clone)]
pub struct TopologyCheck {
    /// Campaign cell the check applies to (e.g. `parking-2/CUBIC`).
    pub cell: String,
    /// Check name (`progress`, `links-utilized`, `long-flow-disadvantage`,
    /// `short-flow-fairness`, `rtt-bias`, `bottleneck-saturated`,
    /// `harm-bounded`).
    pub check: &'static str,
    /// The measured value the verdict was taken on.
    pub value: f64,
    /// Whether the invariant held.
    pub pass: bool,
}

/// The machine-checkable result of a topology campaign.
#[derive(Debug, Clone)]
pub struct TopologyOutcome {
    /// Every invariant verdict, in matrix order.
    pub checks: Vec<TopologyCheck>,
    /// The rendered report text.
    pub report: String,
}

impl TopologyOutcome {
    /// Whether every invariant held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed.
    pub fn failures(&self) -> Vec<&TopologyCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

fn verdict(pass: bool) -> String {
    if pass { "PASS" } else { "FAIL" }.into()
}

// ---------------------------------------------------------------------------
// The experiment
// ---------------------------------------------------------------------------

/// Runs the multi-bottleneck campaign and returns both the rendered report
/// and the machine-checkable invariant verdicts.
pub fn run_with_outcome(cfg: RunCfg) -> TopologyOutcome {
    let secs = if cfg.quick { 24.0 } else { 60.0 };

    let mut camp = campaign("topology", cfg);
    let mut parking_slots: Vec<(usize, &'static str, usize)> = Vec::new();
    for &n in PARKING_SIZES {
        for &proto in PARKING_PROTOCOLS {
            let slot = camp.push_dedup(parking_job(n, proto, secs, cfg.seed));
            parking_slots.push((n, proto, slot));
        }
    }
    let rtt_slots: Vec<(&'static str, usize)> = PARKING_PROTOCOLS
        .iter()
        .map(|&proto| (proto, camp.push_dedup(rtt_job(proto, secs, cfg.seed))))
        .collect();
    let harm_alone = camp.push_dedup(harm_job(false, secs, cfg.seed));
    let harm_pair = camp.push_dedup(harm_job(true, secs, cfg.seed));
    let result = camp.run();

    let mut checks: Vec<TopologyCheck> = Vec::new();

    // ---- Parking lot. ----
    let mut parking = Table::new(
        "Parking lot: tail goodput (Mbps) and per-link utilization",
        &["cell", "long", "shorts", "jain(shorts)", "min-util"],
    );
    for &(n, proto, slot) in &parking_slots {
        let v = payload::decode_floats(&result.outputs[slot]);
        let long = v[0];
        let shorts = &v[1..1 + n];
        let utils = &v[1 + n..1 + 2 * n];
        let jain = jain_index(shorts).unwrap_or(0.0);
        let min_util = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let cell = format!("parking-{n}/{proto}");
        parking.row(vec![
            cell.clone(),
            f2(long),
            shorts.iter().map(|&s| f2(s)).collect::<Vec<_>>().join("|"),
            format!("{jain:.3}"),
            format!("{min_util:.3}"),
        ]);

        let min_flow = shorts.iter().cloned().fold(long, f64::min);
        checks.push(TopologyCheck {
            cell: cell.clone(),
            check: "progress",
            value: min_flow,
            pass: min_flow > 0.5,
        });
        checks.push(TopologyCheck {
            cell: cell.clone(),
            check: "links-utilized",
            value: min_util,
            pass: min_util >= 0.8,
        });
        // The long flow crosses every bottleneck; loss-based and
        // deviation-based control both bias against it. A small tolerance
        // keeps the check about the *direction* of the bias.
        let avg_short = shorts.iter().sum::<f64>() / n as f64;
        let ratio = long / avg_short.max(1e-9);
        checks.push(TopologyCheck {
            cell: cell.clone(),
            check: "long-flow-disadvantage",
            value: ratio,
            pass: ratio <= 1.05,
        });
        checks.push(TopologyCheck {
            cell,
            check: "short-flow-fairness",
            value: jain,
            pass: jain >= 0.8,
        });
    }

    // ---- RTT unfairness. ----
    let mut rtt = Table::new(
        "RTT unfairness: near (20 ms) vs far (80 ms) across one bottleneck",
        &["cell", "near", "far", "near/far", "bneck-util"],
    );
    for &(proto, slot) in &rtt_slots {
        let v = payload::decode_floats(&result.outputs[slot]);
        let (near, far, util) = (v[0], v[1], v[2]);
        let ratio = near / far.max(1e-9);
        let cell = format!("rtt/{proto}");
        rtt.row(vec![
            cell.clone(),
            f2(near),
            f2(far),
            f2(ratio),
            format!("{util:.3}"),
        ]);
        checks.push(TopologyCheck {
            cell: cell.clone(),
            check: "progress",
            value: near.min(far),
            pass: near.min(far) > 0.5,
        });
        checks.push(TopologyCheck {
            cell: cell.clone(),
            check: "bottleneck-saturated",
            value: util,
            pass: util >= 0.8,
        });
        // Only loss-based control is *expected* to show the classic RTT
        // bias; for the PCC family the ratio is reported, not pinned.
        if proto == "CUBIC" {
            checks.push(TopologyCheck {
                cell,
                check: "rtt-bias",
                value: ratio,
                pass: ratio >= 1.3,
            });
        }
    }

    // ---- Scavenger harm across two bottlenecks. ----
    let alone = payload::decode_floats(&result.outputs[harm_alone]);
    let pair = payload::decode_floats(&result.outputs[harm_pair]);
    let mut harm = Table::new(
        "Scavenger harm: CUBIC per link, Proteus-S across both (Mbps)",
        &["flow", "alone", "with-scav", "ratio"],
    );
    for (i, name) in ["primary-0", "primary-1"].iter().enumerate() {
        let ratio = pair[i] / alone[i].max(1e-9);
        harm.row(vec![(*name).into(), f2(alone[i]), f2(pair[i]), f2(ratio)]);
        checks.push(TopologyCheck {
            cell: format!("harm/{name}"),
            check: "harm-bounded",
            value: ratio,
            pass: ratio >= 0.7,
        });
    }
    harm.row(vec![
        "scavenger".into(),
        "-".into(),
        f2(pair[2]),
        "-".into(),
    ]);

    // ---- Invariant table + report. ----
    let mut inv = Table::new(
        "Invariants: multi-bottleneck contracts",
        &["cell", "check", "value", "verdict"],
    );
    for c in &checks {
        inv.row(vec![
            c.cell.clone(),
            c.check.into(),
            format!("{:.4}", c.value),
            verdict(c.pass),
        ]);
    }
    let failed = checks.iter().filter(|c| !c.pass).count();
    let summary = format!(
        "invariants: {}/{} passed{}\n",
        checks.len() - failed,
        checks.len(),
        if failed == 0 {
            String::new()
        } else {
            format!(" — {failed} FAILED")
        }
    );
    let text = format!(
        "{}\n{}\n{}\n{}\n{summary}",
        parking.render(),
        rtt.render(),
        harm.render(),
        inv.render()
    );

    let dir = results_dir().join("topology");
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("report.txt"), &text);
    let _ = fs::write(dir.join("parking.csv"), parking.to_csv());
    let _ = fs::write(dir.join("rtt.csv"), rtt.to_csv());
    let _ = fs::write(dir.join("harm.csv"), harm.to_csv());
    let _ = fs::write(dir.join("invariants.csv"), inv.to_csv());

    TopologyOutcome {
        checks,
        report: text,
    }
}

/// Registry entry point: runs the campaign and returns the report.
pub fn run_experiment(cfg: RunCfg) -> String {
    run_with_outcome(cfg).report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_jobs_have_distinct_identities() {
        let a = parking_job(2, "CUBIC", 24.0, 1);
        let b = parking_job(3, "CUBIC", 24.0, 1);
        let c = parking_job(2, "Proteus-P", 24.0, 1);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        let r = rtt_job("CUBIC", 24.0, 1);
        let h0 = harm_job(false, 24.0, 1);
        let h1 = harm_job(true, 24.0, 1);
        assert_ne!(r.key(), h0.key());
        assert_ne!(h0.key(), h1.key());
    }

    #[test]
    fn outcome_reports_failures() {
        let mk = |pass| TopologyOutcome {
            checks: vec![TopologyCheck {
                cell: "parking-2/CUBIC".into(),
                check: "progress",
                value: 1.0,
                pass,
            }],
            report: String::new(),
        };
        assert!(mk(true).all_pass());
        assert!(!mk(false).all_pass());
        assert_eq!(mk(false).failures().len(), 1);
    }
}
