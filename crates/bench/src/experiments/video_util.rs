//! Shared helpers for the video experiments (Figs. 11–13).

use std::cell::RefCell;

use proteus_apps::video::{VideoSession, VideoStatsHandle};
use proteus_apps::VideoSpec;
use proteus_core::{ProteusSender, SharedThreshold};
use proteus_netsim::{FlowSpec, Scenario};
use proteus_transport::{Application, Dur};

/// Transport used by a video flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoTransport {
    /// Proteus-P: always primary.
    Primary,
    /// Proteus-H with the §4.4 cross-layer threshold policy.
    Hybrid,
}

/// Adds a DASH session flow to a scenario; returns its stats handle.
pub fn add_video_flow(
    sc: &mut Scenario,
    spec: VideoSpec,
    transport: VideoTransport,
    seed: u64,
    forced_max: bool,
    start: Dur,
) -> VideoStatsHandle {
    let threshold = match transport {
        VideoTransport::Hybrid => Some(SharedThreshold::new(f64::INFINITY)),
        VideoTransport::Primary => None,
    };
    let mut session = VideoSession::new(spec.clone(), threshold.clone());
    if forced_max {
        session = session.with_forced_max_bitrate();
    }
    let stats = session.stats_handle();
    let session_cell = RefCell::new(Some(session));
    sc.flows.push(FlowSpec {
        name: format!("video-{}", spec.name),
        start,
        stop: None,
        cc: Box::new(move || match threshold {
            Some(t) => Box::new(ProteusSender::hybrid(seed, t)),
            None => Box::new(ProteusSender::primary(seed)),
        }),
        app: Box::new(move || {
            Box::new(session_cell.borrow_mut().take().expect("single use")) as Box<dyn Application>
        }),
        reliable: true,
        path: None,
    });
    stats
}
