//! Fig. 7: the scavenger's impact on the primary's RTT (§6.2).
//!
//! 95th-percentile RTT of the primary when sharing with a scavenger,
//! divided by its 95th-percentile RTT when running alone (375 KB buffer).
//! Proteus-S should leave the ratio near 1; LEDBAT inflates it heavily for
//! latency-aware primaries.

use proteus_netsim::LinkSpec;
use proteus_transport::Dur;

use crate::protocols::PRIMARIES;
use crate::report::{f2, write_report, Table};
use crate::runner::{run_pair, run_single};
use crate::RunCfg;

/// Scavenger-role protocols of the Fig.-7 bars.
pub const SCAV_ROLES: &[&str] = &["Proteus-S", "LEDBAT", "Proteus-P", "COPA"];

/// Runs the Fig.-7 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 25.0 } else { 60.0 };
    let mut t = Table::new(
        "Fig 7: 95th-pct RTT ratio (with scavenger / alone), 375 KB buffer",
        &{
            let mut h = vec!["primary"];
            h.extend(SCAV_ROLES);
            h
        },
    );
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    for &primary in PRIMARIES {
        let alone = run_single(primary, link, secs, cfg.seed);
        let p95_alone = alone.flows[0].rtt_percentile(95.0).unwrap_or(0.030);
        let mut row = vec![primary.to_string()];
        for &scav in SCAV_ROLES {
            if scav == primary {
                row.push("-".into());
                continue;
            }
            let both = run_pair(primary, scav, link, secs, cfg.seed);
            let p95 = both.flows[0].rtt_percentile(95.0).unwrap_or(p95_alone);
            row.push(f2(p95 / p95_alone));
        }
        t.row(row);
    }
    let text = format!("{}\n", t.render());
    write_report("fig7", &text, &[&t]);
    text
}
