//! Fig. 14: extending RTT deviation to BBR (§7.1).
//!
//! BBR-S (stock BBR forced into ProbeRTT whenever its smoothed RTT
//! deviation exceeds 20 ms) competes with BBR, CUBIC and BBR-S itself on
//! 50 Mbps / 30 ms / 375 KB; the figure shows throughput over time. We
//! print 10-second-binned throughput for both flows in each pairing.

use proteus_netsim::LinkSpec;
use proteus_transport::{Dur, Time};

use crate::report::{f2, write_report, Table};
use crate::runner::run_pair;
use crate::RunCfg;

/// Runs the Fig.-14 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 60.0 } else { 200.0 };
    let link = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let pairings: &[(&str, &str)] = &[("BBR", "BBR-S"), ("BBR-S", "BBR-S"), ("CUBIC", "BBR-S")];

    let mut tables = Vec::new();
    for &(a, b) in pairings {
        let res = run_pair(a, b, link, secs, cfg.seed);
        let mut t = Table::new(
            format!("Fig 14: {a} vs {b} — throughput over time (Mbps)"),
            &["t_s", a, b],
        );
        let bins = (secs / 10.0) as usize;
        for i in 0..bins {
            let from = Time::from_secs_f64(i as f64 * 10.0);
            let to = Time::from_secs_f64((i + 1) as f64 * 10.0);
            t.row(vec![
                format!("{}", i * 10),
                f2(res.flows[0].throughput_mbps(from, to)),
                f2(res.flows[1].throughput_mbps(from, to)),
            ]);
        }
        // Summary over the tail.
        let from = Time::from_secs_f64(secs / 3.0);
        let to = Time::from_secs_f64(secs);
        t.row(vec![
            "mean".into(),
            f2(res.flows[0].throughput_mbps(from, to)),
            f2(res.flows[1].throughput_mbps(from, to)),
        ]);
        tables.push(t);
    }

    let mut text = String::new();
    for t in &tables {
        text.push_str(&t.render());
        text.push('\n');
    }
    let refs: Vec<&Table> = tables.iter().collect();
    write_report("fig14", &text, &refs);
    text
}
