//! Fig. 8: primary-throughput-ratio CDF across bottleneck configurations
//! (§6.2).
//!
//! The paper sweeps 180 configurations (bandwidth × RTT × buffer-BDP) and
//! lets BBR / CUBIC / Proteus-P compete with Proteus-S vs LEDBAT. We sweep
//! a representative sub-grid by default (full 6×6×5 grid is hours of
//! simulation; the sub-grid spans every bandwidth and the RTT/buffer
//! extremes) and report the CDF quantiles plus the median-gain headline.

use proteus_netsim::LinkSpec;
use proteus_stats::Ecdf;
use proteus_transport::Dur;

use crate::report::{pct, write_report, Table};
use crate::runner::{campaign, decode_pair, decode_single, link_tag, pair_job, single_job, Traces};
use crate::RunCfg;

const PRIMARIES_FIG8: &[&str] = &["BBR", "CUBIC", "Proteus-P"];
const SCAVS_FIG8: &[&str] = &["Proteus-S", "LEDBAT"];

/// The configuration grid, `(bandwidth Mbps, rtt ms, buffer in BDP)`.
fn grid(quick: bool) -> Vec<(f64, u64, f64)> {
    if quick {
        return vec![(20.0, 30, 1.0), (100.0, 30, 2.0)];
    }
    let mut out = Vec::new();
    // Sub-grid of the paper's {20..500} × {5..200} × {0.2..5}: all six
    // bandwidths, three RTTs, three buffer depths (54 configs).
    for &bw in &[20.0, 50.0, 100.0, 200.0, 300.0, 500.0] {
        for &rtt in &[10u64, 30, 100] {
            for &bdp in &[0.5, 1.0, 2.0] {
                out.push((bw, rtt, bdp));
            }
        }
    }
    out
}

/// Runs the Fig.-8 experiment.
pub fn run_experiment(cfg: RunCfg) -> String {
    let secs = if cfg.quick { 20.0 } else { 30.0 };
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); PRIMARIES_FIG8.len() * SCAVS_FIG8.len()];

    // Submit the whole grid as one campaign: an "alone" baseline per
    // (config, primary) plus a pair run per (config, primary, scavenger).
    let mut camp = campaign("fig8", cfg);
    let mut slots: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for (ci, &(bw, rtt_ms, bdp)) in grid(cfg.quick).iter().enumerate() {
        for (pi, &primary) in PRIMARIES_FIG8.iter().enumerate() {
            let link = LinkSpec::new(bw, Dur::from_millis(rtt_ms), 1).with_buffer_bdp(bdp);
            let tag = link_tag(&link);
            let seed = cfg.seed + ci as u64 * 13;
            let alone = camp.push_dedup(single_job(
                "fig8",
                &tag,
                primary,
                link,
                secs,
                seed,
                Traces::from_cfg(&cfg),
            ));
            let pairs = SCAVS_FIG8
                .iter()
                .map(|&scav| {
                    camp.push_dedup(pair_job(
                        "fig8",
                        &tag,
                        primary,
                        scav,
                        link,
                        secs,
                        seed,
                        Traces::from_cfg(&cfg),
                    ))
                })
                .collect();
            slots.push((pi, alone, pairs));
        }
    }
    let result = camp.run();

    for (pi, alone_slot, pair_slots) in slots {
        let alone_mbps = decode_single(&result.outputs[alone_slot])
            .tail_mbps
            .max(1e-6);
        for (si, pair_slot) in pair_slots.into_iter().enumerate() {
            let both = decode_pair(&result.outputs[pair_slot]);
            let ratio = (both.primary_mbps / alone_mbps).min(1.2);
            ratios[pi * SCAVS_FIG8.len() + si].push(ratio);
        }
    }

    let mut t = Table::new(
        "Fig 8: primary throughput ratio over the config sweep (CDF quantiles)",
        &[
            "primary",
            "scavenger",
            "p10",
            "p25",
            "median",
            "p75",
            "p90",
            ">=90% of cases",
        ],
    );
    let mut medians = vec![0.0; ratios.len()];
    for (pi, &primary) in PRIMARIES_FIG8.iter().enumerate() {
        for (si, &scav) in SCAVS_FIG8.iter().enumerate() {
            let e = Ecdf::new(ratios[pi * SCAVS_FIG8.len() + si].iter().copied());
            medians[pi * SCAVS_FIG8.len() + si] = e.median().unwrap_or(0.0);
            t.row(vec![
                primary.into(),
                scav.into(),
                pct(e.quantile(0.10).unwrap_or(0.0)),
                pct(e.quantile(0.25).unwrap_or(0.0)),
                pct(e.median().unwrap_or(0.0)),
                pct(e.quantile(0.75).unwrap_or(0.0)),
                pct(e.quantile(0.90).unwrap_or(0.0)),
                pct(e.fraction_at_least(0.90)),
            ]);
        }
    }

    let mut gains = Table::new(
        "Median primary gain with Proteus-S vs LEDBAT (paper: BBR +7.8%, CUBIC +28%, Proteus-P +2.8x)",
        &["primary", "median_vs_ProteusS", "median_vs_LEDBAT", "gain"],
    );
    for (pi, &primary) in PRIMARIES_FIG8.iter().enumerate() {
        let m_s = medians[pi * 2];
        let m_l = medians[pi * 2 + 1].max(1e-9);
        gains.row(vec![
            primary.into(),
            pct(m_s),
            pct(m_l),
            format!("{:.2}x", m_s / m_l),
        ]);
    }

    let text = format!("{}\n{}\n", t.render(), gains.render());
    write_report("fig8", &text, &[&t, &gains]);
    text
}
