//! `repro tune`: the offline parameter-search and utility-ablation harness
//! (`proteus-tune`) over the deterministic evaluator.
//!
//! Searches `ProteusConfig` space — the scavenger penalty `d`, the §5 gate
//! gains G1/G2, the trend window, the probing ε/ω-step and the probe rule —
//! *and* the utility shape itself (Proteus-S, a loss-only ablation, a
//! delay-budget scavenger, Proteus-H) for the configuration that best
//! satisfies `maximize scav_util subject to harm < 0.05`. Quick mode runs a
//! 64-cell grid plus 2 genetic generations on two short scenarios; full
//! mode a 216-cell grid plus 6 generations including a BBR primary.
//!
//! Artifacts land in `results/tune/`: `leaderboard.csv`, `frontier.csv`
//! and `best_config.json`. Every simulation goes through the shared
//! campaign cache, so re-runs are cache replays and `--shard i/n` can
//! split the grid's cold cost across machines (the genetic phase only
//! runs unsharded; see EXPERIMENTS.md §Tuning).

use proteus_tune::{full_spec, quick_spec, run_tune, TuneOpts};

use crate::report::results_dir;
use crate::RunCfg;

/// Builds the tuning options implied by the CLI configuration.
pub fn tune_opts(cfg: RunCfg) -> TuneOpts {
    TuneOpts {
        jobs: cfg.jobs,
        cache: cfg.cache.then(|| results_dir().join(".cache")),
        summary: Some(results_dir().join("campaigns.jsonl")),
        out_dir: results_dir().join("tune"),
        progress: cfg.jobs != 1,
        shard: cfg.shard,
        sim_seed: cfg.seed,
    }
}

/// Entry point for `repro tune`.
pub fn run_experiment(cfg: RunCfg) -> String {
    let spec = if cfg.quick {
        quick_spec(cfg.seed)
    } else {
        full_spec(cfg.seed)
    };
    run_tune(&spec, &tune_opts(cfg))
}
