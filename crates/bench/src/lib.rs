//! Experiment harness regenerating every table and figure of *PCC Proteus:
//! Scavenger Transport And Beyond* (SIGCOMM 2020).
//!
//! Each `experiments::figN` module reproduces one figure of the paper's
//! evaluation (§6 and Appendix B): it builds the same workload on the
//! simulated dumbbell, sweeps the same parameters, and prints the same
//! rows/series the paper plots. Run them with:
//!
//! ```text
//! cargo run -p proteus-bench --release --bin repro -- all
//! cargo run -p proteus-bench --release --bin repro -- fig3 fig6
//! cargo run -p proteus-bench --release --bin repro -- --quick all
//! ```
//!
//! Reports are printed and also written under `results/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod mi_trace;
pub mod protocols;
pub mod report;
pub mod runner;

pub use mi_trace::{mi_trace_dir, MiTraceSink, TraceFormat};
pub use protocols::{cc, cc_traced, PRIMARIES, SCAVENGERS};
pub use report::Table;
pub use runner::{
    campaign, run_pair, run_single, tail_mbps, tail_window, trace_jsonl, Traces, TRACE_EVERY,
};

/// Global knobs for an experiment invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunCfg {
    /// Reduced sweeps/horizons for smoke testing.
    pub quick: bool,
    /// Base RNG seed; trials offset from it.
    pub seed: u64,
    /// Number of trials to average where the paper averages ≥ 10.
    pub trials: u64,
    /// Worker threads for campaign execution (0 = one per core).
    pub jobs: usize,
    /// Reuse/populate the disk result cache under `results/.cache/`.
    pub cache: bool,
    /// Record per-flow telemetry JSONL under `results/trace/`.
    pub trace: bool,
    /// Record structured decision traces (MI closes, mode switches, filter
    /// verdicts) under [`mi_trace::mi_trace_dir`].
    pub trace_mi: bool,
    /// Export format(s) for decision traces.
    pub trace_format: TraceFormat,
    /// Shard filter `(index, count)` forwarded to every campaign: cache-
    /// miss jobs outside the shard are skipped (see `repro --shard i/n`).
    pub shard: Option<(u32, u32)>,
}

impl RunCfg {
    /// Default full-fidelity configuration.
    pub fn full() -> Self {
        Self {
            quick: false,
            seed: 1,
            trials: 3,
            jobs: 1,
            cache: true,
            trace: false,
            trace_mi: false,
            trace_format: TraceFormat::Both,
            shard: None,
        }
    }

    /// Quick smoke-test configuration.
    pub fn quick() -> Self {
        Self {
            quick: true,
            trials: 1,
            ..Self::full()
        }
    }
}
