//! Struct-of-arrays per-flow state for the engine.
//!
//! The engine used to keep one `FlowState` struct per flow in a single
//! `Vec`; with tens of thousands of churning flows that layout is
//! cache-hostile (every event touches one ~200-byte struct scattered among
//! controller boxes) and forces telemetry to scan all flows ever created.
//! [`FlowTable`] stores each hot field in its own dense column indexed by
//! the `u32` flow ids the event queue already carries, keeps the controller
//! and application boxes behind the same index, and maintains an
//! *active-flow list* (swap-remove, O(1) membership updates) plus a
//! *lingering list* of stopped-but-not-yet-quiet flows so telemetry sweeps
//! are O(active + recently stopped), not O(all flows ever created).
//!
//! Churn scenarios additionally *retire* flows once they have stopped and
//! their last in-flight packet is accounted for: the controller and
//! application boxes are replaced by zero-sized stubs (releasing
//! controller memory — a Proteus sender's monitor-interval rings dwarf a
//! flow's column entries) and the flow drops out of every sweep list for
//! good. Legacy scenarios never retire, preserving historical results
//! byte for byte.

use std::sync::Arc;

use proteus_transport::{Application, CongestionControl, RttEstimator, SeqNr, Time};

use crate::inflight::InflightTracker;
use crate::topology::LinkId;

/// Sentinel for "not a member" in the position indexes.
const NOT_MEMBER: u32 = u32::MAX;

/// Stub controller installed when a churn flow is retired; never consulted
/// again (retired flows are inactive, their timers cancelled, and their
/// inflight empty), it exists only so the column keeps a valid box while
/// the real controller's memory is released.
struct RetiredCc;

impl CongestionControl for RetiredCc {
    fn name(&self) -> &str {
        "retired"
    }
    fn on_ack(&mut self, _now: Time, _ack: &proteus_transport::AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &proteus_transport::LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        0
    }
}

/// Stub application installed when a churn flow is retired.
struct RetiredApp;

impl Application for RetiredApp {
    fn bytes_to_send(&mut self, _now: Time) -> u64 {
        0
    }
    fn finished(&self, _now: Time) -> bool {
        true
    }
}

/// Per-flow state as dense parallel columns (see module docs).
///
/// Field groups, hottest first: per-packet counters and pacing/epoch/RTO
/// words (touched on every event), estimator/tracker columns (per ACK),
/// then the boxed controller/application (per ACK, but behind a pointer
/// chase the hot columns no longer share cache lines with).
pub(crate) struct FlowTable {
    /// Started and neither stopped nor finished.
    pub active: Vec<bool>,
    /// Whether lost bytes are retransmitted.
    pub reliable: Vec<bool>,
    /// Churn-mode only: stopped, quiesced, controller memory released.
    pub retired: Vec<bool>,
    /// Frame-paced media source (`Application::is_media`); only these
    /// flows pay the per-ACK frame bookkeeping.
    pub media: Vec<bool>,
    /// Next fresh sequence number.
    pub next_seq: Vec<SeqNr>,
    /// Outstanding bytes.
    pub inflight_bytes: Vec<u64>,
    /// Bytes awaiting retransmission (reliable flows only).
    pub retx_bytes: Vec<u64>,
    /// Earliest instant pacing allows the next transmission.
    pub next_pace_at: Vec<Time>,
    /// Epoch of the live Pace event (older pops are stale no-ops).
    pub pace_epoch: Vec<u64>,
    /// Epoch of the live CcTimer event.
    pub cc_epoch: Vec<u64>,
    /// Deadline the controller asked for via `next_timer()`, if any.
    pub cc_timer_at: Vec<Option<Time>>,
    /// RFC 6298 retransmission deadline, if armed.
    pub rto_deadline: Vec<Option<Time>>,
    /// Time of the currently scheduled RTO event, if any (lazy re-arm).
    pub rto_event_at: Vec<Option<Time>>,
    /// Epoch of the live AppWake event.
    pub app_epoch: Vec<u64>,
    /// Scheduled application wakeup, if any.
    pub app_wake_at: Vec<Option<Time>>,
    /// When the flow stops, if bounded.
    pub stop_at: Vec<Option<Time>>,
    /// FIFO clamp for the data path (jitter never reorders a flow).
    pub last_delivery_at: Vec<Time>,
    /// FIFO clamp for the ACK return path.
    pub last_ack_arrival_at: Vec<Time>,
    /// RTT estimator.
    pub rtt: Vec<RttEstimator>,
    /// Outstanding packets, O(1) per ACK.
    pub inflight: Vec<InflightTracker>,
    /// Links the flow traverses, in hop order (shared, validated at
    /// scenario build time; kept after retirement so late wire events
    /// still route).
    pub path: Vec<Arc<[LinkId]>>,
    /// Congestion controller (stubbed once retired).
    pub cc: Vec<Box<dyn CongestionControl>>,
    /// Application model (stubbed once retired).
    pub app: Vec<Box<dyn Application>>,

    /// Ids of active flows, unordered (swap-remove).
    active_ids: Vec<u32>,
    /// `active_pos[id]` — index of `id` in `active_ids`, or `NOT_MEMBER`.
    active_pos: Vec<u32>,
    /// Ids of flows that stopped but may still produce controller activity
    /// (in-flight ACKs, RTOs, controller timers); swept alongside active
    /// flows until quiesced.
    lingering: Vec<u32>,
    /// `lingering_pos[id]` — index in `lingering`, or `NOT_MEMBER`.
    lingering_pos: Vec<u32>,
}

impl FlowTable {
    /// Creates an empty table with room for `capacity` flows per column.
    pub fn with_capacity(capacity: usize) -> Self {
        FlowTable {
            active: Vec::with_capacity(capacity),
            reliable: Vec::with_capacity(capacity),
            retired: Vec::with_capacity(capacity),
            media: Vec::with_capacity(capacity),
            next_seq: Vec::with_capacity(capacity),
            inflight_bytes: Vec::with_capacity(capacity),
            retx_bytes: Vec::with_capacity(capacity),
            next_pace_at: Vec::with_capacity(capacity),
            pace_epoch: Vec::with_capacity(capacity),
            cc_epoch: Vec::with_capacity(capacity),
            cc_timer_at: Vec::with_capacity(capacity),
            rto_deadline: Vec::with_capacity(capacity),
            rto_event_at: Vec::with_capacity(capacity),
            app_epoch: Vec::with_capacity(capacity),
            app_wake_at: Vec::with_capacity(capacity),
            stop_at: Vec::with_capacity(capacity),
            last_delivery_at: Vec::with_capacity(capacity),
            last_ack_arrival_at: Vec::with_capacity(capacity),
            rtt: Vec::with_capacity(capacity),
            inflight: Vec::with_capacity(capacity),
            path: Vec::with_capacity(capacity),
            cc: Vec::with_capacity(capacity),
            app: Vec::with_capacity(capacity),
            active_ids: Vec::new(),
            active_pos: Vec::with_capacity(capacity),
            lingering: Vec::new(),
            lingering_pos: Vec::with_capacity(capacity),
        }
    }

    /// Number of flows ever created.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Appends a flow in the stopped state; returns its id.
    pub fn push_flow(
        &mut self,
        cc: Box<dyn CongestionControl>,
        app: Box<dyn Application>,
        reliable: bool,
        path: Arc<[LinkId]>,
    ) -> usize {
        let id = self.len();
        self.active.push(false);
        self.reliable.push(reliable);
        self.retired.push(false);
        self.media.push(app.is_media());
        self.next_seq.push(0);
        self.inflight_bytes.push(0);
        self.retx_bytes.push(0);
        self.next_pace_at.push(Time::ZERO);
        self.pace_epoch.push(0);
        self.cc_epoch.push(0);
        self.cc_timer_at.push(None);
        self.rto_deadline.push(None);
        self.rto_event_at.push(None);
        self.app_epoch.push(0);
        self.app_wake_at.push(None);
        self.stop_at.push(None);
        self.last_delivery_at.push(Time::ZERO);
        self.last_ack_arrival_at.push(Time::ZERO);
        self.rtt.push(RttEstimator::new());
        self.inflight.push(InflightTracker::new());
        self.path.push(path);
        self.cc.push(cc);
        self.app.push(app);
        self.active_pos.push(NOT_MEMBER);
        self.lingering_pos.push(NOT_MEMBER);
        id
    }

    /// Marks a flow active and adds it to the active list.
    pub fn activate(&mut self, id: usize) {
        debug_assert!(!self.active[id] && !self.retired[id]);
        self.active[id] = true;
        if self.active_pos[id] == NOT_MEMBER {
            self.active_pos[id] = self.active_ids.len() as u32;
            self.active_ids.push(id as u32);
        }
        // A restarted flow may still be on the lingering list; active flows
        // are swept anyway, so drop the duplicate entry.
        self.remove_lingering(id);
    }

    /// Marks a flow stopped: removed from the active list (swap-remove,
    /// O(1)) and parked on the lingering list until it quiesces.
    pub fn deactivate(&mut self, id: usize) {
        debug_assert!(self.active[id]);
        self.active[id] = false;
        let pos = self.active_pos[id] as usize;
        debug_assert!(pos != NOT_MEMBER as usize);
        let last = *self.active_ids.last().expect("active_ids non-empty");
        self.active_ids.swap_remove(pos);
        if pos < self.active_ids.len() {
            self.active_pos[last as usize] = pos as u32;
        }
        self.active_pos[id] = NOT_MEMBER;
        if self.lingering_pos[id] == NOT_MEMBER {
            self.lingering_pos[id] = self.lingering.len() as u32;
            self.lingering.push(id as u32);
        }
    }

    /// Drops a flow from the lingering list (it quiesced, restarted, or is
    /// being retired). No-op when not lingering.
    pub fn remove_lingering(&mut self, id: usize) {
        let pos = self.lingering_pos[id];
        if pos == NOT_MEMBER {
            return;
        }
        let last = *self.lingering.last().expect("lingering non-empty");
        self.lingering.swap_remove(pos as usize);
        if (pos as usize) < self.lingering.len() {
            self.lingering_pos[last as usize] = pos;
        }
        self.lingering_pos[id] = NOT_MEMBER;
    }

    /// Whether a stopped flow can no longer produce controller activity:
    /// nothing in flight (so no ACKs or dup-ACK losses are coming), no RTO
    /// armed, and no controller timer pending.
    pub fn quiesced(&self, id: usize) -> bool {
        !self.active[id]
            && self.inflight[id].is_empty()
            && self.rto_deadline[id].is_none()
            && self.cc_timer_at[id].is_none()
    }

    /// Retires a stopped churn flow: cancels its timers via epoch bumps
    /// (no queue pushes, so the event-sequence counter — and with it
    /// same-timestamp tie order — is untouched) and swaps the controller
    /// and application boxes for stubs, releasing their memory.
    pub fn retire(&mut self, id: usize) {
        debug_assert!(!self.active[id] && self.inflight[id].is_empty());
        self.retired[id] = true;
        self.cc_epoch[id] += 1;
        self.cc_timer_at[id] = None;
        self.app_epoch[id] += 1;
        self.app_wake_at[id] = None;
        self.pace_epoch[id] += 1;
        self.cc[id] = Box::new(RetiredCc);
        self.app[id] = Box::new(RetiredApp);
        self.remove_lingering(id);
    }

    /// Drops every quiesced flow from the lingering list. Called after a
    /// decision sweep: a quiesced flow has just been drained and can never
    /// produce another controller callback, so future sweeps skip it.
    pub fn prune_quiesced(&mut self) {
        let mut i = 0;
        while i < self.lingering.len() {
            let id = self.lingering[i] as usize;
            if self.quiesced(id) {
                // Swap-remove refills slot i; don't advance.
                self.remove_lingering(id);
            } else {
                i += 1;
            }
        }
    }

    /// Fills `scratch` with the active flow ids in increasing order.
    pub fn sorted_active(&self, scratch: &mut Vec<u32>) {
        scratch.clear();
        scratch.extend_from_slice(&self.active_ids);
        scratch.sort_unstable();
    }

    /// Fills `scratch` with the ids every decision sweep must visit —
    /// active plus lingering flows — in increasing order (the sweep order
    /// the previous all-flows scan produced).
    pub fn sweep_ids(&self, scratch: &mut Vec<u32>) {
        scratch.clear();
        scratch.extend_from_slice(&self.active_ids);
        scratch.extend_from_slice(&self.lingering);
        scratch.sort_unstable();
        debug_assert!(scratch.windows(2).all(|p| p[0] != p[1]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_transport::BulkApp;

    fn stub_flow(t: &mut FlowTable) -> usize {
        t.push_flow(
            Box::new(RetiredCc),
            Box::new(BulkApp),
            false,
            Arc::from(vec![0u16]),
        )
    }

    #[test]
    fn active_list_tracks_membership_in_o1() {
        let mut t = FlowTable::with_capacity(4);
        for _ in 0..5 {
            stub_flow(&mut t);
        }
        for id in [0, 2, 4] {
            t.activate(id);
        }
        t.deactivate(2);
        let mut ids = Vec::new();
        t.sorted_active(&mut ids);
        assert_eq!(ids, vec![0, 4]);
        // Stopped flow lingers until explicitly removed.
        t.sweep_ids(&mut ids);
        assert_eq!(ids, vec![0, 2, 4]);
        t.remove_lingering(2);
        t.sweep_ids(&mut ids);
        assert_eq!(ids, vec![0, 4]);
    }

    #[test]
    fn reactivation_drops_lingering_duplicate() {
        let mut t = FlowTable::with_capacity(2);
        stub_flow(&mut t);
        t.activate(0);
        t.deactivate(0);
        t.activate(0);
        let mut ids = Vec::new();
        t.sweep_ids(&mut ids);
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn retire_cancels_timers_and_stubs_boxes() {
        let mut t = FlowTable::with_capacity(2);
        stub_flow(&mut t);
        t.activate(0);
        t.cc_timer_at[0] = Some(Time::from_millis(5));
        t.deactivate(0);
        assert!(!t.quiesced(0), "pending cc timer keeps the flow lingering");
        let epoch = t.cc_epoch[0];
        t.retire(0);
        assert!(t.retired[0]);
        assert!(t.quiesced(0));
        assert_eq!(t.cc_epoch[0], epoch + 1, "stale timer pops must miss");
        assert_eq!(t.cc[0].name(), "retired");
        let mut ids = Vec::new();
        t.sweep_ids(&mut ids);
        assert!(ids.is_empty());
    }
}
