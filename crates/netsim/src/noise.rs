//! Latency-noise models.
//!
//! The paper's live-Internet WiFi experiments (§6.2.1) motivate Proteus'
//! noise-tolerance machinery: "the typical RTT deviation is up to 5 ms but
//! RTT occasionally spikes tens of milliseconds higher", and ACK reception
//! "can be bursty even on a non-congested link, possibly due to irregular MAC
//! scheduling". Since we cannot use their physical WiFi paths, this module
//! provides parameterized stochastic models that reproduce that envelope,
//! exercising the same code paths (per-ACK filtering, regression-error and
//! trending tolerance, majority rule).

use rand::rngs::SmallRng;
use rand::RngExt as Rng;

use proteus_transport::{Dur, Time};

use crate::dist;

/// Configuration of the latency noise applied to a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseConfig {
    /// A clean wired path (the Emulab experiments).
    None,
    /// Independent Gaussian jitter on every data packet, truncated at zero.
    Gaussian {
        /// Standard deviation of the jitter.
        std: Dur,
    },
    /// A WiFi-like path: small Gaussian jitter on every packet, occasional
    /// heavy-tailed delay spikes, and bursty ACK release emulating MAC-layer
    /// aggregation.
    Wifi(WifiNoiseConfig),
}

/// Parameters of the WiFi noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiNoiseConfig {
    /// Std-dev of the per-packet Gaussian jitter (paper: "up to 5 ms
    /// typical deviation"; default 1.5 ms).
    pub jitter_std: Dur,
    /// Probability that a packet experiences a delay spike.
    pub spike_prob: f64,
    /// Minimum spike magnitude (Pareto scale).
    pub spike_min: Dur,
    /// Pareto shape of the spike magnitude (smaller = heavier tail).
    pub spike_alpha: f64,
    /// Mean interval between ACK release bursts. ACKs arriving between
    /// bursts are held and released together, producing the consecutive
    /// ACK-interval ratio spikes §5 filters on. `Dur::ZERO` disables
    /// aggregation.
    pub ack_burst_interval: Dur,
    /// Fraction of time the ACK aggregation is active (WiFi MAC alternates
    /// between smooth and bursty phases).
    pub ack_burst_duty: f64,
}

impl Default for WifiNoiseConfig {
    fn default() -> Self {
        Self {
            jitter_std: Dur::from_micros(1_500),
            spike_prob: 0.004,
            spike_min: Dur::from_millis(10),
            spike_alpha: 1.8,
            ack_burst_interval: Dur::from_millis(8),
            ack_burst_duty: 0.3,
        }
    }
}

impl NoiseConfig {
    /// A WiFi model with default parameters.
    pub fn wifi_default() -> Self {
        NoiseConfig::Wifi(WifiNoiseConfig::default())
    }

    /// Builds the runtime state for this configuration.
    pub(crate) fn build(self) -> NoiseState {
        NoiseState {
            config: self,
            next_ack_release: Time::ZERO,
            burst_phase_until: Time::ZERO,
            burst_phase_active: false,
        }
    }
}

/// Runtime state of a path's noise processes.
#[derive(Debug, Clone)]
pub(crate) struct NoiseState {
    config: NoiseConfig,
    /// Earliest time the next ACK may be released (aggregation).
    next_ack_release: Time,
    /// End of the current smooth/bursty phase.
    burst_phase_until: Time,
    burst_phase_active: bool,
}

impl NoiseState {
    /// Extra one-way delay applied to a data packet delivered at `now`.
    pub(crate) fn data_delay(&mut self, rng: &mut SmallRng) -> Dur {
        match self.config {
            NoiseConfig::None => Dur::ZERO,
            NoiseConfig::Gaussian { std } => {
                let jitter = dist::normal(rng, 0.0, std.as_secs_f64());
                Dur::from_secs_f64(jitter.max(0.0))
            }
            NoiseConfig::Wifi(cfg) => {
                let mut delay = dist::normal(rng, 0.0, cfg.jitter_std.as_secs_f64()).max(0.0);
                if rng.random::<f64>() < cfg.spike_prob {
                    delay += dist::pareto(rng, cfg.spike_min.as_secs_f64(), cfg.spike_alpha);
                }
                Dur::from_secs_f64(delay)
            }
        }
    }

    /// Earliest release time for an ACK generated at `now` (ACK-side
    /// aggregation); also applies small jitter.
    pub(crate) fn ack_release(&mut self, now: Time, rng: &mut SmallRng) -> Time {
        match self.config {
            NoiseConfig::None => now,
            NoiseConfig::Gaussian { std } => {
                let jitter = dist::normal(rng, 0.0, std.as_secs_f64() * 0.5).max(0.0);
                now + Dur::from_secs_f64(jitter)
            }
            NoiseConfig::Wifi(cfg) => {
                if cfg.ack_burst_interval.is_zero() {
                    return now;
                }
                // Alternate smooth / bursty phases.
                if now >= self.burst_phase_until {
                    self.burst_phase_active = rng.random::<f64>() < cfg.ack_burst_duty;
                    let phase_len = dist::exponential(rng, 0.5); // mean 500 ms phases
                    self.burst_phase_until = now + Dur::from_secs_f64(phase_len.max(0.05));
                }
                if !self.burst_phase_active {
                    return now;
                }
                // Release ACKs only at burst instants.
                if now < self.next_ack_release {
                    self.next_ack_release
                } else {
                    let gap = dist::exponential(rng, cfg.ack_burst_interval.as_secs_f64());
                    self.next_ack_release = now + Dur::from_secs_f64(gap);
                    now
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn none_adds_nothing() {
        let mut s = NoiseConfig::None.build();
        let mut r = rng();
        assert_eq!(s.data_delay(&mut r), Dur::ZERO);
        assert_eq!(
            s.ack_release(Time::from_millis(5), &mut r),
            Time::from_millis(5)
        );
    }

    #[test]
    fn gaussian_is_nonnegative_and_bounded_in_probability() {
        let std = Dur::from_millis(2);
        let mut s = NoiseConfig::Gaussian { std }.build();
        let mut r = rng();
        let mut big = 0;
        for _ in 0..10_000 {
            let d = s.data_delay(&mut r);
            if d > Dur::from_millis(8) {
                big += 1;
            }
        }
        // P(N(0,2ms) > 8ms) ≈ 3e-5; allow a little slack.
        assert!(big < 10, "big = {big}");
    }

    #[test]
    fn wifi_produces_occasional_spikes() {
        let mut s = NoiseConfig::wifi_default().build();
        let mut r = rng();
        let mut spikes = 0;
        for _ in 0..50_000 {
            if s.data_delay(&mut r) > Dur::from_millis(10) {
                spikes += 1;
            }
        }
        let frac = spikes as f64 / 50_000.0;
        assert!(frac > 0.001 && frac < 0.02, "spike fraction = {frac}");
    }

    #[test]
    fn wifi_ack_aggregation_holds_acks() {
        let cfg = WifiNoiseConfig {
            ack_burst_duty: 1.0, // always bursty for the test
            ..WifiNoiseConfig::default()
        };
        let mut s = NoiseConfig::Wifi(cfg).build();
        let mut r = rng();
        // Feed closely spaced ACKs; some must be deferred to a shared
        // release instant.
        let mut deferred = 0;
        let mut t = Time::ZERO;
        for _ in 0..1000 {
            t += Dur::from_micros(200);
            let rel = s.ack_release(t, &mut r);
            assert!(rel >= t);
            if rel > t {
                deferred += 1;
            }
        }
        assert!(deferred > 100, "deferred = {deferred}");
    }

    #[test]
    fn ack_release_is_monotone_within_burst() {
        let cfg = WifiNoiseConfig {
            ack_burst_duty: 1.0,
            ..WifiNoiseConfig::default()
        };
        let mut s = NoiseConfig::Wifi(cfg).build();
        let mut r = rng();
        let mut last = Time::ZERO;
        let mut t = Time::ZERO;
        for _ in 0..1000 {
            t += Dur::from_micros(100);
            let rel = s.ack_release(t, &mut r);
            assert!(rel >= last || rel >= t, "release went backwards");
            last = rel;
        }
    }
}
