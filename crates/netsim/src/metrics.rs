//! Per-flow and per-run measurement collection.
//!
//! Every experiment table in the paper reduces to a handful of per-flow
//! quantities: mean throughput over a measurement window, RTT percentiles,
//! loss counts, flow completion times, and link utilization. The engine
//! feeds raw events into [`FlowMetrics`]; the harness reads the aggregate
//! accessors.

use std::cell::OnceCell;
use std::collections::VecDeque;

use proteus_stats::percentile_sorted;
use proteus_transport::{Dur, FlowId, FrameRecord, Time};

use crate::fault::FaultStats;

/// Latency-SLO accounting for one frame-paced media flow.
///
/// The engine forwards [`FrameRecord`]s drained from a media application;
/// a frame *completes* at the first ACK whose cumulative acknowledged byte
/// count reaches the frame's `end_bytes` (spurious ACKs of packets already
/// declared lost never increment that counter, so the rule is exact even
/// for reliable flows that retransmit). A completed frame whose delay
/// exceeds its playout deadline counts as a *freeze*, contributing
/// `delay - deadline` seconds to [`MediaMetrics::time_in_freeze`].
///
/// Frames still pending when the run ends are excluded from the delay
/// percentiles and reported via [`MediaMetrics::frames_pending`].
#[derive(Debug, Clone, Default)]
pub struct MediaMetrics {
    /// Frames generated but not yet fully acknowledged, in encode order.
    pending: VecDeque<FrameRecord>,
    frames_generated: u64,
    frames_completed: u64,
    freeze_count: u64,
    time_in_freeze: f64,
    /// Completion delay of each completed frame, seconds, in encode order.
    delays: Vec<f64>,
    /// Sorted delays, built lazily on the first percentile query.
    delays_sorted: OnceCell<Vec<f64>>,
}

impl MediaMetrics {
    /// Frames the source has encoded so far.
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Frames fully acknowledged.
    pub fn frames_completed(&self) -> u64 {
        self.frames_completed
    }

    /// Frames generated but not yet fully acknowledged.
    pub fn frames_pending(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Completed frames that missed their playout deadline.
    pub fn freeze_count(&self) -> u64 {
        self.freeze_count
    }

    /// Total seconds completed frames spent beyond their deadlines.
    pub fn time_in_freeze(&self) -> f64 {
        self.time_in_freeze
    }

    /// Per-frame completion delays in seconds, encode order.
    pub fn frame_delays(&self) -> &[f64] {
        &self.delays
    }

    /// The `p`-th percentile frame completion delay in seconds, if any
    /// frame completed. Cached after the first query like RTT percentiles.
    pub fn frame_delay_percentile(&self, p: f64) -> Option<f64> {
        let sorted = self.delays_sorted.get_or_init(|| {
            let mut v: Vec<f64> = self
                .delays
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .collect();
            v.sort_unstable_by(f64::total_cmp);
            v
        });
        percentile_sorted(sorted, p)
    }

    /// Mean frame completion delay in seconds.
    pub fn frame_delay_mean(&self) -> Option<f64> {
        if self.delays.is_empty() {
            None
        } else {
            Some(self.delays.iter().sum::<f64>() / self.delays.len() as f64)
        }
    }
}

/// Measurements recorded for one flow over a simulation run.
#[derive(Debug, Clone)]
pub struct FlowMetrics {
    /// Flow id within the scenario.
    pub id: FlowId,
    /// Human-readable label, e.g. `"CUBIC"` or `"Proteus-S #2"`.
    pub name: String,
    /// When the flow actually started sending.
    pub started_at: Option<Time>,
    /// When the flow finished (sized flows) or was stopped.
    pub finished_at: Option<Time>,
    /// Total bytes handed to the network.
    pub bytes_sent: u64,
    /// Total bytes acknowledged.
    pub bytes_acked: u64,
    /// Packets sent / acked / declared lost.
    pub pkts_sent: u64,
    /// Packets acknowledged.
    pub pkts_acked: u64,
    /// Packets declared lost at the sender.
    pub pkts_lost: u64,
    /// Width of each throughput bin.
    pub bin: Dur,
    /// `(ack_time_seconds, rtt_seconds)` samples (possibly strided).
    pub rtt_samples: Vec<(f64, f64)>,
    /// Cumulative bytes acknowledged through each time bin since
    /// `Time::ZERO` (`acked_cum[i]` covers bins `0..=i`). Stored as a prefix
    /// sum so any `throughput_bps` window is two lookups instead of a scan.
    acked_cum: Vec<u64>,
    /// Sorted RTT values, built lazily on the first percentile query and
    /// invalidated by `on_ack` (percentile reads during a run stay correct).
    rtt_sorted: OnceCell<Vec<f64>>,
    rtt_stride: usize,
    rtt_counter: usize,
    /// Frame-latency accounting; `None` for every non-media flow (boxed so
    /// the common case costs one pointer, keeping media-free scenarios'
    /// layout and results untouched).
    media: Option<Box<MediaMetrics>>,
}

impl FlowMetrics {
    /// Creates an empty metrics record.
    pub fn new(id: FlowId, name: String, bin: Dur, rtt_stride: usize) -> Self {
        Self {
            id,
            name,
            started_at: None,
            finished_at: None,
            bytes_sent: 0,
            bytes_acked: 0,
            pkts_sent: 0,
            pkts_acked: 0,
            pkts_lost: 0,
            bin,
            rtt_samples: Vec::new(),
            acked_cum: Vec::new(),
            rtt_sorted: OnceCell::new(),
            rtt_stride: rtt_stride.max(1),
            rtt_counter: 0,
            media: None,
        }
    }

    /// Frame-latency metrics, present only on frame-paced media flows.
    pub fn media(&self) -> Option<&MediaMetrics> {
        self.media.as_deref()
    }

    /// Records newly encoded frames drained from a media application.
    pub(crate) fn media_ingest(&mut self, frames: &[FrameRecord]) {
        let m = self.media.get_or_insert_default();
        m.frames_generated += frames.len() as u64;
        m.pending.extend(frames.iter().copied());
    }

    /// Completes every pending frame covered by the cumulative acked byte
    /// count, stamping `now` (the ACK arrival instant) as completion time.
    pub(crate) fn media_progress(&mut self, now: Time) {
        let Some(m) = self.media.as_deref_mut() else {
            return;
        };
        let mut changed = false;
        while let Some(f) = m.pending.front() {
            if f.end_bytes > self.bytes_acked {
                break;
            }
            let f = m.pending.pop_front().expect("front exists");
            let delay = now.since(f.gen_at).as_secs_f64();
            m.frames_completed += 1;
            m.delays.push(delay);
            let budget = f.deadline.as_secs_f64();
            if delay > budget {
                m.freeze_count += 1;
                m.time_in_freeze += delay - budget;
            }
            changed = true;
        }
        if changed {
            m.delays_sorted.take();
        }
    }

    pub(crate) fn on_sent(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
        self.pkts_sent += 1;
    }

    pub(crate) fn on_ack(&mut self, now: Time, bytes: u64, rtt: Dur) {
        self.bytes_acked += bytes;
        self.pkts_acked += 1;
        let bin_idx = (now.as_nanos() / self.bin.as_nanos().max(1)) as usize;
        if self.acked_cum.len() <= bin_idx {
            // New bins start from the running total (prefix-sum invariant).
            let total = self.acked_cum.last().copied().unwrap_or(0);
            self.acked_cum.resize(bin_idx + 1, total);
        }
        // ACK events arrive in time order, so this ACK lands in the last bin
        // and the prefix-sum stays consistent with a single update.
        debug_assert_eq!(bin_idx + 1, self.acked_cum.len());
        self.acked_cum[bin_idx] += bytes;
        self.rtt_counter += 1;
        if self.rtt_counter.is_multiple_of(self.rtt_stride) {
            self.rtt_samples
                .push((now.as_secs_f64(), rtt.as_secs_f64()));
            self.rtt_sorted.take();
        }
    }

    pub(crate) fn on_loss(&mut self) {
        self.pkts_lost += 1;
    }

    /// Bytes acknowledged in bin `i`.
    fn bin_bytes(&self, i: usize) -> u64 {
        let lo = if i == 0 { 0 } else { self.acked_cum[i - 1] };
        self.acked_cum[i] - lo
    }

    /// Bytes acknowledged per time bin since `Time::ZERO`.
    pub fn acked_bins(&self) -> Vec<u64> {
        (0..self.acked_cum.len())
            .map(|i| self.bin_bytes(i))
            .collect()
    }

    /// Mean goodput in bits/sec over `[from, to)`, snapped inward to whole
    /// ACK bins (a partial bin would otherwise attribute bytes from outside
    /// the window and overestimate the rate). O(1) via the bin prefix sum.
    pub fn throughput_bps(&self, from: Time, to: Time) -> f64 {
        if to <= from {
            return 0.0;
        }
        let bin_ns = self.bin.as_nanos().max(1);
        let first = (from.as_nanos().div_ceil(bin_ns)) as usize;
        let last = (to.as_nanos() / bin_ns) as usize;
        if last <= first {
            return 0.0;
        }
        // Bytes in bins [first, min(last, len)) = cum[hi-1] - cum[first-1].
        let hi = last.min(self.acked_cum.len());
        let bytes = if hi <= first {
            0
        } else {
            let lo = if first == 0 {
                0
            } else {
                self.acked_cum[first - 1]
            };
            self.acked_cum[hi - 1] - lo
        };
        let duration_s = ((last - first) as u64 * bin_ns) as f64 / 1e9;
        bytes as f64 * 8.0 / duration_s
    }

    /// Mean goodput in Mbit/sec over `[from, to)`.
    pub fn throughput_mbps(&self, from: Time, to: Time) -> f64 {
        self.throughput_bps(from, to) / 1e6
    }

    /// `(bin_start_seconds, Mbit/sec)` goodput timeline (Fig. 14 / Fig. 18).
    pub fn throughput_timeline_mbps(&self) -> Vec<(f64, f64)> {
        let bin_s = self.bin.as_secs_f64();
        (0..self.acked_cum.len())
            .map(|i| {
                (
                    i as f64 * bin_s,
                    self.bin_bytes(i) as f64 * 8.0 / bin_s / 1e6,
                )
            })
            .collect()
    }

    /// RTT values (seconds), discarding timestamps.
    pub fn rtt_values(&self) -> Vec<f64> {
        self.rtt_samples.iter().map(|&(_, r)| r).collect()
    }

    /// RTT values within a time window `[from, to)`, seconds.
    pub fn rtt_values_in(&self, from: Time, to: Time) -> Vec<f64> {
        let (a, b) = (from.as_secs_f64(), to.as_secs_f64());
        self.rtt_samples
            .iter()
            .filter(|&&(t, _)| t >= a && t < b)
            .map(|&(_, r)| r)
            .collect()
    }

    /// The `p`-th percentile RTT in seconds, if samples exist. The sorted
    /// sample set is cached after the first query, so sweeping several
    /// percentiles (p50/p95/p99 columns) costs one sort total.
    pub fn rtt_percentile(&self, p: f64) -> Option<f64> {
        let sorted = self.rtt_sorted.get_or_init(|| {
            let mut v: Vec<f64> = self
                .rtt_samples
                .iter()
                .map(|&(_, r)| r)
                .filter(|r| r.is_finite())
                .collect();
            v.sort_unstable_by(f64::total_cmp);
            v
        });
        percentile_sorted(sorted, p)
    }

    /// Mean RTT in seconds.
    pub fn rtt_mean(&self) -> Option<f64> {
        if self.rtt_samples.is_empty() {
            None
        } else {
            Some(
                self.rtt_samples.iter().map(|&(_, r)| r).sum::<f64>()
                    / self.rtt_samples.len() as f64,
            )
        }
    }

    /// Loss rate observed by the sender: `lost / sent`.
    pub fn loss_rate(&self) -> f64 {
        if self.pkts_sent == 0 {
            0.0
        } else {
            self.pkts_lost as f64 / self.pkts_sent as f64
        }
    }

    /// Flow completion time for sized flows.
    pub fn completion_time(&self) -> Option<Dur> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }
}

/// One per-flow telemetry sample, recorded when the scenario enables
/// tracing ([`crate::scenario::Scenario::with_trace`]).
///
/// Samples are taken on a fixed clock for every flow that has started and
/// not finished, so a run's trace is a regular per-flow time series of the
/// controller's externally visible state (rate/window/in-flight/RTT) plus
/// whatever internals the controller exposes via
/// [`proteus_transport::CcSnapshot`] (utility value, mode, mode switches).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sample time, seconds since simulation start.
    pub t: f64,
    /// Flow id within the scenario.
    pub flow: FlowId,
    /// Pacing rate in Mbit/sec (`None` for pure ACK-clocked protocols).
    pub rate_mbps: Option<f64>,
    /// Congestion window in bytes (`None` when the protocol is unwindowed).
    pub cwnd_bytes: Option<u64>,
    /// Bytes currently in flight.
    pub inflight_bytes: u64,
    /// Smoothed RTT in milliseconds, once measured.
    pub srtt_ms: Option<f64>,
    /// RTT deviation (RFC 6298 rttvar) in milliseconds, once measured.
    pub rttvar_ms: Option<f64>,
    /// Most recent utility value, for utility-driven controllers.
    pub utility: Option<f64>,
    /// Active mode name (e.g. `"Proteus-S"`), for mode-switching senders.
    pub mode: Option<&'static str>,
    /// Mode switches since flow start.
    pub mode_switches: u64,
}

/// Display labels for the [`EventStats::pops`] slots, in index order. The
/// engine assigns each event kind a stable slot (`Event::kind` in
/// `crate::engine`); this array gives reporting code human-readable names
/// without exposing the private event enum.
pub const EVENT_KIND_NAMES: [&str; 15] = [
    "FlowStart",
    "FlowStop",
    "QueueDrain",
    "Delivery",
    "AckArrival",
    "Pace",
    "CcTimer",
    "Rto",
    "AppWake",
    "SpawnCross",
    "ChurnSpawn",
    "QueueSample",
    "TraceSample",
    "Fault",
    "HopArrival",
];

/// Event-loop accounting for one simulation run: how many events of each
/// kind were dispatched, how many went through the scheduler versus the
/// fused wire pipeline, and how deep the scheduler got.
///
/// These counters describe *execution mechanics*, not observable behavior:
/// a staged and a fused run of the same scenario dispatch the identical
/// event sequence (so [`EventStats::pops`] agrees), but the fused run pushes
/// the per-packet wire chain through the wire ring instead of the scheduler
/// (so `pushes`, `peak_queue` and `fused` differ). Equivalence tests that
/// compare full [`SimResult`] digests across execution paths must therefore
/// zero this field first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events dispatched, by kind (indices match [`EVENT_KIND_NAMES`]).
    /// Counts every dispatch regardless of execution path: a fused wire
    /// phase counts under the kind of the staged event it replaces.
    pub pops: [u64; EVENT_KIND_NAMES.len()],
    /// Events pushed into the scheduler.
    pub pushes: u64,
    /// Peak number of events pending in the scheduler.
    pub peak_queue: u64,
    /// Dispatches served by the fused wire pipeline instead of the
    /// scheduler (zero on the staged path).
    pub fused: u64,
}

impl EventStats {
    /// Total events dispatched over the run.
    pub fn dispatched(&self) -> u64 {
        self.pops.iter().sum()
    }

    /// Fraction of dispatches served by the fused wire pipeline.
    pub fn fused_fraction(&self) -> f64 {
        let total = self.dispatched();
        if total == 0 {
            0.0
        } else {
            self.fused as f64 / total as f64
        }
    }
}

/// Per-link accounting for one run: one entry per topology link, in link-id
/// order. Single-link scenarios have exactly one entry, mirrored by the
/// legacy top-level `link_*` fields on [`SimResult`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSummary {
    /// Configured (initial) link rate, bits/sec — before any fault-schedule
    /// bandwidth changes.
    pub rate_bps: f64,
    /// Bytes that completed service at this link.
    pub delivered_bytes: u64,
    /// Packets this link's queue accepted.
    pub accepted_pkts: u64,
    /// Packets tail-dropped at this link.
    pub dropped_pkts: u64,
    /// Peak buffer occupancy observed when packets were admitted, bytes.
    pub peak_queued_bytes: u64,
    /// What this link's fault layer injected (all zero without a schedule).
    pub fault_stats: FaultStats,
}

impl LinkSummary {
    /// Bytes-served utilization over the whole run: delivered bytes as a
    /// fraction of configured capacity × duration.
    pub fn utilization(&self, duration: Dur) -> f64 {
        let capacity_bytes = self.rate_bps / 8.0 * duration.as_secs_f64();
        if capacity_bytes <= 0.0 {
            0.0
        } else {
            self.delivered_bytes as f64 / capacity_bytes
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-flow measurements, indexed by flow id.
    pub flows: Vec<FlowMetrics>,
    /// Total simulated duration.
    pub duration: Dur,
    /// Bottleneck rate, bits/sec (link 0 — see [`SimResult::links`] for
    /// multi-link topologies).
    pub link_rate_bps: f64,
    /// Bytes that completed service at the bottleneck (link 0).
    pub link_delivered_bytes: u64,
    /// Packets tail-dropped at the bottleneck (link 0).
    pub link_dropped_pkts: u64,
    /// Per-link accounting, one entry per topology link in id order.
    /// `links[0]` always mirrors the legacy top-level `link_*` fields and
    /// [`SimResult::fault_stats`].
    pub links: Vec<LinkSummary>,
    /// Periodic `(seconds, queued_bytes)` samples of buffer occupancy at
    /// link 0 (per-link peaks are in [`LinkSummary::peak_queued_bytes`]).
    pub queue_samples: Vec<(f64, u64)>,
    /// Per-flow telemetry time series (empty unless the scenario enables
    /// [`crate::scenario::Scenario::with_trace`]).
    pub trace: Vec<TraceEvent>,
    /// Structured decision events drained from the controllers, in
    /// timestamp order (empty unless a flow's controller carries a
    /// recording `proteus-trace` sink). When a fault schedule is set, also
    /// contains the link-scoped fault records.
    pub decisions: Vec<proteus_trace::FlowEvent>,
    /// What the fault layer injected at link 0 (all zero without a
    /// schedule; per-link stats are in [`SimResult::links`]).
    pub fault_stats: FaultStats,
    /// Event-loop accounting (dispatch counts, scheduler pressure, fused
    /// share). Mechanics, not behavior — see [`EventStats`].
    pub events: EventStats,
}

impl SimResult {
    /// Aggregate goodput of a set of flows over `[from, to)`, as a fraction
    /// of link capacity.
    pub fn utilization(&self, from: Time, to: Time) -> f64 {
        let total: f64 = self.flows.iter().map(|f| f.throughput_bps(from, to)).sum();
        total / self.link_rate_bps
    }

    /// Finds a flow's metrics by name (first match).
    pub fn flow_named(&self, name: &str) -> Option<&FlowMetrics> {
        self.flows.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_binning() {
        let mut m = FlowMetrics::new(0, "test".into(), Dur::from_secs(1), 1);
        // 1 MB acked in second 0, 2 MB in second 1.
        m.on_ack(Time::from_millis(500), 1_000_000, Dur::from_millis(30));
        m.on_ack(Time::from_millis(1500), 2_000_000, Dur::from_millis(30));
        let t01 = m.throughput_bps(Time::ZERO, Time::from_secs_f64(1.0));
        assert!((t01 - 8_000_000.0).abs() < 1.0);
        let t02 = m.throughput_bps(Time::ZERO, Time::from_secs_f64(2.0));
        assert!((t02 - 12_000_000.0).abs() < 1.0);
        // Window starting at second 1 sees only the second bin.
        let t12 = m.throughput_bps(Time::from_secs_f64(1.0), Time::from_secs_f64(2.0));
        assert!((t12 - 16_000_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let m = FlowMetrics::new(0, "t".into(), Dur::from_secs(1), 1);
        assert_eq!(
            m.throughput_bps(Time::from_secs_f64(1.0), Time::from_secs_f64(1.0)),
            0.0
        );
        assert_eq!(
            m.throughput_bps(Time::from_secs_f64(5.0), Time::from_secs_f64(9.0)),
            0.0
        );
    }

    #[test]
    fn rtt_stride_downsamples() {
        let mut m = FlowMetrics::new(0, "t".into(), Dur::from_secs(1), 4);
        for i in 0..100 {
            m.on_ack(Time::from_millis(i), 1500, Dur::from_millis(30));
        }
        assert_eq!(m.rtt_samples.len(), 25);
        assert_eq!(m.pkts_acked, 100);
    }

    #[test]
    fn loss_rate_and_percentiles() {
        let mut m = FlowMetrics::new(0, "t".into(), Dur::from_secs(1), 1);
        for i in 0..10 {
            m.on_sent(1500);
            if i < 8 {
                m.on_ack(Time::from_millis(i * 10), 1500, Dur::from_millis(30 + i));
            } else {
                m.on_loss();
            }
        }
        assert!((m.loss_rate() - 0.2).abs() < 1e-12);
        assert!(m.rtt_percentile(95.0).unwrap() >= 0.036);
        assert!(m.rtt_mean().unwrap() > 0.030);
    }

    #[test]
    fn timeline_units() {
        let mut m = FlowMetrics::new(0, "t".into(), Dur::from_secs(1), 1);
        m.on_ack(Time::from_millis(100), 125_000, Dur::from_millis(10)); // 1 Mbit
        let tl = m.throughput_timeline_mbps();
        assert_eq!(tl.len(), 1);
        assert!((tl[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sim_result_utilization() {
        let mut m = FlowMetrics::new(0, "a".into(), Dur::from_secs(1), 1);
        m.on_ack(Time::from_millis(10), 625_000, Dur::from_millis(10)); // 5 Mbit
        let r = SimResult {
            flows: vec![m],
            duration: Dur::from_secs(1),
            link_rate_bps: 10e6,
            link_delivered_bytes: 625_000,
            link_dropped_pkts: 0,
            links: vec![LinkSummary {
                rate_bps: 10e6,
                delivered_bytes: 625_000,
                accepted_pkts: 1,
                dropped_pkts: 0,
                peak_queued_bytes: 0,
                fault_stats: FaultStats::default(),
            }],
            queue_samples: vec![],
            trace: vec![],
            decisions: vec![],
            fault_stats: FaultStats::default(),
            events: EventStats::default(),
        };
        let u = r.utilization(Time::ZERO, Time::from_secs_f64(1.0));
        assert!((u - 0.5).abs() < 1e-9);
        assert!(r.flow_named("a").is_some());
        assert!(r.flow_named("b").is_none());
        let lu = r.links[0].utilization(r.duration);
        assert!((lu - 0.5).abs() < 1e-9, "625 KB over 10 Mbps x 1 s: {lu}");
    }

    #[test]
    fn media_frame_completion_freezes_and_percentiles() {
        let mut m = FlowMetrics::new(0, "rtc".into(), Dur::from_secs(1), 1);
        assert!(m.media().is_none());
        let deadline = Dur::from_millis(100);
        let frames: Vec<FrameRecord> = (0..4)
            .map(|i| FrameRecord {
                gen_at: Time::from_millis(i * 100),
                end_bytes: (i + 1) * 1000,
                deadline,
            })
            .collect();
        m.media_ingest(&frames);
        assert_eq!(m.media().unwrap().frames_generated(), 4);
        assert_eq!(m.media().unwrap().frames_pending(), 4);
        // Ack 2500 bytes at t=150ms: frames 0 and 1 complete (delays 150ms
        // and 50ms), frame 2 still short by 500 bytes.
        m.on_ack(Time::from_millis(150), 2500, Dur::from_millis(30));
        m.media_progress(Time::from_millis(150));
        let mm = m.media().unwrap();
        assert_eq!(mm.frames_completed(), 2);
        assert_eq!(mm.frames_pending(), 2);
        assert_eq!(mm.freeze_count(), 1, "frame 0 missed its 100ms deadline");
        assert!((mm.time_in_freeze() - 0.050).abs() < 1e-9);
        assert_eq!(mm.frame_delays(), &[0.150, 0.050]);
        // Ack the rest at t=600ms: frame 2 (gen 200ms) delay 400ms, frame 3
        // (gen 300ms) delay 300ms — both freezes.
        m.on_ack(Time::from_millis(600), 1500, Dur::from_millis(30));
        m.media_progress(Time::from_millis(600));
        let mm = m.media().unwrap();
        assert_eq!(mm.frames_completed(), 4);
        assert_eq!(mm.frames_pending(), 0);
        assert_eq!(mm.freeze_count(), 3);
        let p99 = mm.frame_delay_percentile(99.0).unwrap();
        assert!(p99 >= 0.39, "p99 = {p99}");
        assert!(mm.frame_delay_mean().unwrap() > 0.2);
    }

    #[test]
    fn media_progress_noop_without_media() {
        let mut m = FlowMetrics::new(0, "bulk".into(), Dur::from_secs(1), 1);
        m.on_ack(Time::from_millis(10), 1500, Dur::from_millis(30));
        m.media_progress(Time::from_millis(10));
        assert!(m.media().is_none());
    }

    #[test]
    fn link_summary_utilization_handles_zero_capacity() {
        let l = LinkSummary::default();
        assert_eq!(l.utilization(Dur::from_secs(1)), 0.0);
    }
}
