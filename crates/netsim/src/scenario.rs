//! Scenario description: a topology of bottleneck links plus a set of flows.
//!
//! Experiments in the paper are all "N flows over one emulated bottleneck",
//! optionally with Poisson cross-traffic (Fig. 2). [`Scenario`] captures
//! that shape declaratively — and generalizes it to multi-bottleneck
//! [`Topology`]s with per-flow paths (SCENARIOS.md "Topologies") — while
//! `run()` (in [`crate::engine`]) executes it.

use proteus_transport::{Application, BulkApp, CcFactory, CongestionControl, Dur, SizedApp};

use crate::engine::WirePath;
use crate::fault::FaultSchedule;
use crate::noise::NoiseConfig;
use crate::sched::Scheduler;
use crate::topology::{LinkId, Topology};

/// Bottleneck link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Bottleneck bandwidth, Mbit/sec.
    pub bandwidth_mbps: f64,
    /// Base two-way propagation RTT (no queueing).
    pub rtt: Dur,
    /// Bottleneck buffer, bytes.
    pub buffer_bytes: u64,
    /// Probability of non-congestion ("random") loss per data packet.
    pub random_loss: f64,
    /// Latency-noise model on the path.
    pub noise: NoiseConfig,
}

impl LinkSpec {
    /// The paper's default emulated bottleneck: 50 Mbps, 30 ms RTT,
    /// 2-BDP (375 KB) buffer, clean path.
    pub fn paper_default() -> Self {
        Self {
            bandwidth_mbps: 50.0,
            rtt: Dur::from_millis(30),
            buffer_bytes: 375_000,
            random_loss: 0.0,
            noise: NoiseConfig::None,
        }
    }

    /// Creates a clean link with the given bandwidth/RTT/buffer.
    pub fn new(bandwidth_mbps: f64, rtt: Dur, buffer_bytes: u64) -> Self {
        Self {
            bandwidth_mbps,
            rtt,
            buffer_bytes,
            random_loss: 0.0,
            noise: NoiseConfig::None,
        }
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.bandwidth_mbps * 1e6 / 8.0 * self.rtt.as_secs_f64()).round() as u64
    }

    /// Returns a copy with the buffer set to `x` BDPs.
    pub fn with_buffer_bdp(mut self, x: f64) -> Self {
        self.buffer_bytes = ((self.bdp_bytes() as f64) * x).round().max(1.0) as u64;
        self
    }

    /// Returns a copy with the buffer set in bytes.
    pub fn with_buffer_bytes(mut self, b: u64) -> Self {
        self.buffer_bytes = b;
        self
    }

    /// Returns a copy with the given random loss probability.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&p));
        self.random_loss = p;
        self
    }

    /// Returns a copy with the given noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Link rate in bits/sec.
    pub fn rate_bps(&self) -> f64 {
        self.bandwidth_mbps * 1e6
    }
}

/// Factory for a flow's congestion controller.
pub type CcBuilder = Box<dyn FnOnce() -> Box<dyn CongestionControl>>;
/// Factory for a flow's application model.
pub type AppBuilder = Box<dyn FnOnce() -> Box<dyn Application>>;

/// One flow in a scenario.
pub struct FlowSpec {
    /// Label used in reports.
    pub name: String,
    /// When the flow starts, relative to simulation start.
    pub start: Dur,
    /// When the flow stops, if before the end of the run.
    pub stop: Option<Dur>,
    /// Congestion-controller factory.
    pub cc: CcBuilder,
    /// Application factory.
    pub app: AppBuilder,
    /// Whether lost bytes are retransmitted (needed by sized transfers).
    pub reliable: bool,
    /// Links this flow traverses, in hop order (ids into
    /// [`Topology::links`]). `None` means the default path: every link in
    /// id order.
    pub path: Option<Vec<LinkId>>,
}

impl FlowSpec {
    /// A long-running bulk flow with the given controller.
    pub fn bulk(
        name: impl Into<String>,
        start: Dur,
        cc: impl FnOnce() -> Box<dyn CongestionControl> + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            start,
            stop: None,
            cc: Box::new(cc),
            app: Box::new(|| Box::new(BulkApp)),
            reliable: false,
            path: None,
        }
    }

    /// A fixed-size reliable transfer (web object, cross-traffic flow).
    pub fn sized(
        name: impl Into<String>,
        start: Dur,
        bytes: u64,
        cc: impl FnOnce() -> Box<dyn CongestionControl> + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            start,
            stop: None,
            cc: Box::new(cc),
            app: Box::new(move || Box::new(SizedApp::new(bytes))),
            reliable: true,
            path: None,
        }
    }

    /// Returns this spec with a stop time.
    pub fn with_stop(mut self, stop: Dur) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Returns this spec with a custom application.
    pub fn with_app(mut self, app: impl FnOnce() -> Box<dyn Application> + 'static) -> Self {
        self.app = Box::new(app);
        self
    }

    /// Returns this spec with reliability (retransmission of lost bytes)
    /// enabled or disabled.
    pub fn with_reliability(mut self, reliable: bool) -> Self {
        self.reliable = reliable;
        self
    }

    /// Returns this spec routed over the given links, in hop order. Paths
    /// must be non-empty, duplicate-free and name links that exist in the
    /// scenario's [`Topology`] (validated when the simulation is built).
    pub fn with_path(mut self, path: impl Into<Vec<LinkId>>) -> Self {
        self.path = Some(path.into());
        self
    }
}

impl std::fmt::Debug for FlowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowSpec")
            .field("name", &self.name)
            .field("start", &self.start)
            .field("stop", &self.stop)
            .field("reliable", &self.reliable)
            .field("path", &self.path)
            .finish()
    }
}

/// Poisson cross-traffic: short flows with uniformly distributed sizes, as
/// used for the Fig.-2 "impending congestion" workload.
pub struct CrossTrafficSpec {
    /// Mean arrivals per second.
    pub arrivals_per_sec: f64,
    /// Uniform flow-size range in bytes (paper: 20–100 KB).
    pub size_range: (u64, u64),
    /// Controller factory for the short flows.
    pub cc: CcFactory,
    /// When arrivals begin.
    pub start: Dur,
    /// When arrivals end.
    pub stop: Dur,
}

impl std::fmt::Debug for CrossTrafficSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossTrafficSpec")
            .field("arrivals_per_sec", &self.arrivals_per_sec)
            .field("size_range", &self.size_range)
            .field("start", &self.start)
            .field("stop", &self.stop)
            .finish()
    }
}

/// One traffic class in a churned population: a share of arrivals handled
/// by a given congestion controller.
pub struct ChurnClass {
    /// Label prefix used in reports (flows are named `{name}~{n}`).
    pub name: String,
    /// Relative arrival share; shares are normalized across classes, so
    /// `[2.0, 1.0]` means two-thirds / one-third of arrivals.
    pub weight: f64,
    /// Controller factory for flows of this class.
    pub cc: CcFactory,
    /// Links flows of this class traverse, in hop order. `None` means the
    /// default path: every link in id order.
    pub path: Option<Vec<LinkId>>,
}

impl ChurnClass {
    /// Creates a class with the given label, arrival share and controller.
    pub fn new(name: impl Into<String>, weight: f64, cc: CcFactory) -> Self {
        Self {
            name: name.into(),
            weight,
            cc,
            path: None,
        }
    }

    /// Returns this class routed over the given links, in hop order (same
    /// validation rules as [`FlowSpec::with_path`]).
    pub fn with_path(mut self, path: impl Into<Vec<LinkId>>) -> Self {
        self.path = Some(path.into());
        self
    }
}

impl std::fmt::Debug for ChurnClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChurnClass")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("path", &self.path)
            .finish()
    }
}

/// Poisson flow churn: long-lived bulk flows arrive at rate
/// `arrivals_per_sec` and each lives for an exponentially distributed
/// lifetime with mean `mean_lifetime`, giving a steady-state population of
/// `arrivals_per_sec x mean_lifetime` (plus `initial`) flows drawn from
/// `classes`.
///
/// Churn draws come from a dedicated RNG stream
/// (`seed ^ CHURN_SEED_SALT`, mirroring the fault layer's salt discipline)
/// so attaching churn to a scenario leaves every other random draw — loss,
/// noise, cross-traffic — untouched.
pub struct ChurnSpec {
    /// Mean flow arrivals per second (Poisson process).
    pub arrivals_per_sec: f64,
    /// Mean flow lifetime (exponential).
    pub mean_lifetime: Dur,
    /// Flows already running when arrivals begin (steady-state warm start).
    pub initial: usize,
    /// Traffic classes arrivals are drawn from (weights normalized).
    pub classes: Vec<ChurnClass>,
    /// When arrivals begin.
    pub start: Dur,
    /// When arrivals end (running flows still age out naturally).
    pub stop: Dur,
}

impl ChurnSpec {
    /// Creates a churn spec starting at t=0 and running for the whole
    /// scenario (`stop` = [`Dur::MAX`] is clamped to the run's duration).
    pub fn new(arrivals_per_sec: f64, mean_lifetime: Dur, classes: Vec<ChurnClass>) -> Self {
        Self {
            arrivals_per_sec,
            mean_lifetime,
            initial: 0,
            classes,
            start: Dur::ZERO,
            stop: Dur::MAX,
        }
    }

    /// Returns this spec with an initial warm-start population.
    pub fn with_initial(mut self, initial: usize) -> Self {
        self.initial = initial;
        self
    }

    /// Returns this spec with an arrival window.
    pub fn with_window(mut self, start: Dur, stop: Dur) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }
}

impl std::fmt::Debug for ChurnSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChurnSpec")
            .field("arrivals_per_sec", &self.arrivals_per_sec)
            .field("mean_lifetime", &self.mean_lifetime)
            .field("initial", &self.initial)
            .field("classes", &self.classes)
            .field("start", &self.start)
            .field("stop", &self.stop)
            .finish()
    }
}

/// A complete simulation scenario.
pub struct Scenario {
    /// The bottleneck links (a single dumbbell unless built with
    /// [`Scenario::over`]). Flows traverse every link in id order unless
    /// they declare a [`FlowSpec::with_path`].
    pub topology: Topology,
    /// Static flows.
    pub flows: Vec<FlowSpec>,
    /// Optional Poisson cross-traffic generator.
    pub cross_traffic: Option<CrossTrafficSpec>,
    /// Total simulated time.
    pub duration: Dur,
    /// RNG seed (loss, noise, arrivals).
    pub seed: u64,
    /// Throughput-bin width for per-flow timelines (default 1 s).
    pub throughput_bin: Dur,
    /// Keep every `stride`-th RTT sample (1 = all).
    pub rtt_stride: usize,
    /// Sample bottleneck queue occupancy at this period, if set.
    pub queue_sample_every: Option<Dur>,
    /// Record per-flow telemetry ([`crate::metrics::TraceEvent`]) at this
    /// period, if set.
    pub trace_every: Option<Dur>,
    /// Injected path faults (link dynamics, bursty loss, reordering, ACK
    /// compression), if any, applied to link 0. `None` keeps the
    /// static-link fast path: existing results stay byte-identical.
    /// Multi-link scenarios attach schedules per link with
    /// [`Topology::with_faults`] instead; attaching to link 0 both ways is
    /// rejected when the simulation is built.
    pub faults: Option<FaultSchedule>,
    /// Poisson flow churn (population scenarios), if any. `None` keeps the
    /// static-flow path: existing results stay byte-identical.
    pub churn: Option<ChurnSpec>,
    /// Event-scheduler implementation (timing wheel by default; the binary
    /// heap remains available as a reference for equivalence tests and
    /// before/after benchmarks).
    pub scheduler: Scheduler,
    /// Wire-path execution strategy (fused by default, with automatic
    /// fallback to staged when faults or noise are attached; the staged
    /// chain remains selectable as the executable ordering reference — see
    /// [`WirePath`]).
    pub wire_path: WirePath,
}

impl Scenario {
    /// Creates a single-bottleneck scenario with sensible defaults (1 s
    /// throughput bins, all RTT samples, no queue sampling). Equivalent to
    /// `Scenario::over(Topology::single(link), duration)`.
    pub fn new(link: LinkSpec, duration: Dur) -> Self {
        Self::over(Topology::single(link), duration)
    }

    /// Creates a scenario over an arbitrary multi-link [`Topology`] with
    /// the same defaults as [`Scenario::new`].
    pub fn over(topology: Topology, duration: Dur) -> Self {
        Self {
            topology,
            flows: Vec::new(),
            cross_traffic: None,
            duration,
            seed: 1,
            throughput_bin: Dur::from_secs(1),
            rtt_stride: 1,
            queue_sample_every: None,
            trace_every: None,
            faults: None,
            churn: None,
            scheduler: Scheduler::default(),
            wire_path: WirePath::default(),
        }
    }

    /// Adds a flow.
    pub fn flow(mut self, flow: FlowSpec) -> Self {
        self.flows.push(flow);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets cross traffic.
    pub fn with_cross_traffic(mut self, ct: CrossTrafficSpec) -> Self {
        self.cross_traffic = Some(ct);
        self
    }

    /// Sets the throughput bin width.
    pub fn with_throughput_bin(mut self, bin: Dur) -> Self {
        self.throughput_bin = bin;
        self
    }

    /// Sets the RTT downsampling stride.
    pub fn with_rtt_stride(mut self, stride: usize) -> Self {
        self.rtt_stride = stride.max(1);
        self
    }

    /// Enables periodic queue sampling.
    pub fn with_queue_sampling(mut self, every: Dur) -> Self {
        self.queue_sample_every = Some(every);
        self
    }

    /// Enables periodic per-flow telemetry sampling: every `every`, each
    /// active flow's rate, window, in-flight bytes, RTT estimator state and
    /// controller internals are recorded into
    /// [`crate::metrics::SimResult::trace`].
    pub fn with_trace(mut self, every: Dur) -> Self {
        self.trace_every = Some(every);
        self
    }

    /// Attaches a fault schedule to link 0 (see [`FaultSchedule`]). An
    /// empty schedule is treated as no schedule. For multi-link scenarios
    /// prefer the per-link [`Topology::with_faults`]; both forms are
    /// byte-identical for single-link topologies.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = if faults.is_empty() {
            None
        } else {
            Some(faults)
        };
        self
    }

    /// Attaches Poisson flow churn (see [`ChurnSpec`]). A spec with no
    /// classes is treated as no churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = if churn.classes.is_empty() {
            None
        } else {
            Some(churn)
        };
        self
    }

    /// Selects the event-scheduler implementation (default:
    /// [`Scheduler::Wheel`]).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the wire-path execution strategy (default:
    /// [`WirePath::Fused`]). Fused execution collapses the per-packet
    /// `QueueDrain`/`Delivery`/`AckArrival` scheduler chain into a wire
    /// ring on clean paths and transparently falls back to staged when the
    /// scenario attaches faults or noise; results are byte-identical either
    /// way (`tests/wire_equivalence.rs`).
    pub fn with_wire_path(mut self, wire_path: WirePath) -> Self {
        self.wire_path = wire_path;
        self
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("topology", &self.topology)
            .field("flows", &self.flows)
            .field("cross_traffic", &self.cross_traffic)
            .field("duration", &self.duration)
            .field("seed", &self.seed)
            .field("faults", &self.faults)
            .field("churn", &self.churn)
            .field("scheduler", &self.scheduler)
            .field("wire_path", &self.wire_path)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_math() {
        let l = LinkSpec::paper_default();
        // 50 Mbps * 30 ms = 187.5 KB
        assert_eq!(l.bdp_bytes(), 187_500);
        assert_eq!(l.with_buffer_bdp(2.0).buffer_bytes, 375_000);
        assert_eq!(l.with_buffer_bdp(0.4).buffer_bytes, 75_000);
    }

    #[test]
    fn over_and_paths_compose() {
        let link = LinkSpec::paper_default();
        let sc = Scenario::over(Topology::parking_lot(3, link), Dur::from_secs(5))
            .flow(FlowSpec::bulk("long", Dur::ZERO, || unreachable!()).with_path([0u16, 1, 2]));
        assert_eq!(sc.topology.len(), 3);
        assert_eq!(sc.flows[0].path.as_deref(), Some(&[0u16, 1, 2][..]));
        // Scenario::new is sugar for a single-link topology.
        let sc = Scenario::new(link, Dur::from_secs(5));
        assert_eq!(sc.topology.len(), 1);
        assert!(sc.topology.faults[0].is_none());
    }

    #[test]
    fn builders_compose() {
        let l = LinkSpec::new(100.0, Dur::from_millis(60), 1_500_000)
            .with_random_loss(0.01)
            .with_noise(NoiseConfig::wifi_default());
        assert_eq!(l.random_loss, 0.01);
        assert!(matches!(l.noise, NoiseConfig::Wifi(_)));
        assert_eq!(l.rate_bps(), 100e6);
    }
}
