//! The bottleneck link: a FIFO tail-drop queue drained at a fixed rate.
//!
//! Every emulated experiment in the paper runs over a single dumbbell
//! bottleneck characterized by (bandwidth, RTT, buffer). This module models
//! that bottleneck exactly: packets offered to the link either fit in the
//! remaining buffer (and depart after queueing + serialization) or are
//! tail-dropped.
//!
//! The implementation uses a *virtual queue*: because service is FIFO and
//! work-conserving, a packet's departure time is fully determined at arrival
//! (`max(now, link_free_at) + serialization`), so no per-packet dequeue
//! events are needed. Buffer occupancy is decremented by the engine when the
//! departure time passes.

use proteus_transport::{serialization_delay, Dur, Time};

/// Outcome of offering a packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The packet was accepted and will finish serializing at this time.
    Departs(Time),
    /// The buffer was full; the packet is tail-dropped.
    Dropped,
}

/// A fixed-rate, tail-drop FIFO bottleneck.
#[derive(Debug, Clone)]
pub struct BottleneckLink {
    rate_bps: f64,
    buffer_bytes: u64,
    /// Bytes currently queued or in service.
    queued_bytes: u64,
    /// Time the serializer becomes free.
    free_at: Time,
    /// Counters.
    accepted_pkts: u64,
    dropped_pkts: u64,
    delivered_bytes: u64,
}

impl BottleneckLink {
    /// Creates a link with the given rate (bits/sec) and buffer (bytes).
    ///
    /// # Panics
    /// Panics if the rate is not positive or the buffer is zero.
    pub fn new(rate_bps: f64, buffer_bytes: u64) -> Self {
        assert!(rate_bps > 0.0 && rate_bps.is_finite());
        assert!(buffer_bytes > 0, "a zero buffer cannot hold any packet");
        Self {
            rate_bps,
            buffer_bytes,
            queued_bytes: 0,
            free_at: Time::ZERO,
            accepted_pkts: 0,
            dropped_pkts: 0,
            delivered_bytes: 0,
        }
    }

    /// Link rate, bits/sec.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Changes the drain rate (time-varying links / fault injection).
    ///
    /// Packets already accepted keep the departure times committed at offer
    /// time — the virtual queue cannot cheaply re-plan them — so the new
    /// rate takes effect from the next offered packet. With per-packet
    /// serialization times in the sub-millisecond range the approximation
    /// error is one packet's worth of drain time.
    ///
    /// # Panics
    /// Panics if the rate is not positive and finite.
    pub fn set_rate(&mut self, rate_bps: f64) {
        assert!(rate_bps > 0.0 && rate_bps.is_finite());
        self.rate_bps = rate_bps;
    }

    /// Configured buffer size, bytes.
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    /// Bytes currently occupying the buffer (queued + in service).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Offers a packet of `bytes` at time `now`.
    ///
    /// The in-service packet counts against the buffer, matching a shared
    /// NIC ring: a packet is accepted iff `queued + bytes <= buffer`.
    pub fn offer(&mut self, now: Time, bytes: u64) -> Offer {
        if self.queued_bytes + bytes > self.buffer_bytes {
            self.dropped_pkts += 1;
            return Offer::Dropped;
        }
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        let departs = start + serialization_delay(bytes, self.rate_bps);
        self.free_at = departs;
        self.queued_bytes += bytes;
        self.accepted_pkts += 1;
        Offer::Departs(departs)
    }

    /// Called by the engine when a previously accepted packet's departure
    /// time passes: releases its buffer space.
    pub fn on_departure(&mut self, bytes: u64) {
        debug_assert!(self.queued_bytes >= bytes, "departure underflow");
        self.queued_bytes = self.queued_bytes.saturating_sub(bytes);
        self.delivered_bytes += bytes;
    }

    /// Queueing + serialization delay a hypothetical packet would see now.
    pub fn current_delay(&self, now: Time, bytes: u64) -> Dur {
        let wait = self.free_at.since(now);
        wait + serialization_delay(bytes, self.rate_bps)
    }

    /// Packets accepted so far.
    pub fn accepted_pkts(&self) -> u64 {
        self.accepted_pkts
    }

    /// Packets tail-dropped so far.
    pub fn dropped_pkts(&self) -> u64 {
        self.dropped_pkts
    }

    /// Bytes that completed service.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 12 Mbps -> 1500 B serializes in 1 ms. Handy for exact arithmetic.
    fn link() -> BottleneckLink {
        BottleneckLink::new(12_000_000.0, 4500)
    }

    #[test]
    fn idle_link_serializes_immediately() {
        let mut l = link();
        match l.offer(Time::from_millis(10), 1500) {
            Offer::Departs(t) => assert_eq!(t, Time::from_millis(11)),
            Offer::Dropped => panic!("should accept"),
        }
        assert_eq!(l.queued_bytes(), 1500);
    }

    #[test]
    fn queueing_delays_accumulate() {
        let mut l = link();
        let Offer::Departs(t1) = l.offer(Time::ZERO, 1500) else {
            panic!()
        };
        let Offer::Departs(t2) = l.offer(Time::ZERO, 1500) else {
            panic!()
        };
        assert_eq!(t1, Time::from_millis(1));
        assert_eq!(t2, Time::from_millis(2));
    }

    #[test]
    fn tail_drop_when_full() {
        let mut l = link(); // 4500 B buffer = 3 packets
        for _ in 0..3 {
            assert!(matches!(l.offer(Time::ZERO, 1500), Offer::Departs(_)));
        }
        assert_eq!(l.offer(Time::ZERO, 1500), Offer::Dropped);
        assert_eq!(l.dropped_pkts(), 1);
        assert_eq!(l.accepted_pkts(), 3);
    }

    #[test]
    fn departure_frees_space() {
        let mut l = link();
        for _ in 0..3 {
            l.offer(Time::ZERO, 1500);
        }
        l.on_departure(1500);
        assert_eq!(l.queued_bytes(), 3000);
        assert!(matches!(
            l.offer(Time::from_millis(1), 1500),
            Offer::Departs(_)
        ));
        assert_eq!(l.delivered_bytes(), 1500);
    }

    #[test]
    fn work_conserving_after_idle() {
        let mut l = link();
        let Offer::Departs(t1) = l.offer(Time::ZERO, 1500) else {
            panic!()
        };
        l.on_departure(1500);
        // Link idle 10ms, next packet serializes from its own arrival.
        let Offer::Departs(t2) = l.offer(Time::from_millis(10), 1500) else {
            panic!()
        };
        assert_eq!(t1, Time::from_millis(1));
        assert_eq!(t2, Time::from_millis(11));
    }

    #[test]
    fn current_delay_reports_backlog() {
        let mut l = link();
        assert_eq!(l.current_delay(Time::ZERO, 1500), Dur::from_millis(1));
        l.offer(Time::ZERO, 1500);
        l.offer(Time::ZERO, 1500);
        assert_eq!(l.current_delay(Time::ZERO, 1500), Dur::from_millis(3));
    }

    #[test]
    fn set_rate_applies_to_subsequent_offers() {
        let mut l = link();
        let Offer::Departs(t1) = l.offer(Time::ZERO, 1500) else {
            panic!()
        };
        assert_eq!(t1, Time::from_millis(1));
        // Halve the rate: the next packet serializes in 2 ms after the
        // committed backlog.
        l.set_rate(6_000_000.0);
        assert_eq!(l.rate_bps(), 6_000_000.0);
        let Offer::Departs(t2) = l.offer(Time::ZERO, 1500) else {
            panic!()
        };
        assert_eq!(t2, Time::from_millis(3));
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        let _ = BottleneckLink::new(1e6, 0);
    }
}
