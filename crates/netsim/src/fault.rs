//! Fault injection and dynamic-network behaviour.
//!
//! A static dumbbell never exercises the paper's §5 noise-tolerance
//! machinery — per-ACK RTT-sample filtering after >50× ACK-interval spikes,
//! regression-error gating, MI-history trending all exist because real paths
//! misbehave. [`FaultSchedule`] describes that misbehaviour declaratively:
//!
//! * **Link events** ([`LinkChange`]) — timed steps of bottleneck bandwidth
//!   or base RTT (route changes) and full outages (link flaps), dispatched
//!   through the event heap like any other simulation event,
//! * **Bursty loss** ([`GilbertElliott`]) — a two-state Gilbert–Elliott
//!   chain layered on top of `LinkSpec::random_loss`,
//! * **Reordering** ([`ReorderConfig`]) — a fraction of data packets is
//!   held back by a bounded extra delay, letting later packets overtake
//!   (the dup-ACK pathology),
//! * **ACK compression** ([`AckCompression`]) — periodic episodes during
//!   which ACKs are held and released together, producing the near-zero
//!   ACK intervals followed by a giant one that the §5 per-ACK filter
//!   (`AckIntervalFilter`, ×50 threshold) was built to reject.
//!
//! # Determinism
//!
//! Fault randomness (loss-chain transitions, reorder draws, episode gaps)
//! comes from a **dedicated** RNG seeded from `scenario.seed ^
//! FAULT_SEED_SALT`, never from the engine's main RNG. Consequences:
//!
//! * the same scenario + schedule + seed reproduces the same run bit for
//!   bit, across processes and worker counts;
//! * a scenario with **no** schedule (or an empty one) draws exactly the
//!   same main-RNG sequence as before this module existed, so all committed
//!   golden results remain byte-identical.
//!
//! Every link change and loss-burst boundary is also recorded as a
//! link-scoped [`proteus_trace::EventKind::Fault`] decision event, so
//! exported traces show *cause* (fault) next to *effect* (filter/gate
//! verdicts, rate transitions).

use proteus_transport::{Dur, Time};

use rand::rngs::SmallRng;
use rand::{RngExt as Rng, SeedableRng};

use crate::dist;

/// XOR'd into the scenario seed to derive the fault layer's private RNG
/// stream (keeps fault draws out of the main RNG; see module docs).
pub const FAULT_SEED_SALT: u64 = 0xFA17_5EED_0000_0001;

/// One timed change to the bottleneck link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkChange {
    /// Set the bottleneck bandwidth to this many Mbit/s. Packets already
    /// queued keep their committed departure times; the new rate applies
    /// from the next arrival.
    Bandwidth(f64),
    /// Set the base two-way propagation RTT (a route change). Applies to
    /// packets entering the wire from this instant on.
    Rtt(Dur),
    /// Link goes down: every packet departing the queue is lost until
    /// [`LinkChange::Up`].
    Down,
    /// Link comes back up.
    Up,
}

/// Two-state Gilbert–Elliott bursty-loss model, applied per data packet
/// that crosses the wire (after the queue, independent of
/// `LinkSpec::random_loss`).
///
/// The chain advances one step per packet: in the *good* state it enters
/// the *bad* state with probability `p_enter`; in the bad state it exits
/// with probability `p_exit` (mean burst length = `1 / p_exit` packets).
/// The packet is then lost with the current state's loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of entering the bad state.
    pub p_enter: f64,
    /// Per-packet probability of leaving the bad state.
    pub p_exit: f64,
    /// Loss probability while in the good state (usually 0).
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl Default for GilbertElliott {
    /// A burst profile in the envelope WiFi measurement studies report:
    /// bursts of ~20 packets (`p_exit` 0.05) arriving roughly every 2000
    /// packets, losing 30% of packets while active, clean otherwise.
    fn default() -> Self {
        Self {
            p_enter: 0.0005,
            p_exit: 0.05,
            loss_good: 0.0,
            loss_bad: 0.3,
        }
    }
}

impl GilbertElliott {
    /// Mean burst length in packets (`1 / p_exit`).
    pub fn mean_burst_pkts(&self) -> f64 {
        1.0 / self.p_exit.max(f64::MIN_POSITIVE)
    }
}

/// Bounded packet reordering: each delivered data packet is, with
/// probability `prob`, held back by an extra uniform `(0, max_extra]` delay
/// and exempted from the FIFO delivery clamp, so later packets can overtake
/// it by up to `max_extra`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderConfig {
    /// Probability that a delivered packet is reordered.
    pub prob: f64,
    /// Upper bound on the extra delay (the reordering window).
    pub max_extra: Dur,
}

/// Periodic ACK-compression episodes: every ~`every` (exponential gap), all
/// ACKs generated within a `hold` window are released together at the end
/// of the window. The receiver-side intervals collapse to ~0 while the gap
/// before the batch grows to ~`hold` — exactly the >50× interval spike the
/// paper's per-ACK filter (§5) rejects RTT samples for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckCompression {
    /// Mean gap between episode starts (exponentially distributed, floored
    /// at `hold`).
    pub every: Dur,
    /// Length of each hold window.
    pub hold: Dur,
}

/// A deterministic, seed-driven schedule of path faults attached to a
/// [`crate::Scenario`] via `with_faults`. See the module docs for the
/// fault vocabulary and determinism rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Timed link changes (need not be pre-sorted; the event heap orders
    /// them, breaking ties by list position).
    pub link_events: Vec<(Dur, LinkChange)>,
    /// Bursty-loss chain, if any.
    pub burst_loss: Option<GilbertElliott>,
    /// Packet reordering, if any.
    pub reorder: Option<ReorderConfig>,
    /// ACK-compression episodes, if any.
    pub ack_compression: Option<AckCompression>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing; byte-identical to no schedule).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.link_events.is_empty()
            && self.burst_loss.is_none()
            && self.reorder.is_none()
            && self.ack_compression.is_none()
    }

    /// Adds a raw link change at `at`.
    pub fn at(mut self, at: Dur, change: LinkChange) -> Self {
        self.link_events.push((at, change));
        self
    }

    /// Steps the bottleneck bandwidth to `mbps` at `at`.
    pub fn bandwidth_step(self, at: Dur, mbps: f64) -> Self {
        self.at(at, LinkChange::Bandwidth(mbps))
    }

    /// Steps the base RTT to `rtt` at `at` (route change).
    pub fn rtt_step(self, at: Dur, rtt: Dur) -> Self {
        self.at(at, LinkChange::Rtt(rtt))
    }

    /// Takes the link down at `at` for `len`.
    pub fn outage(self, at: Dur, len: Dur) -> Self {
        self.at(at, LinkChange::Down).at(at + len, LinkChange::Up)
    }

    /// A flapping link: `cycles` outages of `down_len` starting at
    /// `first_at`, separated by `up_len` of service.
    pub fn flapping(self, first_at: Dur, down_len: Dur, up_len: Dur, cycles: usize) -> Self {
        let mut s = self;
        let mut at = first_at;
        for _ in 0..cycles {
            s = s.outage(at, down_len);
            at = at + down_len + up_len;
        }
        s
    }

    /// Drives the bottleneck bandwidth along a `(time, Mbit/s)` trace
    /// (piecewise-constant; e.g. replaying a measured cellular trace).
    pub fn bandwidth_trace(self, points: impl IntoIterator<Item = (Dur, f64)>) -> Self {
        let mut s = self;
        for (at, mbps) in points {
            s = s.bandwidth_step(at, mbps);
        }
        s
    }

    /// Enables Gilbert–Elliott bursty loss.
    pub fn with_burst_loss(mut self, ge: GilbertElliott) -> Self {
        self.burst_loss = Some(ge);
        self
    }

    /// Enables bounded packet reordering.
    pub fn with_reorder(mut self, r: ReorderConfig) -> Self {
        self.reorder = Some(r);
        self
    }

    /// Enables periodic ACK-compression episodes.
    pub fn with_ack_compression(mut self, a: AckCompression) -> Self {
        self.ack_compression = Some(a);
        self
    }
}

/// Counters of what the fault layer actually did during a run, reported in
/// [`crate::SimResult::fault_stats`]. All zero when no schedule is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Link changes applied (bandwidth/RTT steps, down/up edges).
    pub link_changes: u64,
    /// Data packets lost because the link was down.
    pub outage_drops: u64,
    /// Data packets lost to the Gilbert–Elliott chain.
    pub burst_losses: u64,
    /// Loss-burst episodes entered (good→bad transitions).
    pub loss_episodes: u64,
    /// Data packets delivered out of order (given extra delay).
    pub reordered_pkts: u64,
    /// ACKs held by a compression episode.
    pub compressed_acks: u64,
}

/// Per-packet verdict of [`FaultState::wire_loss`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WireLoss {
    /// The packet is lost on the wire (outage or burst loss).
    pub lost: bool,
    /// The chain just entered the bad state; carries `loss_bad` for the
    /// trace event.
    pub burst_started: Option<f64>,
    /// The chain just returned to the good state.
    pub burst_ended: bool,
}

/// Gilbert–Elliott chain state.
#[derive(Debug, Clone)]
struct GeRuntime {
    cfg: GilbertElliott,
    bad: bool,
}

/// ACK-compression episode state.
#[derive(Debug, Clone)]
struct AckRuntime {
    cfg: AckCompression,
    /// End of the currently active hold window (no window active when in
    /// the past).
    hold_until: Time,
    /// Earliest start of the next episode (`Time::ZERO` = first ACK starts
    /// one immediately).
    next_episode_at: Time,
}

/// Runtime state of the fault layer inside the engine: the schedule's
/// stochastic components plus their private RNG and the activity counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    rng: SmallRng,
    /// Link currently down (between `LinkChange::Down` and `Up`).
    pub down: bool,
    ge: Option<GeRuntime>,
    reorder: Option<ReorderConfig>,
    ack: Option<AckRuntime>,
    /// Activity counters, moved into the `SimResult`.
    pub stats: FaultStats,
}

impl FaultState {
    /// Builds runtime state from a schedule; `seed` is the scenario seed
    /// (salted internally — see [`FAULT_SEED_SALT`]).
    pub fn new(sched: &FaultSchedule, seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            down: false,
            ge: sched.burst_loss.map(|cfg| GeRuntime { cfg, bad: false }),
            reorder: sched.reorder,
            ack: sched.ack_compression.map(|cfg| AckRuntime {
                cfg,
                hold_until: Time::ZERO,
                next_episode_at: Time::ZERO,
            }),
            stats: FaultStats::default(),
        }
    }

    /// Per-packet wire-loss verdict for a data packet leaving the queue.
    ///
    /// During an outage every packet is lost and the loss chain is frozen
    /// (nothing crosses the wire to advance it). Otherwise the chain steps
    /// once and the packet is lost with the current state's probability.
    /// Draws nothing when neither outage nor burst loss is configured.
    pub fn wire_loss(&mut self) -> WireLoss {
        let mut out = WireLoss::default();
        if self.down {
            self.stats.outage_drops += 1;
            out.lost = true;
            return out;
        }
        if let Some(ge) = &mut self.ge {
            if ge.bad {
                if self.rng.random::<f64>() < ge.cfg.p_exit {
                    ge.bad = false;
                    out.burst_ended = true;
                }
            } else if self.rng.random::<f64>() < ge.cfg.p_enter {
                ge.bad = true;
                out.burst_started = Some(ge.cfg.loss_bad);
                self.stats.loss_episodes += 1;
            }
            let p = if ge.bad {
                ge.cfg.loss_bad
            } else {
                ge.cfg.loss_good
            };
            if p > 0.0 && self.rng.random::<f64>() < p {
                self.stats.burst_losses += 1;
                out.lost = true;
            }
        }
        out
    }

    /// Extra delivery delay for a data packet, if it is reordered. Draws
    /// nothing when reordering is not configured.
    pub fn reorder_extra(&mut self) -> Option<Dur> {
        let r = self.reorder?;
        if self.rng.random::<f64>() >= r.prob {
            return None;
        }
        self.stats.reordered_pkts += 1;
        let frac = self.rng.random::<f64>();
        Some(Dur::from_secs_f64(
            (frac * r.max_extra.as_secs_f64()).max(1e-9),
        ))
    }

    /// Maps an ACK's release time through any active compression episode:
    /// ACKs inside a hold window are deferred to the window's end. `t` is
    /// the release time the noise model already produced; the result is
    /// `>= t`. Draws one exponential per episode start, nothing otherwise.
    pub fn ack_release(&mut self, t: Time) -> Time {
        let Some(a) = &mut self.ack else {
            return t;
        };
        if t >= a.hold_until && t >= a.next_episode_at {
            // Start a new episode at this ACK; schedule the one after.
            a.hold_until = t + a.cfg.hold;
            let gap = dist::exponential(&mut self.rng, a.cfg.every.as_secs_f64());
            let gap = Dur::from_secs_f64(gap.max(a.cfg.hold.as_secs_f64()));
            a.next_episode_at = t + gap;
        }
        if t < a.hold_until {
            self.stats.compressed_acks += 1;
            a.hold_until
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_order_is_kept() {
        let s = FaultSchedule::new()
            .bandwidth_step(Dur::from_secs(5), 10.0)
            .rtt_step(Dur::from_secs(8), Dur::from_millis(90))
            .outage(Dur::from_secs(10), Dur::from_secs(2));
        assert_eq!(s.link_events.len(), 4);
        assert_eq!(
            s.link_events[0],
            (Dur::from_secs(5), LinkChange::Bandwidth(10.0))
        );
        assert_eq!(s.link_events[2], (Dur::from_secs(10), LinkChange::Down));
        assert_eq!(s.link_events[3], (Dur::from_secs(12), LinkChange::Up));
        assert!(!s.is_empty());
        assert!(FaultSchedule::new().is_empty());
    }

    #[test]
    fn flapping_expands_to_down_up_pairs() {
        let s = FaultSchedule::new().flapping(
            Dur::from_secs(2),
            Dur::from_secs(1),
            Dur::from_secs(3),
            2,
        );
        assert_eq!(
            s.link_events,
            vec![
                (Dur::from_secs(2), LinkChange::Down),
                (Dur::from_secs(3), LinkChange::Up),
                (Dur::from_secs(6), LinkChange::Down),
                (Dur::from_secs(7), LinkChange::Up),
            ]
        );
    }

    #[test]
    fn bandwidth_trace_expands_to_steps() {
        let s = FaultSchedule::new()
            .bandwidth_trace([(Dur::from_secs(1), 20.0), (Dur::from_secs(2), 5.0)]);
        assert_eq!(s.link_events.len(), 2);
        assert_eq!(
            s.link_events[1],
            (Dur::from_secs(2), LinkChange::Bandwidth(5.0))
        );
    }

    #[test]
    fn ge_chain_produces_bursty_losses() {
        let sched = FaultSchedule::new().with_burst_loss(GilbertElliott {
            p_enter: 0.01,
            p_exit: 0.05,
            loss_good: 0.0,
            loss_bad: 0.5,
        });
        let mut f = FaultState::new(&sched, 7);
        let mut losses = 0u64;
        let mut episodes = 0u64;
        for _ in 0..100_000 {
            let v = f.wire_loss();
            if v.lost {
                losses += 1;
            }
            if v.burst_started.is_some() {
                episodes += 1;
            }
        }
        assert_eq!(f.stats.burst_losses, losses);
        assert_eq!(f.stats.loss_episodes, episodes);
        assert!(episodes > 100, "episodes = {episodes}");
        // Stationary bad fraction = p_enter/(p_enter+p_exit) = 1/6; loss
        // rate ≈ 1/6 * 0.5 ≈ 8.3%. Allow wide slack.
        let rate = losses as f64 / 100_000.0;
        assert!((0.05..0.12).contains(&rate), "loss rate = {rate}");
    }

    #[test]
    fn outage_freezes_chain_and_drops_everything() {
        let sched = FaultSchedule::new().with_burst_loss(GilbertElliott::default());
        let mut f = FaultState::new(&sched, 1);
        f.down = true;
        for _ in 0..100 {
            assert!(f.wire_loss().lost);
        }
        assert_eq!(f.stats.outage_drops, 100);
        assert_eq!(f.stats.burst_losses, 0);
    }

    #[test]
    fn reorder_draws_bounded_extras() {
        let sched = FaultSchedule::new().with_reorder(ReorderConfig {
            prob: 0.5,
            max_extra: Dur::from_millis(20),
        });
        let mut f = FaultState::new(&sched, 3);
        let mut hits = 0;
        for _ in 0..10_000 {
            if let Some(extra) = f.reorder_extra() {
                hits += 1;
                assert!(extra > Dur::ZERO && extra <= Dur::from_millis(20));
            }
        }
        assert_eq!(f.stats.reordered_pkts, hits);
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn ack_compression_holds_then_releases() {
        let sched = FaultSchedule::new().with_ack_compression(AckCompression {
            every: Dur::from_millis(500),
            hold: Dur::from_millis(100),
        });
        let mut f = FaultState::new(&sched, 9);
        // First ACK starts an episode: held to the end of the window.
        let r0 = f.ack_release(Time::from_millis(10));
        assert_eq!(r0, Time::from_millis(110));
        // An ACK inside the window is held to the same instant.
        let r1 = f.ack_release(Time::from_millis(50));
        assert_eq!(r1, Time::from_millis(110));
        assert_eq!(f.stats.compressed_acks, 2);
        // Just after the window but before the next episode: passes through.
        let r2 = f.ack_release(Time::from_millis(120));
        assert!(r2 == Time::from_millis(120) || r2 > Time::from_millis(120));
    }

    #[test]
    fn fault_rng_is_deterministic_per_seed() {
        let sched = FaultSchedule::new()
            .with_burst_loss(GilbertElliott::default())
            .with_reorder(ReorderConfig {
                prob: 0.1,
                max_extra: Dur::from_millis(10),
            });
        let run = |seed| {
            let mut f = FaultState::new(&sched, seed);
            let mut sig = Vec::new();
            for _ in 0..1000 {
                sig.push(f.wire_loss().lost);
                sig.push(f.reorder_extra().is_some());
            }
            (sig, f.stats)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }
}
