//! Deterministic random-distribution helpers.
//!
//! The simulator needs exponential interarrivals (Poisson cross-traffic,
//! Fig. 2), Gaussian latency jitter, and heavy-tailed RTT spikes (the WiFi
//! noise model of §6.2.1). To keep the dependency footprint to `rand` alone,
//! the samplers are implemented here from uniform variates.

use rand::RngExt as Rng;

/// Samples an exponential variate with the given mean (inverse rate).
///
/// # Panics
/// Panics in debug builds if `mean` is not positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0 && mean.is_finite());
    // Inverse-CDF sampling; 1 - U avoids ln(0).
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 away from zero to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0);
    mean + std_dev * standard_normal(rng)
}

/// Samples a Pareto variate with minimum `scale` and shape `alpha`.
///
/// Heavy-tailed (`alpha` close to 1 gives very long tails); used for the
/// occasional tens-of-milliseconds RTT spikes the paper observed on real
/// WiFi.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64) -> f64 {
    debug_assert!(scale > 0.0 && alpha > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>();
    scale / u.powf(1.0 / alpha)
}

/// Samples an integer uniformly from `[lo, hi]` (inclusive).
pub fn uniform_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 0.5) >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_has_heavy_tail() {
        let mut r = rng();
        let n = 50_000;
        let big = (0..n).filter(|_| pareto(&mut r, 1.0, 1.0) > 10.0).count() as f64 / n as f64;
        // P(X > 10) = 1/10 for alpha = 1.
        assert!((big - 0.1).abs() < 0.01, "tail fraction = {big}");
    }

    #[test]
    fn uniform_inclusive_covers_bounds() {
        let mut r = rng();
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = uniform_inclusive(&mut r, 3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(exponential(&mut a, 1.0), exponential(&mut b, 1.0));
        }
    }
}
