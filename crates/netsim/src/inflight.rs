//! O(1) in-flight packet tracking for the per-ACK hot path.
//!
//! The engine assigns sequence numbers monotonically and the simulated path
//! never reorders a flow's packets, so the set of outstanding packets is
//! always a contiguous run of sequence numbers with holes where packets were
//! already acknowledged or declared lost. [`InflightTracker`] exploits that:
//! it is a `VecDeque` ring indexed by `seq - head_seq`, where a slot is
//! `None` once its packet has been removed. Every operation the engine needs
//! — insert at the tail, remove an arbitrary ACKed sequence, read/pop the
//! oldest outstanding packet — is O(1) (amortized), where the `BTreeMap` it
//! replaces paid O(log n) per ACK plus allocator traffic per node.
//!
//! Invariant: when the tracker is non-empty, the front slot is `Some` (front
//! holes are trimmed on removal), so the oldest outstanding packet is always
//! directly readable.

use proteus_transport::{SeqNr, Time};
use std::collections::VecDeque;

/// One outstanding packet: when it was sent and how big it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightPkt {
    /// Transmission time.
    pub sent_at: Time,
    /// Packet size, bytes.
    pub bytes: u64,
}

/// Seq-indexed ring buffer of outstanding packets (see module docs).
#[derive(Debug, Clone, Default)]
pub struct InflightTracker {
    /// Slot `i` holds the packet with sequence number `head_seq + i`;
    /// `None` marks a packet already removed (ACKed or declared lost).
    slots: VecDeque<Option<InflightPkt>>,
    /// Sequence number of `slots[0]`.
    head_seq: SeqNr,
    /// Number of `Some` slots.
    live: usize,
}

impl InflightTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outstanding packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are outstanding.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Records a transmission. Sequence numbers must be non-decreasing
    /// across calls and unused; the engine hands out `next_seq++` so both
    /// hold by construction. Gaps (sequence numbers skipped entirely) are
    /// tolerated and treated as already removed.
    pub fn insert(&mut self, seq: SeqNr, sent_at: Time, bytes: u64) {
        if self.slots.is_empty() {
            self.head_seq = seq;
        }
        let idx = (seq - self.head_seq) as usize;
        debug_assert!(
            idx >= self.slots.len(),
            "sequence numbers must be inserted in increasing order"
        );
        while self.slots.len() < idx {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(InflightPkt { sent_at, bytes }));
        self.live += 1;
    }

    /// Removes and returns the packet with sequence number `seq`, if it is
    /// still outstanding.
    pub fn remove(&mut self, seq: SeqNr) -> Option<InflightPkt> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        if idx >= self.slots.len() {
            return None;
        }
        let taken = self.slots[idx].take();
        if taken.is_some() {
            self.live -= 1;
            if idx == 0 {
                self.trim_front();
            }
        }
        taken
    }

    /// The oldest outstanding packet, if any.
    pub fn front(&self) -> Option<(SeqNr, InflightPkt)> {
        let pkt = (*self.slots.front()?).expect("front slot is live");
        Some((self.head_seq, pkt))
    }

    /// Removes and returns the oldest outstanding packet.
    pub fn pop_front(&mut self) -> Option<(SeqNr, InflightPkt)> {
        let front = self.front()?;
        self.slots[0] = None;
        self.live -= 1;
        self.trim_front();
        Some(front)
    }

    /// Drops leading holes so the front slot is live again (or the ring is
    /// empty). Amortized O(1): every slot is pushed and popped once.
    fn trim_front(&mut self) {
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.head_seq += 1;
        }
        if self.slots.is_empty() {
            debug_assert_eq!(self.live, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ms: u64, bytes: u64) -> InflightPkt {
        InflightPkt {
            sent_at: Time::from_millis(ms),
            bytes,
        }
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut t = InflightTracker::new();
        assert!(t.is_empty());
        t.insert(0, Time::from_millis(1), 1500);
        t.insert(1, Time::from_millis(2), 1000);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(0), Some(pkt(1, 1500)));
        assert_eq!(t.remove(0), None, "double-remove misses");
        assert_eq!(t.remove(1), Some(pkt(2, 1000)));
        assert!(t.is_empty());
    }

    #[test]
    fn front_skips_removed_holes() {
        let mut t = InflightTracker::new();
        for s in 0..5 {
            t.insert(s, Time::from_millis(s), 100);
        }
        // Punch holes at the front and middle.
        t.remove(0);
        t.remove(2);
        assert_eq!(t.front(), Some((1, pkt(1, 100))));
        t.remove(1);
        assert_eq!(t.front(), Some((3, pkt(3, 100))));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pop_front_drains_in_seq_order() {
        let mut t = InflightTracker::new();
        for s in 10..15 {
            t.insert(s, Time::from_millis(s), 100);
        }
        t.remove(12);
        let drained: Vec<SeqNr> = std::iter::from_fn(|| t.pop_front().map(|(s, _)| s)).collect();
        assert_eq!(drained, vec![10, 11, 13, 14]);
        assert!(t.is_empty());
    }

    #[test]
    fn reuse_after_full_drain() {
        let mut t = InflightTracker::new();
        t.insert(0, Time::ZERO, 1);
        t.remove(0);
        // Ring empty; head re-anchors at the next insert even if seqs jumped.
        t.insert(7, Time::from_millis(7), 2);
        assert_eq!(t.front(), Some((7, pkt(7, 2))));
    }

    #[test]
    fn out_of_range_removals_miss() {
        let mut t = InflightTracker::new();
        t.insert(5, Time::ZERO, 1);
        assert_eq!(t.remove(4), None, "below head");
        assert_eq!(t.remove(6), None, "beyond tail");
        assert_eq!(t.len(), 1);
    }
}
