//! Multi-bottleneck topologies: an ordered set of links that flows cross
//! hop-by-hop.
//!
//! The paper evaluates Proteus on a single dumbbell; real harm/fairness
//! questions (parking-lot fairness, RTT unfairness, a scavenger crossing two
//! bottlenecks) need more than one queue. A [`Topology`] is the minimal
//! generalization: a list of [`LinkSpec`]s indexed by [`LinkId`], with each
//! flow declaring the sequence of links it traverses via
//! [`FlowSpec::with_path`]. Packets are serviced by every queue on their
//! path in order; ACKs return over the reverse path as a single aggregate
//! propagation delay (see DESIGN.md §4g).
//!
//! Determinism rules (same discipline as [`FaultSchedule`]/churn):
//!
//! * Link ids are indices into [`Topology::links`]; iteration is always in
//!   id order, so results are independent of construction style.
//! * Each link's fault layer draws from its own salted RNG stream
//!   (`seed ^ link_id · STRIDE`, zero salt at link 0), so a single-link
//!   topology is byte-identical to the legacy dumbbell and adding a
//!   schedule on link *k* never perturbs link *j*'s stream.
//! * Per-packet processes (random loss, latency noise, reordering) are
//!   applied per hop, in hop order, from the same RNGs as before — a
//!   one-link path performs exactly the legacy draw sequence.
//!
//! [`FlowSpec::with_path`]: crate::scenario::FlowSpec::with_path
//! [`FaultSchedule`]: crate::fault::FaultSchedule

use crate::fault::FaultSchedule;
use crate::scenario::LinkSpec;

/// Identifier of a link inside a [`Topology`]: its index in
/// [`Topology::links`].
pub type LinkId = u16;

/// An ordered set of bottleneck links plus optional per-link fault
/// schedules.
///
/// The default flow path crosses *all* links in id order (a chain); flows
/// may restrict themselves to any duplicate-free subsequence with
/// [`FlowSpec::with_path`](crate::scenario::FlowSpec::with_path). A
/// parking-lot is simply N identical links with N single-link local flows
/// and one all-links through flow.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The links, indexed by [`LinkId`].
    pub links: Vec<LinkSpec>,
    /// Optional fault schedule per link (parallel to `links`).
    pub faults: Vec<Option<FaultSchedule>>,
}

impl Topology {
    /// A one-link topology — the legacy dumbbell. Scenarios built this way
    /// are byte-identical to the pre-topology engine.
    pub fn single(link: LinkSpec) -> Self {
        Self::chain([link])
    }

    /// A chain of links crossed in order by default-path flows.
    ///
    /// # Panics
    /// Panics if `links` is empty or longer than [`LinkId`] can index.
    pub fn chain(links: impl IntoIterator<Item = LinkSpec>) -> Self {
        let links: Vec<LinkSpec> = links.into_iter().collect();
        assert!(!links.is_empty(), "a topology needs at least one link");
        assert!(
            links.len() <= LinkId::MAX as usize + 1,
            "too many links for u16 link ids"
        );
        let faults = vec![None; links.len()];
        Self { links, faults }
    }

    /// `n` copies of the same link — the classic parking-lot backbone
    /// (pair with `n` single-link flows plus one all-links flow).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn parking_lot(n: usize, link: LinkSpec) -> Self {
        assert!(n > 0, "a parking lot needs at least one link");
        Self::chain(std::iter::repeat_n(link, n))
    }

    /// Attach a fault schedule to one link. An empty schedule is
    /// normalized away so it cannot perturb determinism or the fused wire
    /// path. `Topology::single(l).with_faults(0, s)` is byte-identical to
    /// the legacy `Scenario::with_faults(s)`.
    ///
    /// # Panics
    /// Panics if `link` is out of range or already has a schedule.
    pub fn with_faults(mut self, link: LinkId, sched: FaultSchedule) -> Self {
        let li = link as usize;
        assert!(li < self.links.len(), "link {link} not in topology");
        assert!(
            self.faults[li].is_none(),
            "link {link} already has a fault schedule"
        );
        if !sched.is_empty() {
            self.faults[li] = Some(sched);
        }
        self
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Always `false` — construction rejects empty topologies.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The default path: every link in id order.
    pub fn full_path(&self) -> Vec<LinkId> {
        (0..self.links.len() as LinkId).collect()
    }

    /// Validate a flow path against this topology: non-empty, in range,
    /// duplicate-free. Returns an error message describing the violation.
    pub fn check_path(&self, path: &[LinkId]) -> Result<(), String> {
        if path.is_empty() {
            return Err("path must name at least one link".into());
        }
        for (i, &l) in path.iter().enumerate() {
            if l as usize >= self.links.len() {
                return Err(format!(
                    "path names link {l} but topology has {} links",
                    self.links.len()
                ));
            }
            if path[..i].contains(&l) {
                return Err(format!("path visits link {l} twice"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_transport::Dur;

    fn link() -> LinkSpec {
        LinkSpec::new(10.0, Dur::from_millis(20), 100_000)
    }

    #[test]
    fn single_is_one_link_chain() {
        let t = Topology::single(link());
        assert_eq!(t.len(), 1);
        assert_eq!(t.full_path(), vec![0]);
        assert!(!t.is_empty());
    }

    #[test]
    fn parking_lot_replicates() {
        let t = Topology::parking_lot(3, link());
        assert_eq!(t.len(), 3);
        assert_eq!(t.full_path(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_fault_schedule_is_normalized_away() {
        let t = Topology::single(link()).with_faults(0, FaultSchedule::default());
        assert!(t.faults[0].is_none());
        let t = Topology::single(link()).with_faults(
            0,
            FaultSchedule::default().outage(Dur::from_secs(1), Dur::from_secs(2)),
        );
        assert!(t.faults[0].is_some());
    }

    #[test]
    #[should_panic(expected = "already has a fault schedule")]
    fn double_fault_attachment_panics() {
        let s = FaultSchedule::default().outage(Dur::from_secs(1), Dur::from_secs(2));
        let _ = Topology::single(link())
            .with_faults(0, s.clone())
            .with_faults(0, s);
    }

    #[test]
    fn path_validation() {
        let t = Topology::parking_lot(2, link());
        assert!(t.check_path(&[0]).is_ok());
        assert!(t.check_path(&[1, 0]).is_ok());
        assert!(t.check_path(&[]).is_err());
        assert!(t.check_path(&[2]).is_err());
        assert!(t.check_path(&[0, 0]).is_err());
    }
}
