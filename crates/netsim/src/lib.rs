//! Deterministic discrete-event network simulator for the PCC Proteus
//! reproduction.
//!
//! The paper evaluates congestion controllers on Emulab dumbbells and live
//! WiFi paths; this crate substitutes a packet-level simulation of the same
//! topology (see DESIGN.md §2):
//!
//! * [`BottleneckLink`] — fixed-rate FIFO tail-drop queue,
//! * [`NoiseConfig`] — latency-noise models (clean, Gaussian, WiFi-like),
//! * [`FaultSchedule`] — deterministic fault injection (time-varying
//!   bandwidth/RTT, outages, bursty loss, reordering, ACK compression),
//! * [`Topology`] — multi-bottleneck link DAGs with per-flow paths
//!   (parking lot, RTT-unfairness chains),
//! * [`Scenario`]/[`FlowSpec`]/[`CrossTrafficSpec`] — declarative experiment
//!   descriptions,
//! * [`Sim`]/[`run`] — the event engine driving [`CongestionControl`]
//!   implementations,
//! * [`SimResult`]/[`FlowMetrics`] — per-run measurements.
//!
//! [`CongestionControl`]: proteus_transport::CongestionControl
//!
//! # Example: a fixed-window flow on the paper's default bottleneck
//!
//! ```
//! use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
//! use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};
//!
//! struct FixedWindow;
//! impl CongestionControl for FixedWindow {
//!     fn name(&self) -> &str { "fixed" }
//!     fn on_ack(&mut self, _: Time, _: &AckInfo) {}
//!     fn on_loss(&mut self, _: Time, _: &LossInfo) {}
//!     fn pacing_rate(&self) -> Option<f64> { None }
//!     fn cwnd_bytes(&self) -> u64 { 375_000 } // 2 BDP
//! }
//!
//! let link = LinkSpec::paper_default(); // 50 Mbps, 30 ms, 375 KB
//! let result = run(Scenario::new(link, Dur::from_secs(5))
//!     .flow(FlowSpec::bulk("demo", Dur::ZERO, || Box::new(FixedWindow))));
//! let mbps = result.flows[0]
//!     .throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(5.0));
//! assert!(mbps > 45.0, "a 2-BDP window saturates the link: {mbps}");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dist;
pub mod engine;
pub mod fault;
mod flows;
pub mod inflight;
pub mod link;
pub mod metrics;
pub mod noise;
pub mod scenario;
pub mod sched;
pub mod topology;

pub use engine::{run, take_session_event_totals, SessionEventTotals, Sim, WirePath};
pub use fault::{
    AckCompression, FaultSchedule, FaultStats, GilbertElliott, LinkChange, ReorderConfig,
};
pub use inflight::{InflightPkt, InflightTracker};
pub use link::{BottleneckLink, Offer};
pub use metrics::{
    EventStats, FlowMetrics, LinkSummary, MediaMetrics, SimResult, TraceEvent, EVENT_KIND_NAMES,
};
pub use noise::{NoiseConfig, WifiNoiseConfig};
pub use scenario::{
    CcBuilder, ChurnClass, ChurnSpec, CrossTrafficSpec, FlowSpec, LinkSpec, Scenario,
};
pub use sched::Scheduler;
pub use topology::{LinkId, Topology};
