//! Event schedulers: a hierarchical timing wheel and a binary-heap reference.
//!
//! The engine orders events by `(time, sequence)` — earliest time first,
//! ties broken by push order (the monotone sequence number the engine
//! assigns on every push). PR 2 documented why this total order is
//! load-bearing: same-timestamp tie order decides which flow acts first,
//! so any scheduler swap must reproduce it *exactly* or every committed
//! result changes. Both implementations here pop in that exact order;
//! [`TimingWheel`] is the default, [`HeapQueue`] is kept as the executable
//! reference for equivalence tests and before/after benchmarks
//! (`scale/sched_*`).
//!
//! # Timing-wheel layout
//!
//! A hierarchical wheel with [`LEVELS`] levels of [`SLOTS`] slots each.
//! Level-0 slots are [`GRANULARITY_NS`] wide (2^14 ns ≈ 16.4 µs); each
//! higher level's slots are `SLOTS`× wider, so the levels span ≈ 4.2 ms,
//! 1.07 s, 4.6 min and 19.5 h of future time. Events beyond the top level
//! land in an unsorted overflow list that is redistributed when the wheel
//! reaches it. Pushes append to a slot's `Vec` in O(1); occupancy bitmaps
//! (one `u64` word per 64 slots) let the wheel skip empty slots without
//! visiting them.
//!
//! Draining preserves the exact `(time, seq)` order: when the wheel
//! advances, it repeatedly picks the *earliest-starting* occupied slot
//! across all levels (ties prefer the higher level, which must cascade its
//! contents down before a lower slot of the same start may drain), cascades
//! higher-level slots toward level 0, and finally moves one level-0 slot
//! into the `current` min-heap ordered by `(time, seq)`. Events pushed at
//! an instant the wheel has already advanced into (common: a dispatched
//! event scheduling follow-ups "now") land directly in `current`, which
//! keeps intra-slot ordering exact. Because slots partition time and
//! `current` is drained fully before the wheel advances past its slot, the
//! pop sequence is globally sorted by `(time, seq)` — byte-identical to
//! the binary heap's.

use proteus_transport::Time;

/// log2 of the level-0 slot width in nanoseconds (2^14 ns ≈ 16.4 µs).
pub const GRANULARITY_BITS: u32 = 14;
/// Level-0 slot width in nanoseconds.
pub const GRANULARITY_NS: u64 = 1 << GRANULARITY_BITS;
/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond the top level events overflow into an
/// unsorted list that is redistributed when reached.
pub const LEVELS: usize = 4;
/// Bitmap words per level (`SLOTS / 64`).
const WORDS: usize = SLOTS / 64;

/// One scheduled entry.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Which scheduler implementation a scenario runs on.
///
/// [`Scheduler::Wheel`] is the default; [`Scheduler::Heap`] keeps the
/// original `BinaryHeap` scheduler available as an executable reference so
/// tests can assert the two produce identical results and benches can
/// measure the before/after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Hierarchical timing wheel (default).
    #[default]
    Wheel,
    /// Global binary heap (reference implementation).
    Heap,
}

/// Event queue facade over the two scheduler implementations; the engine
/// holds one of these and pays a single predictable branch per operation.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Timing-wheel backed queue.
    Wheel(TimingWheel<T>),
    /// Binary-heap backed queue.
    Heap(HeapQueue<T>),
}

impl<T> EventQueue<T> {
    /// Creates a queue of the given kind, pre-sized for `capacity` events
    /// (derived by the engine from the scenario's flow count and fault
    /// schedule — see `Sim::new`). Capacity is an initial reservation only:
    /// both implementations grow without bound and never drop events.
    pub fn new(kind: Scheduler, capacity: usize) -> Self {
        match kind {
            Scheduler::Wheel => EventQueue::Wheel(TimingWheel::with_capacity(capacity)),
            Scheduler::Heap => EventQueue::Heap(HeapQueue::with_capacity(capacity)),
        }
    }

    /// Schedules `item` at `(at, seq)`.
    #[inline]
    pub fn push(&mut self, at: Time, seq: u64, item: T) {
        match self {
            EventQueue::Wheel(w) => w.push(at, seq, item),
            EventQueue::Heap(h) => h.push(at, seq, item),
        }
    }

    /// Pops the earliest `(at, seq)` entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    /// The `(at, seq)` key of the entry [`EventQueue::pop`] would return,
    /// without removing it. `&mut` because the wheel may need to advance to
    /// the next occupied slot to learn its minimum; advancing early is
    /// order-neutral (later pushes inside the drained span land in the
    /// `current` heap exactly as they would have on the pop itself).
    #[inline]
    pub fn peek(&mut self) -> Option<(Time, u64)> {
        match self {
            EventQueue::Wheel(w) => w.peek(),
            EventQueue::Heap(h) => h.peek(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hierarchical timing wheel (see the module docs for the layout and the
/// ordering argument). Pops entries in exact `(time, seq)` order.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// `slots[level][slot]` — unsorted entries of one slot.
    slots: Vec<Vec<Vec<Entry<T>>>>,
    /// Occupancy bitmaps, one `[u64; WORDS]` per level.
    occ: Vec<[u64; WORDS]>,
    /// Min-heap on `(at, seq)` holding the slot currently being drained
    /// plus any events pushed inside its span.
    current: Vec<Entry<T>>,
    /// Exclusive end of the drained region: every pending event with
    /// `at < cur_end` is in `current`; everything in the wheel slots or the
    /// overflow list is at `>= cur_end`. Monotone non-decreasing.
    cur_end: u64,
    /// Events beyond the top level's span.
    overflow: Vec<Entry<T>>,
    len: usize,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel pre-sized so that `capacity` same-instant events
    /// (the worst case: a population's `FlowStart` burst at t=0) fit in the
    /// drain heap without regrowth.
    pub fn with_capacity(capacity: usize) -> Self {
        TimingWheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occ: vec![[0u64; WORDS]; LEVELS],
            current: Vec::with_capacity(capacity),
            cur_end: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` at `(at, seq)`. O(1): one comparison against the
    /// drain span, at most [`LEVELS`] window checks, one `Vec` push.
    pub fn push(&mut self, at: Time, seq: u64, item: T) {
        self.len += 1;
        let e = Entry {
            at: at.as_nanos(),
            seq,
            item,
        };
        if e.at < self.cur_end {
            heap_push(&mut self.current, e);
        } else {
            self.place(e);
        }
    }

    /// Pops the earliest `(at, seq)` entry.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        let e = heap_pop(&mut self.current).expect("advance() filled current");
        self.len -= 1;
        Some((Time::from_nanos(e.at), e.seq, e.item))
    }

    /// The `(at, seq)` key the next [`TimingWheel::pop`] will return, without
    /// removing the entry. May advance the wheel to the next occupied slot
    /// (filling `current`), which is exactly the state `pop` would have
    /// produced anyway.
    pub fn peek(&mut self) -> Option<(Time, u64)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        let e = &self.current[0];
        Some((Time::from_nanos(e.at), e.seq))
    }

    /// Files an entry with `at >= cur_end` into the wheel: the first level
    /// whose active window covers it, else overflow.
    fn place(&mut self, e: Entry<T>) {
        debug_assert!(e.at >= self.cur_end);
        for level in 0..LEVELS {
            let shift = GRANULARITY_BITS + SLOT_BITS * level as u32;
            // Window: absolute slot indices [cur_end >> shift, + SLOTS).
            if (e.at >> shift) - (self.cur_end >> shift) < SLOTS as u64 {
                let slot = (e.at >> shift) as usize & (SLOTS - 1);
                self.slots[level][slot].push(e);
                self.occ[level][slot >> 6] |= 1 << (slot & 63);
                return;
            }
        }
        self.overflow.push(e);
    }

    /// First occupied slot of `level` at absolute index `>= from` within
    /// the level's `SLOTS`-wide window, as an absolute index.
    fn next_occupied(&self, level: usize, from: u64) -> Option<u64> {
        let occ = &self.occ[level];
        let base = from as usize & (SLOTS - 1);
        let mut scanned = 0usize; // logical positions examined so far
        while scanned < SLOTS {
            let bit = (base + scanned) & (SLOTS - 1);
            let hits = occ[bit >> 6] & (!0u64 << (bit & 63));
            if hits != 0 {
                let slot = (bit & !63) + hits.trailing_zeros() as usize;
                let off = scanned + (slot - bit);
                if off < SLOTS {
                    return Some(from + off as u64);
                }
                // The set bit maps past the window's wrap point — i.e. to a
                // logical position scanned at the start; unreachable for
                // in-window slots, kept as a defensive guard.
            }
            scanned += 64 - (bit & 63);
        }
        None
    }

    /// Advances the wheel until `current` holds the next slot's entries.
    /// Returns false when the wheel is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            if self.len == 0 {
                return false;
            }
            // Earliest-starting occupied slot across levels; on equal
            // starts the *higher* level wins so its contents cascade down
            // before the lower slot of the same start drains.
            let mut best: Option<(usize, u64, u64)> = None; // (level, abs, start)
            for level in (0..LEVELS).rev() {
                let shift = GRANULARITY_BITS + SLOT_BITS * level as u32;
                if let Some(abs) = self.next_occupied(level, self.cur_end >> shift) {
                    let start = abs << shift;
                    if best.is_none_or(|(_, _, s)| start < s) {
                        best = Some((level, abs, start));
                    }
                }
            }
            match best {
                Some((0, abs, start)) => {
                    // Drain this slot: move its entries into the (empty)
                    // current heap, reusing both allocations via swap.
                    let slot = abs as usize & (SLOTS - 1);
                    std::mem::swap(&mut self.current, &mut self.slots[0][slot]);
                    self.occ[0][slot >> 6] &= !(1 << (slot & 63));
                    heapify(&mut self.current);
                    self.cur_end = start.saturating_add(GRANULARITY_NS);
                    debug_assert!(!self.current.is_empty());
                    return true;
                }
                Some((level, abs, start)) => {
                    // Cascade: redistribute the slot one or more levels
                    // down (never backward: `cur_end` stays monotone).
                    let slot = abs as usize & (SLOTS - 1);
                    let entries = std::mem::take(&mut self.slots[level][slot]);
                    self.occ[level][slot >> 6] &= !(1 << (slot & 63));
                    self.cur_end = self.cur_end.max(start);
                    for e in entries {
                        self.place(e);
                    }
                }
                None => {
                    // Levels exhausted; jump to the overflow region and
                    // redistribute it (entries still beyond the top span
                    // re-overflow and are reached on a later jump).
                    debug_assert!(!self.overflow.is_empty());
                    let min_at = self
                        .overflow
                        .iter()
                        .map(|e| e.at)
                        .min()
                        .expect("overflow non-empty");
                    self.cur_end = self.cur_end.max(min_at);
                    let entries = std::mem::take(&mut self.overflow);
                    for e in entries {
                        self.place(e);
                    }
                }
            }
        }
    }
}

/// Binary-heap scheduler: the engine's original implementation, kept as
/// the executable ordering reference. Pops entries in `(time, seq)` order.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: Vec<Entry<T>>,
}

impl<T> HeapQueue<T> {
    /// Creates a heap with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: Vec::with_capacity(capacity),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `item` at `(at, seq)`.
    pub fn push(&mut self, at: Time, seq: u64, item: T) {
        heap_push(
            &mut self.heap,
            Entry {
                at: at.as_nanos(),
                seq,
                item,
            },
        );
    }

    /// Pops the earliest `(at, seq)` entry.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        let e = heap_pop(&mut self.heap)?;
        Some((Time::from_nanos(e.at), e.seq, e.item))
    }

    /// The `(at, seq)` key the next [`HeapQueue::pop`] will return, without
    /// removing the entry (`&mut` only to match the wheel's signature).
    pub fn peek(&mut self) -> Option<(Time, u64)> {
        self.heap.first().map(|e| (Time::from_nanos(e.at), e.seq))
    }
}

// ---- shared array-backed min-heap on (at, seq) ----

#[inline]
fn before<T>(a: &Entry<T>, b: &Entry<T>) -> bool {
    (a.at, a.seq) < (b.at, b.seq)
}

fn heap_push<T>(heap: &mut Vec<Entry<T>>, e: Entry<T>) {
    heap.push(e);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if before(&heap[i], &heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_pop<T>(heap: &mut Vec<Entry<T>>) -> Option<Entry<T>> {
    if heap.is_empty() {
        return None;
    }
    let last = heap.len() - 1;
    heap.swap(0, last);
    let e = heap.pop();
    sift_down(heap, 0);
    e
}

fn sift_down<T>(heap: &mut [Entry<T>], mut i: usize) {
    let n = heap.len();
    loop {
        let l = 2 * i + 1;
        let r = l + 1;
        let mut m = i;
        if l < n && before(&heap[l], &heap[m]) {
            m = l;
        }
        if r < n && before(&heap[r], &heap[m]) {
            m = r;
        }
        if m == i {
            return;
        }
        heap.swap(i, m);
        i = m;
    }
}

/// Floyd heap construction: O(n) from an unsorted slot.
fn heapify<T>(heap: &mut [Entry<T>]) {
    for i in (0..heap.len() / 2).rev() {
        sift_down(heap, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = q.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::with_capacity(4);
        w.push(Time::from_nanos(500), 3, 0);
        w.push(Time::from_nanos(100), 1, 1);
        w.push(Time::from_nanos(100), 2, 2); // same-instant tie: seq order
        w.push(Time::from_nanos(100), 0, 3);
        let got = drain_all(&mut w);
        assert_eq!(
            got,
            vec![(100, 0, 3), (100, 1, 1), (100, 2, 2), (500, 3, 0)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_and_overflow_entries_pop_in_order() {
        let mut w = TimingWheel::with_capacity(4);
        // One entry per level span plus one past the top of the wheel and
        // one near the end of representable time.
        let times = [
            1u64,
            GRANULARITY_NS * SLOTS as u64 + 1,          // level 1
            GRANULARITY_NS * (SLOTS as u64).pow(2) + 1, // level 2
            GRANULARITY_NS * (SLOTS as u64).pow(3) + 1, // level 3
            GRANULARITY_NS * (SLOTS as u64).pow(4) + 1, // overflow
            u64::MAX - 7,                               // deep overflow
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(Time::from_nanos(t), i as u64, i as u32);
        }
        let got = drain_all(&mut w);
        let order: Vec<u32> = got.iter().map(|&(_, _, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(got[5].0, u64::MAX - 7);
    }

    #[test]
    fn pushes_at_current_instant_interleave_correctly() {
        // Events pushed "now" while draining a slot must honor the seq
        // tiebreak against entries already in the slot.
        let mut w = TimingWheel::with_capacity(4);
        w.push(Time::from_nanos(1000), 1, 10);
        w.push(Time::from_nanos(1000), 2, 20);
        let (t, s, v) = w.pop().unwrap();
        assert_eq!((t.as_nanos(), s, v), (1000, 1, 10));
        // Dispatch of (1000, 1) schedules follow-ups at the same instant
        // and shortly after.
        w.push(Time::from_nanos(1000), 3, 30);
        w.push(Time::from_nanos(1001), 4, 40);
        let rest = drain_all(&mut w);
        assert_eq!(rest, vec![(1000, 2, 20), (1000, 3, 30), (1001, 4, 40)]);
    }

    #[test]
    fn no_silent_cap_beyond_initial_capacity() {
        // The capacity hint is a reservation, not a limit: push far more
        // events than the initial capacity and verify nothing is dropped.
        let cap = 8;
        let mut w = TimingWheel::with_capacity(cap);
        let n = 10_000u64;
        for seq in 0..n {
            // Deterministic scatter across several level spans.
            let t = (seq * 2_654_435_761) % (GRANULARITY_NS * (SLOTS as u64).pow(2) * 3);
            w.push(Time::from_nanos(t), seq, seq as u32);
        }
        assert_eq!(w.len(), n as usize);
        let got = drain_all(&mut w);
        assert_eq!(got.len(), n as usize, "scheduler silently dropped events");
        assert!(got.windows(2).all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)));
    }

    #[test]
    fn peek_matches_pop_and_is_non_destructive() {
        for kind in [Scheduler::Wheel, Scheduler::Heap] {
            let mut q: EventQueue<u32> = EventQueue::new(kind, 4);
            assert_eq!(q.peek(), None);
            q.push(Time::from_nanos(500), 2, 20);
            q.push(Time::from_nanos(100), 1, 10);
            // Peek reports the minimum without consuming it; a push of a new
            // minimum after a peek is still observed.
            assert_eq!(q.peek(), Some((Time::from_nanos(100), 1)));
            assert_eq!(q.peek(), Some((Time::from_nanos(100), 1)));
            q.push(Time::from_nanos(50), 3, 30);
            assert_eq!(q.peek(), Some((Time::from_nanos(50), 3)));
            assert_eq!(q.pop(), Some((Time::from_nanos(50), 3, 30)));
            assert_eq!(q.pop(), Some((Time::from_nanos(100), 1, 10)));
            assert_eq!(q.peek(), Some((Time::from_nanos(500), 2)));
            assert_eq!(q.pop(), Some((Time::from_nanos(500), 2, 20)));
            assert_eq!(q.peek(), None);
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn heap_queue_matches_wheel_on_scattered_times() {
        let mut w = TimingWheel::with_capacity(16);
        let mut h = HeapQueue::with_capacity(16);
        let mut state = 0x9E37_79B9_u64;
        for seq in 0..5_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = state % 3_000_000_000; // within ~3 s
            w.push(Time::from_nanos(t), seq, seq as u32);
            h.push(Time::from_nanos(t), seq, seq as u32);
        }
        loop {
            let a = w.pop();
            let b = h.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
