//! The discrete-event simulation engine.
//!
//! One [`Sim`] executes one [`Scenario`]: flows hand MTU-sized packets to
//! the first [`BottleneckLink`] on their path; accepted packets depart
//! after queueing + serialization, cross that link's one-way propagation
//! delay (plus optional noise), and either reach the receiver (last hop,
//! `Delivery`) or are offered to the next link on the path (`HopArrival`).
//! The ACK returns over a clean reverse path whose propagation is the sum
//! of the path links' reverse halves. Senders are driven purely by events —
//! ACK arrivals, pacing timers, controller timers, retransmission timeouts
//! and application wakeups — so the whole run is a deterministic function
//! of the scenario and its seed.
//!
//! Single-link topologies (every scenario built with [`Scenario::new`])
//! reduce to the legacy dumbbell engine byte-identically: hop 0 of a
//! one-link path performs exactly the legacy operation and RNG-draw
//! sequence, no `HopArrival` events exist, and per-link fault streams use a
//! zero salt at link 0 (see DESIGN.md §4g and
//! `tests/topology_equivalence.rs`).
//!
//! Events are ordered by `(time, push sequence)` through the scheduler in
//! [`crate::sched`] (a hierarchical timing wheel by default, with the
//! reference binary heap selectable per scenario); both implementations pop
//! in exactly that total order, so results do not depend on the scheduler
//! choice.
//!
//! Loss detection mirrors TCP practice: a packet is declared lost when a
//! packet sent three or more sequence numbers later is ACKed (dup-ACK
//! threshold; the path only reorders when a [`crate::fault::FaultSchedule`]
//! injects it, in which case spurious dup-ACK losses are the intended
//! pathology), or when the RFC 6298 retransmission timeout expires without
//! progress.
//!
//! A scenario may attach a fault schedule: timed link changes arrive
//! through the same event queue (`Event::Fault`), and the stochastic fault
//! components (bursty loss, reordering, ACK compression) draw from a
//! dedicated RNG so that fault-free scenarios reproduce historical results
//! bit for bit (see `crate::fault` for the determinism rules). Poisson flow
//! churn ([`crate::scenario::ChurnSpec`]) follows the same discipline with
//! its own salted RNG stream.
//!
//! # Fused wire path
//!
//! On a clean path (no fault schedule, no latency noise) every stage of a
//! packet's wire trip is deterministic at admission, and each stage's
//! timestamps are monotone non-decreasing in admission order: departures
//! inherit the link's monotone `free_at`, deliveries add a constant forward
//! propagation, and ACK returns add a constant reverse propagation. The
//! engine exploits this by routing the per-packet
//! `QueueDrain` → `Delivery` → `AckArrival` chain through a FIFO wire ring
//! ([`WirePath::Fused`], the default) instead of the scheduler: three
//! push/pop pairs per packet become one ring slot with three cursors, and
//! the main loop merges the scheduler with the three (sorted) wire streams
//! by `(time, seq)`. Event sequence numbers are still assigned at exactly
//! the instants the staged path assigns them — two at admission, one at
//! delivery dispatch — so every dispatched event carries the identical
//! `(time, seq)` key and the total dispatch order (and with it every
//! result byte) is unchanged by construction. Scenarios with faults or
//! noise transparently fall back to the staged path — their draws are
//! RNG-order- and state-sensitive — which also remains selectable
//! explicitly ([`WirePath::Staged`]) as the executable ordering reference
//! for the equivalence suite (`tests/wire_equivalence.rs`). Multi-link
//! topologies gate fusion off the same way: per-hop admission interleaves
//! across links in ways the FIFO ring cannot express.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt as Rng, SeedableRng};

use proteus_transport::{
    AckInfo, BulkApp, Dur, FlowId, FrameRecord, LossInfo, SentPacket, SeqNr, Time,
    DEFAULT_PACKET_BYTES,
};

use crate::dist;
use crate::fault::{FaultState, LinkChange, WireLoss};
use crate::flows::FlowTable;
use crate::link::{BottleneckLink, Offer};
use crate::metrics::{EventStats, FlowMetrics, LinkSummary, SimResult, TraceEvent};
use crate::noise::{NoiseConfig, NoiseState};
use crate::scenario::{ChurnClass, Scenario};
use crate::sched::EventQueue;
use crate::topology::{LinkId, Topology};

/// Dup-ACK threshold: a packet is lost once a packet sent this many
/// sequence numbers later has been ACKed.
const REORDER_THRESHOLD: u64 = 3;
/// Minimum retransmission timeout (RFC 6298 uses 1 s; Linux uses 200 ms).
const MIN_RTO: Dur = Dur::from_millis(200);
/// Safety valve on packets transmitted within a single `try_send` call.
const MAX_BURST: usize = 100_000;
/// Headroom added to the derived initial scheduler capacity (periodic
/// samplers, cross-traffic arrivals, the first pacing/timer wave).
const QUEUE_CAPACITY_MARGIN: usize = 64;

/// Salt for the churn RNG stream: churn draws (class choice, lifetimes,
/// interarrival gaps) come from `seed ^ CHURN_SEED_SALT`, mirroring
/// [`crate::fault::FAULT_SEED_SALT`], so attaching churn to a scenario
/// leaves the main RNG's draw sequence — and with it every existing
/// result — untouched.
pub const CHURN_SEED_SALT: u64 = 0xC44E_5EED_0000_0002;

/// Per-link salt stride for fault RNG streams: link `i`'s fault draws come
/// from `seed ^ (i · LINK_FAULT_SEED_STRIDE)` (wrapping multiply; the
/// Weyl/golden-ratio constant). Link 0's salt is zero, so single-link fault
/// schedules reproduce historical results byte for byte, while every other
/// link draws from an independent stream — attaching a schedule to link *k*
/// never perturbs link *j*'s bursts or reordering.
pub const LINK_FAULT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which wire-path execution strategy a scenario runs on.
///
/// Mirrors [`crate::sched::Scheduler`]: [`WirePath::Fused`] is the default
/// optimized implementation, [`WirePath::Staged`] keeps the original
/// three-event scheduler chain available as an executable ordering
/// reference so tests can assert the two produce identical results and
/// benches can measure the before/after. Fused execution applies only when
/// the scenario has no fault schedule and no latency noise; otherwise the
/// engine transparently runs staged regardless of this setting (fault and
/// noise draws are RNG-order- and state-sensitive, exactly like the
/// `with_faults` empty-schedule normalization rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WirePath {
    /// Per-packet wire chain routed through the fused wire ring (default).
    #[default]
    Fused,
    /// Per-packet wire chain staged through the scheduler (reference).
    Staged,
}

/// Process-wide engine event totals accumulated since the last
/// [`take_session_event_totals`] drain. Mirrors
/// `proteus_runner::take_session_stats`: driver binaries that run many
/// campaigns sample the totals around each experiment to report events/sec
/// and the fused-path share without threading state through every
/// experiment function. Updated once per completed [`Sim::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionEventTotals {
    /// Events dispatched (scheduler pops plus fused wire phases).
    pub dispatched: u64,
    /// Dispatches served by the fused wire pipeline.
    pub fused: u64,
}

static SESSION_DISPATCHED: AtomicU64 = AtomicU64::new(0);
static SESSION_FUSED: AtomicU64 = AtomicU64::new(0);

/// Drains and returns the process-wide event totals of every simulation
/// completed since the previous drain (any thread).
pub fn take_session_event_totals() -> SessionEventTotals {
    SessionEventTotals {
        dispatched: SESSION_DISPATCHED.swap(0, Ordering::Relaxed),
        fused: SESSION_FUSED.swap(0, Ordering::Relaxed),
    }
}

/// A scheduled event. Fields are deliberately narrow (`u32` flow ids and
/// packet sizes) to keep entries small: the scheduler shuffles entries by
/// value on every push/pop, so entry size is directly visible in the
/// per-packet cost.
#[derive(Debug, Clone, Copy)]
enum Event {
    FlowStart(u32),
    FlowStop(u32),
    /// A packet finished serializing at link `link`: release its buffer
    /// space.
    QueueDrain {
        link: LinkId,
        bytes: u32,
    },
    /// A data packet reaches the receiver (at the queue entry's time).
    Delivery {
        flow: u32,
        seq: SeqNr,
        bytes: u32,
        sent_at: Time,
    },
    /// An ACK reaches the sender.
    AckArrival {
        flow: u32,
        seq: SeqNr,
        bytes: u32,
        sent_at: Time,
        delivered_at: Time,
    },
    /// Pace and CcTimer keep per-flow epochs and re-push on every re-arm
    /// (stale pops are filtered by epoch). A one-live-event discipline like
    /// the RTO's would be cheaper, but it assigns the surviving event a
    /// different `event_seq`, which perturbs same-timestamp tie order and
    /// breaks bit-reproducibility of committed results.
    Pace {
        flow: u32,
        epoch: u64,
    },
    CcTimer {
        flow: u32,
        epoch: u64,
    },
    Rto {
        flow: u32,
    },
    AppWake {
        flow: u32,
        epoch: u64,
    },
    SpawnCross,
    /// Next Poisson churn arrival (see [`crate::scenario::ChurnSpec`]).
    ChurnSpawn,
    QueueSample,
    /// Periodic per-flow telemetry sampling (see `Scenario::with_trace`).
    TraceSample,
    /// Apply the `idx`-th scheduled link change (see `Sim::fault_changes`).
    Fault {
        idx: u32,
    },
    /// A data packet arrives at the entry of hop `hop` of its flow's path
    /// (multi-link topologies only: hop 0 is admitted inline by `try_send`
    /// and the last hop delivers via `Delivery`, so single-link runs never
    /// schedule this).
    HopArrival {
        flow: u32,
        seq: SeqNr,
        bytes: u32,
        sent_at: Time,
        hop: u16,
    },
}

/// Index of `Event::QueueDrain` in [`crate::metrics::EVENT_KIND_NAMES`].
const K_QUEUE_DRAIN: usize = 2;
/// Index of `Event::Delivery` in [`crate::metrics::EVENT_KIND_NAMES`].
const K_DELIVERY: usize = 3;
/// Index of `Event::AckArrival` in [`crate::metrics::EVENT_KIND_NAMES`].
const K_ACK_ARRIVAL: usize = 4;
/// Index of `Event::HopArrival` in [`crate::metrics::EVENT_KIND_NAMES`].
const K_HOP_ARRIVAL: usize = 14;

impl Event {
    /// Index into [`crate::metrics::EVENT_KIND_NAMES`] for accounting.
    fn kind(&self) -> usize {
        match self {
            Event::FlowStart(_) => 0,
            Event::FlowStop(_) => 1,
            Event::QueueDrain { .. } => K_QUEUE_DRAIN,
            Event::Delivery { .. } => K_DELIVERY,
            Event::AckArrival { .. } => K_ACK_ARRIVAL,
            Event::Pace { .. } => 5,
            Event::CcTimer { .. } => 6,
            Event::Rto { .. } => 7,
            Event::AppWake { .. } => 8,
            Event::SpawnCross => 9,
            Event::ChurnSpawn => 10,
            Event::QueueSample => 11,
            Event::TraceSample => 12,
            Event::Fault { .. } => 13,
            Event::HopArrival { .. } => K_HOP_ARRIVAL,
        }
    }
}

/// One in-flight packet on the fused wire ring: every stage timestamp and
/// sequence number is fixed at admission (except the ACK pair, assigned at
/// delivery dispatch — the instant the staged path assigns it).
#[derive(Debug, Clone, Copy)]
struct WirePacket {
    flow: u32,
    bytes: u32,
    seq: SeqNr,
    sent_at: Time,
    drain_at: Time,
    deliver_at: Time,
    ack_at: Time,
    drain_seq: u64,
    deliver_seq: u64,
    ack_seq: u64,
    /// Lost to `random_loss` at admission: the packet drains the queue but
    /// never reaches the receiver (drain-only ring entry).
    lost: bool,
}

/// The fused wire pipeline: a FIFO ring of admitted packets with one cursor
/// per stage. Cursors are *absolute* admission indices (`base` counts
/// entries already popped off the front), so a packet's ring slot is
/// `abs - base`. Because every stage's timestamps are monotone in admission
/// order on a clean path, the next event of each stage is always at its
/// cursor — the three stage streams are sorted queues obtained for free.
#[derive(Debug, Default)]
struct WirePipeline {
    ring: VecDeque<WirePacket>,
    /// Packets fully retired off the front of the ring.
    base: u64,
    /// Next packet to drain the bottleneck queue.
    drain_next: u64,
    /// Next non-lost packet to reach the receiver.
    deliver_next: u64,
    /// Next delivered packet whose ACK returns (`< deliver_next` always;
    /// the ACK stream head exists only once its delivery dispatched).
    ack_next: u64,
}

impl WirePipeline {
    fn new() -> Self {
        WirePipeline {
            ring: VecDeque::with_capacity(256),
            ..Default::default()
        }
    }

    /// Absolute index one past the newest admitted packet.
    fn total(&self) -> u64 {
        self.base + self.ring.len() as u64
    }

    fn pkt(&self, abs: u64) -> &WirePacket {
        &self.ring[(abs - self.base) as usize]
    }

    fn pkt_mut(&mut self, abs: u64) -> &mut WirePacket {
        &mut self.ring[(abs - self.base) as usize]
    }

    /// Advances the deliver/ack cursors past packets that never deliver,
    /// keeping `ack_next <= deliver_next`.
    fn skip_lost(&mut self) {
        while self.deliver_next < self.total() && self.pkt(self.deliver_next).lost {
            self.deliver_next += 1;
        }
        while self.ack_next < self.deliver_next && self.pkt(self.ack_next).lost {
            self.ack_next += 1;
        }
    }

    /// Pops fully-processed packets off the front. A packet is done once it
    /// has drained and either was lost on the wire or its ACK dispatched.
    fn pop_done(&mut self) {
        while let Some(front) = self.ring.front() {
            let done_drain = self.drain_next > self.base;
            let done_ack = front.lost || self.ack_next > self.base;
            if done_drain && done_ack {
                self.ring.pop_front();
                self.base += 1;
            } else {
                break;
            }
        }
    }
}

/// Which stream the fused main loop's 4-way `(time, seq)` merge chose.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FusedSrc {
    Sched,
    Drain,
    Deliver,
    Ack,
}

struct CrossState {
    arrivals_per_sec: f64,
    size_range: (u64, u64),
    cc: proteus_transport::CcFactory,
    stop: Time,
    spawned: usize,
}

/// Runtime state of a [`crate::scenario::ChurnSpec`].
struct ChurnState {
    arrivals_per_sec: f64,
    mean_lifetime_secs: f64,
    classes: Vec<ChurnClass>,
    /// Normalized cumulative class weights for arrival sampling.
    cum_weights: Vec<f64>,
    /// Resolved per-class paths (validated against the topology at build).
    class_paths: Vec<Arc<[LinkId]>>,
    stop: Time,
    spawned: usize,
    /// Dedicated churn RNG stream (`seed ^ CHURN_SEED_SALT`).
    rng: SmallRng,
}

/// Runtime state of one topology link: its queue, propagation split,
/// per-packet wire processes and fault layer. `Sim::links[0]` of a
/// single-link topology is exactly the legacy dumbbell state.
struct LinkState {
    link: BottleneckLink,
    /// One-way forward propagation (half the link's two-way `rtt`).
    fwd_prop: Dur,
    /// One-way reverse propagation (the other half).
    rev_prop: Dur,
    /// Probability of non-congestion loss per data packet at this hop.
    random_loss: f64,
    /// Latency-noise model: applied to this hop's data deliveries, and —
    /// last hop only — to ACK releases at the receiver.
    noise: NoiseState,
    /// Fault runtime (`None` without a schedule: zero extra RNG draws).
    faults: Option<FaultState>,
    /// Configured rate before any fault-schedule changes, bits/sec.
    rate_bps: f64,
    /// Peak buffer occupancy observed at admission, bytes.
    peak_queued_bytes: u64,
}

/// The simulation engine. Construct with [`Sim::new`], execute with
/// [`Sim::run`], or use the [`run`] convenience function.
pub struct Sim {
    now: Time,
    queue: EventQueue<Event>,
    event_seq: u64,
    /// Per-link runtime state, indexed by [`LinkId`].
    links: Vec<LinkState>,
    /// The default flow path: every link in id order.
    default_path: Arc<[LinkId]>,
    flows: FlowTable,
    metrics: Vec<FlowMetrics>,
    rng: SmallRng,
    duration: Dur,
    throughput_bin: Dur,
    rtt_stride: usize,
    queue_sample_every: Option<Dur>,
    queue_samples: Vec<(f64, u64)>,
    trace_every: Option<Dur>,
    trace: Vec<TraceEvent>,
    /// Decision events drained from controllers carrying a recording
    /// `proteus-trace` sink (stays empty for untraced controllers).
    decisions: Vec<proteus_trace::FlowEvent>,
    /// Reusable drain buffer for [`Sim::drain_decisions`].
    decision_scratch: Vec<proteus_trace::DecisionEvent>,
    /// Reusable sorted-id buffer for the telemetry and decision sweeps.
    id_scratch: Vec<u32>,
    cross: Option<CrossState>,
    churn: Option<ChurnState>,
    link_rate_bps: f64,
    /// Reusable scratch for loss sweeps (dup-ACK and RTO), so the per-ACK
    /// and per-RTO paths stay allocation-free after warm-up.
    loss_scratch: Vec<(SeqNr, Time, u64)>,
    /// Reusable scratch for draining media frame records on the ACK path.
    frame_scratch: Vec<FrameRecord>,
    /// Every scheduled link change across all per-link fault schedules,
    /// indexed by `Event::Fault::idx` (pushed in link order, then schedule
    /// order — the legacy order for single-link scenarios).
    fault_changes: Vec<(LinkId, LinkChange)>,
    /// Event-queue traffic accounting (mechanics, not behavior).
    events: EventStats,
    /// Fused wire ring; `Some` iff the scenario selected [`WirePath::Fused`]
    /// and the path is clean (no faults, no noise).
    wire: Option<WirePipeline>,
}

impl Sim {
    /// Builds the engine from a scenario, consuming it.
    ///
    /// # Panics
    /// Panics if a flow or churn class declares a path that is empty, names
    /// a link outside the topology, or visits a link twice — or if a fault
    /// schedule is attached to link 0 both via `Scenario::with_faults` and
    /// `Topology::with_faults`.
    pub fn new(scenario: Scenario) -> Self {
        // Validate every declared path against the topology before
        // consuming the scenario (default paths are valid by construction).
        for spec in &scenario.flows {
            if let Some(p) = &spec.path {
                if let Err(e) = scenario.topology.check_path(p) {
                    panic!("flow {:?}: {e}", spec.name);
                }
            }
        }
        if let Some(cs) = &scenario.churn {
            for class in &cs.classes {
                if let Some(p) = &class.path {
                    if let Err(e) = scenario.topology.check_path(p) {
                        panic!("churn class {:?}: {e}", class.name);
                    }
                }
            }
        }

        let Scenario {
            topology,
            flows,
            cross_traffic,
            duration,
            seed,
            throughput_bin,
            rtt_stride,
            queue_sample_every,
            trace_every,
            faults,
            churn,
            scheduler,
            wire_path,
        } = scenario;
        let Topology {
            links: link_specs,
            faults: mut link_faults,
        } = topology;
        assert!(!link_specs.is_empty(), "topology needs at least one link");
        link_faults.resize(link_specs.len(), None);
        // The legacy `Scenario::with_faults` sugar targets link 0; merge it
        // with the per-link attachment point, rejecting double attachment.
        if let Some(sched) = faults {
            if !sched.is_empty() {
                assert!(
                    link_faults[0].is_none(),
                    "fault schedule attached to link 0 both via Scenario::with_faults \
                     and Topology::with_faults"
                );
                link_faults[0] = Some(sched);
            }
        }

        // Fusion gate: fault schedules and latency noise make wire-stage
        // draws RNG-order- and state-sensitive, and multi-link paths route
        // packets through per-hop admissions the FIFO ring cannot express,
        // so those scenarios run the staged reference path regardless of
        // the selector (the same normalization rule as `with_faults` with
        // an empty schedule).
        let fused = wire_path == WirePath::Fused
            && link_specs.len() == 1
            && link_faults.iter().all(|f| f.is_none())
            && link_specs[0].noise == NoiseConfig::None;

        // Initial scheduler capacity is derived from the scenario, not a
        // fixed constant: every static flow contributes a start (and maybe a
        // stop) event, the churn warm-start population does the same, and
        // each scheduled fault is one event. The scheduler grows beyond this
        // without dropping events (`sched` tests assert no silent cap);
        // deriving it just avoids regrowth storms at t=0 for 10k-flow runs.
        let fault_events: usize = link_faults
            .iter()
            .flatten()
            .map(|s| s.link_events.len())
            .sum();
        let churn_initial = churn.as_ref().map_or(0, |c| c.initial);
        let capacity = (flows.len() + churn_initial) * 2 + fault_events + QUEUE_CAPACITY_MARGIN;
        let flow_capacity = flows.len() + churn_initial;

        let default_path: Arc<[LinkId]> =
            (0..link_specs.len() as LinkId).collect::<Vec<_>>().into();
        let link_rate_bps = link_specs[0].rate_bps();
        let links: Vec<LinkState> = link_specs
            .iter()
            .map(|spec| {
                let half_rtt = Dur::from_nanos(spec.rtt.as_nanos() / 2);
                LinkState {
                    link: BottleneckLink::new(spec.rate_bps(), spec.buffer_bytes),
                    fwd_prop: half_rtt,
                    rev_prop: spec.rtt - half_rtt,
                    random_loss: spec.random_loss,
                    noise: spec.noise.build(),
                    faults: None,
                    rate_bps: spec.rate_bps(),
                    peak_queued_bytes: 0,
                }
            })
            .collect();

        let mut sim = Sim {
            now: Time::ZERO,
            queue: EventQueue::new(scheduler, capacity),
            event_seq: 0,
            links,
            default_path,
            flows: FlowTable::with_capacity(flow_capacity),
            metrics: Vec::with_capacity(flow_capacity),
            rng: SmallRng::seed_from_u64(seed),
            duration,
            throughput_bin,
            rtt_stride,
            queue_sample_every,
            queue_samples: Vec::new(),
            trace_every,
            trace: Vec::new(),
            decisions: Vec::new(),
            decision_scratch: Vec::new(),
            id_scratch: Vec::new(),
            cross: None,
            churn: None,
            link_rate_bps,
            loss_scratch: Vec::new(),
            frame_scratch: Vec::new(),
            fault_changes: Vec::new(),
            events: EventStats::default(),
            wire: fused.then(WirePipeline::new),
        };

        // Per-link fault runtimes: link 0 keeps the exact legacy seed (zero
        // salt — see LINK_FAULT_SEED_STRIDE) and events are pushed in link
        // order then schedule order, which for one link is the legacy push
        // order, so single-link schedules stay byte-identical.
        for (li, sched) in link_faults.iter().enumerate() {
            let Some(sched) = sched else { continue };
            sim.links[li].faults = Some(FaultState::new(
                sched,
                seed ^ (li as u64).wrapping_mul(LINK_FAULT_SEED_STRIDE),
            ));
            for &(at, change) in &sched.link_events {
                let idx = sim.fault_changes.len() as u32;
                sim.fault_changes.push((li as LinkId, change));
                sim.push(Time::ZERO + at, Event::Fault { idx });
            }
        }

        for spec in flows {
            let path: Arc<[LinkId]> = match &spec.path {
                Some(p) => Arc::from(p.as_slice()),
                None => Arc::clone(&sim.default_path),
            };
            let id = sim
                .flows
                .push_flow((spec.cc)(), (spec.app)(), spec.reliable, path);
            sim.flows.stop_at[id] = spec.stop.map(|d| Time::ZERO + d);
            sim.metrics
                .push(FlowMetrics::new(id, spec.name, throughput_bin, rtt_stride));
            sim.push(Time::ZERO + spec.start, Event::FlowStart(id as u32));
            if let Some(stop) = spec.stop {
                sim.push(Time::ZERO + stop, Event::FlowStop(id as u32));
            }
        }

        if let Some(ct) = cross_traffic {
            sim.push(Time::ZERO + ct.start, Event::SpawnCross);
            sim.cross = Some(CrossState {
                arrivals_per_sec: ct.arrivals_per_sec,
                size_range: ct.size_range,
                cc: ct.cc,
                stop: Time::ZERO + ct.stop,
                spawned: 0,
            });
        }

        if let Some(cs) = churn {
            let total: f64 = cs.classes.iter().map(|c| c.weight).sum();
            debug_assert!(total > 0.0, "churn classes need positive weight");
            let mut cum_weights = Vec::with_capacity(cs.classes.len());
            let mut acc = 0.0;
            for c in &cs.classes {
                acc += c.weight / total;
                cum_weights.push(acc);
            }
            let class_paths: Vec<Arc<[LinkId]>> = cs
                .classes
                .iter()
                .map(|c| match &c.path {
                    Some(p) => Arc::from(p.as_slice()),
                    None => Arc::clone(&sim.default_path),
                })
                .collect();
            let start = Time::ZERO + cs.start;
            sim.churn = Some(ChurnState {
                arrivals_per_sec: cs.arrivals_per_sec,
                mean_lifetime_secs: cs.mean_lifetime.as_secs_f64(),
                classes: cs.classes,
                cum_weights,
                class_paths,
                stop: Time::ZERO + cs.stop,
                spawned: 0,
                rng: SmallRng::seed_from_u64(seed ^ CHURN_SEED_SALT),
            });
            // Warm-start population: each flow draws (class, lifetime) from
            // the churn stream and starts when arrivals begin.
            for _ in 0..cs.initial {
                let (class_idx, lifetime) = sim.draw_churn();
                sim.spawn_churn_flow(class_idx, start, lifetime);
            }
            if cs.arrivals_per_sec > 0.0 && start < Time::ZERO + cs.stop {
                sim.push(start, Event::ChurnSpawn);
            }
        }

        if let Some(every) = queue_sample_every {
            sim.push(Time::ZERO + every, Event::QueueSample);
        }

        if let Some(every) = trace_every {
            sim.push(Time::ZERO + every, Event::TraceSample);
        }

        sim
    }

    fn push(&mut self, at: Time, ev: Event) {
        self.event_seq += 1;
        self.queue.push(at, self.event_seq, ev);
        self.events.pushes += 1;
        let depth = self.queue.len() as u64;
        if depth > self.events.peak_queue {
            self.events.peak_queue = depth;
        }
    }

    /// Runs the scenario to completion and returns the measurements.
    pub fn run(mut self) -> SimResult {
        let end = Time::ZERO + self.duration;
        if self.wire.is_some() {
            self.run_fused(end);
        } else {
            self.run_staged(end);
        }
        // Final decision sweep (stopped flows included), then restore
        // global timestamp order: drains interleave flows per sweep, so a
        // stable sort by time is enough to keep each flow's own order.
        self.drain_decisions();
        self.decisions.sort_by_key(|fe| fe.event.t_ns);
        SESSION_DISPATCHED.fetch_add(self.events.dispatched(), Ordering::Relaxed);
        SESSION_FUSED.fetch_add(self.events.fused, Ordering::Relaxed);
        let links: Vec<LinkSummary> = self
            .links
            .iter()
            .map(|l| LinkSummary {
                rate_bps: l.rate_bps,
                delivered_bytes: l.link.delivered_bytes(),
                accepted_pkts: l.link.accepted_pkts(),
                dropped_pkts: l.link.dropped_pkts(),
                peak_queued_bytes: l.peak_queued_bytes,
                fault_stats: l.faults.as_ref().map(|f| f.stats).unwrap_or_default(),
            })
            .collect();
        SimResult {
            flows: self.metrics,
            duration: self.duration,
            link_rate_bps: self.link_rate_bps,
            link_delivered_bytes: links[0].delivered_bytes,
            link_dropped_pkts: links[0].dropped_pkts,
            fault_stats: links[0].fault_stats,
            links,
            queue_samples: self.queue_samples,
            trace: self.trace,
            decisions: self.decisions,
            events: self.events,
        }
    }

    /// The staged reference loop: every event flows through the scheduler.
    fn run_staged(&mut self, end: Time) {
        while let Some((at, _seq, ev)) = self.queue.pop() {
            if at > end {
                break;
            }
            self.now = at;
            self.dispatch(ev);
        }
    }

    /// The fused main loop: a 4-way merge by `(time, seq)` of the scheduler
    /// head and the three wire-ring stage heads. Each head's key is exactly
    /// the `(time, seq)` the staged path would have pushed for that event,
    /// so the merge reproduces the staged dispatch order verbatim.
    fn run_fused(&mut self, end: Time) {
        let end_ns = end.as_nanos();
        loop {
            let sched = self.queue.peek();
            let w = self.wire.as_ref().expect("run_fused requires a wire ring");
            let mut best: Option<(u64, u64, FusedSrc)> =
                sched.map(|(at, seq)| (at.as_nanos(), seq, FusedSrc::Sched));
            let mut consider = |at: Time, seq: u64, src: FusedSrc| {
                let key = (at.as_nanos(), seq);
                if best.is_none_or(|(t, s, _)| key < (t, s)) {
                    best = Some((key.0, key.1, src));
                }
            };
            if w.drain_next < w.total() {
                let p = w.pkt(w.drain_next);
                consider(p.drain_at, p.drain_seq, FusedSrc::Drain);
            }
            if w.deliver_next < w.total() {
                let p = w.pkt(w.deliver_next);
                consider(p.deliver_at, p.deliver_seq, FusedSrc::Deliver);
            }
            if w.ack_next < w.deliver_next {
                let p = w.pkt(w.ack_next);
                consider(p.ack_at, p.ack_seq, FusedSrc::Ack);
            }
            let Some((at_ns, _seq, src)) = best else {
                break;
            };
            if at_ns > end_ns {
                break;
            }
            self.now = Time::from_nanos(at_ns);
            match src {
                FusedSrc::Sched => {
                    let (_at, _seq, ev) = self.queue.pop().expect("peeked head vanished");
                    self.dispatch(ev);
                }
                FusedSrc::Drain => self.wire_drain_phase(),
                FusedSrc::Deliver => self.wire_deliver_phase(),
                FusedSrc::Ack => self.wire_ack_phase(),
            }
        }
    }

    /// Fused analog of `Event::QueueDrain` dispatch.
    fn wire_drain_phase(&mut self) {
        let bytes = {
            let w = self.wire.as_mut().expect("wire phase without ring");
            let bytes = w.pkt(w.drain_next).bytes;
            w.drain_next += 1;
            w.pop_done();
            bytes
        };
        self.events.pops[K_QUEUE_DRAIN] += 1;
        self.events.fused += 1;
        // Fused paths are single-link by the fusion gate.
        self.links[0].link.on_departure(bytes as u64);
    }

    /// Fused analog of `Event::Delivery` dispatch: assigns the ACK's
    /// sequence number here — the instant the staged path pushes
    /// `AckArrival` — and computes its arrival with the same per-flow FIFO
    /// clamp. ACK processing itself runs at `ack_at` via the merge.
    fn wire_deliver_phase(&mut self) {
        let (flow, idx) = {
            let w = self.wire.as_ref().expect("wire phase without ring");
            (w.pkt(w.deliver_next).flow as FlowId, w.deliver_next)
        };
        self.event_seq += 1;
        let ack_seq = self.event_seq;
        // Clean path: `NoiseState::None::ack_release` is the identity and
        // the fault layer is absent, so the ACK departs the receiver at
        // `now` and arrives after the reverse propagation, clamped FIFO
        // (single link by the fusion gate).
        let mut arrival = self.now + self.links[0].rev_prop;
        if arrival < self.flows.last_ack_arrival_at[flow] {
            arrival = self.flows.last_ack_arrival_at[flow];
        }
        self.flows.last_ack_arrival_at[flow] = arrival;
        let w = self.wire.as_mut().expect("wire phase without ring");
        {
            let p = w.pkt_mut(idx);
            p.ack_at = arrival;
            p.ack_seq = ack_seq;
        }
        w.deliver_next = idx + 1;
        w.skip_lost();
        self.events.pops[K_DELIVERY] += 1;
        self.events.fused += 1;
    }

    /// Fused analog of `Event::AckArrival` dispatch: retires the ring slot
    /// and runs the full ACK path (which may re-enter `admit_fused`).
    fn wire_ack_phase(&mut self) {
        let pkt = {
            let w = self.wire.as_mut().expect("wire phase without ring");
            let pkt = *w.pkt(w.ack_next);
            w.ack_next += 1;
            w.skip_lost();
            w.pop_done();
            pkt
        };
        self.events.pops[K_ACK_ARRIVAL] += 1;
        self.events.fused += 1;
        self.on_ack_arrival(
            pkt.flow as FlowId,
            pkt.seq,
            pkt.bytes as u64,
            pkt.sent_at,
            pkt.deliver_at,
        );
    }

    fn dispatch(&mut self, ev: Event) {
        self.events.pops[ev.kind()] += 1;
        match ev {
            Event::FlowStart(id) => self.on_flow_start(id as FlowId),
            Event::FlowStop(id) => self.on_flow_stop(id as FlowId),
            Event::QueueDrain { link, bytes } => {
                self.links[link as usize].link.on_departure(bytes as u64)
            }
            Event::Delivery {
                flow,
                seq,
                bytes,
                sent_at,
            } => self.on_delivery(flow as FlowId, seq, bytes as u64, sent_at),
            Event::AckArrival {
                flow,
                seq,
                bytes,
                sent_at,
                delivered_at,
            } => self.on_ack_arrival(flow as FlowId, seq, bytes as u64, sent_at, delivered_at),
            Event::Pace { flow, epoch } => {
                if self.flows.pace_epoch[flow as FlowId] == epoch {
                    self.try_send(flow as FlowId);
                }
            }
            Event::CcTimer { flow, epoch } => self.on_cc_timer(flow as FlowId, epoch),
            Event::Rto { flow } => self.on_rto(flow as FlowId),
            Event::AppWake { flow, epoch } => self.on_app_wake(flow as FlowId, epoch),
            Event::SpawnCross => self.on_spawn_cross(),
            Event::ChurnSpawn => self.on_churn_spawn(),
            Event::QueueSample => {
                // Legacy samples cover link 0; per-link peaks are reported
                // through `LinkSummary::peak_queued_bytes`.
                self.queue_samples
                    .push((self.now.as_secs_f64(), self.links[0].link.queued_bytes()));
                if let Some(every) = self.queue_sample_every {
                    self.push(self.now + every, Event::QueueSample);
                }
            }
            Event::TraceSample => {
                self.sample_trace();
                self.drain_decisions();
                if let Some(every) = self.trace_every {
                    self.push(self.now + every, Event::TraceSample);
                }
            }
            Event::Fault { idx } => self.on_fault(idx as usize),
            Event::HopArrival {
                flow,
                seq,
                bytes,
                sent_at,
                hop,
            } => self.on_hop_arrival(flow as FlowId, seq, bytes as u64, sent_at, hop as usize),
        }
    }

    /// Applies one scheduled link change to its target link and records it
    /// as a link-scoped trace event.
    fn on_fault(&mut self, idx: usize) {
        use proteus_trace::FaultKind;
        let (li, change) = self.fault_changes[idx];
        let li = li as usize;
        let (kind, value) = match change {
            LinkChange::Bandwidth(mbps) => {
                self.links[li].link.set_rate(mbps * 1e6);
                (FaultKind::Bandwidth, mbps)
            }
            LinkChange::Rtt(rtt) => {
                // Same half-split as construction; in-flight packets keep
                // the propagation delay they departed with.
                let half = Dur::from_nanos(rtt.as_nanos() / 2);
                self.links[li].fwd_prop = half;
                self.links[li].rev_prop = rtt - half;
                (FaultKind::Rtt, rtt.as_secs_f64())
            }
            LinkChange::Down => {
                if let Some(f) = &mut self.links[li].faults {
                    f.down = true;
                }
                (FaultKind::OutageStart, 0.0)
            }
            LinkChange::Up => {
                if let Some(f) = &mut self.links[li].faults {
                    f.down = false;
                }
                (FaultKind::OutageEnd, 0.0)
            }
        };
        if let Some(f) = &mut self.links[li].faults {
            f.stats.link_changes += 1;
        }
        self.record_fault(kind, value);
    }

    /// Appends a link-scoped fault record to the decision stream.
    fn record_fault(&mut self, kind: proteus_trace::FaultKind, value: f64) {
        self.decisions.push(proteus_trace::FlowEvent {
            flow: proteus_trace::LINK_FLOW,
            event: proteus_trace::DecisionEvent {
                t_ns: self.now.as_nanos(),
                kind: proteus_trace::EventKind::Fault(proteus_trace::Fault { kind, value }),
            },
        });
    }

    /// Moves buffered decision events out of every controller that can
    /// still produce them, labelling them with the flow id. Called on each
    /// telemetry sample — which bounds how full a flow's ring sink can get
    /// between sweeps — and once more at run end.
    ///
    /// The sweep visits active and lingering flows in id order, which is
    /// exactly the set the previous all-flows scan could extract anything
    /// from: flows not yet started have never had a controller callback,
    /// and quiesced flows (pruned from the lingering list after their final
    /// drain below) never see another one.
    fn drain_decisions(&mut self) {
        let mut ids = std::mem::take(&mut self.id_scratch);
        self.flows.sweep_ids(&mut ids);
        for &id in &ids {
            let id = id as usize;
            self.decision_scratch.clear();
            self.flows.cc[id].drain_decisions(&mut self.decision_scratch);
            for &event in &self.decision_scratch {
                self.decisions.push(proteus_trace::FlowEvent {
                    flow: id as u32,
                    event,
                });
            }
        }
        self.id_scratch = ids;
        self.flows.prune_quiesced();
    }

    /// Records one telemetry sample per active flow (in id order, walking
    /// the active list rather than every flow ever created).
    fn sample_trace(&mut self) {
        let t = self.now.as_secs_f64();
        let mut ids = std::mem::take(&mut self.id_scratch);
        self.flows.sorted_active(&mut ids);
        for &id in &ids {
            let id = id as usize;
            let snap = self.flows.cc[id].snapshot();
            self.trace.push(TraceEvent {
                t,
                flow: id,
                rate_mbps: self.flows.cc[id].pacing_rate().map(|bps| bps * 8.0 / 1e6),
                cwnd_bytes: match self.flows.cc[id].cwnd_bytes() {
                    u64::MAX => None,
                    w => Some(w),
                },
                inflight_bytes: self.flows.inflight_bytes[id],
                srtt_ms: self.flows.rtt[id].srtt().map(|d| d.as_secs_f64() * 1e3),
                rttvar_ms: self.flows.rtt[id]
                    .srtt()
                    .map(|_| self.flows.rtt[id].rttvar().as_secs_f64() * 1e3),
                utility: snap.as_ref().and_then(|s| s.utility),
                mode: snap.as_ref().and_then(|s| s.mode),
                mode_switches: snap.map_or(0, |s| s.mode_switches),
            });
        }
        self.id_scratch = ids;
    }

    fn on_flow_start(&mut self, id: FlowId) {
        if self.flows.active[id] {
            return;
        }
        self.flows.activate(id);
        self.flows.cc[id].on_flow_start(self.now);
        self.metrics[id].started_at = Some(self.now);
        self.sync_cc_timer(id);
        self.try_send(id);
    }

    fn on_flow_stop(&mut self, id: FlowId) {
        if !self.flows.active[id] {
            return;
        }
        self.flows.deactivate(id);
        if self.metrics[id].finished_at.is_none() {
            self.metrics[id].finished_at = Some(self.now);
        }
        self.maybe_retire(id);
    }

    /// Total reverse-path propagation for a flow: the sum of its links'
    /// current `rev_prop`, in path order (for a one-link path, exactly the
    /// legacy `rev_prop`).
    fn rev_prop_of(&self, flow: FlowId) -> Dur {
        let mut rev = Dur::ZERO;
        for i in 0..self.flows.path[flow].len() {
            rev += self.links[self.flows.path[flow][i] as usize].rev_prop;
        }
        rev
    }

    fn on_delivery(&mut self, flow: FlowId, seq: SeqNr, bytes: u64, sent_at: Time) {
        // Receiver generates an ACK immediately; the last hop's noise model
        // may hold it (WiFi MAC aggregation) before it crosses the reverse
        // path, whose propagation sums the path links' reverse halves. The
        // return path is FIFO: ACK arrivals are clamped monotone per flow.
        let delivered_at = self.now;
        let last = {
            let p = &self.flows.path[flow];
            p[p.len() - 1] as usize
        };
        let mut release = self.links[last].noise.ack_release(self.now, &mut self.rng);
        if let Some(f) = &mut self.links[last].faults {
            // ACK compression: episodes hold ACKs past the noise model's
            // release time and let them go in a single batch.
            release = f.ack_release(release);
        }
        let mut arrival = release + self.rev_prop_of(flow);
        if arrival < self.flows.last_ack_arrival_at[flow] {
            arrival = self.flows.last_ack_arrival_at[flow];
        }
        self.flows.last_ack_arrival_at[flow] = arrival;
        self.push(
            arrival,
            Event::AckArrival {
                flow: flow as u32,
                seq,
                bytes: bytes as u32,
                sent_at,
                delivered_at,
            },
        );
    }

    fn on_ack_arrival(
        &mut self,
        flow: FlowId,
        seq: SeqNr,
        bytes: u64,
        sent_at: Time,
        delivered_at: Time,
    ) {
        let now = self.now;
        let rtt = now.since(sent_at);
        let owd = delivered_at.since(sent_at);

        let mut lost = std::mem::take(&mut self.loss_scratch);
        lost.clear();
        let acked = self.flows.inflight[flow].remove(seq).is_some();
        if acked {
            self.flows.inflight_bytes[flow] = self.flows.inflight_bytes[flow].saturating_sub(bytes);
            self.flows.rtt[flow].update(rtt);
            // Dup-ACK analog: earlier packets are lost once this ACK is
            // REORDER_THRESHOLD ahead of them.
            while let Some((oldest, pkt)) = self.flows.inflight[flow].front() {
                if oldest + REORDER_THRESHOLD <= seq {
                    self.flows.inflight[flow].pop_front();
                    self.flows.inflight_bytes[flow] =
                        self.flows.inflight_bytes[flow].saturating_sub(pkt.bytes);
                    lost.push((oldest, pkt.sent_at, pkt.bytes));
                } else {
                    break;
                }
            }
        }

        if !acked {
            // Already declared lost (spurious "ack"); ignore.
            self.loss_scratch = lost;
            return;
        }

        self.metrics[flow].on_ack(now, bytes, rtt);
        let ack = AckInfo {
            seq,
            bytes,
            sent_at,
            recv_at: now,
            rtt,
            one_way_delay: owd,
        };
        self.flows.cc[flow].on_ack(now, &ack);

        for &(l_seq, l_sent, l_bytes) in &lost {
            self.declare_loss(flow, l_seq, l_sent, l_bytes, false);
        }
        self.loss_scratch = lost;

        // Deliver progress to the application and check for completion.
        self.flows.app[flow].on_delivered(now, bytes);
        if self.flows.media[flow] {
            // Frame-latency bookkeeping, media flows only: pull newly
            // encoded frames from the source, then complete every frame
            // the cumulative acked byte count now covers.
            let mut frames = std::mem::take(&mut self.frame_scratch);
            frames.clear();
            self.flows.app[flow].drain_frames(&mut frames);
            if !frames.is_empty() {
                self.metrics[flow].media_ingest(&frames);
            }
            self.metrics[flow].media_progress(now);
            self.frame_scratch = frames;
        }
        let finished = self.flows.active[flow] && self.flows.app[flow].finished(now);
        if finished {
            self.flows.deactivate(flow);
            self.metrics[flow].finished_at = Some(now);
        }

        self.rearm_rto(flow);
        self.sync_cc_timer(flow);
        self.sync_app_wake(flow);
        self.try_send(flow);
        self.maybe_retire(flow);
    }

    fn declare_loss(
        &mut self,
        flow: FlowId,
        seq: SeqNr,
        sent_at: Time,
        bytes: u64,
        by_timeout: bool,
    ) {
        self.metrics[flow].on_loss();
        let loss = LossInfo {
            seq,
            bytes,
            sent_at,
            detected_at: self.now,
            by_timeout,
        };
        self.flows.cc[flow].on_loss(self.now, &loss);
        if self.flows.reliable[flow] {
            self.flows.retx_bytes[flow] += bytes;
        }
    }

    fn on_rto(&mut self, flow: FlowId) {
        // At most one RTO event is ever outstanding (pushes are guarded by
        // `rto_event_at`), so a pop at any other time is impossible.
        debug_assert_eq!(self.flows.rto_event_at[flow], Some(self.now));
        let now = self.now;
        self.flows.rto_event_at[flow] = None;
        let Some(deadline) = self.flows.rto_deadline[flow] else {
            return;
        };
        if now < deadline {
            // The deadline moved later since this event was scheduled
            // (progress was made); re-arm at the true deadline.
            self.flows.rto_event_at[flow] = Some(deadline);
            self.push(deadline, Event::Rto { flow: flow as u32 });
            return;
        }
        let rto = self.flows.rtt[flow].rto(MIN_RTO);
        // Declare every packet older than one RTO lost. Packets are sent in
        // seq order at non-decreasing times, so the stale set is exactly a
        // prefix of the outstanding queue.
        let mut stale = std::mem::take(&mut self.loss_scratch);
        stale.clear();
        let cutoff = now - rto;
        while let Some((s, pkt)) = self.flows.inflight[flow].front() {
            if pkt.sent_at > cutoff {
                break;
            }
            self.flows.inflight[flow].pop_front();
            self.flows.inflight_bytes[flow] =
                self.flows.inflight_bytes[flow].saturating_sub(pkt.bytes);
            stale.push((s, pkt.sent_at, pkt.bytes));
        }
        for &(s, sent, b) in &stale {
            self.declare_loss(flow, s, sent, b, true);
        }
        self.loss_scratch = stale;
        self.flows.rto_deadline[flow] = None;
        self.rearm_rto(flow);
        self.sync_cc_timer(flow);
        self.try_send(flow);
        self.maybe_retire(flow);
    }

    fn rearm_rto(&mut self, flow: FlowId) {
        if self.flows.inflight[flow].is_empty() {
            self.flows.rto_deadline[flow] = None;
            return;
        }
        let rto = self.flows.rtt[flow].rto(MIN_RTO);
        let deadline = self.now + rto;
        self.flows.rto_deadline[flow] = Some(deadline);
        if self.flows.rto_event_at[flow].is_none() {
            self.flows.rto_event_at[flow] = Some(deadline);
            self.push(deadline, Event::Rto { flow: flow as u32 });
        }
    }

    fn on_cc_timer(&mut self, flow: FlowId, epoch: u64) {
        if self.flows.cc_epoch[flow] != epoch {
            return;
        }
        self.flows.cc_timer_at[flow] = None;
        let now = self.now;
        self.flows.cc[flow].on_timer(now);
        self.sync_cc_timer(flow);
        self.try_send(flow);
    }

    fn sync_cc_timer(&mut self, flow: FlowId) {
        let want = self.flows.cc[flow].next_timer();
        if want == self.flows.cc_timer_at[flow] {
            return;
        }
        self.flows.cc_epoch[flow] += 1;
        self.flows.cc_timer_at[flow] = want;
        if let Some(t) = want {
            let at = if t < self.now { self.now } else { t };
            let epoch = self.flows.cc_epoch[flow];
            self.push(
                at,
                Event::CcTimer {
                    flow: flow as u32,
                    epoch,
                },
            );
        }
    }

    fn on_app_wake(&mut self, flow: FlowId, epoch: u64) {
        if self.flows.app_epoch[flow] != epoch {
            return;
        }
        let now = self.now;
        self.flows.app_wake_at[flow] = None;
        self.flows.app[flow].on_wakeup(now);
        self.sync_app_wake(flow);
        self.try_send(flow);
    }

    fn sync_app_wake(&mut self, flow: FlowId) {
        let now = self.now;
        if !self.flows.active[flow] {
            return;
        }
        let want = self.flows.app[flow]
            .next_event(now)
            .map(|t| if t < now { now } else { t });
        if want == self.flows.app_wake_at[flow] {
            return;
        }
        self.flows.app_epoch[flow] += 1;
        self.flows.app_wake_at[flow] = want;
        if let Some(at) = want {
            let epoch = self.flows.app_epoch[flow];
            self.push(
                at,
                Event::AppWake {
                    flow: flow as u32,
                    epoch,
                },
            );
        }
    }

    fn on_spawn_cross(&mut self) {
        let now = self.now;
        let Some(cross) = &mut self.cross else {
            return;
        };
        if now >= cross.stop {
            return;
        }
        // Sample this arrival's flow and the next arrival time.
        let size = dist::uniform_inclusive(&mut self.rng, cross.size_range.0, cross.size_range.1);
        let gap = dist::exponential(&mut self.rng, 1.0 / cross.arrivals_per_sec);
        cross.spawned += 1;
        let n = cross.spawned;

        let id = self.flows.len();
        let cc = (self.cross.as_ref().expect("cross exists").cc)(id);
        let path = Arc::clone(&self.default_path);
        self.flows.push_flow(
            cc,
            Box::new(proteus_transport::SizedApp::new(size)),
            true,
            path,
        );
        self.metrics.push(FlowMetrics::new(
            id,
            format!("cross-{n}"),
            self.throughput_bin,
            self.rtt_stride,
        ));
        self.push(now, Event::FlowStart(id as u32));
        self.push(now + Dur::from_secs_f64(gap), Event::SpawnCross);
    }

    /// Draws (class, lifetime) for one churn arrival from the churn stream.
    fn draw_churn(&mut self) -> (usize, Dur) {
        let ch = self.churn.as_mut().expect("churn exists");
        let u: f64 = ch.rng.random();
        let class_idx = ch
            .cum_weights
            .iter()
            .position(|&w| u < w)
            .unwrap_or(ch.cum_weights.len() - 1);
        let lifetime = dist::exponential(&mut ch.rng, ch.mean_lifetime_secs);
        (class_idx, Dur::from_secs_f64(lifetime))
    }

    /// Creates one churn flow (bulk, unreliable) that starts at `start`
    /// and stops `lifetime` later.
    fn spawn_churn_flow(&mut self, class_idx: usize, start: Time, lifetime: Dur) {
        let n = {
            let ch = self.churn.as_mut().expect("churn exists");
            ch.spawned += 1;
            ch.spawned
        };
        let id = self.flows.len();
        let ch = self.churn.as_ref().expect("churn exists");
        let cc = (ch.classes[class_idx].cc)(id);
        let name = format!("{}~{n}", ch.classes[class_idx].name);
        let path = Arc::clone(&ch.class_paths[class_idx]);
        self.flows.push_flow(cc, Box::new(BulkApp), false, path);
        let stop = start + lifetime;
        self.flows.stop_at[id] = Some(stop);
        self.metrics.push(FlowMetrics::new(
            id,
            name,
            self.throughput_bin,
            self.rtt_stride,
        ));
        self.push(start, Event::FlowStart(id as u32));
        self.push(stop, Event::FlowStop(id as u32));
    }

    /// One Poisson churn arrival: spawn a flow now, schedule the next.
    fn on_churn_spawn(&mut self) {
        let now = self.now;
        let Some(ch) = &self.churn else {
            return;
        };
        if now >= ch.stop {
            return;
        }
        let mean_gap = 1.0 / ch.arrivals_per_sec;
        let (class_idx, lifetime) = self.draw_churn();
        let gap = {
            let ch = self.churn.as_mut().expect("churn exists");
            dist::exponential(&mut ch.rng, mean_gap)
        };
        self.spawn_churn_flow(class_idx, now, lifetime);
        self.push(now + Dur::from_secs_f64(gap), Event::ChurnSpawn);
    }

    /// Churn scenarios only: once a stopped flow's last in-flight packet is
    /// accounted for, drain its remaining decisions and retire it —
    /// cancelling its timers and releasing its controller memory — so a
    /// run that churns through 100k flows doesn't accumulate 100k live
    /// controllers and their timer events. Without churn this is a no-op:
    /// legacy scenarios keep the exact event stream they always had.
    fn maybe_retire(&mut self, flow: FlowId) {
        if self.churn.is_none()
            || self.flows.retired[flow]
            || self.flows.active[flow]
            || !self.flows.inflight[flow].is_empty()
        {
            return;
        }
        self.decision_scratch.clear();
        self.flows.cc[flow].drain_decisions(&mut self.decision_scratch);
        for &event in &self.decision_scratch {
            self.decisions.push(proteus_trace::FlowEvent {
                flow: flow as u32,
                event,
            });
        }
        self.flows.retire(flow);
    }

    /// Transmits as much as the window, pacing gate and application allow.
    fn try_send(&mut self, flow: FlowId) {
        let now = self.now;
        for _ in 0..MAX_BURST {
            if !self.flows.active[flow] {
                return;
            }
            if let Some(stop) = self.flows.stop_at[flow] {
                if now >= stop {
                    return;
                }
            }
            let cwnd = self.flows.cc[flow].cwnd_bytes();
            let pacing = self.flows.cc[flow].pacing_rate();
            assert!(
                pacing.is_some() || cwnd != u64::MAX,
                "controller {} must be paced or windowed",
                self.flows.cc[flow].name()
            );
            // Determine the next packet size from retransmission backlog or
            // fresh application data.
            let avail = if self.flows.retx_bytes[flow] > 0 {
                self.flows.retx_bytes[flow]
            } else {
                self.flows.app[flow].bytes_to_send(now)
            };
            if avail == 0 {
                // Application-limited; wake up when it has more to do.
                self.sync_app_wake(flow);
                return;
            }
            let bytes = avail.min(DEFAULT_PACKET_BYTES);
            if self.flows.inflight_bytes[flow] + bytes > cwnd {
                return; // window-limited; ACKs will reopen.
            }
            if let Some(rate) = pacing {
                debug_assert!(rate > 0.0);
                if now < self.flows.next_pace_at[flow] {
                    // Pacing-limited: schedule the next opportunity.
                    self.flows.pace_epoch[flow] += 1;
                    let at = self.flows.next_pace_at[flow];
                    let epoch = self.flows.pace_epoch[flow];
                    self.push(
                        at,
                        Event::Pace {
                            flow: flow as u32,
                            epoch,
                        },
                    );
                    return;
                }
                let interval = Dur::from_secs_f64(bytes as f64 / rate);
                self.flows.next_pace_at[flow] = now + interval;
            }

            // Commit the transmission.
            let seq = self.flows.next_seq[flow];
            self.flows.next_seq[flow] += 1;
            if self.flows.retx_bytes[flow] > 0 {
                self.flows.retx_bytes[flow] -= bytes;
            } else {
                self.flows.app[flow].consume(bytes);
            }
            self.flows.inflight[flow].insert(seq, now, bytes);
            self.flows.inflight_bytes[flow] += bytes;
            let pkt = SentPacket {
                seq,
                bytes,
                sent_at: now,
            };
            self.flows.cc[flow].on_packet_sent(now, &pkt);
            let arm_rto = self.flows.rto_deadline[flow].is_none();
            self.metrics[flow].on_sent(bytes);

            let first = self.flows.path[flow][0] as usize;
            match self.links[first].link.offer(now, bytes) {
                Offer::Dropped => {
                    // Tail drop: the sender finds out via dup-ACKs or RTO.
                }
                Offer::Departs(at) if self.wire.is_some() => {
                    self.note_queue_peak(first);
                    self.admit_fused(flow, seq, bytes, at);
                }
                Offer::Departs(at) => {
                    self.note_queue_peak(first);
                    self.forward_staged(flow, seq, bytes, now, 0, at);
                }
            }
            if arm_rto {
                self.rearm_rto(flow);
            }
            self.sync_cc_timer(flow);
        }
        debug_assert!(false, "try_send hit MAX_BURST — runaway controller?");
    }

    /// Tracks a link's peak buffer occupancy after a successful admission.
    fn note_queue_peak(&mut self, li: usize) {
        let q = self.links[li].link.queued_bytes();
        if q > self.links[li].peak_queued_bytes {
            self.links[li].peak_queued_bytes = q;
        }
    }

    /// Staged continuation after link `path[hop]` accepted a packet with
    /// departure time `at`: schedules the queue drain, applies that link's
    /// loss, noise and reordering processes, and forwards the packet to
    /// the next hop (`HopArrival`) or the receiver (`Delivery`).
    ///
    /// For a one-link path (`hop == 0`, last hop) this is byte-for-byte the
    /// legacy wire chain: the same events pushed at the same instants, the
    /// same draws from the same RNGs in the same order. Mid-path hops skip
    /// the per-flow FIFO delivery clamp — each queue is itself FIFO, and
    /// the clamp's contract (jitter never reorders a flow) is enforced at
    /// the final hop exactly as before.
    fn forward_staged(
        &mut self,
        flow: FlowId,
        seq: SeqNr,
        bytes: u64,
        sent_at: Time,
        hop: usize,
        at: Time,
    ) {
        let (li, last_hop) = {
            let p = &self.flows.path[flow];
            (p[hop] as usize, hop + 1 == p.len())
        };
        self.push(
            at,
            Event::QueueDrain {
                link: li as LinkId,
                bytes: bytes as u32,
            },
        );
        // Fault layer first (its own RNG: no draws without a schedule),
        // then the pre-existing random-loss draw from the main RNG, in the
        // original order.
        let fault = match &mut self.links[li].faults {
            Some(f) => f.wire_loss(),
            None => WireLoss::default(),
        };
        if let Some(p_bad) = fault.burst_started {
            self.record_fault(proteus_trace::FaultKind::LossBurstStart, p_bad);
        }
        if fault.burst_ended {
            self.record_fault(proteus_trace::FaultKind::LossBurstEnd, 0.0);
        }
        if fault.lost {
            // Outage or loss burst: departs the queue, never reaches the
            // next hop.
            return;
        }
        if self.links[li].random_loss > 0.0 && self.rng.random::<f64>() < self.links[li].random_loss
        {
            // Non-congestion loss on the wire after the queue.
            return;
        }
        let noise = self.links[li].noise.data_delay(&mut self.rng);
        let mut arrives_at = at + self.links[li].fwd_prop + noise;
        let reorder_extra = match &mut self.links[li].faults {
            Some(f) => f.reorder_extra(),
            None => None,
        };
        if !last_hop {
            // Mid-path hop: reordering extra just delays the next-hop
            // arrival (the next queue re-serializes arrivals anyway).
            if let Some(extra) = reorder_extra {
                arrives_at += extra;
            }
            self.push(
                arrives_at,
                Event::HopArrival {
                    flow: flow as u32,
                    seq,
                    bytes: bytes as u32,
                    sent_at,
                    hop: (hop + 1) as u16,
                },
            );
            return;
        }
        if let Some(extra) = reorder_extra {
            // Reordered packet: held back by `extra` and exempted from the
            // FIFO clamp (and from advancing it), so later packets overtake
            // it.
            arrives_at += extra;
        } else {
            // FIFO clamp: jitter never reorders a flow's packets.
            if arrives_at < self.flows.last_delivery_at[flow] {
                arrives_at = self.flows.last_delivery_at[flow];
            }
            self.flows.last_delivery_at[flow] = arrives_at;
        }
        self.push(
            arrives_at,
            Event::Delivery {
                flow: flow as u32,
                seq,
                bytes: bytes as u32,
                sent_at,
            },
        );
    }

    /// A packet reaches the entry of a mid-path or final link: offer it to
    /// that link's queue. A tail drop here is a silent mid-path loss — the
    /// sender finds out via dup-ACKs or its RTO, exactly like a drop at the
    /// first hop.
    fn on_hop_arrival(&mut self, flow: FlowId, seq: SeqNr, bytes: u64, sent_at: Time, hop: usize) {
        let li = self.flows.path[flow][hop] as usize;
        match self.links[li].link.offer(self.now, bytes) {
            Offer::Dropped => {}
            Offer::Departs(at) => {
                self.note_queue_peak(li);
                self.forward_staged(flow, seq, bytes, sent_at, hop, at);
            }
        }
    }

    /// Admits one accepted packet to the fused wire ring, consuming the
    /// same sequence numbers and RNG draws, at the same instants, as the
    /// staged path's admission: one sequence for the queue drain, then the
    /// random-loss draw (the fault layer is absent on a fused path), then —
    /// for surviving packets — one sequence for the delivery plus the
    /// per-flow FIFO clamp (a no-op on clean paths, replicated anyway so
    /// flow state stays bit-identical).
    fn admit_fused(&mut self, flow: FlowId, seq: SeqNr, bytes: u64, drain_at: Time) {
        self.event_seq += 1;
        let drain_seq = self.event_seq;
        let lost =
            self.links[0].random_loss > 0.0 && self.rng.random::<f64>() < self.links[0].random_loss;
        let mut pkt = WirePacket {
            flow: flow as u32,
            bytes: bytes as u32,
            seq,
            sent_at: self.now,
            drain_at,
            deliver_at: Time::ZERO,
            ack_at: Time::ZERO,
            drain_seq,
            deliver_seq: 0,
            ack_seq: 0,
            lost,
        };
        if !lost {
            self.event_seq += 1;
            pkt.deliver_seq = self.event_seq;
            let mut delivered_at = drain_at + self.links[0].fwd_prop;
            if delivered_at < self.flows.last_delivery_at[flow] {
                delivered_at = self.flows.last_delivery_at[flow];
            }
            self.flows.last_delivery_at[flow] = delivered_at;
            pkt.deliver_at = delivered_at;
        }
        let w = self.wire.as_mut().expect("admit_fused without ring");
        w.ring.push_back(pkt);
        w.skip_lost();
    }
}

/// Runs a scenario to completion.
pub fn run(scenario: Scenario) -> SimResult {
    Sim::new(scenario).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChurnSpec, CrossTrafficSpec, FlowSpec, LinkSpec};
    use crate::sched::Scheduler;
    use proteus_transport::CongestionControl;

    /// Fixed congestion window, ACK-clocked. Ignores losses.
    struct TestWindow {
        cwnd: u64,
    }

    impl CongestionControl for TestWindow {
        fn name(&self) -> &str {
            "test-window"
        }
        fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
        fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
        fn pacing_rate(&self) -> Option<f64> {
            None
        }
        fn cwnd_bytes(&self) -> u64 {
            self.cwnd
        }
    }

    /// Fixed pacing rate, no window.
    struct TestPaced {
        rate: f64, // bytes/sec
    }

    impl CongestionControl for TestPaced {
        fn name(&self) -> &str {
            "test-paced"
        }
        fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
        fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
        fn pacing_rate(&self) -> Option<f64> {
            Some(self.rate)
        }
    }

    fn link_10mbps_20ms() -> LinkSpec {
        // BDP = 10 Mbps * 20 ms = 25 KB
        LinkSpec::new(10.0, Dur::from_millis(20), 50_000)
    }

    #[test]
    fn window_flow_saturates_link() {
        // cwnd of 2 BDP guarantees full utilization.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(FlowSpec::bulk(
            "win",
            Dur::ZERO,
            || Box::new(TestWindow { cwnd: 50_000 }),
        ));
        let res = run(sc);
        let thpt =
            res.flows[0].throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(10.0));
        assert!(thpt > 9.3 && thpt <= 10.05, "throughput = {thpt}");
        // Sender-side conservation: everything sent is acked, lost or inflight.
        let m = &res.flows[0];
        assert!(m.pkts_acked + m.pkts_lost <= m.pkts_sent);
        assert!(m.pkts_sent - (m.pkts_acked + m.pkts_lost) < 100);
    }

    #[test]
    fn paced_flow_hits_its_rate() {
        // Pace at 4 Mbps on a 10 Mbps link: no queueing, RTT stays at base.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5)).flow(FlowSpec::bulk(
            "paced",
            Dur::ZERO,
            || Box::new(TestPaced { rate: 500_000.0 }),
        ));
        let res = run(sc);
        let thpt = res.flows[0].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(5.0));
        assert!((thpt - 4.0).abs() < 0.2, "throughput = {thpt}");
        // RTT should be base (20ms) + one packet serialization (1.2ms).
        let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
        assert!(p95 < 0.023, "p95 rtt = {p95}");
    }

    #[test]
    fn overdriven_window_fills_buffer_and_loses() {
        // cwnd of 8 BDP against a 2 BDP buffer: persistent queue + loss.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(FlowSpec::bulk(
            "big",
            Dur::ZERO,
            || Box::new(TestWindow { cwnd: 200_000 }),
        ));
        let res = run(sc);
        let m = &res.flows[0];
        assert!(m.pkts_lost > 0, "expected tail drops");
        // Queue inflates RTT towards base + buffer/rate = 20ms + 40ms.
        let p95 = m.rtt_percentile(95.0).unwrap();
        assert!(p95 > 0.050, "p95 rtt = {p95}");
        // Link still saturated.
        let thpt = m.throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(10.0));
        assert!(thpt > 9.0, "throughput = {thpt}");
    }

    #[test]
    fn random_loss_is_detected() {
        let link = link_10mbps_20ms().with_random_loss(0.02);
        let sc = Scenario::new(link, Dur::from_secs(10))
            .flow(FlowSpec::bulk("paced", Dur::ZERO, || {
                Box::new(TestPaced { rate: 250_000.0 })
            }))
            .with_seed(42);
        let res = run(sc);
        let m = &res.flows[0];
        let loss = m.loss_rate();
        assert!(loss > 0.01 && loss < 0.035, "observed loss = {loss}");
    }

    #[test]
    fn sized_flow_completes_reliably_under_loss() {
        let link = link_10mbps_20ms().with_random_loss(0.05);
        let sc = Scenario::new(link, Dur::from_secs(30))
            .flow(FlowSpec::sized("xfer", Dur::ZERO, 200_000, || {
                Box::new(TestWindow { cwnd: 20_000 })
            }))
            .with_seed(7);
        let res = run(sc);
        let m = &res.flows[0];
        assert!(
            m.completion_time().is_some(),
            "sized flow should finish despite loss"
        );
        assert!(m.bytes_acked >= 200_000);
    }

    #[test]
    fn two_flows_share_capacity() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10))
            .flow(FlowSpec::bulk("a", Dur::ZERO, || {
                Box::new(TestPaced { rate: 400_000.0 })
            }))
            .flow(FlowSpec::bulk("b", Dur::ZERO, || {
                Box::new(TestPaced { rate: 400_000.0 })
            }));
        let res = run(sc);
        let a = res.flows[0].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(10.0));
        let b = res.flows[1].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(10.0));
        assert!((a - 3.2).abs() < 0.3, "a = {a}");
        assert!((b - 3.2).abs() < 0.3, "b = {b}");
    }

    #[test]
    fn flow_start_and_stop_honored() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(
            FlowSpec::bulk("late", Dur::from_secs(3), || {
                Box::new(TestPaced { rate: 250_000.0 })
            })
            .with_stop(Dur::from_secs(6)),
        );
        let res = run(sc);
        let m = &res.flows[0];
        assert_eq!(m.started_at, Some(Time::ZERO + Dur::from_secs(3)));
        let before = m.throughput_bps(Time::ZERO, Time::from_secs_f64(3.0));
        let during = m.throughput_bps(Time::from_secs_f64(3.5), Time::from_secs_f64(6.0));
        let after = m.throughput_bps(Time::from_secs_f64(6.5), Time::from_secs_f64(10.0));
        assert_eq!(before, 0.0);
        assert!(during > 1.5e6);
        assert!(after < 0.1e6);
    }

    #[test]
    fn cross_traffic_spawns_flows() {
        let ct = CrossTrafficSpec {
            arrivals_per_sec: 5.0,
            size_range: (20_000, 100_000),
            cc: proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
            start: Dur::ZERO,
            stop: Dur::from_secs(10),
        };
        let sc = Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(12),
        )
        .with_cross_traffic(ct)
        .with_seed(3);
        let res = run(sc);
        let n = res.flows.len();
        // ~50 expected arrivals.
        assert!(n > 25 && n < 90, "spawned {n}");
        let finished = res
            .flows
            .iter()
            .filter(|f| f.completion_time().is_some())
            .count();
        assert!(finished as f64 > 0.9 * n as f64, "finished {finished}/{n}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            Scenario::new(link_10mbps_20ms().with_random_loss(0.01), Dur::from_secs(5))
                .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                    Box::new(TestWindow { cwnd: 60_000 })
                }))
                .with_seed(99)
        };
        let r1 = run(mk());
        let r2 = run(mk());
        assert_eq!(r1.flows[0].bytes_acked, r2.flows[0].bytes_acked);
        assert_eq!(r1.flows[0].pkts_lost, r2.flows[0].pkts_lost);
        assert_eq!(r1.link_dropped_pkts, r2.link_dropped_pkts);
    }

    #[test]
    fn queue_sampling_records() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5))
            .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                Box::new(TestWindow { cwnd: 100_000 })
            }))
            .with_queue_sampling(Dur::from_millis(100));
        let res = run(sc);
        assert!(res.queue_samples.len() >= 45);
        assert!(res.queue_samples.iter().any(|&(_, q)| q > 0));
    }

    #[test]
    fn trace_sampling_records_flow_state() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5))
            .flow(FlowSpec::bulk("p", Dur::ZERO, || {
                Box::new(TestPaced { rate: 250_000.0 }) // 2 Mbps
            }))
            .with_trace(Dur::from_millis(100));
        let res = run(sc);
        assert!(res.trace.len() >= 45, "got {} samples", res.trace.len());
        let e = &res.trace[10];
        assert_eq!(e.flow, 0);
        assert_eq!(e.rate_mbps, Some(2.0));
        assert_eq!(e.cwnd_bytes, None, "TestPaced is unwindowed");
        assert!(e.srtt_ms.unwrap() > 19.0, "srtt = {:?}", e.srtt_ms);
        assert!(e.rttvar_ms.is_some());
        assert!(e.mode.is_none(), "test stub exposes no snapshot");
        // Samples are on a strict 100 ms clock.
        assert!((res.trace[1].t - res.trace[0].t - 0.1).abs() < 1e-9);
    }

    #[test]
    fn trace_empty_when_disabled() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(2)).flow(FlowSpec::bulk(
            "p",
            Dur::ZERO,
            || Box::new(TestPaced { rate: 250_000.0 }),
        ));
        assert!(run(sc).trace.is_empty());
    }

    #[test]
    fn base_rtt_respected_without_queueing() {
        let sc = Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(40), 500_000),
            Dur::from_secs(3),
        )
        .flow(FlowSpec::bulk("p", Dur::ZERO, || {
            Box::new(TestPaced { rate: 125_000.0 }) // 1 Mbps
        }));
        let res = run(sc);
        let min = res.flows[0]
            .rtt_values()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        // base 40ms + 0.12ms serialization
        assert!((min - 0.04012).abs() < 1e-4, "min rtt = {min}");
    }

    fn churn_scenario(seed: u64) -> Scenario {
        let classes = vec![ChurnClass::new(
            "w",
            1.0,
            proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
        )];
        Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(12),
        )
        .with_churn(
            ChurnSpec::new(4.0, Dur::from_secs(2), classes)
                .with_initial(5)
                .with_window(Dur::ZERO, Dur::from_secs(10)),
        )
        .with_seed(seed)
    }

    #[test]
    fn churn_spawns_and_ages_out_flows() {
        let res = run(churn_scenario(11));
        let n = res.flows.len();
        // 5 initial + ~40 expected arrivals over 10 s.
        assert!(n > 20 && n < 90, "spawned {n}");
        // Every flow started; the vast majority also stopped (mean
        // lifetime 2 s against a 12 s run with arrivals ending at 10 s).
        assert!(res.flows.iter().all(|f| f.started_at.is_some()));
        let stopped = res.flows.iter().filter(|f| f.finished_at.is_some()).count();
        assert!(
            stopped as f64 > 0.8 * n as f64,
            "stopped {stopped}/{n} flows"
        );
        // The population actually transferred data.
        assert!(res.flows.iter().map(|f| f.bytes_acked).sum::<u64>() > 10_000_000);
    }

    #[test]
    fn churn_is_deterministic_and_scheduler_independent() {
        let digest = |res: &SimResult| {
            res.flows
                .iter()
                .map(|f| (f.name.clone(), f.bytes_acked, f.pkts_lost))
                .collect::<Vec<_>>()
        };
        let r1 = run(churn_scenario(17));
        let r2 = run(churn_scenario(17));
        assert_eq!(digest(&r1), digest(&r2));
        let r3 = run(churn_scenario(17).with_scheduler(Scheduler::Heap));
        assert_eq!(digest(&r1), digest(&r3));
    }

    #[test]
    fn churn_stream_leaves_main_rng_untouched() {
        // Same seed, same loss process: attaching churn must not shift the
        // main RNG's draw sequence for pre-existing flows.
        let base = |churn: bool| {
            let mut sc =
                Scenario::new(link_10mbps_20ms().with_random_loss(0.02), Dur::from_secs(5))
                    .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                        Box::new(TestWindow { cwnd: 30_000 })
                    }))
                    .with_seed(5);
            if churn {
                // Arrivals start after the run ends: zero churn flows ever
                // start, but the churn stream is live.
                sc = sc.with_churn(
                    ChurnSpec::new(
                        1.0,
                        Dur::from_secs(1),
                        vec![ChurnClass::new(
                            "c",
                            1.0,
                            proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
                        )],
                    )
                    .with_window(Dur::from_secs(100), Dur::from_secs(200)),
                );
            }
            sc
        };
        let without = run(base(false));
        let with = run(base(true));
        assert_eq!(
            without.flows[0].pkts_lost, with.flows[0].pkts_lost,
            "churn must draw from its own RNG stream"
        );
        assert_eq!(without.flows[0].bytes_acked, with.flows[0].bytes_acked);
    }

    #[test]
    fn event_accounting_tracks_both_paths() {
        let mk = || {
            Scenario::new(link_10mbps_20ms(), Dur::from_secs(3)).flow(FlowSpec::bulk(
                "win",
                Dur::ZERO,
                || Box::new(TestWindow { cwnd: 50_000 }),
            ))
        };
        let fused = run(mk());
        let staged = run(mk().with_wire_path(WirePath::Staged));

        // Dispatched-by-kind counts are path-independent: the fused wire
        // phases count under the event kind they replace.
        assert_eq!(fused.events.pops, staged.events.pops);
        assert!(fused.events.dispatched() > 0);
        // The fused path routes the per-packet chain around the scheduler:
        // strictly fewer pushes, a strictly shallower queue, and every wire
        // dispatch attributed to the ring.
        assert!(fused.events.pushes < staged.events.pushes);
        assert!(fused.events.peak_queue <= staged.events.peak_queue);
        assert_eq!(
            fused.events.fused,
            fused.events.pops[2] + fused.events.pops[3] + fused.events.pops[4],
            "fused dispatches must equal the three replaced wire kinds"
        );
        assert_eq!(staged.events.fused, 0);
        assert!(fused.events.fused_fraction() > 0.5);

        // Session totals accumulate across runs; lower bounds only, because
        // other tests in this binary run concurrently and add their own.
        let totals = take_session_event_totals();
        assert!(totals.dispatched >= fused.events.dispatched() + staged.events.dispatched());
        assert!(totals.fused >= fused.events.fused);
    }
}
