//! The discrete-event simulation engine.
//!
//! One [`Sim`] executes one [`Scenario`]: flows hand MTU-sized packets to a
//! shared [`BottleneckLink`]; accepted packets depart after queueing +
//! serialization, cross a fixed one-way propagation delay (plus optional
//! noise), are acknowledged by the receiver, and the ACK returns over a
//! clean reverse path. Senders are driven purely by events — ACK arrivals,
//! pacing timers, controller timers, retransmission timeouts and application
//! wakeups — so the whole run is a deterministic function of the scenario
//! and its seed.
//!
//! Loss detection mirrors TCP practice: a packet is declared lost when a
//! packet sent three or more sequence numbers later is ACKed (dup-ACK
//! threshold; the path only reorders when a [`crate::fault::FaultSchedule`]
//! injects it, in which case spurious dup-ACK losses are the intended
//! pathology), or when the RFC 6298 retransmission timeout expires without
//! progress.
//!
//! A scenario may attach a fault schedule: timed link changes arrive
//! through the same event heap (`Event::Fault`), and the stochastic fault
//! components (bursty loss, reordering, ACK compression) draw from a
//! dedicated RNG so that fault-free scenarios reproduce historical results
//! bit for bit (see `crate::fault` for the determinism rules).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{RngExt as Rng, SeedableRng};

use proteus_transport::{
    AckInfo, Application, CongestionControl, Dur, FlowId, LossInfo, RttEstimator, SentPacket,
    SeqNr, Time, DEFAULT_PACKET_BYTES,
};

use crate::dist;
use crate::fault::{FaultState, LinkChange, WireLoss};
use crate::inflight::InflightTracker;
use crate::link::{BottleneckLink, Offer};
use crate::metrics::{FlowMetrics, SimResult, TraceEvent};
use crate::noise::NoiseState;
use crate::scenario::Scenario;

/// Dup-ACK threshold: a packet is lost once a packet sent this many
/// sequence numbers later has been ACKed.
const REORDER_THRESHOLD: u64 = 3;
/// Minimum retransmission timeout (RFC 6298 uses 1 s; Linux uses 200 ms).
const MIN_RTO: Dur = Dur::from_millis(200);
/// Safety valve on packets transmitted within a single `try_send` call.
const MAX_BURST: usize = 100_000;
/// Initial event-heap capacity: enough for the steady-state event population
/// of a multi-flow run without repeated early regrowth.
const HEAP_CAPACITY: usize = 1024;

/// A scheduled event. Fields are deliberately narrow (`u32` flow ids and
/// packet sizes) to keep [`HeapEntry`] small: the binary heap shuffles
/// entries by value on every push/pop, so entry size is directly visible in
/// the per-packet cost.
#[derive(Debug, Clone, Copy)]
enum Event {
    FlowStart(u32),
    FlowStop(u32),
    /// A packet finished serializing at the bottleneck: release its buffer
    /// space.
    QueueDrain {
        bytes: u32,
    },
    /// A data packet reaches the receiver (at the heap entry's time).
    Delivery {
        flow: u32,
        seq: SeqNr,
        bytes: u32,
        sent_at: Time,
    },
    /// An ACK reaches the sender.
    AckArrival {
        flow: u32,
        seq: SeqNr,
        bytes: u32,
        sent_at: Time,
        delivered_at: Time,
    },
    /// Pace and CcTimer keep per-flow epochs and re-push on every re-arm
    /// (stale pops are filtered by epoch). A one-live-event discipline like
    /// the RTO's would be cheaper, but it assigns the surviving event a
    /// different `event_seq`, which perturbs same-timestamp tie order and
    /// breaks bit-reproducibility of committed results.
    Pace {
        flow: u32,
        epoch: u64,
    },
    CcTimer {
        flow: u32,
        epoch: u64,
    },
    Rto {
        flow: u32,
    },
    AppWake {
        flow: u32,
        epoch: u64,
    },
    SpawnCross,
    QueueSample,
    /// Periodic per-flow telemetry sampling (see `Scenario::with_trace`).
    TraceSample,
    /// Apply the `idx`-th scheduled link change of the fault schedule.
    Fault {
        idx: u32,
    },
}

struct HeapEntry {
    at: Time,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the earliest event;
    /// ties break by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct FlowState {
    cc: Box<dyn CongestionControl>,
    app: Box<dyn Application>,
    reliable: bool,
    /// Started and neither stopped nor finished.
    active: bool,
    next_seq: SeqNr,
    /// Outstanding packets, O(1) per ACK (seqs are monotone and the path
    /// never reorders, so removals cluster at the front).
    inflight: InflightTracker,
    inflight_bytes: u64,
    /// Bytes awaiting retransmission (reliable flows only).
    retx_bytes: u64,
    rtt: RttEstimator,
    next_pace_at: Time,
    /// Epoch of the live Pace event (older pops are stale no-ops).
    pace_epoch: u64,
    /// Epoch of the live CcTimer event.
    cc_epoch: u64,
    /// Deadline the controller asked for via `next_timer()`, if any.
    cc_timer_at: Option<Time>,
    rto_deadline: Option<Time>,
    /// Time of the currently scheduled RTO heap event, if any (lazy re-arm:
    /// the deadline may move later without re-pushing).
    rto_event_at: Option<Time>,
    app_epoch: u64,
    app_wake_at: Option<Time>,
    stop_at: Option<Time>,
    /// Latest scheduled data-delivery instant: the wireless channel jitters
    /// per-packet latency but still delivers FIFO, so later packets are
    /// clamped to arrive no earlier than their predecessors.
    last_delivery_at: Time,
    /// Same monotonicity clamp for the ACK return path.
    last_ack_arrival_at: Time,
}

impl FlowState {
    fn new(cc: Box<dyn CongestionControl>, app: Box<dyn Application>, reliable: bool) -> Self {
        Self {
            cc,
            app,
            reliable,
            active: false,
            next_seq: 0,
            inflight: InflightTracker::new(),
            inflight_bytes: 0,
            retx_bytes: 0,
            rtt: RttEstimator::new(),
            next_pace_at: Time::ZERO,
            pace_epoch: 0,
            cc_epoch: 0,
            cc_timer_at: None,
            rto_deadline: None,
            rto_event_at: None,
            app_epoch: 0,
            app_wake_at: None,
            stop_at: None,
            last_delivery_at: Time::ZERO,
            last_ack_arrival_at: Time::ZERO,
        }
    }
}

struct CrossState {
    arrivals_per_sec: f64,
    size_range: (u64, u64),
    cc: proteus_transport::CcFactory,
    stop: Time,
    spawned: usize,
}

/// The simulation engine. Construct with [`Sim::new`], execute with
/// [`Sim::run`], or use the [`run`] convenience function.
pub struct Sim {
    now: Time,
    heap: BinaryHeap<HeapEntry>,
    event_seq: u64,
    link: BottleneckLink,
    fwd_prop: Dur,
    rev_prop: Dur,
    random_loss: f64,
    noise: NoiseState,
    flows: Vec<FlowState>,
    metrics: Vec<FlowMetrics>,
    rng: SmallRng,
    duration: Dur,
    throughput_bin: Dur,
    rtt_stride: usize,
    queue_sample_every: Option<Dur>,
    queue_samples: Vec<(f64, u64)>,
    trace_every: Option<Dur>,
    trace: Vec<TraceEvent>,
    /// Decision events drained from controllers carrying a recording
    /// `proteus-trace` sink (stays empty for untraced controllers).
    decisions: Vec<proteus_trace::FlowEvent>,
    /// Reusable drain buffer for [`Sim::drain_decisions`].
    decision_scratch: Vec<proteus_trace::DecisionEvent>,
    cross: Option<CrossState>,
    link_rate_bps: f64,
    /// Reusable scratch for loss sweeps (dup-ACK and RTO), so the per-ACK
    /// and per-RTO paths stay allocation-free after warm-up.
    loss_scratch: Vec<(SeqNr, Time, u64)>,
    /// Fault-layer runtime (`None` without a schedule: the static fast
    /// path, with zero extra RNG draws).
    faults: Option<FaultState>,
    /// The schedule's link changes, indexed by `Event::Fault::idx`.
    fault_changes: Vec<LinkChange>,
}

impl Sim {
    /// Builds the engine from a scenario, consuming it.
    pub fn new(scenario: Scenario) -> Self {
        let Scenario {
            link,
            flows,
            cross_traffic,
            duration,
            seed,
            throughput_bin,
            rtt_stride,
            queue_sample_every,
            trace_every,
            faults,
        } = scenario;

        let half_rtt = Dur::from_nanos(link.rtt.as_nanos() / 2);
        let mut sim = Sim {
            now: Time::ZERO,
            heap: BinaryHeap::with_capacity(HEAP_CAPACITY),
            event_seq: 0,
            link: BottleneckLink::new(link.rate_bps(), link.buffer_bytes),
            fwd_prop: half_rtt,
            rev_prop: link.rtt - half_rtt,
            random_loss: link.random_loss,
            noise: link.noise.build(),
            flows: Vec::new(),
            metrics: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            duration,
            throughput_bin,
            rtt_stride,
            queue_sample_every,
            queue_samples: Vec::new(),
            trace_every,
            trace: Vec::new(),
            decisions: Vec::new(),
            decision_scratch: Vec::new(),
            cross: None,
            link_rate_bps: link.rate_bps(),
            loss_scratch: Vec::new(),
            faults: None,
            fault_changes: Vec::new(),
        };

        if let Some(sched) = &faults {
            if !sched.is_empty() {
                sim.faults = Some(FaultState::new(sched, seed));
                for (idx, &(at, change)) in sched.link_events.iter().enumerate() {
                    sim.fault_changes.push(change);
                    sim.push(Time::ZERO + at, Event::Fault { idx: idx as u32 });
                }
            }
        }

        for spec in flows {
            let id = sim.flows.len();
            let mut state = FlowState::new((spec.cc)(), (spec.app)(), spec.reliable);
            state.stop_at = spec.stop.map(|d| Time::ZERO + d);
            sim.flows.push(state);
            sim.metrics
                .push(FlowMetrics::new(id, spec.name, throughput_bin, rtt_stride));
            sim.push(Time::ZERO + spec.start, Event::FlowStart(id as u32));
            if let Some(stop) = spec.stop {
                sim.push(Time::ZERO + stop, Event::FlowStop(id as u32));
            }
        }

        if let Some(ct) = cross_traffic {
            sim.push(Time::ZERO + ct.start, Event::SpawnCross);
            sim.cross = Some(CrossState {
                arrivals_per_sec: ct.arrivals_per_sec,
                size_range: ct.size_range,
                cc: ct.cc,
                stop: Time::ZERO + ct.stop,
                spawned: 0,
            });
        }

        if let Some(every) = queue_sample_every {
            sim.push(Time::ZERO + every, Event::QueueSample);
        }

        if let Some(every) = trace_every {
            sim.push(Time::ZERO + every, Event::TraceSample);
        }

        sim
    }

    fn push(&mut self, at: Time, ev: Event) {
        self.event_seq += 1;
        self.heap.push(HeapEntry {
            at,
            seq: self.event_seq,
            ev,
        });
    }

    /// Runs the scenario to completion and returns the measurements.
    pub fn run(mut self) -> SimResult {
        let end = Time::ZERO + self.duration;
        while let Some(entry) = self.heap.pop() {
            if entry.at > end {
                break;
            }
            self.now = entry.at;
            self.dispatch(entry.ev);
        }
        // Final decision sweep (stopped flows included), then restore
        // global timestamp order: drains interleave flows per sweep, so a
        // stable sort by time is enough to keep each flow's own order.
        self.drain_decisions();
        self.decisions.sort_by_key(|fe| fe.event.t_ns);
        SimResult {
            flows: self.metrics,
            duration: self.duration,
            link_rate_bps: self.link_rate_bps,
            link_delivered_bytes: self.link.delivered_bytes(),
            link_dropped_pkts: self.link.dropped_pkts(),
            queue_samples: self.queue_samples,
            trace: self.trace,
            decisions: self.decisions,
            fault_stats: self.faults.map(|f| f.stats).unwrap_or_default(),
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::FlowStart(id) => self.on_flow_start(id as FlowId),
            Event::FlowStop(id) => self.on_flow_stop(id as FlowId),
            Event::QueueDrain { bytes } => self.link.on_departure(bytes as u64),
            Event::Delivery {
                flow,
                seq,
                bytes,
                sent_at,
            } => self.on_delivery(flow as FlowId, seq, bytes as u64, sent_at),
            Event::AckArrival {
                flow,
                seq,
                bytes,
                sent_at,
                delivered_at,
            } => self.on_ack_arrival(flow as FlowId, seq, bytes as u64, sent_at, delivered_at),
            Event::Pace { flow, epoch } => {
                if self.flows[flow as FlowId].pace_epoch == epoch {
                    self.try_send(flow as FlowId);
                }
            }
            Event::CcTimer { flow, epoch } => self.on_cc_timer(flow as FlowId, epoch),
            Event::Rto { flow } => self.on_rto(flow as FlowId),
            Event::AppWake { flow, epoch } => self.on_app_wake(flow as FlowId, epoch),
            Event::SpawnCross => self.on_spawn_cross(),
            Event::QueueSample => {
                self.queue_samples
                    .push((self.now.as_secs_f64(), self.link.queued_bytes()));
                if let Some(every) = self.queue_sample_every {
                    self.push(self.now + every, Event::QueueSample);
                }
            }
            Event::TraceSample => {
                self.sample_trace();
                self.drain_decisions();
                if let Some(every) = self.trace_every {
                    self.push(self.now + every, Event::TraceSample);
                }
            }
            Event::Fault { idx } => self.on_fault(idx as usize),
        }
    }

    /// Applies one scheduled link change and records it as a link-scoped
    /// trace event.
    fn on_fault(&mut self, idx: usize) {
        use proteus_trace::FaultKind;
        let change = self.fault_changes[idx];
        let (kind, value) = match change {
            LinkChange::Bandwidth(mbps) => {
                self.link.set_rate(mbps * 1e6);
                (FaultKind::Bandwidth, mbps)
            }
            LinkChange::Rtt(rtt) => {
                // Same half-split as construction; in-flight packets keep
                // the propagation delay they departed with.
                let half = Dur::from_nanos(rtt.as_nanos() / 2);
                self.fwd_prop = half;
                self.rev_prop = rtt - half;
                (FaultKind::Rtt, rtt.as_secs_f64())
            }
            LinkChange::Down => {
                if let Some(f) = &mut self.faults {
                    f.down = true;
                }
                (FaultKind::OutageStart, 0.0)
            }
            LinkChange::Up => {
                if let Some(f) = &mut self.faults {
                    f.down = false;
                }
                (FaultKind::OutageEnd, 0.0)
            }
        };
        if let Some(f) = &mut self.faults {
            f.stats.link_changes += 1;
        }
        self.record_fault(kind, value);
    }

    /// Appends a link-scoped fault record to the decision stream.
    fn record_fault(&mut self, kind: proteus_trace::FaultKind, value: f64) {
        self.decisions.push(proteus_trace::FlowEvent {
            flow: proteus_trace::LINK_FLOW,
            event: proteus_trace::DecisionEvent {
                t_ns: self.now.as_nanos(),
                kind: proteus_trace::EventKind::Fault(proteus_trace::Fault { kind, value }),
            },
        });
    }

    /// Moves buffered decision events out of every controller, labelling
    /// them with the flow id. Called on each telemetry sample — which
    /// bounds how full a flow's ring sink can get between sweeps — and once
    /// more at run end.
    fn drain_decisions(&mut self) {
        for (id, f) in self.flows.iter_mut().enumerate() {
            self.decision_scratch.clear();
            f.cc.drain_decisions(&mut self.decision_scratch);
            for &event in &self.decision_scratch {
                self.decisions.push(proteus_trace::FlowEvent {
                    flow: id as u32,
                    event,
                });
            }
        }
    }

    /// Records one telemetry sample per active flow.
    fn sample_trace(&mut self) {
        let t = self.now.as_secs_f64();
        for (id, f) in self.flows.iter().enumerate() {
            if !f.active {
                continue;
            }
            let snap = f.cc.snapshot();
            self.trace.push(TraceEvent {
                t,
                flow: id,
                rate_mbps: f.cc.pacing_rate().map(|bps| bps * 8.0 / 1e6),
                cwnd_bytes: match f.cc.cwnd_bytes() {
                    u64::MAX => None,
                    w => Some(w),
                },
                inflight_bytes: f.inflight_bytes,
                srtt_ms: f.rtt.srtt().map(|d| d.as_secs_f64() * 1e3),
                rttvar_ms: f.rtt.srtt().map(|_| f.rtt.rttvar().as_secs_f64() * 1e3),
                utility: snap.as_ref().and_then(|s| s.utility),
                mode: snap.as_ref().and_then(|s| s.mode),
                mode_switches: snap.map_or(0, |s| s.mode_switches),
            });
        }
    }

    fn on_flow_start(&mut self, id: FlowId) {
        {
            let f = &mut self.flows[id];
            if f.active {
                return;
            }
            f.active = true;
            f.cc.on_flow_start(self.now);
        }
        self.metrics[id].started_at = Some(self.now);
        self.sync_cc_timer(id);
        self.try_send(id);
    }

    fn on_flow_stop(&mut self, id: FlowId) {
        let f = &mut self.flows[id];
        if !f.active {
            return;
        }
        f.active = false;
        if self.metrics[id].finished_at.is_none() {
            self.metrics[id].finished_at = Some(self.now);
        }
    }

    fn on_delivery(&mut self, flow: FlowId, seq: SeqNr, bytes: u64, sent_at: Time) {
        // Receiver generates an ACK immediately; the noise model may hold it
        // (WiFi MAC aggregation) before it crosses the reverse path. The
        // return path is FIFO: ACK arrivals are clamped monotone per flow.
        let delivered_at = self.now;
        let mut release = self.noise.ack_release(self.now, &mut self.rng);
        if let Some(f) = &mut self.faults {
            // ACK compression: episodes hold ACKs past the noise model's
            // release time and let them go in a single batch.
            release = f.ack_release(release);
        }
        let mut arrival = release + self.rev_prop;
        {
            let f = &mut self.flows[flow];
            if arrival < f.last_ack_arrival_at {
                arrival = f.last_ack_arrival_at;
            }
            f.last_ack_arrival_at = arrival;
        }
        self.push(
            arrival,
            Event::AckArrival {
                flow: flow as u32,
                seq,
                bytes: bytes as u32,
                sent_at,
                delivered_at,
            },
        );
    }

    fn on_ack_arrival(
        &mut self,
        flow: FlowId,
        seq: SeqNr,
        bytes: u64,
        sent_at: Time,
        delivered_at: Time,
    ) {
        let now = self.now;
        let rtt = now.since(sent_at);
        let owd = delivered_at.since(sent_at);

        let mut lost = std::mem::take(&mut self.loss_scratch);
        lost.clear();
        let acked;
        {
            let f = &mut self.flows[flow];
            acked = f.inflight.remove(seq).is_some();
            if acked {
                f.inflight_bytes = f.inflight_bytes.saturating_sub(bytes);
                f.rtt.update(rtt);
                // Dup-ACK analog: earlier packets are lost once this ACK is
                // REORDER_THRESHOLD ahead of them.
                while let Some((oldest, pkt)) = f.inflight.front() {
                    if oldest + REORDER_THRESHOLD <= seq {
                        f.inflight.pop_front();
                        f.inflight_bytes = f.inflight_bytes.saturating_sub(pkt.bytes);
                        lost.push((oldest, pkt.sent_at, pkt.bytes));
                    } else {
                        break;
                    }
                }
            }
        }

        if !acked {
            // Already declared lost (spurious "ack"); ignore.
            self.loss_scratch = lost;
            return;
        }

        self.metrics[flow].on_ack(now, bytes, rtt);
        let ack = AckInfo {
            seq,
            bytes,
            sent_at,
            recv_at: now,
            rtt,
            one_way_delay: owd,
        };
        self.flows[flow].cc.on_ack(now, &ack);

        for &(l_seq, l_sent, l_bytes) in &lost {
            self.declare_loss(flow, l_seq, l_sent, l_bytes, false);
        }
        self.loss_scratch = lost;

        // Deliver progress to the application and check for completion.
        let finished = {
            let f = &mut self.flows[flow];
            f.app.on_delivered(now, bytes);
            f.active && f.app.finished(now)
        };
        if finished {
            self.flows[flow].active = false;
            self.metrics[flow].finished_at = Some(now);
        }

        self.rearm_rto(flow);
        self.sync_cc_timer(flow);
        self.sync_app_wake(flow);
        self.try_send(flow);
    }

    fn declare_loss(
        &mut self,
        flow: FlowId,
        seq: SeqNr,
        sent_at: Time,
        bytes: u64,
        by_timeout: bool,
    ) {
        self.metrics[flow].on_loss();
        let loss = LossInfo {
            seq,
            bytes,
            sent_at,
            detected_at: self.now,
            by_timeout,
        };
        let f = &mut self.flows[flow];
        f.cc.on_loss(self.now, &loss);
        if f.reliable {
            f.retx_bytes += bytes;
        }
    }

    fn on_rto(&mut self, flow: FlowId) {
        // At most one RTO event is ever outstanding (pushes are guarded by
        // `rto_event_at`), so a pop at any other time is impossible.
        debug_assert_eq!(self.flows[flow].rto_event_at, Some(self.now));
        let now = self.now;
        self.flows[flow].rto_event_at = None;
        let Some(deadline) = self.flows[flow].rto_deadline else {
            return;
        };
        if now < deadline {
            // The deadline moved later since this event was scheduled
            // (progress was made); re-arm at the true deadline.
            let f = &mut self.flows[flow];
            f.rto_event_at = Some(deadline);
            self.push(deadline, Event::Rto { flow: flow as u32 });
            return;
        }
        let rto = self.flows[flow].rtt.rto(MIN_RTO);
        // Declare every packet older than one RTO lost. Packets are sent in
        // seq order at non-decreasing times, so the stale set is exactly a
        // prefix of the outstanding queue.
        let mut stale = std::mem::take(&mut self.loss_scratch);
        stale.clear();
        {
            let f = &mut self.flows[flow];
            let cutoff = now - rto;
            while let Some((s, pkt)) = f.inflight.front() {
                if pkt.sent_at > cutoff {
                    break;
                }
                f.inflight.pop_front();
                f.inflight_bytes = f.inflight_bytes.saturating_sub(pkt.bytes);
                stale.push((s, pkt.sent_at, pkt.bytes));
            }
        }
        for &(s, sent, b) in &stale {
            self.declare_loss(flow, s, sent, b, true);
        }
        self.loss_scratch = stale;
        self.flows[flow].rto_deadline = None;
        self.rearm_rto(flow);
        self.sync_cc_timer(flow);
        self.try_send(flow);
    }

    fn rearm_rto(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow];
        if f.inflight.is_empty() {
            f.rto_deadline = None;
            return;
        }
        let rto = f.rtt.rto(MIN_RTO);
        let deadline = self.now + rto;
        f.rto_deadline = Some(deadline);
        if f.rto_event_at.is_none() {
            f.rto_event_at = Some(deadline);
            self.push(deadline, Event::Rto { flow: flow as u32 });
        }
    }

    fn on_cc_timer(&mut self, flow: FlowId, epoch: u64) {
        if self.flows[flow].cc_epoch != epoch {
            return;
        }
        self.flows[flow].cc_timer_at = None;
        let now = self.now;
        self.flows[flow].cc.on_timer(now);
        self.sync_cc_timer(flow);
        self.try_send(flow);
    }

    fn sync_cc_timer(&mut self, flow: FlowId) {
        let want = self.flows[flow].cc.next_timer();
        let have = self.flows[flow].cc_timer_at;
        if want == have {
            return;
        }
        let f = &mut self.flows[flow];
        f.cc_epoch += 1;
        f.cc_timer_at = want;
        if let Some(t) = want {
            let at = if t < self.now { self.now } else { t };
            let epoch = f.cc_epoch;
            self.push(
                at,
                Event::CcTimer {
                    flow: flow as u32,
                    epoch,
                },
            );
        }
    }

    fn on_app_wake(&mut self, flow: FlowId, epoch: u64) {
        if self.flows[flow].app_epoch != epoch {
            return;
        }
        let now = self.now;
        self.flows[flow].app_wake_at = None;
        self.flows[flow].app.on_wakeup(now);
        self.sync_app_wake(flow);
        self.try_send(flow);
    }

    fn sync_app_wake(&mut self, flow: FlowId) {
        let now = self.now;
        let f = &mut self.flows[flow];
        if !f.active {
            return;
        }
        let want = f.app.next_event(now).map(|t| if t < now { now } else { t });
        if want == f.app_wake_at {
            return;
        }
        f.app_epoch += 1;
        f.app_wake_at = want;
        if let Some(at) = want {
            let epoch = f.app_epoch;
            self.push(
                at,
                Event::AppWake {
                    flow: flow as u32,
                    epoch,
                },
            );
        }
    }

    fn on_spawn_cross(&mut self) {
        let now = self.now;
        let Some(cross) = &mut self.cross else {
            return;
        };
        if now >= cross.stop {
            return;
        }
        // Sample this arrival's flow and the next arrival time.
        let size = dist::uniform_inclusive(&mut self.rng, cross.size_range.0, cross.size_range.1);
        let gap = dist::exponential(&mut self.rng, 1.0 / cross.arrivals_per_sec);
        cross.spawned += 1;
        let n = cross.spawned;

        let id = self.flows.len();
        let cc = (self.cross.as_ref().expect("cross exists").cc)(id);
        let mut state = FlowState::new(cc, Box::new(proteus_transport::SizedApp::new(size)), true);
        state.active = false;
        self.flows.push(state);
        self.metrics.push(FlowMetrics::new(
            id,
            format!("cross-{n}"),
            self.throughput_bin,
            self.rtt_stride,
        ));
        self.push(now, Event::FlowStart(id as u32));
        self.push(now + Dur::from_secs_f64(gap), Event::SpawnCross);
    }

    /// Transmits as much as the window, pacing gate and application allow.
    fn try_send(&mut self, flow: FlowId) {
        let now = self.now;
        for _ in 0..MAX_BURST {
            let f = &mut self.flows[flow];
            if !f.active {
                return;
            }
            if let Some(stop) = f.stop_at {
                if now >= stop {
                    return;
                }
            }
            let cwnd = f.cc.cwnd_bytes();
            let pacing = f.cc.pacing_rate();
            assert!(
                pacing.is_some() || cwnd != u64::MAX,
                "controller {} must be paced or windowed",
                f.cc.name()
            );
            // Determine the next packet size from retransmission backlog or
            // fresh application data.
            let avail = if f.retx_bytes > 0 {
                f.retx_bytes
            } else {
                f.app.bytes_to_send(now)
            };
            if avail == 0 {
                // Application-limited; wake up when it has more to do.
                self.sync_app_wake(flow);
                return;
            }
            let bytes = avail.min(DEFAULT_PACKET_BYTES);
            if f.inflight_bytes + bytes > cwnd {
                return; // window-limited; ACKs will reopen.
            }
            if let Some(rate) = pacing {
                debug_assert!(rate > 0.0);
                if now < f.next_pace_at {
                    // Pacing-limited: schedule the next opportunity.
                    f.pace_epoch += 1;
                    let at = f.next_pace_at;
                    let epoch = f.pace_epoch;
                    self.push(
                        at,
                        Event::Pace {
                            flow: flow as u32,
                            epoch,
                        },
                    );
                    return;
                }
                let interval = Dur::from_secs_f64(bytes as f64 / rate);
                f.next_pace_at = now + interval;
            }

            // Commit the transmission.
            let seq = f.next_seq;
            f.next_seq += 1;
            if f.retx_bytes > 0 {
                f.retx_bytes -= bytes;
            } else {
                f.app.consume(bytes);
            }
            f.inflight.insert(seq, now, bytes);
            f.inflight_bytes += bytes;
            let pkt = SentPacket {
                seq,
                bytes,
                sent_at: now,
            };
            f.cc.on_packet_sent(now, &pkt);
            let arm_rto = f.rto_deadline.is_none();
            self.metrics[flow].on_sent(bytes);

            match self.link.offer(now, bytes) {
                Offer::Dropped => {
                    // Tail drop: the sender finds out via dup-ACKs or RTO.
                }
                Offer::Departs(at) => {
                    self.push(
                        at,
                        Event::QueueDrain {
                            bytes: bytes as u32,
                        },
                    );
                    // Fault layer first (its own RNG: no draws without a
                    // schedule), then the pre-existing random-loss draw from
                    // the main RNG, in the original order.
                    let fault = match &mut self.faults {
                        Some(f) => f.wire_loss(),
                        None => WireLoss::default(),
                    };
                    if let Some(p_bad) = fault.burst_started {
                        self.record_fault(proteus_trace::FaultKind::LossBurstStart, p_bad);
                    }
                    if fault.burst_ended {
                        self.record_fault(proteus_trace::FaultKind::LossBurstEnd, 0.0);
                    }
                    if fault.lost {
                        // Outage or loss burst: departs the queue, never
                        // reaches the receiver.
                    } else if self.random_loss > 0.0 && self.rng.random::<f64>() < self.random_loss
                    {
                        // Non-congestion loss on the wire after the queue.
                    } else {
                        let noise = self.noise.data_delay(&mut self.rng);
                        let mut delivered_at = at + self.fwd_prop + noise;
                        let reorder_extra = match &mut self.faults {
                            Some(f) => f.reorder_extra(),
                            None => None,
                        };
                        if let Some(extra) = reorder_extra {
                            // Reordered packet: held back by `extra` and
                            // exempted from the FIFO clamp (and from
                            // advancing it), so later packets overtake it.
                            delivered_at += extra;
                        } else {
                            // FIFO clamp: jitter never reorders a flow's
                            // packets.
                            let f = &mut self.flows[flow];
                            if delivered_at < f.last_delivery_at {
                                delivered_at = f.last_delivery_at;
                            }
                            f.last_delivery_at = delivered_at;
                        }
                        self.push(
                            delivered_at,
                            Event::Delivery {
                                flow: flow as u32,
                                seq,
                                bytes: bytes as u32,
                                sent_at: now,
                            },
                        );
                    }
                }
            }
            if arm_rto {
                self.rearm_rto(flow);
            }
            self.sync_cc_timer(flow);
        }
        debug_assert!(false, "try_send hit MAX_BURST — runaway controller?");
    }
}

/// Runs a scenario to completion.
pub fn run(scenario: Scenario) -> SimResult {
    Sim::new(scenario).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrossTrafficSpec, FlowSpec, LinkSpec};

    /// Fixed congestion window, ACK-clocked. Ignores losses.
    struct TestWindow {
        cwnd: u64,
    }

    impl CongestionControl for TestWindow {
        fn name(&self) -> &str {
            "test-window"
        }
        fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
        fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
        fn pacing_rate(&self) -> Option<f64> {
            None
        }
        fn cwnd_bytes(&self) -> u64 {
            self.cwnd
        }
    }

    /// Fixed pacing rate, no window.
    struct TestPaced {
        rate: f64, // bytes/sec
    }

    impl CongestionControl for TestPaced {
        fn name(&self) -> &str {
            "test-paced"
        }
        fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
        fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
        fn pacing_rate(&self) -> Option<f64> {
            Some(self.rate)
        }
    }

    fn link_10mbps_20ms() -> LinkSpec {
        // BDP = 10 Mbps * 20 ms = 25 KB
        LinkSpec::new(10.0, Dur::from_millis(20), 50_000)
    }

    #[test]
    fn window_flow_saturates_link() {
        // cwnd of 2 BDP guarantees full utilization.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(FlowSpec::bulk(
            "win",
            Dur::ZERO,
            || Box::new(TestWindow { cwnd: 50_000 }),
        ));
        let res = run(sc);
        let thpt =
            res.flows[0].throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(10.0));
        assert!(thpt > 9.3 && thpt <= 10.05, "throughput = {thpt}");
        // Sender-side conservation: everything sent is acked, lost or inflight.
        let m = &res.flows[0];
        assert!(m.pkts_acked + m.pkts_lost <= m.pkts_sent);
        assert!(m.pkts_sent - (m.pkts_acked + m.pkts_lost) < 100);
    }

    #[test]
    fn paced_flow_hits_its_rate() {
        // Pace at 4 Mbps on a 10 Mbps link: no queueing, RTT stays at base.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5)).flow(FlowSpec::bulk(
            "paced",
            Dur::ZERO,
            || Box::new(TestPaced { rate: 500_000.0 }),
        ));
        let res = run(sc);
        let thpt = res.flows[0].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(5.0));
        assert!((thpt - 4.0).abs() < 0.2, "throughput = {thpt}");
        // RTT should be base (20ms) + one packet serialization (1.2ms).
        let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
        assert!(p95 < 0.023, "p95 rtt = {p95}");
    }

    #[test]
    fn overdriven_window_fills_buffer_and_loses() {
        // cwnd of 8 BDP against a 2 BDP buffer: persistent queue + loss.
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(FlowSpec::bulk(
            "big",
            Dur::ZERO,
            || Box::new(TestWindow { cwnd: 200_000 }),
        ));
        let res = run(sc);
        let m = &res.flows[0];
        assert!(m.pkts_lost > 0, "expected tail drops");
        // Queue inflates RTT towards base + buffer/rate = 20ms + 40ms.
        let p95 = m.rtt_percentile(95.0).unwrap();
        assert!(p95 > 0.050, "p95 rtt = {p95}");
        // Link still saturated.
        let thpt = m.throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(10.0));
        assert!(thpt > 9.0, "throughput = {thpt}");
    }

    #[test]
    fn random_loss_is_detected() {
        let link = link_10mbps_20ms().with_random_loss(0.02);
        let sc = Scenario::new(link, Dur::from_secs(10))
            .flow(FlowSpec::bulk("paced", Dur::ZERO, || {
                Box::new(TestPaced { rate: 250_000.0 })
            }))
            .with_seed(42);
        let res = run(sc);
        let m = &res.flows[0];
        let loss = m.loss_rate();
        assert!(loss > 0.01 && loss < 0.035, "observed loss = {loss}");
    }

    #[test]
    fn sized_flow_completes_reliably_under_loss() {
        let link = link_10mbps_20ms().with_random_loss(0.05);
        let sc = Scenario::new(link, Dur::from_secs(30))
            .flow(FlowSpec::sized("xfer", Dur::ZERO, 200_000, || {
                Box::new(TestWindow { cwnd: 20_000 })
            }))
            .with_seed(7);
        let res = run(sc);
        let m = &res.flows[0];
        assert!(
            m.completion_time().is_some(),
            "sized flow should finish despite loss"
        );
        assert!(m.bytes_acked >= 200_000);
    }

    #[test]
    fn two_flows_share_capacity() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10))
            .flow(FlowSpec::bulk("a", Dur::ZERO, || {
                Box::new(TestPaced { rate: 400_000.0 })
            }))
            .flow(FlowSpec::bulk("b", Dur::ZERO, || {
                Box::new(TestPaced { rate: 400_000.0 })
            }));
        let res = run(sc);
        let a = res.flows[0].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(10.0));
        let b = res.flows[1].throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(10.0));
        assert!((a - 3.2).abs() < 0.3, "a = {a}");
        assert!((b - 3.2).abs() < 0.3, "b = {b}");
    }

    #[test]
    fn flow_start_and_stop_honored() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(10)).flow(
            FlowSpec::bulk("late", Dur::from_secs(3), || {
                Box::new(TestPaced { rate: 250_000.0 })
            })
            .with_stop(Dur::from_secs(6)),
        );
        let res = run(sc);
        let m = &res.flows[0];
        assert_eq!(m.started_at, Some(Time::ZERO + Dur::from_secs(3)));
        let before = m.throughput_bps(Time::ZERO, Time::from_secs_f64(3.0));
        let during = m.throughput_bps(Time::from_secs_f64(3.5), Time::from_secs_f64(6.0));
        let after = m.throughput_bps(Time::from_secs_f64(6.5), Time::from_secs_f64(10.0));
        assert_eq!(before, 0.0);
        assert!(during > 1.5e6);
        assert!(after < 0.1e6);
    }

    #[test]
    fn cross_traffic_spawns_flows() {
        let ct = CrossTrafficSpec {
            arrivals_per_sec: 5.0,
            size_range: (20_000, 100_000),
            cc: proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
            start: Dur::ZERO,
            stop: Dur::from_secs(10),
        };
        let sc = Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(12),
        )
        .with_cross_traffic(ct)
        .with_seed(3);
        let res = run(sc);
        let n = res.flows.len();
        // ~50 expected arrivals.
        assert!(n > 25 && n < 90, "spawned {n}");
        let finished = res
            .flows
            .iter()
            .filter(|f| f.completion_time().is_some())
            .count();
        assert!(finished as f64 > 0.9 * n as f64, "finished {finished}/{n}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            Scenario::new(link_10mbps_20ms().with_random_loss(0.01), Dur::from_secs(5))
                .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                    Box::new(TestWindow { cwnd: 60_000 })
                }))
                .with_seed(99)
        };
        let r1 = run(mk());
        let r2 = run(mk());
        assert_eq!(r1.flows[0].bytes_acked, r2.flows[0].bytes_acked);
        assert_eq!(r1.flows[0].pkts_lost, r2.flows[0].pkts_lost);
        assert_eq!(r1.link_dropped_pkts, r2.link_dropped_pkts);
    }

    #[test]
    fn queue_sampling_records() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5))
            .flow(FlowSpec::bulk("w", Dur::ZERO, || {
                Box::new(TestWindow { cwnd: 100_000 })
            }))
            .with_queue_sampling(Dur::from_millis(100));
        let res = run(sc);
        assert!(res.queue_samples.len() >= 45);
        assert!(res.queue_samples.iter().any(|&(_, q)| q > 0));
    }

    #[test]
    fn trace_sampling_records_flow_state() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(5))
            .flow(FlowSpec::bulk("p", Dur::ZERO, || {
                Box::new(TestPaced { rate: 250_000.0 }) // 2 Mbps
            }))
            .with_trace(Dur::from_millis(100));
        let res = run(sc);
        assert!(res.trace.len() >= 45, "got {} samples", res.trace.len());
        let e = &res.trace[10];
        assert_eq!(e.flow, 0);
        assert_eq!(e.rate_mbps, Some(2.0));
        assert_eq!(e.cwnd_bytes, None, "TestPaced is unwindowed");
        assert!(e.srtt_ms.unwrap() > 19.0, "srtt = {:?}", e.srtt_ms);
        assert!(e.rttvar_ms.is_some());
        assert!(e.mode.is_none(), "test stub exposes no snapshot");
        // Samples are on a strict 100 ms clock.
        assert!((res.trace[1].t - res.trace[0].t - 0.1).abs() < 1e-9);
    }

    #[test]
    fn trace_empty_when_disabled() {
        let sc = Scenario::new(link_10mbps_20ms(), Dur::from_secs(2)).flow(FlowSpec::bulk(
            "p",
            Dur::ZERO,
            || Box::new(TestPaced { rate: 250_000.0 }),
        ));
        assert!(run(sc).trace.is_empty());
    }

    #[test]
    fn base_rtt_respected_without_queueing() {
        let sc = Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(40), 500_000),
            Dur::from_secs(3),
        )
        .flow(FlowSpec::bulk("p", Dur::ZERO, || {
            Box::new(TestPaced { rate: 125_000.0 }) // 1 Mbps
        }));
        let res = run(sc);
        let min = res.flows[0]
            .rtt_values()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        // base 40ms + 0.12ms serialization
        assert!((min - 0.04012).abs() < 1e-4, "min rtt = {min}");
    }
}
