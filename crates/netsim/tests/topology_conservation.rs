//! Topology conservation invariants: packets only cross links on their
//! flow's path, per-link delivered bytes respect the link's capacity, and
//! chained queues are monotone (a downstream hop can never accept more than
//! its upstream hop delivered). Deterministic cases pin each invariant on a
//! hand-built topology; a proptest sweeps random chains, subpaths and fault
//! placements, also asserting two-run digest determinism.

use proptest::prelude::*;
use proteus_netsim::{
    run, FaultSchedule, FlowSpec, LinkId, LinkSpec, Scenario, SimResult, Topology,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed congestion window, ACK-clocked; ignores losses.
struct TestWindow {
    cwnd: u64,
}

impl CongestionControl for TestWindow {
    fn name(&self) -> &str {
        "test-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

fn digest(r: &SimResult) -> String {
    format!("{r:?}")
}

/// Per-link delivered bytes can never exceed the link's service capacity
/// over the run (one in-flight MTU of slack for the packet being served at
/// the horizon).
fn assert_capacity_bound(r: &SimResult, topo_links: &[LinkSpec], duration: Dur) {
    const MTU: u64 = 1500;
    for (i, l) in r.links.iter().enumerate() {
        let cap_bytes = topo_links[i].rate_bps() / 8.0 * duration.as_secs_f64();
        assert!(
            l.delivered_bytes as f64 <= cap_bytes + MTU as f64,
            "link {i} delivered {} bytes > capacity {cap_bytes}",
            l.delivered_bytes
        );
    }
}

/// Flows on disjoint paths never touch each other's links.
#[test]
fn disjoint_paths_do_not_cross() {
    // Three links; flow A rides link 0, flow B rides link 2, link 1 idles.
    let topo = Topology::chain(vec![
        LinkSpec::new(30.0, Dur::from_millis(20), 200_000),
        LinkSpec::new(30.0, Dur::from_millis(20), 200_000),
        LinkSpec::new(30.0, Dur::from_millis(20), 200_000),
    ]);
    let r = run(Scenario::over(topo, Dur::from_secs(5))
        .flow(
            FlowSpec::bulk("a", Dur::ZERO, || Box::new(TestWindow { cwnd: 100_000 }))
                .with_path([0]),
        )
        .flow(
            FlowSpec::bulk("b", Dur::ZERO, || Box::new(TestWindow { cwnd: 100_000 }))
                .with_path([2]),
        )
        .with_seed(21));
    assert!(r.links[0].delivered_bytes > 0, "flow a never used link 0");
    assert!(r.links[2].delivered_bytes > 0, "flow b never used link 2");
    assert_eq!(
        r.links[1].accepted_pkts, 0,
        "link 1 is on no flow's path but accepted packets"
    );
    assert_eq!(r.links[1].delivered_bytes, 0);
    assert_eq!(r.links[1].dropped_pkts, 0);
    assert_eq!(r.links[1].peak_queued_bytes, 0);
}

/// On a chain, hop i+1 can only be offered what hop i delivered: accepted
/// counts are monotone non-increasing along the path.
#[test]
fn chained_hops_are_monotone() {
    // A tight downstream buffer forces drops at hop 1, so the monotone
    // chain is exercised with real attrition.
    let topo = Topology::chain(vec![
        LinkSpec::new(50.0, Dur::from_millis(10), 375_000),
        LinkSpec::new(25.0, Dur::from_millis(10), 40_000),
        LinkSpec::new(25.0, Dur::from_millis(10), 150_000),
    ]);
    let duration = Dur::from_secs(5);
    let r = run(Scenario::over(topo.clone(), duration)
        .flow(FlowSpec::bulk("long", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 400_000 })
        }))
        .with_seed(8));
    for i in 0..r.links.len() - 1 {
        assert!(
            r.links[i + 1].accepted_pkts <= r.links[i].accepted_pkts,
            "hop {} accepted more than hop {} delivered",
            i + 1,
            i
        );
    }
    assert!(
        r.links[1].dropped_pkts > 0,
        "the tight mid-chain buffer should tail-drop"
    );
    assert_capacity_bound(&r, &topo.links, duration);
}

/// The parking-lot shape: N short flows each on one link, one long flow
/// across all of them. Every link carries the long flow plus its local
/// short flow; conservation holds per link.
#[test]
fn parking_lot_conserves_per_link() {
    let n = 3usize;
    let topo = Topology::parking_lot(n, LinkSpec::new(40.0, Dur::from_millis(10), 250_000));
    let duration = Dur::from_secs(5);
    let mut sc = Scenario::over(topo.clone(), duration).with_seed(13);
    sc = sc.flow(FlowSpec::bulk("long", Dur::ZERO, || {
        Box::new(TestWindow { cwnd: 300_000 })
    }));
    for i in 0..n {
        sc = sc.flow(
            FlowSpec::bulk("short", Dur::ZERO, || {
                Box::new(TestWindow { cwnd: 300_000 })
            })
            .with_path([i as LinkId]),
        );
    }
    let r = run(sc);
    for (i, l) in r.links.iter().enumerate() {
        assert!(l.delivered_bytes > 0, "parking-lot link {i} idle");
    }
    assert_capacity_bound(&r, &topo.links, duration);
    // Each link serves exactly two flows (long + local short), so each
    // link's delivered bytes must cover at least the long flow's acked
    // bytes (every acked byte crossed every link on the long path).
    let long_bytes = r.flows[0].bytes_acked;
    for (i, l) in r.links.iter().enumerate() {
        assert!(
            l.delivered_bytes >= long_bytes,
            "link {i} delivered less than the long flow alone"
        );
    }
}

/// Randomized chains: random link count, random contiguous subpaths,
/// optional mid-chain fault — capacity bounds hold on every link, links on
/// no path stay silent, and the run is two-run deterministic.
#[derive(Debug)]
struct RandTopo {
    n_links: usize,
    rates: Vec<f64>,
    flow_spans: Vec<(usize, usize)>, // (first hop, len)
    faulted_link: Option<usize>,
    seed: u64,
}

impl RandTopo {
    fn build(&self) -> (Scenario, Vec<LinkSpec>) {
        let links: Vec<LinkSpec> = self
            .rates
            .iter()
            .map(|&r| LinkSpec::new(r, Dur::from_millis(10), 150_000))
            .collect();
        let mut topo = Topology::chain(links.clone());
        if let Some(li) = self.faulted_link {
            topo = topo.with_faults(
                li as LinkId,
                FaultSchedule::new()
                    .bandwidth_step(Dur::from_millis(800), self.rates[li] * 0.5)
                    .outage(Dur::from_millis(1200), Dur::from_millis(100)),
            );
        }
        let mut sc = Scenario::over(topo, Dur::from_secs(2)).with_seed(self.seed);
        for (i, &(first, len)) in self.flow_spans.iter().enumerate() {
            let path: Vec<LinkId> = (first..first + len).map(|l| l as LinkId).collect();
            let cwnd = 60_000 + 30_000 * i as u64;
            sc = sc.flow(
                FlowSpec::bulk("f", Dur::from_millis(50 * i as u64), move || {
                    Box::new(TestWindow { cwnd })
                })
                .with_path(path),
            );
        }
        (sc, links)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_chains_conserve_and_are_deterministic(
        n_links in 1usize..5,
        rate_seed in 0u64..1000,
        n_flows in 1usize..4,
        span_seed in 0u64..1000,
        fault_on in any::<bool>(),
        fault_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        // Derive rates and spans from the seeds so the case shrinks well.
        let rates: Vec<f64> = (0..n_links)
            .map(|i| 15.0 + ((rate_seed >> (i * 8)) & 0xff) as f64 / 4.0)
            .collect();
        let flow_spans: Vec<(usize, usize)> = (0..n_flows)
            .map(|i| {
                let s = (span_seed >> (i * 10)) as usize;
                let first = s % n_links;
                let len = 1 + (s / n_links) % (n_links - first);
                (first, len)
            })
            .collect();
        let rt = RandTopo {
            n_links,
            rates,
            flow_spans,
            faulted_link: fault_on.then_some(fault_idx % n_links),
            seed,
        };
        let (sc, links) = rt.build();
        let r = run(sc);
        let duration = Dur::from_secs(2);

        // Capacity: no link delivers more than it can serve.
        const MTU: u64 = 1500;
        for (i, l) in r.links.iter().enumerate() {
            let cap = links[i].rate_bps() / 8.0 * duration.as_secs_f64();
            prop_assert!(
                l.delivered_bytes as f64 <= cap + MTU as f64,
                "link {} over capacity in {:?}", i, rt
            );
        }

        // Isolation: links on no flow's path stay untouched.
        let mut used = vec![false; rt.n_links];
        for &(first, len) in &rt.flow_spans {
            for u in used.iter_mut().skip(first).take(len) {
                *u = true;
            }
        }
        for (i, l) in r.links.iter().enumerate() {
            if !used[i] {
                prop_assert_eq!(l.accepted_pkts, 0, "unused link {} accepted in {:?}", i, rt);
                prop_assert_eq!(l.delivered_bytes, 0);
            }
        }

        // Determinism: an identical rebuild reproduces every byte.
        let (sc2, _) = rt.build();
        prop_assert_eq!(digest(&r), digest(&run(sc2)), "nondeterministic: {:?}", rt);
    }
}
