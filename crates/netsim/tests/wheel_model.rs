//! Model-based property test: the timing wheel must pop in exactly the
//! same `(time, push-sequence)` order as the `BinaryHeap` it replaced in
//! the engine, under randomized interleavings of the operations the engine
//! performs — pushes at the current instant (same-timestamp ties), short
//! timer horizons, multi-level jumps, and far-future overflow entries —
//! mirroring the `InflightTracker` vs `BTreeMap` model test from PR 2.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use proteus_netsim::sched::EventQueue;
use proteus_netsim::Scheduler;
use proteus_transport::Time;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta` ns after the last popped time.
    Push { delta: u64 },
    /// Pop up to `count` events (stops when empty).
    Pop { count: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Deltas chosen to land in every region of the wheel: 0 exercises
    // same-instant ties and the drained-slot heap, small values stay inside
    // one level-0 slot (16.4 us), mid values cross level-0/1 windows, large
    // values hit levels 2-3, and huge values land in the overflow list.
    let delta = prop_oneof![
        3 => Just(0u64),
        4 => 1u64..20_000,
        3 => 20_000u64..5_000_000,
        2 => 5_000_000u64..2_000_000_000,
        1 => 2_000_000_000u64..100_000_000_000_000,
    ];
    prop_oneof![
        5 => delta.prop_map(|delta| Op::Push { delta }),
        3 => (1usize..8).prop_map(|count| Op::Pop { count }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_binary_heap_reference(ops in prop::collection::vec(op_strategy(), 1..500)) {
        // Deliberately tiny initial capacity: growth must never drop or
        // reorder entries.
        let mut wheel: EventQueue<u64> = EventQueue::new(Scheduler::Wheel, 4);
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // The engine never schedules into the past: every push lands at or
        // after the most recently popped time.
        let mut now = 0u64;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Push { delta } => {
                    seq += 1;
                    let at = now.saturating_add(delta);
                    wheel.push(Time::from_nanos(at), seq, seq);
                    reference.push(Reverse((at, seq)));
                }
                Op::Pop { count } => {
                    for _ in 0..count {
                        let want = reference
                            .pop()
                            .map(|Reverse((at, s))| (Time::from_nanos(at), s, s));
                        let got = wheel.pop();
                        prop_assert_eq!(got, want, "pop diverged at step {}", step);
                        if let Some((at, _, _)) = got {
                            now = at.as_nanos();
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.len(), reference.len(), "len diverged at step {}", step);
        }

        // Drain: every remaining entry pops in exact (time, seq) order.
        while let Some(Reverse((at, s))) = reference.pop() {
            prop_assert_eq!(wheel.pop(), Some((Time::from_nanos(at), s, s)));
        }
        prop_assert!(wheel.pop().is_none());
    }
}
