//! Wire-path equivalence: the fused wire ring and the staged scheduler
//! chain must produce *identical* `SimResult`s, because fusion preserves
//! the exact `(time, push-sequence)` key of every replaced event and the
//! main loop merges the streams in that same total order. Exercised on the
//! `sched_equivalence.rs` scenario matrix (legacy-shaped, faulted, churn)
//! plus clean-with-loss and paced scenarios, and on randomized scenarios
//! via proptest (populations × churn × faults × noise), which doubles as a
//! fallback-correctness check: faulted/noisy scenarios must run staged
//! (zero fused dispatches) even when `WirePath::Fused` is selected.

use proptest::prelude::*;
use proteus_netsim::{
    run, ChurnClass, ChurnSpec, CrossTrafficSpec, FaultSchedule, FlowSpec, GilbertElliott,
    LinkSpec, NoiseConfig, Scenario, SimResult, WirePath,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed congestion window, ACK-clocked; ignores losses.
struct TestWindow {
    cwnd: u64,
}

impl CongestionControl for TestWindow {
    fn name(&self) -> &str {
        "test-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// Fixed pacing rate, no window.
struct TestPaced {
    rate: f64, // bytes/sec
}

impl CongestionControl for TestPaced {
    fn name(&self) -> &str {
        "test-paced"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Behavioral digest: the full `SimResult` debug rendering with the event
/// accounting zeroed out. `EventStats` measures queue *mechanics* — the
/// fused path deliberately pushes fewer scheduler events — so it is the one
/// field where staged and fused legitimately differ; everything observable
/// (metrics, samples, traces, decisions, fault stats) must match exactly.
fn digest(r: &SimResult) -> String {
    let mut scrubbed = r.clone();
    scrubbed.events = Default::default();
    format!("{scrubbed:?}")
}

/// Runs the scenario on both wire paths and asserts digest equality.
/// Returns the fused run's result for gate assertions.
fn assert_paths_agree(mk: impl Fn() -> Scenario) -> SimResult {
    let fused = run(mk().with_wire_path(WirePath::Fused));
    let staged = run(mk().with_wire_path(WirePath::Staged));
    assert_eq!(
        digest(&fused),
        digest(&staged),
        "fused and staged wire paths diverged on an identical scenario"
    );
    assert_eq!(
        staged.events.fused, 0,
        "staged path must never dispatch through the wire ring"
    );
    fused
}

#[test]
fn clean_ack_clocked_scenario_fuses_and_matches() {
    let fused = assert_paths_agree(|| {
        Scenario::new(
            LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
            Dur::from_secs(5),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 150_000 })
        }))
        .flow(
            FlowSpec::bulk("paced", Dur::from_secs(1), || {
                Box::new(TestPaced { rate: 500_000.0 })
            })
            .with_stop(Dur::from_secs(4)),
        )
        .with_queue_sampling(Dur::from_millis(50))
        .with_trace(Dur::from_millis(100))
        .with_seed(7)
    });
    assert!(
        fused.events.fused > 0,
        "clean scenario selected Fused but dispatched nothing through the ring"
    );
    // Every data packet costs three wire dispatches minus the drain-only
    // entries; on a loss-free link the three stages account for the bulk of
    // all dispatches.
    assert!(fused.events.fused_fraction() > 0.5);
}

#[test]
fn clean_scenario_with_random_loss_fuses_and_matches() {
    // `random_loss` is fusion-compatible: the per-packet draw happens at
    // admission from the main RNG in both paths, in the same order.
    let fused = assert_paths_agree(|| {
        Scenario::new(
            LinkSpec::new(40.0, Dur::from_millis(30), 300_000).with_random_loss(0.01),
            Dur::from_secs(6),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 150_000 })
        }))
        .with_cross_traffic(CrossTrafficSpec {
            arrivals_per_sec: 3.0,
            size_range: (20_000, 100_000),
            cc: proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
            start: Dur::ZERO,
            stop: Dur::from_secs(5),
        })
        .with_trace(Dur::from_millis(100))
        .with_seed(1234)
    });
    assert!(fused.events.fused > 0);
}

#[test]
fn churn_population_fuses_and_matches() {
    let fused = assert_paths_agree(|| {
        let classes = vec![
            ChurnClass::new(
                "win",
                2.0,
                proteus_transport::factory(|_| TestWindow { cwnd: 40_000 }),
            ),
            ChurnClass::new(
                "paced",
                1.0,
                proteus_transport::factory(|_| TestPaced { rate: 250_000.0 }),
            ),
        ];
        Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(10),
        )
        .with_churn(
            ChurnSpec::new(6.0, Dur::from_secs(2), classes)
                .with_initial(8)
                .with_window(Dur::ZERO, Dur::from_secs(8)),
        )
        .with_seed(42)
    });
    assert!(fused.events.fused > 0);
}

#[test]
fn noisy_scenario_falls_back_to_staged() {
    // Noise draws are RNG-order-sensitive: selecting Fused must be a no-op.
    let fused = assert_paths_agree(|| {
        Scenario::new(
            LinkSpec::new(40.0, Dur::from_millis(30), 300_000)
                .with_random_loss(0.005)
                .with_noise(NoiseConfig::Gaussian {
                    std: Dur::from_micros(300),
                }),
            Dur::from_secs(6),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 150_000 })
        }))
        .with_trace(Dur::from_millis(100))
        .with_seed(1234)
    });
    assert_eq!(fused.events.fused, 0, "noise must force the staged path");
}

#[test]
fn faulted_scenario_falls_back_to_staged() {
    let fused = assert_paths_agree(|| {
        Scenario::new(
            LinkSpec::new(20.0, Dur::from_millis(30), 150_000),
            Dur::from_secs(10),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 100_000 })
        }))
        .with_faults(
            FaultSchedule::new()
                .bandwidth_step(Dur::from_secs(3), 8.0)
                .rtt_step(Dur::from_secs(5), Dur::from_millis(60))
                .outage(Dur::from_secs(7), Dur::from_millis(500))
                .with_burst_loss(GilbertElliott {
                    p_enter: 0.002,
                    p_exit: 0.3,
                    loss_good: 0.0,
                    loss_bad: 0.4,
                }),
        )
        .with_trace(Dur::from_millis(200))
        .with_seed(77)
    });
    assert_eq!(
        fused.events.fused, 0,
        "a fault schedule must force the staged path"
    );
}

#[test]
fn empty_fault_schedule_still_fuses() {
    // Same normalization rule as `with_faults`: an empty schedule is the
    // static fast path, so it must not disable fusion either.
    let fused = assert_paths_agree(|| {
        Scenario::new(
            LinkSpec::new(30.0, Dur::from_millis(20), 200_000),
            Dur::from_secs(4),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 80_000 })
        }))
        .with_faults(FaultSchedule::new())
        .with_seed(5)
    });
    assert!(fused.events.fused > 0);
}

/// One randomized scenario: population shape, churn, optional noise and
/// optional faults all vary; fused-vs-staged digest equality must hold
/// everywhere, with faulted/noisy draws transparently running staged.
#[derive(Debug, Clone)]
struct RandScenario {
    rate_mbps: f64,
    rtt_ms: u64,
    buffer: u64,
    loss: f64,
    n_win: usize,
    n_paced: usize,
    churn: bool,
    noisy: bool,
    faulted: bool,
    seed: u64,
}

impl RandScenario {
    fn build(&self) -> Scenario {
        let mut s = Scenario::new(
            LinkSpec::new(self.rate_mbps, Dur::from_millis(self.rtt_ms), self.buffer)
                .with_random_loss(self.loss)
                .with_noise(if self.noisy {
                    NoiseConfig::Gaussian {
                        std: Dur::from_micros(200),
                    }
                } else {
                    NoiseConfig::None
                }),
            Dur::from_secs(2),
        )
        .with_seed(self.seed);
        for i in 0..self.n_win {
            let cwnd = 40_000 + 20_000 * i as u64;
            s = s.flow(FlowSpec::bulk(
                "win",
                Dur::from_millis(100 * i as u64),
                move || Box::new(TestWindow { cwnd }),
            ));
        }
        for i in 0..self.n_paced {
            let rate = 200_000.0 + 150_000.0 * i as f64;
            s = s.flow(FlowSpec::bulk(
                "paced",
                Dur::from_millis(50 * i as u64),
                move || Box::new(TestPaced { rate }),
            ));
        }
        if self.churn {
            let classes = vec![ChurnClass::new(
                "churn-win",
                1.0,
                proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
            )];
            s = s.with_churn(
                ChurnSpec::new(4.0, Dur::from_millis(500), classes)
                    .with_initial(3)
                    .with_window(Dur::ZERO, Dur::from_millis(1500)),
            );
        }
        if self.faulted {
            s = s.with_faults(
                FaultSchedule::new()
                    .bandwidth_step(Dur::from_millis(800), self.rate_mbps * 0.5)
                    .outage(Dur::from_millis(1200), Dur::from_millis(100)),
            );
        }
        s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn randomized_scenarios_are_wire_path_independent(
        rate_mbps in 10.0f64..100.0,
        rtt_ms in 5u64..60,
        buffer in 50_000u64..500_000,
        loss in prop_oneof![Just(0.0), 0.001f64..0.02],
        n_win in 0usize..3,
        n_paced in 0usize..3,
        churn in any::<bool>(),
        noisy in any::<bool>(),
        faulted in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let rs = RandScenario {
            rate_mbps,
            rtt_ms,
            buffer,
            loss,
            n_win,
            n_paced,
            churn,
            noisy,
            faulted,
            seed,
        };
        let fused = run(rs.build().with_wire_path(WirePath::Fused));
        let staged = run(rs.build().with_wire_path(WirePath::Staged));
        prop_assert_eq!(
            digest(&fused),
            digest(&staged),
            "fused and staged diverged: {:?}", rs
        );
        prop_assert_eq!(staged.events.fused, 0);
        if rs.noisy || rs.faulted {
            prop_assert_eq!(
                fused.events.fused, 0,
                "noisy/faulted scenario must fall back to staged: {:?}", rs
            );
        }
    }
}
