//! Model-based property test: [`InflightTracker`] must behave exactly like
//! the `BTreeMap<SeqNr, (Time, u64)>` it replaced in the engine hot path,
//! under randomized interleavings of the operations the engine performs —
//! sends (monotone seqs, non-decreasing times), ACK removals (hits, repeats,
//! and out-of-range seqs), dup-ACK oldest-first sweeps, and RTO prefix pops.

use std::collections::BTreeMap;

use proptest::prelude::*;
use proteus_netsim::{InflightPkt, InflightTracker};
use proteus_transport::{SeqNr, Time};

#[derive(Debug, Clone)]
enum Op {
    /// Transmit the next sequence number at the current time.
    Send { bytes: u64 },
    /// ACK an arbitrary sequence number (possibly already gone or never sent).
    Ack { pick: u64 },
    /// Dup-ACK loss inference: declare up to `count` oldest packets lost.
    DupAckSweep { count: usize },
    /// RTO: drain every packet sent at or before a cutoff, oldest first.
    RtoSweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..=1500).prop_map(|bytes| Op::Send { bytes }),
        4 => any::<u64>().prop_map(|pick| Op::Ack { pick }),
        1 => (0usize..4).prop_map(|count| Op::DupAckSweep { count }),
        1 => Just(Op::RtoSweep),
    ]
}

/// The reference model's view of the oldest outstanding packet.
fn ref_front(reference: &BTreeMap<SeqNr, (Time, u64)>) -> Option<(SeqNr, InflightPkt)> {
    reference
        .iter()
        .next()
        .map(|(&seq, &(sent_at, bytes))| (seq, InflightPkt { sent_at, bytes }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tracker_matches_btreemap_reference(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tracker = InflightTracker::new();
        let mut reference: BTreeMap<SeqNr, (Time, u64)> = BTreeMap::new();
        let mut next_seq: SeqNr = 0;

        for (step, op) in ops.iter().enumerate() {
            let now = Time::from_millis(step as u64);
            match *op {
                Op::Send { bytes } => {
                    tracker.insert(next_seq, now, bytes);
                    reference.insert(next_seq, (now, bytes));
                    next_seq += 1;
                }
                Op::Ack { pick } => {
                    // Bias slightly past `next_seq` so removals beyond the
                    // tail get exercised too.
                    let seq = pick % (next_seq + 3);
                    let got = tracker.remove(seq);
                    let want = reference
                        .remove(&seq)
                        .map(|(sent_at, bytes)| InflightPkt { sent_at, bytes });
                    prop_assert_eq!(got, want, "remove({}) at step {}", seq, step);
                }
                Op::DupAckSweep { count } => {
                    for _ in 0..count {
                        let want = ref_front(&reference);
                        if let Some((seq, _)) = want {
                            reference.remove(&seq);
                        }
                        prop_assert_eq!(tracker.pop_front(), want, "pop_front at step {}", step);
                    }
                }
                Op::RtoSweep => {
                    let cutoff = Time::from_millis(step as u64 / 2);
                    while let Some((_, pkt)) = tracker.front() {
                        if pkt.sent_at > cutoff {
                            break;
                        }
                        let want = ref_front(&reference);
                        if let Some((seq, _)) = want {
                            reference.remove(&seq);
                        }
                        prop_assert_eq!(tracker.pop_front(), want, "rto pop at step {}", step);
                    }
                    // Times are non-decreasing in seq, so the model must also
                    // have nothing at or before the cutoff left.
                    if let Some((_, pkt)) = ref_front(&reference) {
                        prop_assert!(pkt.sent_at > cutoff, "model retains expired packet");
                    }
                }
            }
            prop_assert_eq!(tracker.len(), reference.len(), "len diverged at step {}", step);
            prop_assert_eq!(tracker.is_empty(), reference.is_empty());
            prop_assert_eq!(tracker.front(), ref_front(&reference), "front diverged at step {}", step);
        }
    }
}
