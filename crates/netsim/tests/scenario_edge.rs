//! Scenario-level edge cases and statistical sanity checks for the
//! simulator.

use proteus_netsim::{run, CrossTrafficSpec, FlowSpec, LinkSpec, NoiseConfig, Scenario};
use proteus_stats::Welford;
use proteus_transport::{factory, AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed window (ACK-clocked) helper.
struct Win(u64);
impl CongestionControl for Win {
    fn name(&self) -> &str {
        "win"
    }
    fn on_ack(&mut self, _: Time, _: &AckInfo) {}
    fn on_loss(&mut self, _: Time, _: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.0
    }
}

/// Fixed pacing rate helper.
struct Rate(f64);
impl CongestionControl for Rate {
    fn name(&self) -> &str {
        "rate"
    }
    fn on_ack(&mut self, _: Time, _: &AckInfo) {}
    fn on_loss(&mut self, _: Time, _: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.0)
    }
}

#[test]
fn sized_flows_complete_under_wifi_noise() {
    let link = LinkSpec::new(20.0, Dur::from_millis(40), 200_000)
        .with_noise(NoiseConfig::wifi_default())
        .with_random_loss(0.01);
    let mut sc = Scenario::new(link, Dur::from_secs(60)).with_seed(3);
    for i in 0..5 {
        sc = sc.flow(FlowSpec::sized(
            format!("xfer-{i}"),
            Dur::from_secs(i * 2),
            400_000,
            || Box::new(Win(40_000)),
        ));
    }
    let res = run(sc);
    for f in &res.flows {
        assert!(f.completion_time().is_some(), "{} did not complete", f.name);
        assert!(f.bytes_acked >= 400_000);
    }
}

#[test]
fn probe_rtt_deviation_grows_with_cross_traffic() {
    // The statistical backbone of Fig. 2: more Poisson arrivals ⇒ larger
    // RTT deviation seen by a fixed-rate probe.
    let deviation_at = |rate: f64| -> f64 {
        let link = LinkSpec::new(100.0, Dur::from_millis(60), 1_500_000);
        let mut sc = Scenario::new(link, Dur::from_secs(40))
            .flow(FlowSpec::bulk("probe", Dur::ZERO, || {
                Box::new(Rate(2_500_000.0))
            }))
            .with_seed(11);
        if rate > 0.0 {
            sc = sc.with_cross_traffic(CrossTrafficSpec {
                arrivals_per_sec: rate,
                size_range: (20_000, 100_000),
                cc: factory(|_| proteus_baselines::Cubic::new()),
                start: Dur::ZERO,
                stop: Dur::from_secs(40),
            });
        }
        let res = run(sc);
        let mut acc = Welford::new();
        for &(_, rtt) in &res.flows[0].rtt_samples {
            acc.add(rtt);
        }
        acc.std_dev()
    };
    let idle = deviation_at(0.0);
    let busy = deviation_at(9.0);
    assert!(
        busy > 3.0 * idle.max(1e-6),
        "idle dev {idle}, busy dev {busy}"
    );
}

#[test]
fn gaussian_noise_spreads_rtt_without_breaking_transport() {
    let link =
        LinkSpec::new(20.0, Dur::from_millis(40), 200_000).with_noise(NoiseConfig::Gaussian {
            std: Dur::from_millis(2),
        });
    let sc = Scenario::new(link, Dur::from_secs(20))
        .flow(FlowSpec::bulk("p", Dur::ZERO, || Box::new(Rate(500_000.0))))
        .with_seed(7);
    let res = run(sc);
    let m = &res.flows[0];
    assert_eq!(m.pkts_lost, 0, "jitter must not fake losses");
    let p95 = m.rtt_percentile(95.0).unwrap();
    let p5 = proteus_stats::percentile(&m.rtt_values(), 5.0).unwrap();
    assert!(p95 - p5 > 0.002, "jitter should spread RTTs: {p5}..{p95}");
}

#[test]
fn rtt_values_in_window_filters_by_time() {
    let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
    let sc = Scenario::new(link, Dur::from_secs(10))
        .flow(FlowSpec::bulk("p", Dur::ZERO, || Box::new(Rate(500_000.0))))
        .with_seed(7);
    let res = run(sc);
    let early = res.flows[0].rtt_values_in(Time::ZERO, Time::from_secs_f64(2.0));
    let all = res.flows[0].rtt_values();
    assert!(!early.is_empty());
    assert!(early.len() < all.len());
}

#[test]
fn queue_samples_track_buffer_occupancy_bounds() {
    let link = LinkSpec::new(10.0, Dur::from_millis(20), 60_000);
    let sc = Scenario::new(link, Dur::from_secs(10))
        .flow(FlowSpec::bulk("w", Dur::ZERO, || Box::new(Win(500_000))))
        .with_queue_sampling(Dur::from_millis(50))
        .with_seed(7);
    let res = run(sc);
    assert!(res.queue_samples.len() > 150);
    for &(_, q) in &res.queue_samples {
        assert!(q <= 60_000, "queue exceeded the buffer: {q}");
    }
    // An oversized window must pin the buffer near full at least sometimes.
    let max = res.queue_samples.iter().map(|&(_, q)| q).max().unwrap();
    assert!(max > 55_000, "max queue = {max}");
}

#[test]
fn unreliable_sized_flow_may_finish_short_on_lossy_link() {
    // With reliability off, lost bytes are not retransmitted — the flow
    // only "finishes" if every byte is delivered, so under loss it keeps
    // waiting (documents the semantics of `with_reliability(false)`).
    let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000).with_random_loss(0.05);
    let sc = Scenario::new(link, Dur::from_secs(20))
        .flow(
            FlowSpec::sized("x", Dur::ZERO, 1_000_000, || Box::new(Win(50_000)))
                .with_reliability(false),
        )
        .with_seed(7);
    let res = run(sc);
    let m = &res.flows[0];
    assert!(m.bytes_acked < 1_000_000);
    assert!(m.completion_time().is_none());
}

#[test]
fn zero_length_cross_traffic_window_spawns_nothing() {
    let link = LinkSpec::new(20.0, Dur::from_millis(20), 100_000);
    let sc = Scenario::new(link, Dur::from_secs(5))
        .with_cross_traffic(CrossTrafficSpec {
            arrivals_per_sec: 100.0,
            size_range: (1_000, 2_000),
            cc: factory(|_| proteus_baselines::Cubic::new()),
            start: Dur::from_secs(2),
            stop: Dur::from_secs(2),
        })
        .with_seed(7);
    let res = run(sc);
    assert!(res.flows.is_empty(), "spawned {} flows", res.flows.len());
}

#[test]
fn many_flow_scenario_remains_stable_and_work_conserving() {
    let link = LinkSpec::new(100.0, Dur::from_millis(20), 500_000);
    let mut sc = Scenario::new(link, Dur::from_secs(20))
        .with_seed(5)
        .with_rtt_stride(8);
    for i in 0..12 {
        sc = sc.flow(FlowSpec::bulk(
            format!("f{i}"),
            Dur::from_secs_f64(i as f64 * 0.5),
            move || Box::new(Win(80_000)) as Box<dyn CongestionControl>,
        ));
    }
    let res = run(sc);
    let util = res.utilization(Time::from_secs_f64(8.0), Time::from_secs_f64(20.0));
    assert!(util > 0.95, "utilization = {util}");
    for f in &res.flows {
        assert!(f.bytes_acked > 0, "{} starved entirely", f.name);
    }
}
