//! Engine-level scheduler equivalence: the timing wheel and the reference
//! binary heap must produce *identical* `SimResult`s — every metric, RTT
//! sample, queue sample, telemetry record and decision event — because both
//! pop events in the same `(time, push-sequence)` total order. Exercised on
//! legacy-shaped scenarios (multi-flow, cross traffic, noise, random loss,
//! faults, telemetry) and on a churning population.

use proteus_netsim::{
    run, ChurnClass, ChurnSpec, CrossTrafficSpec, FaultSchedule, FlowSpec, GilbertElliott,
    LinkSpec, NoiseConfig, Scenario, Scheduler, SimResult,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed congestion window, ACK-clocked; ignores losses.
struct TestWindow {
    cwnd: u64,
}

impl CongestionControl for TestWindow {
    fn name(&self) -> &str {
        "test-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// Fixed pacing rate, no window.
struct TestPaced {
    rate: f64, // bytes/sec
}

impl CongestionControl for TestPaced {
    fn name(&self) -> &str {
        "test-paced"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// A `SimResult` is plain data all the way down; its debug rendering covers
/// every field (per-flow counters, throughput bins, RTT samples, queue and
/// telemetry samples, decisions, fault stats), so string equality here is
/// full-result equality.
fn digest(r: &SimResult) -> String {
    format!("{r:?}")
}

fn assert_schedulers_agree(mk: impl Fn() -> Scenario) {
    let wheel = run(mk().with_scheduler(Scheduler::Wheel));
    let heap = run(mk().with_scheduler(Scheduler::Heap));
    assert_eq!(
        digest(&wheel),
        digest(&heap),
        "wheel and heap diverged on an identical scenario"
    );
}

#[test]
fn legacy_shaped_scenario_is_scheduler_independent() {
    // Everything the legacy event stream exercises at once: window + paced
    // flows, a late start/stop, Poisson cross traffic, random loss,
    // Gaussian noise, queue sampling and telemetry.
    assert_schedulers_agree(|| {
        Scenario::new(
            LinkSpec::new(40.0, Dur::from_millis(30), 300_000)
                .with_random_loss(0.005)
                .with_noise(NoiseConfig::Gaussian {
                    std: Dur::from_micros(300),
                }),
            Dur::from_secs(8),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 150_000 })
        }))
        .flow(
            FlowSpec::bulk("paced", Dur::from_secs(1), || {
                Box::new(TestPaced { rate: 500_000.0 })
            })
            .with_stop(Dur::from_secs(6)),
        )
        .with_cross_traffic(CrossTrafficSpec {
            arrivals_per_sec: 3.0,
            size_range: (20_000, 100_000),
            cc: proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
            start: Dur::ZERO,
            stop: Dur::from_secs(7),
        })
        .with_queue_sampling(Dur::from_millis(50))
        .with_trace(Dur::from_millis(100))
        .with_seed(1234)
    });
}

#[test]
fn faulted_scenario_is_scheduler_independent() {
    assert_schedulers_agree(|| {
        Scenario::new(
            LinkSpec::new(20.0, Dur::from_millis(30), 150_000),
            Dur::from_secs(10),
        )
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 100_000 })
        }))
        .with_faults(
            FaultSchedule::new()
                .bandwidth_step(Dur::from_secs(3), 8.0)
                .rtt_step(Dur::from_secs(5), Dur::from_millis(60))
                .outage(Dur::from_secs(7), Dur::from_millis(500))
                .with_burst_loss(GilbertElliott {
                    p_enter: 0.002,
                    p_exit: 0.3,
                    loss_good: 0.0,
                    loss_bad: 0.4,
                }),
        )
        .with_trace(Dur::from_millis(200))
        .with_seed(77)
    });
}

#[test]
fn churn_population_is_scheduler_independent() {
    assert_schedulers_agree(|| {
        let classes = vec![
            ChurnClass::new(
                "win",
                2.0,
                proteus_transport::factory(|_| TestWindow { cwnd: 40_000 }),
            ),
            ChurnClass::new(
                "paced",
                1.0,
                proteus_transport::factory(|_| TestPaced { rate: 250_000.0 }),
            ),
        ];
        Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(10),
        )
        .with_churn(
            ChurnSpec::new(6.0, Dur::from_secs(2), classes)
                .with_initial(8)
                .with_window(Dur::ZERO, Dur::from_secs(8)),
        )
        .with_seed(42)
    });
}
