//! Topology reduction equivalence: a single-link [`Topology`] must be the
//! legacy dumbbell, *byte for byte*. The engine routes every packet through
//! the same per-hop staged chain regardless of path length, and for a
//! one-link path that chain pushes the same events at the same instants and
//! draws from the same RNGs in the same order as the pre-topology engine
//! (DESIGN.md §4g). These tests pin that reduction over the legacy scenario
//! matrix (multi-flow + cross traffic + noise + loss, faults, churn), pin
//! the topology-level fault attachment against the legacy scenario-level
//! one, and pin the fused-path gate: multi-link topologies must fall back
//! to the staged path with identical observable results.

use proteus_netsim::{
    run, ChurnClass, ChurnSpec, CrossTrafficSpec, FaultSchedule, FlowSpec, GilbertElliott,
    LinkSpec, NoiseConfig, Scenario, SimResult, Topology, WirePath,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed congestion window, ACK-clocked; ignores losses.
struct TestWindow {
    cwnd: u64,
}

impl CongestionControl for TestWindow {
    fn name(&self) -> &str {
        "test-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// Fixed pacing rate, no window.
struct TestPaced {
    rate: f64, // bytes/sec
}

impl CongestionControl for TestPaced {
    fn name(&self) -> &str {
        "test-paced"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// A `SimResult` is plain data all the way down; its debug rendering covers
/// every field, so string equality here is full-result equality.
fn digest(r: &SimResult) -> String {
    format!("{r:?}")
}

/// Digest with the event accounting zeroed: `EventStats` measures queue
/// mechanics (the fused path legitimately pushes fewer scheduler events),
/// so it is excluded when comparing across wire paths.
fn digest_scrubbed(r: &SimResult) -> String {
    let mut scrubbed = r.clone();
    scrubbed.events = Default::default();
    format!("{scrubbed:?}")
}

/// The legacy matrix scenario: window + paced flows, late start/stop,
/// Poisson cross traffic, random loss, Gaussian noise, sampling, telemetry.
fn legacy_matrix(link: LinkSpec) -> Scenario {
    Scenario::new(
        link.with_random_loss(0.005)
            .with_noise(NoiseConfig::Gaussian {
                std: Dur::from_micros(300),
            }),
        Dur::from_secs(8),
    )
    .flow(FlowSpec::bulk("win", Dur::ZERO, || {
        Box::new(TestWindow { cwnd: 150_000 })
    }))
    .flow(
        FlowSpec::bulk("paced", Dur::from_secs(1), || {
            Box::new(TestPaced { rate: 500_000.0 })
        })
        .with_stop(Dur::from_secs(6)),
    )
    .with_cross_traffic(CrossTrafficSpec {
        arrivals_per_sec: 3.0,
        size_range: (20_000, 100_000),
        cc: proteus_transport::factory(|_| TestWindow { cwnd: 30_000 }),
        start: Dur::ZERO,
        stop: Dur::from_secs(7),
    })
    .with_queue_sampling(Dur::from_millis(50))
    .with_trace(Dur::from_millis(100))
    .with_seed(1234)
}

fn fault_schedule() -> FaultSchedule {
    FaultSchedule::new()
        .bandwidth_step(Dur::from_secs(3), 8.0)
        .rtt_step(Dur::from_secs(5), Dur::from_millis(60))
        .outage(Dur::from_secs(7), Dur::from_millis(500))
        .with_burst_loss(GilbertElliott {
            p_enter: 0.002,
            p_exit: 0.3,
            loss_good: 0.0,
            loss_bad: 0.4,
        })
}

/// Explicit single-link paths must be indistinguishable from the default
/// (all-links) path on a one-link topology, over the full legacy matrix.
#[test]
fn explicit_single_link_path_matches_default() {
    let link = LinkSpec::new(40.0, Dur::from_millis(30), 300_000);
    let implicit = run(legacy_matrix(link));
    let mut explicit_sc = legacy_matrix(link);
    for f in &mut explicit_sc.flows {
        f.path = Some(vec![0]);
    }
    let explicit = run(explicit_sc);
    assert_eq!(
        digest(&implicit),
        digest(&explicit),
        "path [0] diverged from the default path on a single-link topology"
    );
}

/// `Topology::with_faults(0, s)` must be byte-identical to the legacy
/// scenario-level `Scenario::with_faults(s)` — same salted fault stream,
/// same event order.
#[test]
fn topology_fault_attachment_matches_legacy() {
    let link = LinkSpec::new(20.0, Dur::from_millis(30), 150_000);
    let mk_flows = |sc: Scenario| {
        sc.flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 100_000 })
        }))
        .with_trace(Dur::from_millis(200))
        .with_seed(77)
    };
    let legacy = run(mk_flows(
        Scenario::new(link, Dur::from_secs(10)).with_faults(fault_schedule()),
    ));
    let topo = run(mk_flows(Scenario::over(
        Topology::single(link).with_faults(0, fault_schedule()),
        Dur::from_secs(10),
    )));
    assert_eq!(
        digest(&legacy),
        digest(&topo),
        "topology-level fault attachment diverged from scenario-level"
    );
}

/// Churn populations must be path-invariant on a single link: explicitly
/// routing every churn class over `[0]` changes nothing.
#[test]
fn churned_single_link_topology_matches_legacy() {
    let mk = |explicit: bool| {
        let mut classes = vec![
            ChurnClass::new(
                "win",
                2.0,
                proteus_transport::factory(|_| TestWindow { cwnd: 40_000 }),
            ),
            ChurnClass::new(
                "paced",
                1.0,
                proteus_transport::factory(|_| TestPaced { rate: 250_000.0 }),
            ),
        ];
        if explicit {
            classes = classes.into_iter().map(|c| c.with_path([0])).collect();
        }
        Scenario::new(
            LinkSpec::new(100.0, Dur::from_millis(20), 500_000),
            Dur::from_secs(10),
        )
        .with_churn(
            ChurnSpec::new(6.0, Dur::from_secs(2), classes)
                .with_initial(8)
                .with_window(Dur::ZERO, Dur::from_secs(8)),
        )
        .with_seed(42)
    };
    assert_eq!(
        digest(&run(mk(false))),
        digest(&run(mk(true))),
        "explicit churn-class paths diverged on a single-link topology"
    );
}

/// Multi-link topologies must gate the fused wire path off and fall back to
/// the staged scheduler, with identical observable results whichever path
/// was requested.
#[test]
fn multi_link_topology_gates_fusion_off() {
    let mk = |wp: WirePath| {
        let topo = Topology::chain(vec![
            LinkSpec::new(50.0, Dur::from_millis(10), 375_000),
            LinkSpec::new(50.0, Dur::from_millis(10), 375_000),
        ]);
        Scenario::over(topo, Dur::from_secs(6))
            .flow(FlowSpec::bulk("win", Dur::ZERO, || {
                Box::new(TestWindow { cwnd: 200_000 })
            }))
            .with_seed(9)
            .with_wire_path(wp)
    };
    let fused_req = run(mk(WirePath::Fused));
    let staged = run(mk(WirePath::Staged));
    assert_eq!(
        fused_req.events.fused, 0,
        "a multi-link topology must never dispatch through the wire ring"
    );
    assert_eq!(
        digest_scrubbed(&fused_req),
        digest_scrubbed(&staged),
        "wire-path request changed results on a multi-link topology"
    );
}

/// Single-link topologies still fuse: the gate only trips on multi-link,
/// per-link faults, or noise.
#[test]
fn single_link_topology_still_fuses() {
    let r = run(Scenario::new(
        LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
        Dur::from_secs(6),
    )
    .flow(FlowSpec::bulk("win", Dur::ZERO, || {
        Box::new(TestWindow { cwnd: 200_000 })
    }))
    .with_wire_path(WirePath::Fused)
    .with_seed(9));
    assert!(
        r.events.fused > 0,
        "clean single-link topology should still take the fused path"
    );
}

/// Semantic sanity: adding a second, non-constraining link to the path
/// leaves throughput within ~2% (it adds propagation delay, not capacity
/// pressure).
#[test]
fn overprovisioned_second_hop_is_transparent_to_throughput() {
    let measure = |topo: Topology| {
        let r = run(Scenario::over(topo, Dur::from_secs(10))
            .flow(FlowSpec::bulk("win", Dur::ZERO, || {
                Box::new(TestWindow { cwnd: 400_000 })
            }))
            .with_seed(5));
        r.flows[0].throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(10.0))
    };
    let bottleneck = LinkSpec::new(50.0, Dur::from_millis(30), 375_000);
    let single = measure(Topology::single(bottleneck));
    let chained = measure(Topology::chain(vec![
        bottleneck,
        LinkSpec::new(500.0, Dur::from_millis(2), 2_000_000),
    ]));
    assert!(single > 45.0, "single-link baseline saturates: {single}");
    assert!(
        (single - chained).abs() / single < 0.02,
        "overprovisioned hop shifted throughput: single={single} chained={chained}"
    );
}

/// Per-link summaries mirror the run: link 0's summary equals the legacy
/// scalar mirrors, and every path link carries traffic.
#[test]
fn link_summaries_mirror_legacy_fields() {
    let topo = Topology::chain(vec![
        LinkSpec::new(50.0, Dur::from_millis(10), 375_000),
        LinkSpec::new(50.0, Dur::from_millis(10), 375_000),
    ]);
    let r = run(Scenario::over(topo, Dur::from_secs(6))
        .flow(FlowSpec::bulk("win", Dur::ZERO, || {
            Box::new(TestWindow { cwnd: 200_000 })
        }))
        .with_seed(3));
    assert_eq!(r.links.len(), 2);
    assert_eq!(r.links[0].delivered_bytes, r.link_delivered_bytes);
    assert_eq!(r.links[0].dropped_pkts, r.link_dropped_pkts);
    for (i, l) in r.links.iter().enumerate() {
        assert!(l.delivered_bytes > 0, "link {i} saw no traffic");
        assert!(l.peak_queued_bytes > 0, "link {i} never queued");
    }
}
