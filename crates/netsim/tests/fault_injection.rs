//! Behaviour and determinism of the fault-injection layer, end to end
//! through the engine.
//!
//! Each stochastic fault draws from a dedicated RNG (`crate::fault`), so the
//! contract tested here is twofold: (1) faults visibly change what the
//! scenario measures (throughput dips, loss bursts, reordering, held ACKs),
//! and (2) everything stays a pure function of `(scenario, schedule, seed)`
//! — including that an *empty* schedule is byte-identical to no schedule at
//! all.

use proteus_netsim::{
    run, AckCompression, FaultSchedule, FlowSpec, GilbertElliott, LinkSpec, ReorderConfig,
    Scenario, SimResult,
};
use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time};

/// Fixed congestion window, ACK-clocked; ignores losses.
struct TestWindow {
    cwnd: u64,
}

impl CongestionControl for TestWindow {
    fn name(&self) -> &str {
        "test-window"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
}

/// Fixed pacing rate, no window.
struct TestPaced {
    rate: f64, // bytes/sec
}

impl CongestionControl for TestPaced {
    fn name(&self) -> &str {
        "test-paced"
    }
    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

fn link_20mbps_30ms() -> LinkSpec {
    // BDP = 20 Mbps * 30 ms = 75 KB; 2-BDP buffer.
    LinkSpec::new(20.0, Dur::from_millis(30), 150_000)
}

fn window_flow(cwnd: u64) -> FlowSpec {
    FlowSpec::bulk("win", Dur::ZERO, move || Box::new(TestWindow { cwnd }))
}

fn paced_flow(mbps: f64) -> FlowSpec {
    FlowSpec::bulk("paced", Dur::ZERO, move || {
        Box::new(TestPaced {
            rate: mbps * 1e6 / 8.0,
        })
    })
}

/// Debug rendering covers every public field of the result, so equal
/// strings ⇒ equal measurements, trace, decisions and fault stats.
fn fingerprint(res: &SimResult) -> String {
    format!("{res:?}")
}

#[test]
fn same_seed_same_schedule_is_byte_identical() {
    let mk = || {
        Scenario::new(link_20mbps_30ms(), Dur::from_secs(12))
            .flow(window_flow(150_000))
            .with_seed(42)
            .with_trace(Dur::from_millis(100))
            .with_faults(
                FaultSchedule::new()
                    .bandwidth_step(Dur::from_secs(4), 8.0)
                    .outage(Dur::from_secs(7), Dur::from_millis(800))
                    .with_burst_loss(GilbertElliott::default())
                    .with_reorder(ReorderConfig {
                        prob: 0.01,
                        max_extra: Dur::from_millis(10),
                    })
                    .with_ack_compression(AckCompression {
                        every: Dur::from_secs(2),
                        hold: Dur::from_millis(60),
                    }),
            )
    };
    let a = run(mk());
    let b = run(mk());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // And a different seed diverges (the schedule is stochastic).
    let c = run({
        let mut sc = mk();
        sc.seed = 43;
        sc
    });
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn empty_schedule_is_identical_to_no_schedule() {
    let base = || {
        Scenario::new(link_20mbps_30ms().with_random_loss(0.01), Dur::from_secs(8))
            .flow(window_flow(150_000))
            .with_seed(7)
            .with_trace(Dur::from_millis(100))
    };
    let plain = run(base());
    let empty = run(base().with_faults(FaultSchedule::new()));
    assert_eq!(fingerprint(&plain), fingerprint(&empty));
    assert_eq!(plain.fault_stats, Default::default());
}

#[test]
fn outage_stalls_throughput_then_recovers() {
    let sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(12))
        .flow(window_flow(150_000))
        .with_seed(1)
        .with_faults(FaultSchedule::new().outage(Dur::from_secs(4), Dur::from_secs(2)));
    let res = run(sc);
    let m = &res.flows[0];
    let before = m.throughput_mbps(Time::from_secs_f64(1.0), Time::from_secs_f64(4.0));
    let during = m.throughput_mbps(Time::from_secs_f64(4.5), Time::from_secs_f64(6.0));
    let after = m.throughput_mbps(Time::from_secs_f64(8.0), Time::from_secs_f64(12.0));
    assert!(before > 17.0, "before = {before}");
    assert!(during < 1.0, "during = {during}");
    assert!(after > 15.0, "after = {after}");
    assert!(res.fault_stats.outage_drops > 0);
    assert_eq!(res.fault_stats.link_changes, 2);
    // The down/up edges are recorded as link-scoped trace events.
    let faults: Vec<_> = res
        .decisions
        .iter()
        .filter(|fe| fe.flow == proteus_trace::LINK_FLOW)
        .collect();
    assert_eq!(faults.len(), 2);
}

#[test]
fn bandwidth_step_caps_goodput() {
    let sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(16))
        .flow(window_flow(150_000))
        .with_seed(1)
        .with_faults(FaultSchedule::new().bandwidth_step(Dur::from_secs(8), 5.0));
    let res = run(sc);
    let m = &res.flows[0];
    let before = m.throughput_mbps(Time::from_secs_f64(2.0), Time::from_secs_f64(8.0));
    let after = m.throughput_mbps(Time::from_secs_f64(10.0), Time::from_secs_f64(16.0));
    assert!(before > 17.0, "before = {before}");
    assert!(after < 5.6, "after = {after}");
    assert!(after > 4.0, "after = {after}");
}

#[test]
fn rtt_step_moves_base_rtt() {
    // Pace well below capacity so RTT ≈ base + serialization.
    let sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(10))
        .flow(paced_flow(2.0))
        .with_seed(1)
        .with_faults(FaultSchedule::new().rtt_step(Dur::from_secs(5), Dur::from_millis(90)));
    let res = run(sc);
    let m = &res.flows[0];
    let early: Vec<f64> = m.rtt_values_in(Time::from_secs_f64(1.0), Time::from_secs_f64(5.0));
    let late: Vec<f64> = m.rtt_values_in(Time::from_secs_f64(6.0), Time::from_secs_f64(10.0));
    let min_early = early.iter().cloned().fold(f64::INFINITY, f64::min);
    let min_late = late.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((min_early - 0.030).abs() < 0.002, "early min = {min_early}");
    assert!((min_late - 0.090).abs() < 0.002, "late min = {min_late}");
}

#[test]
fn burst_loss_is_bursty() {
    let sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(30))
        .flow(paced_flow(10.0))
        .with_seed(11)
        .with_faults(FaultSchedule::new().with_burst_loss(GilbertElliott {
            p_enter: 0.002,
            p_exit: 0.05,
            loss_good: 0.0,
            loss_bad: 0.4,
        }));
    let res = run(sc);
    assert!(res.fault_stats.loss_episodes >= 3, "{:?}", res.fault_stats);
    assert!(res.fault_stats.burst_losses > 20, "{:?}", res.fault_stats);
    // Loss-burst boundaries are traced.
    let bursts = res
        .decisions
        .iter()
        .filter(|fe| fe.flow == proteus_trace::LINK_FLOW)
        .count();
    assert!(bursts as u64 >= res.fault_stats.loss_episodes);
    // The sender observes the losses.
    assert!(res.flows[0].pkts_lost > 0);
}

#[test]
fn reordering_causes_spurious_dupack_losses() {
    // Clean link + paced flow: without reordering there is zero loss.
    let mk = |reorder: bool| {
        let mut sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(10))
            .flow(paced_flow(8.0))
            .with_seed(5);
        if reorder {
            sc = sc.with_faults(FaultSchedule::new().with_reorder(ReorderConfig {
                prob: 0.02,
                max_extra: Dur::from_millis(15),
            }));
        }
        sc
    };
    let clean = run(mk(false));
    assert_eq!(clean.flows[0].pkts_lost, 0);
    let reordered = run(mk(true));
    assert!(reordered.fault_stats.reordered_pkts > 20);
    assert!(
        reordered.flows[0].pkts_lost > 0,
        "displaced packets should trip the dup-ACK threshold"
    );
    // Packets are delayed, not dropped: deliveries still mostly complete.
    let acked = reordered.flows[0].pkts_acked as f64;
    let sent = reordered.flows[0].pkts_sent as f64;
    assert!(acked / sent > 0.95, "acked {acked}/{sent}");
}

#[test]
fn ack_compression_batches_acks() {
    let sc = Scenario::new(link_20mbps_30ms(), Dur::from_secs(10))
        .flow(paced_flow(8.0))
        .with_seed(3)
        .with_faults(FaultSchedule::new().with_ack_compression(AckCompression {
            every: Dur::from_secs(1),
            hold: Dur::from_millis(80),
        }));
    let res = run(sc);
    assert!(
        res.fault_stats.compressed_acks > 100,
        "{:?}",
        res.fault_stats
    );
    // Held ACKs carry RTTs inflated by up to the hold window.
    let max_rtt = res.flows[0]
        .rtt_values()
        .into_iter()
        .fold(0.0_f64, f64::max);
    assert!(max_rtt > 0.09, "max rtt = {max_rtt}");
}
