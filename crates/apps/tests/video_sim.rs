//! End-to-end DASH streaming through the simulator: the §6.3 mechanics at
//! test-sized horizons.

use proteus_apps::video::{corpus_1080p, corpus_4k, VideoSession, VideoStatsHandle};
use proteus_baselines::Cubic;
use proteus_core::{ProteusSender, SharedThreshold};
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario};
use proteus_transport::{Dur, Time};

/// Builds a video flow; returns its stats handle.
fn video_flow(
    sc: &mut Scenario,
    spec: proteus_apps::VideoSpec,
    hybrid: bool,
    seed: u64,
    forced_max: bool,
) -> VideoStatsHandle {
    let threshold = hybrid.then(|| SharedThreshold::new(f64::INFINITY));
    let mut session = VideoSession::new(spec.clone(), threshold.clone());
    if forced_max {
        session = session.with_forced_max_bitrate();
    }
    let stats = session.stats_handle();
    let name = format!("video-{}", spec.name);
    let th = threshold.clone();
    let session_cell = std::cell::RefCell::new(Some(session));
    let flow = FlowSpec {
        name,
        start: Dur::ZERO,
        stop: None,
        cc: Box::new(move || match th {
            Some(t) => Box::new(ProteusSender::hybrid(seed, t)),
            None => Box::new(ProteusSender::primary(seed)),
        }),
        app: Box::new(move || {
            Box::new(session_cell.borrow_mut().take().expect("single use"))
                as Box<dyn proteus_transport::Application>
        }),
        reliable: true,
        path: None,
    };
    sc.flows.push(flow);
    stats
}

#[test]
fn single_video_streams_smoothly_on_fat_link() {
    // 50 Mbps for a ~11 Mbps 1080p top rung: BOLA should climb to the top
    // rung and never stall.
    let spec = corpus_1080p(1, 5)[0].clone();
    let top = spec.max_bitrate();
    let mut sc = Scenario::new(
        LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
        Dur::from_secs(120),
    )
    .with_seed(11);
    let stats = video_flow(&mut sc, spec, false, 1, false);
    run(sc);
    let s = stats.borrow();
    assert!(
        s.chunk_bitrates.len() > 30,
        "chunks = {}",
        s.chunk_bitrates.len()
    );
    assert!(
        s.rebuffer_ratio < 0.02,
        "rebuffer ratio = {}",
        s.rebuffer_ratio
    );
    // The tail of the session should sit at the top rung.
    let tail: Vec<f64> = s.chunk_bitrates.iter().rev().take(10).copied().collect();
    let tail_avg = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        tail_avg > 0.9 * top,
        "tail avg bitrate = {tail_avg} vs top {top}"
    );
}

#[test]
fn starved_video_downshifts_and_rebuffers() {
    // 3 Mbps link cannot even sustain the second rung of a 1080p ladder:
    // BOLA must sit near the bottom; forced-max must rebuffer heavily.
    let spec = corpus_1080p(1, 5)[0].clone();
    let bottom = spec.min_bitrate();
    let mut sc = Scenario::new(
        LinkSpec::new(3.0, Dur::from_millis(30), 100_000),
        Dur::from_secs(120),
    )
    .with_seed(11);
    let adaptive = video_flow(&mut sc, spec.clone(), false, 1, false);
    run(sc);
    let a = adaptive.borrow();
    // BOLA must hold well below the top rung (it hovers around the rungs
    // bracketing link capacity).
    assert!(
        a.avg_bitrate() < 3.2 && a.avg_bitrate() >= bottom,
        "adaptive avg bitrate = {}",
        a.avg_bitrate()
    );
    assert!(
        a.rebuffer_ratio < 0.25,
        "adaptive rebuffer = {}",
        a.rebuffer_ratio
    );

    let mut sc = Scenario::new(
        LinkSpec::new(3.0, Dur::from_millis(30), 100_000),
        Dur::from_secs(120),
    )
    .with_seed(11);
    let forced = video_flow(&mut sc, spec, false, 1, true);
    run(sc);
    let f = forced.borrow();
    assert!(
        f.rebuffer_ratio > 0.3,
        "forced-max should stall on 3 Mbps: {}",
        f.rebuffer_ratio
    );
    assert!(f.rebuffer_ratio > a.rebuffer_ratio);
}

#[test]
fn background_scavenger_leaves_video_mostly_alone() {
    // Fig. 11(a) mechanism: a background Proteus-S flow barely dents DASH.
    let spec = corpus_1080p(1, 5)[0].clone();
    let mk = |with_scav: bool| {
        let mut sc = Scenario::new(
            LinkSpec::new(20.0, Dur::from_millis(30), 150_000),
            Dur::from_secs(120),
        )
        .with_seed(11);
        let stats = video_flow(&mut sc, spec.clone(), false, 1, false);
        if with_scav {
            sc = sc.flow(FlowSpec::bulk("scav", Dur::ZERO, || {
                Box::new(ProteusSender::scavenger(9))
            }));
        }
        run(sc);
        let avg = stats.borrow().avg_bitrate();
        avg
    };
    let alone = mk(false);
    let with_scav = mk(true);
    assert!(
        with_scav > 0.85 * alone,
        "scavenger hurt video too much: {with_scav} vs {alone}"
    );
}

#[test]
fn background_cubic_hurts_video_more_than_scavenger() {
    let spec = corpus_1080p(1, 5)[0].clone();
    let mk = |bg: &'static str| {
        let mut sc = Scenario::new(
            LinkSpec::new(20.0, Dur::from_millis(30), 150_000),
            Dur::from_secs(120),
        )
        .with_seed(11);
        let stats = video_flow(&mut sc, spec.clone(), false, 1, false);
        sc = sc.flow(FlowSpec::bulk("bg", Dur::ZERO, move || match bg {
            "cubic" => Box::new(Cubic::new()),
            _ => Box::new(ProteusSender::scavenger(9)),
        }));
        run(sc);
        let avg = stats.borrow().avg_bitrate();
        avg
    };
    let with_scav = mk("proteus-s");
    let with_cubic = mk("cubic");
    assert!(
        with_scav > with_cubic,
        "scavenger {with_scav} should beat CUBIC background {with_cubic}"
    );
}

#[test]
fn hybrid_mode_reduces_rebuffering_under_contention() {
    // Fig. 12/13 mechanism: 1×4K + 3×1080P on a constrained link. With
    // Proteus-P everyone fights for a fair share; with Proteus-H flows
    // above their needs yield, cutting rebuffering.
    let run_variant = |hybrid: bool| -> (f64, f64) {
        let mut sc = Scenario::new(
            LinkSpec::new(55.0, Dur::from_millis(30), 900_000),
            Dur::from_secs(150),
        )
        .with_seed(11)
        .with_rtt_stride(4);
        let v4k = corpus_4k(1, 3)[0].clone();
        let v1080 = corpus_1080p(3, 3);
        let mut handles = Vec::new();
        handles.push(video_flow(&mut sc, v4k, hybrid, 1, true));
        for (i, v) in v1080.into_iter().enumerate() {
            handles.push(video_flow(&mut sc, v, hybrid, 10 + i as u64, true));
        }
        run(sc);
        let rebuffer_4k = handles[0].borrow().rebuffer_ratio;
        let rebuffer_1080: f64 = handles[1..]
            .iter()
            .map(|h| h.borrow().rebuffer_ratio)
            .sum::<f64>()
            / 3.0;
        (rebuffer_4k, rebuffer_1080)
    };
    let (p_4k, p_1080) = run_variant(false);
    let (h_4k, h_1080) = run_variant(true);
    // Hybrid should not be worse overall; the paper reports up to 68 %
    // lower rebuffering in this band.
    let p_total = p_4k + p_1080;
    let h_total = h_4k + h_1080;
    assert!(
        h_total <= p_total + 0.02,
        "hybrid rebuffering should not regress: P ({p_4k:.3}, {p_1080:.3}) vs H ({h_4k:.3}, {h_1080:.3})"
    );
}

#[test]
fn video_finishes_and_accounts_every_chunk() {
    let spec = corpus_1080p(1, 9)[0].clone();
    let total = spec.chunks;
    let play_secs = spec.duration().as_secs_f64();
    let mut sc = Scenario::new(
        LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
        Dur::from_secs(play_secs as u64 + 60),
    )
    .with_seed(11);
    let stats = video_flow(&mut sc, spec, false, 1, false);
    let res = run(sc);
    let s = stats.borrow();
    assert!(s.finished, "video did not finish");
    assert_eq!(s.chunk_bitrates.len(), total);
    // The flow went quiet after the video ended.
    assert!(res.flows[0].finished_at.is_some());
    // Once the last chunk is delivered the flow goes idle, so the engine
    // stops syncing the playback model: up to a buffer's worth (30 s) of
    // media may still sit "unplayed" in the accounting.
    let played = s.played_s;
    assert!(
        play_secs - played < 35.0 && played <= play_secs + 1.0,
        "played {played} vs nominal {play_secs}"
    );
    let _ = Time::ZERO;
}
