//! End-to-end RTC media flows through the simulator: frame accounting,
//! latency-SLO metrics, and media-free neutrality.

use proteus_apps::{MediaSource, MediaSpec};
use proteus_baselines::Cubic;
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario, SimResult, WirePath};
use proteus_transport::Dur;

fn rtc_scenario(secs: u64, wire: WirePath) -> Scenario {
    let spec = MediaSpec::default();
    Scenario::new(
        LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
        Dur::from_secs(secs),
    )
    .with_seed(11)
    .with_wire_path(wire)
    .flow(
        FlowSpec::bulk("RTC", Dur::ZERO, || Box::new(Cubic::new()))
            .with_app(move || Box::new(MediaSource::new(spec)))
            .with_reliability(true),
    )
}

#[test]
fn rtc_flow_accounts_every_frame_end_to_end() {
    let res = run(rtc_scenario(30, WirePath::Fused));
    let m = res.flows[0].media().expect("media metrics present");
    // 30 s at 30 fps on a fat, clean 50 Mbps link.
    assert!(
        (890..=910).contains(&(m.frames_generated() as i64)),
        "frames generated = {}",
        m.frames_generated()
    );
    assert_eq!(
        m.frames_completed() + m.frames_pending(),
        m.frames_generated(),
        "every frame is either completed or pending"
    );
    // The link is ~20x the top rung: nearly everything completes in time.
    assert!(
        m.frames_pending() < 10,
        "pending at end = {}",
        m.frames_pending()
    );
    assert_eq!(m.freeze_count(), 0, "clean fat link should never freeze");
    assert_eq!(m.time_in_freeze(), 0.0);
    let p95 = m.frame_delay_percentile(95.0).expect("delays recorded");
    // One-way 15 ms + serialization; well under the 100 ms deadline.
    assert!(p95 < 0.100, "p95 frame delay = {p95}");
    let p99 = m.frame_delay_percentile(99.0).unwrap();
    assert!(p99 >= p95);
    // App-limited: goodput tracks the ladder top (2.5 Mbit/s + keyframes),
    // nowhere near the 50 Mbit/s a bulk CUBIC flow would take.
    let mbps = res.flows[0].throughput_mbps(
        proteus_transport::Time::from_secs_f64(10.0),
        proteus_transport::Time::from_secs_f64(30.0),
    );
    assert!((1.5..5.0).contains(&mbps), "RTC goodput = {mbps}");
}

#[test]
fn media_free_flows_carry_no_media_metrics() {
    let sc = Scenario::new(
        LinkSpec::new(50.0, Dur::from_millis(30), 375_000),
        Dur::from_secs(10),
    )
    .with_seed(11)
    .flow(FlowSpec::bulk(
        "CUBIC",
        Dur::ZERO,
        || Box::new(Cubic::new()),
    ));
    let res = run(sc);
    assert!(res.flows[0].media().is_none());
    assert!(res.flows[0].bytes_acked > 0);
}

/// Digest of everything the media path could perturb.
fn digest(res: &SimResult) -> (u64, u64, u64, Vec<f64>, u64, f64) {
    let f = &res.flows[0];
    let m = f.media().expect("media");
    (
        f.bytes_acked,
        f.pkts_acked,
        m.frames_completed(),
        m.frame_delays().to_vec(),
        m.freeze_count(),
        m.time_in_freeze(),
    )
}

#[test]
fn media_metrics_identical_across_wire_paths() {
    let fused = run(rtc_scenario(20, WirePath::Fused));
    let staged = run(rtc_scenario(20, WirePath::Staged));
    assert_eq!(digest(&fused), digest(&staged));
}
