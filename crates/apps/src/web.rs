//! Web page-load workload (Fig. 11b).
//!
//! The paper loads "the top 30 sites in United States from Alexa.com in a
//! 10-minute run, with a Poisson rate of 1 request per 10 seconds" and
//! measures page-load time with and without a background scavenger. We
//! model each page as one reliable transfer whose size is drawn from a
//! log-normal fit of popular-page weights (median ≈ 2 MB, heavy upper
//! tail), arriving by a Poisson process.

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

use proteus_transport::Dur;

/// One page load: arrival time and transfer size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoad {
    /// When the request starts, relative to the run.
    pub start: Dur,
    /// Page weight, bytes.
    pub bytes: u64,
}

/// Parameters of the page-load generator.
#[derive(Debug, Clone, Copy)]
pub struct WebWorkload {
    /// Mean requests per second (paper: 0.1).
    pub arrivals_per_sec: f64,
    /// Run length.
    pub duration: Dur,
    /// Log-normal μ of page bytes (default ln(2 MB)).
    pub log_mu: f64,
    /// Log-normal σ (default 0.7).
    pub log_sigma: f64,
}

impl Default for WebWorkload {
    fn default() -> Self {
        Self {
            arrivals_per_sec: 0.1,
            duration: Dur::from_secs(600),
            log_mu: (2.0e6_f64).ln(),
            log_sigma: 0.7,
        }
    }
}

impl WebWorkload {
    /// Samples the page-load schedule deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Vec<PageLoad> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x3EB);
        let mut t = 0.0_f64;
        let mut loads = Vec::new();
        let horizon = self.duration.as_secs_f64();
        loop {
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / self.arrivals_per_sec;
            if t >= horizon {
                break;
            }
            // Log-normal page weight via Box–Muller.
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let bytes = (self.log_mu + self.log_sigma * z).exp();
            loads.push(PageLoad {
                start: Dur::from_secs_f64(t),
                bytes: bytes.clamp(50_000.0, 50_000_000.0) as u64,
            });
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches() {
        let w = WebWorkload {
            arrivals_per_sec: 1.0,
            duration: Dur::from_secs(2_000),
            ..WebWorkload::default()
        };
        let loads = w.generate(1);
        let n = loads.len() as f64;
        assert!((n - 2_000.0).abs() < 150.0, "n = {n}");
        // Sorted in time.
        assert!(loads.windows(2).all(|p| p[0].start <= p[1].start));
    }

    #[test]
    fn sizes_have_sane_median_and_tail() {
        let w = WebWorkload::default();
        let mut sizes: Vec<u64> = (0..40)
            .flat_map(|s| w.generate(s))
            .map(|p| p.bytes)
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        assert!((1.2e6..3.2e6).contains(&median), "median page = {median}");
        let p95 = sizes[sizes.len() * 95 / 100] as f64;
        assert!(p95 > 4.0e6, "p95 = {p95}");
    }

    #[test]
    fn deterministic_per_seed() {
        let w = WebWorkload::default();
        assert_eq!(w.generate(9), w.generate(9));
        assert_ne!(w.generate(9), w.generate(10));
    }

    #[test]
    fn respects_duration() {
        let w = WebWorkload {
            duration: Dur::from_secs(60),
            arrivals_per_sec: 0.5,
            ..WebWorkload::default()
        };
        for p in w.generate(3) {
            assert!(p.start < Dur::from_secs(60));
        }
    }
}
