//! Cross-layer switching-threshold policy for Proteus-H (§4.4).
//!
//! The threshold is "the maximum value which satisfies":
//!
//! 1. **Sufficient rate rule** — `threshold ≤ G·bitrate_max`, `G = 1.5`,
//!    a safety margin over the highest rung.
//! 2. **Buffer limit rule** — `threshold ≤ bitrate_current/(2 − f)` where
//!    `f < 2` is the (possibly fractional) number of chunks of free buffer
//!    space, checked on each chunk request: as the buffer approaches full,
//!    the flow needs less and less throughput.
//! 3. **Emergency rule** — on rebuffering, `threshold = ∞` until playback
//!    resumes.

/// The §4.4 threshold policy.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdPolicy {
    /// Safety margin `G` of the sufficient-rate rule (paper: 1.5).
    pub safety_margin: f64,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        Self { safety_margin: 1.5 }
    }
}

impl ThresholdPolicy {
    /// Computes the Proteus-H switching threshold in Mbps.
    ///
    /// * `bitrate_max` — the video's highest rung, Mbps,
    /// * `bitrate_current` — the rung currently being requested, Mbps,
    /// * `free_chunks` — free playback-buffer space in chunk units,
    /// * `rebuffering` — whether playback is stalled.
    pub fn threshold(
        &self,
        bitrate_max: f64,
        bitrate_current: f64,
        free_chunks: f64,
        rebuffering: bool,
    ) -> f64 {
        if rebuffering {
            return f64::INFINITY; // emergency rule
        }
        let mut th = self.safety_margin * bitrate_max; // sufficient rate rule
        if free_chunks < 2.0 {
            // buffer limit rule
            th = th.min(bitrate_current / (2.0 - free_chunks));
        }
        th
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: ThresholdPolicy = ThresholdPolicy { safety_margin: 1.5 };

    #[test]
    fn sufficient_rate_rule_caps_at_1_5x_max() {
        let th = POLICY.threshold(40.0, 40.0, 3.0, false);
        assert!((th - 60.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_limit_rule_tightens_as_buffer_fills() {
        // f = 1 chunk free: threshold ≤ bitrate_current.
        let th = POLICY.threshold(40.0, 10.0, 1.0, false);
        assert!((th - 10.0).abs() < 1e-9);
        // f = 0 (full): threshold ≤ bitrate/2.
        let th = POLICY.threshold(40.0, 10.0, 0.0, false);
        assert!((th - 5.0).abs() < 1e-9);
        // f = 1.5: threshold ≤ 2·bitrate.
        let th = POLICY.threshold(40.0, 10.0, 1.5, false);
        assert!((th - 20.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_rule_inactive_above_two_free_chunks() {
        let th = POLICY.threshold(40.0, 1.0, 2.5, false);
        assert!((th - 60.0).abs() < 1e-9);
    }

    #[test]
    fn emergency_rule_overrides_everything() {
        let th = POLICY.threshold(40.0, 1.0, 0.0, true);
        assert!(th.is_infinite());
    }

    #[test]
    fn threshold_monotone_in_free_space() {
        let mut last = 0.0;
        for i in 0..20 {
            let f = i as f64 * 0.1;
            let th = POLICY.threshold(40.0, 10.0, f, false);
            assert!(th >= last, "threshold decreased at f={f}");
            last = th;
        }
    }
}
