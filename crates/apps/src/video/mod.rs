//! DASH adaptive video streaming substrate (BOLA + playback + corpus).

pub mod bola;
pub mod corpus;
pub mod playback;
pub mod session;

pub use bola::Bola;
pub use corpus::{corpus_1080p, corpus_4k, Representation, VideoSpec};
pub use playback::Playback;
pub use session::{VideoSession, VideoStats, VideoStatsHandle};
