//! BOLA bitrate adaptation (Spiteri, Urgaonkar, Sitaraman — INFOCOM 2016).
//!
//! The paper's video experiments run "a BOLA agent that takes a DASH video
//! definition as input". BOLA-BASIC selects, for buffer level `Q` (in
//! chunks), the rung `m` maximizing
//!
//! ```text
//! (V·(υ_m + γp) − Q) / S_m
//! ```
//!
//! where `υ_m = ln(S_m / S_1)` is the rung's utility, `S_m` its chunk size,
//! and `V`, `γp` are derived from the buffer capacity so that the top rung
//! is picked when the buffer is nearly full and the bottom rung near empty.

use crate::video::corpus::VideoSpec;

/// BOLA-BASIC bitrate selector.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Per-rung utilities `ln(S_m/S_1)`.
    utilities: Vec<f64>,
    /// Control parameter V (chunks).
    v: f64,
    /// γp parameter.
    gamma_p: f64,
    /// When set, always pick the top rung (the Fig. 13 forced-max mode).
    forced_max: bool,
}

impl Bola {
    /// Builds a selector for a video and a buffer capacity expressed in
    /// chunks.
    pub fn new(video: &VideoSpec, buffer_capacity_chunks: f64) -> Self {
        let s1 = video.min_bitrate().max(1e-9);
        let utilities: Vec<f64> = video
            .ladder
            .iter()
            .map(|r| (r.bitrate_mbps / s1).ln())
            .collect();
        // BOLA-BASIC parameterization (§IV of the BOLA paper): choose γp
        // and V so the decision thresholds span the buffer.
        let gamma_p = 5.0 / buffer_capacity_chunks.max(1.0);
        let u_max = utilities.last().copied().unwrap_or(0.0);
        let v =
            (buffer_capacity_chunks - 1.0).max(1.0) / (u_max + gamma_p * buffer_capacity_chunks);
        Self {
            utilities,
            v,
            gamma_p: gamma_p * buffer_capacity_chunks,
            forced_max: false,
        }
    }

    /// Forces the selector to always pick the highest rung (Fig. 13).
    pub fn force_max(mut self) -> Self {
        self.forced_max = true;
        self
    }

    /// Picks a ladder index given the current buffer level in chunks.
    pub fn select(&self, video: &VideoSpec, buffer_chunks: f64) -> usize {
        if self.forced_max {
            return video.ladder.len() - 1;
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (m, rep) in video.ladder.iter().enumerate() {
            let score =
                (self.v * (self.utilities[m] + self.gamma_p) - buffer_chunks) / rep.bitrate_mbps;
            if score > best_score {
                best_score = score;
                best = m;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::corpus::corpus_4k;

    #[test]
    fn low_buffer_picks_low_bitrate() {
        let v = &corpus_4k(1, 1)[0];
        let bola = Bola::new(v, 4.0);
        let rung = bola.select(v, 0.0);
        assert_eq!(rung, 0, "empty buffer must pick the safest rung");
    }

    #[test]
    fn full_buffer_picks_top_bitrate() {
        let v = &corpus_4k(1, 1)[0];
        let bola = Bola::new(v, 4.0);
        let rung = bola.select(v, 3.9);
        assert_eq!(rung, v.ladder.len() - 1);
    }

    #[test]
    fn selection_is_monotone_in_buffer() {
        let v = &corpus_4k(1, 1)[0];
        let bola = Bola::new(v, 4.0);
        let mut last = 0;
        for i in 0..=40 {
            let q = i as f64 * 0.1;
            let rung = bola.select(v, q);
            assert!(rung >= last, "rung decreased at Q={q}: {last} -> {rung}");
            last = rung;
        }
    }

    #[test]
    fn forced_max_ignores_buffer() {
        let v = &corpus_4k(1, 1)[0];
        let bola = Bola::new(v, 4.0).force_max();
        assert_eq!(bola.select(v, 0.0), v.ladder.len() - 1);
    }
}
