//! Synthetic DASH video corpus.
//!
//! §6.3 of the paper: "we generate a corpus of 10 4K and 10 1080P videos,
//! all composed of 3-second chunks and at least 3 minutes long, with highest
//! bitrates of above 40 Mbps and 10 Mbps, respectively." This module builds
//! equivalent video definitions deterministically from a seed: a bitrate
//! ladder per video plus per-chunk size variability (real encoders produce
//! ±10–20 % chunk-size jitter around the nominal bitrate).

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

use proteus_transport::Dur;

/// One encoded representation (rung of the bitrate ladder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Representation {
    /// Nominal bitrate, Mbit/sec.
    pub bitrate_mbps: f64,
}

/// A DASH video: a bitrate ladder over fixed-duration chunks.
#[derive(Debug, Clone)]
pub struct VideoSpec {
    /// Display name (e.g. `"4k-3"`).
    pub name: String,
    /// Chunk duration (paper: 3 s).
    pub chunk_duration: Dur,
    /// Ladder, ascending bitrate.
    pub ladder: Vec<Representation>,
    /// Number of chunks (≥ 3 minutes at 3 s/chunk → ≥ 60).
    pub chunks: usize,
    /// Per-chunk size multipliers (encoder variability), one per chunk.
    size_jitter: Vec<f64>,
}

impl VideoSpec {
    /// Highest bitrate in the ladder, Mbps.
    pub fn max_bitrate(&self) -> f64 {
        self.ladder.last().map(|r| r.bitrate_mbps).unwrap_or(0.0)
    }

    /// Lowest bitrate in the ladder, Mbps.
    pub fn min_bitrate(&self) -> f64 {
        self.ladder.first().map(|r| r.bitrate_mbps).unwrap_or(0.0)
    }

    /// Size in bytes of chunk `idx` at ladder index `rung`.
    pub fn chunk_bytes(&self, idx: usize, rung: usize) -> u64 {
        let bitrate = self.ladder[rung].bitrate_mbps;
        let jitter = self.size_jitter[idx % self.size_jitter.len().max(1)];
        let secs = self.chunk_duration.as_secs_f64();
        (bitrate * 1e6 / 8.0 * secs * jitter).round() as u64
    }

    /// Total play time.
    pub fn duration(&self) -> Dur {
        Dur::from_nanos(self.chunk_duration.as_nanos() * self.chunks as u64)
    }
}

fn build(name: String, top_mbps: f64, chunks: usize, rng: &mut SmallRng) -> VideoSpec {
    // A ladder descending by ~×0.55 from the top rung, six rungs deep —
    // the shape of typical ABR ladders.
    let mut rates = Vec::new();
    let mut r = top_mbps;
    for _ in 0..6 {
        rates.push(r);
        r *= 0.55;
    }
    rates.reverse();
    let ladder = rates
        .into_iter()
        .map(|bitrate_mbps| Representation { bitrate_mbps })
        .collect();
    let size_jitter = (0..chunks)
        .map(|_| 1.0 + (rng.random::<f64>() - 0.5) * 0.2)
        .collect();
    VideoSpec {
        name,
        chunk_duration: Dur::from_secs(3),
        ladder,
        chunks,
        size_jitter,
    }
}

/// Generates `n` 4K videos (top bitrate 40–50 Mbps, ≥ 3 minutes).
pub fn corpus_4k(n: usize, seed: u64) -> Vec<VideoSpec> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4B00);
    (0..n)
        .map(|i| {
            let top = 40.0 + rng.random::<f64>() * 10.0;
            let chunks = 60 + (rng.random::<f64>() * 20.0) as usize;
            build(format!("4k-{i}"), top, chunks, &mut rng)
        })
        .collect()
}

/// Generates `n` 1080P videos (top bitrate 10–12 Mbps, ≥ 3 minutes).
pub fn corpus_1080p(n: usize, seed: u64) -> Vec<VideoSpec> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1080);
    (0..n)
        .map(|i| {
            let top = 10.0 + rng.random::<f64>() * 2.0;
            let chunks = 60 + (rng.random::<f64>() * 20.0) as usize;
            build(format!("1080p-{i}"), top, chunks, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper_envelope() {
        let v4k = corpus_4k(10, 1);
        assert_eq!(v4k.len(), 10);
        for v in &v4k {
            assert!(v.max_bitrate() > 40.0, "{}: {}", v.name, v.max_bitrate());
            assert!(v.duration() >= Dur::from_secs(180));
            assert_eq!(v.chunk_duration, Dur::from_secs(3));
        }
        let v1080 = corpus_1080p(10, 1);
        for v in &v1080 {
            assert!(v.max_bitrate() >= 10.0);
            assert!(v.max_bitrate() < 13.0);
        }
    }

    #[test]
    fn ladder_is_ascending() {
        for v in corpus_4k(3, 7) {
            for w in v.ladder.windows(2) {
                assert!(w[0].bitrate_mbps < w[1].bitrate_mbps);
            }
        }
    }

    #[test]
    fn chunk_bytes_scale_with_bitrate() {
        let v = &corpus_4k(1, 3)[0];
        let low = v.chunk_bytes(0, 0);
        let high = v.chunk_bytes(0, v.ladder.len() - 1);
        assert!(high > 5 * low);
        // Nominal size: bitrate × 3 s within jitter bounds.
        let nominal = v.max_bitrate() * 1e6 / 8.0 * 3.0;
        assert!((high as f64) > nominal * 0.85 && (high as f64) < nominal * 1.15);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = corpus_4k(5, 42);
        let b = corpus_4k(5, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.chunks, y.chunks);
            assert_eq!(x.chunk_bytes(7, 2), y.chunk_bytes(7, 2));
        }
    }
}
