//! A DASH streaming session as a sender-side [`Application`].
//!
//! Mirrors the paper's emulated setup (§6): the receiver-side BOLA agent
//! requests chunks whenever the playback buffer has room, consumes received
//! bytes into the buffer, pauses the sender when the buffer is full, and —
//! when the transport runs Proteus-H — recomputes the switching threshold on
//! every chunk request per the §4.4 cross-layer rules (plus the emergency
//! rule while rebuffering). The side channel of the paper is the shared
//! threshold cell ([`SharedThreshold`]).

use std::cell::RefCell;
use std::rc::Rc;

use proteus_core::SharedThreshold;
use proteus_transport::{Application, Dur, Time};

use crate::crosslayer::ThresholdPolicy;
use crate::video::bola::Bola;
use crate::video::corpus::VideoSpec;
use crate::video::playback::Playback;

/// Per-session results, shared out of the simulation via
/// [`VideoSession::stats_handle`].
#[derive(Debug, Clone, Default)]
pub struct VideoStats {
    /// Requested bitrate (Mbps) of every completed chunk.
    pub chunk_bitrates: Vec<f64>,
    /// Rebuffer ratio so far.
    pub rebuffer_ratio: f64,
    /// Stall events so far.
    pub stall_events: u64,
    /// Seconds played.
    pub played_s: f64,
    /// Seconds stalled.
    pub stalled_s: f64,
    /// Whether every chunk was delivered.
    pub finished: bool,
}

impl VideoStats {
    /// Mean requested chunk bitrate, Mbps.
    pub fn avg_bitrate(&self) -> f64 {
        if self.chunk_bitrates.is_empty() {
            0.0
        } else {
            self.chunk_bitrates.iter().sum::<f64>() / self.chunk_bitrates.len() as f64
        }
    }
}

/// Shared handle to a session's stats.
pub type VideoStatsHandle = Rc<RefCell<VideoStats>>;

#[derive(Debug)]
struct CurrentChunk {
    rung: usize,
    /// Fresh bytes the transport may still read.
    to_transmit: u64,
    /// Bytes not yet delivered end-to-end.
    to_deliver: u64,
}

/// A DASH client session driving one flow.
pub struct VideoSession {
    spec: VideoSpec,
    bola: Bola,
    playback: Playback,
    policy: ThresholdPolicy,
    /// The Proteus-H cross-layer cell, when the transport is hybrid.
    threshold: Option<SharedThreshold>,
    next_chunk: usize,
    current: Option<CurrentChunk>,
    stats: VideoStatsHandle,
    /// Periodic wakeup cadence for playback/threshold upkeep.
    tick: Dur,
    last_wake: Time,
}

/// Playback-buffer capacity in chunks (30 s of 3-second chunks, in line
/// with dash.js' default buffer target).
const BUFFER_CHUNKS: f64 = 10.0;
/// Chunks needed before (re)starting playback.
const STARTUP_CHUNKS: u64 = 2;

impl VideoSession {
    /// Creates a session for `spec`. Pass a [`SharedThreshold`] (also given
    /// to a Proteus-H sender) to enable the §4.4 cross-layer policy.
    pub fn new(spec: VideoSpec, threshold: Option<SharedThreshold>) -> Self {
        let chunk = spec.chunk_duration;
        let capacity = Dur::from_nanos(chunk.as_nanos() * BUFFER_CHUNKS as u64);
        let startup = Dur::from_nanos(chunk.as_nanos() * STARTUP_CHUNKS);
        let bola = Bola::new(&spec, BUFFER_CHUNKS);
        Self {
            bola,
            playback: Playback::new(capacity, startup),
            policy: ThresholdPolicy::default(),
            threshold,
            next_chunk: 0,
            current: None,
            stats: Rc::new(RefCell::new(VideoStats::default())),
            tick: Dur::from_millis(100),
            last_wake: Time::ZERO,
            spec,
        }
    }

    /// Forces the ABR to the top rung (the Fig. 13 stress test).
    pub fn with_forced_max_bitrate(mut self) -> Self {
        self.bola = self.bola.force_max();
        self
    }

    /// Handle for reading results after the simulation.
    pub fn stats_handle(&self) -> VideoStatsHandle {
        self.stats.clone()
    }

    fn buffer_level_chunks(&self) -> f64 {
        self.playback.level().as_secs_f64() / self.spec.chunk_duration.as_secs_f64()
    }

    fn current_bitrate(&self) -> f64 {
        match &self.current {
            Some(c) => self.spec.ladder[c.rung].bitrate_mbps,
            None => self
                .stats
                .borrow()
                .chunk_bitrates
                .last()
                .copied()
                .unwrap_or(self.spec.min_bitrate()),
        }
    }

    fn update_threshold(&self) {
        let Some(th) = &self.threshold else {
            return;
        };
        let value = self.policy.threshold(
            self.spec.max_bitrate(),
            self.current_bitrate(),
            self.playback.free_chunks(self.spec.chunk_duration),
            self.playback.is_rebuffering(),
        );
        th.set(value);
    }

    fn maybe_request(&mut self, now: Time) {
        if self.current.is_some() || self.next_chunk >= self.spec.chunks {
            return;
        }
        if !self.playback.has_space_for(self.spec.chunk_duration) {
            return;
        }
        let rung = self.bola.select(&self.spec, self.buffer_level_chunks());
        let bytes = self.spec.chunk_bytes(self.next_chunk, rung);
        self.current = Some(CurrentChunk {
            rung,
            to_transmit: bytes,
            to_deliver: bytes,
        });
        self.next_chunk += 1;
        let _ = now;
        self.update_threshold();
    }

    fn refresh_stats(&self) {
        let mut s = self.stats.borrow_mut();
        s.rebuffer_ratio = self.playback.rebuffer_ratio();
        s.stall_events = self.playback.stall_events();
        s.played_s = self.playback.played().as_secs_f64();
        s.stalled_s = self.playback.stalled().as_secs_f64();
        s.finished = self.next_chunk >= self.spec.chunks && self.current.is_none();
    }
}

impl Application for VideoSession {
    fn bytes_to_send(&mut self, now: Time) -> u64 {
        self.playback.sync(now);
        self.maybe_request(now);
        self.current.as_ref().map(|c| c.to_transmit).unwrap_or(0)
    }

    fn consume(&mut self, bytes: u64) {
        if let Some(c) = &mut self.current {
            c.to_transmit = c.to_transmit.saturating_sub(bytes);
        }
    }

    fn on_delivered(&mut self, now: Time, bytes: u64) {
        self.playback.sync(now);
        let mut completed = false;
        if let Some(c) = &mut self.current {
            c.to_deliver = c.to_deliver.saturating_sub(bytes);
            if c.to_deliver == 0 {
                completed = true;
            }
        }
        if completed {
            let c = self.current.take().expect("current chunk exists");
            self.playback.push_chunk(now, self.spec.chunk_duration);
            self.stats
                .borrow_mut()
                .chunk_bitrates
                .push(self.spec.ladder[c.rung].bitrate_mbps);
            if self.next_chunk >= self.spec.chunks {
                self.playback.finish_feeding();
            }
            self.maybe_request(now);
        }
        self.update_threshold();
        self.refresh_stats();
    }

    fn next_event(&self, _now: Time) -> Option<Time> {
        if self.next_chunk >= self.spec.chunks && self.current.is_none() {
            return None;
        }
        // A stable target (rather than `now + tick`) so the driver's wakeup
        // dedup can avoid re-scheduling on every ACK.
        Some(self.last_wake + self.tick)
    }

    fn on_wakeup(&mut self, now: Time) {
        self.last_wake = now;
        self.playback.sync(now);
        self.maybe_request(now);
        self.update_threshold();
        self.refresh_stats();
    }

    fn finished(&self, _now: Time) -> bool {
        // Keep the flow alive until every chunk has been delivered; the
        // caller usually bounds the simulation by wall-clock instead.
        self.next_chunk >= self.spec.chunks && self.current.is_none()
    }
}

impl std::fmt::Debug for VideoSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VideoSession")
            .field("video", &self.spec.name)
            .field("next_chunk", &self.next_chunk)
            .field("buffer_s", &self.playback.level().as_secs_f64())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::corpus::corpus_1080p;

    fn session() -> VideoSession {
        let spec = corpus_1080p(1, 5)[0].clone();
        VideoSession::new(spec, None)
    }

    #[test]
    fn first_request_uses_lowest_rung() {
        let mut s = session();
        let bytes = s.bytes_to_send(Time::ZERO);
        assert!(bytes > 0);
        let c = s.current.as_ref().unwrap();
        assert_eq!(c.rung, 0, "cold start must be conservative");
    }

    #[test]
    fn chunk_completion_feeds_playback_and_stats() {
        let mut s = session();
        let bytes = s.bytes_to_send(Time::ZERO);
        s.consume(bytes);
        s.on_delivered(Time::from_secs_f64(0.5), bytes);
        assert!(s.playback.level() > Dur::ZERO);
        assert_eq!(s.stats.borrow().chunk_bitrates.len(), 1);
        // A new chunk is requested right away (buffer far from full).
        assert!(s.current.is_some());
    }

    #[test]
    fn pauses_when_buffer_full() {
        let mut s = session();
        let mut now = Time::ZERO;
        // Deliver chunks instantly: buffer fills to capacity.
        for _ in 0..12 {
            let bytes = s.bytes_to_send(now);
            if bytes == 0 {
                break;
            }
            s.consume(bytes);
            now += Dur::from_millis(1);
            s.on_delivered(now, bytes);
        }
        assert_eq!(s.bytes_to_send(now), 0, "full buffer must pause the sender");
        // After 3+ seconds of playback a slot frees up.
        let later = now + Dur::from_secs(4);
        assert!(s.bytes_to_send(later) > 0);
    }

    #[test]
    fn threshold_policy_drives_shared_cell() {
        let th = SharedThreshold::new(f64::INFINITY);
        let spec = corpus_1080p(1, 5)[0].clone();
        let max = spec.max_bitrate();
        let mut s = VideoSession::new(spec, Some(th.clone()));
        let bytes = s.bytes_to_send(Time::ZERO);
        // Plenty of buffer space: sufficient-rate rule only.
        assert!(
            (th.get() - 1.5 * max).abs() < 1e-9,
            "threshold = {}",
            th.get()
        );
        // Fill the buffer: the buffer-limit rule caps the threshold low.
        s.consume(bytes);
        let mut now = Time::from_millis(1);
        s.on_delivered(now, bytes);
        for _ in 0..12 {
            let b = s.bytes_to_send(now);
            if b == 0 {
                break;
            }
            s.consume(b);
            now += Dur::from_millis(1);
            s.on_delivered(now, b);
        }
        assert!(
            th.get() < max,
            "near-full buffer should cap the threshold: {}",
            th.get()
        );
    }

    #[test]
    fn emergency_rule_on_stall() {
        let th = SharedThreshold::new(f64::INFINITY);
        let spec = corpus_1080p(1, 5)[0].clone();
        let mut s = VideoSession::new(spec, Some(th.clone()));
        // Deliver two chunks (the startup threshold), let them play out
        // and stall.
        for ms in [100, 200] {
            let bytes = s.bytes_to_send(Time::from_millis(ms - 1));
            s.consume(bytes);
            s.on_delivered(Time::from_millis(ms), bytes);
        }
        s.on_wakeup(Time::from_secs_f64(10.0)); // 6 s of media long gone
        assert!(s.playback.is_rebuffering());
        assert!(th.get().is_infinite(), "emergency rule should fire");
    }

    #[test]
    fn session_finishes_after_all_chunks() {
        let spec = corpus_1080p(1, 5)[0].clone();
        let total = spec.chunks;
        let mut s = VideoSession::new(spec, None);
        let mut now = Time::ZERO;
        let mut delivered_chunks = 0;
        while delivered_chunks < total {
            let b = s.bytes_to_send(now);
            if b == 0 {
                now += Dur::from_secs(1);
                s.on_wakeup(now);
                continue;
            }
            s.consume(b);
            now += Dur::from_millis(50);
            s.on_delivered(now, b);
            delivered_chunks += 1;
        }
        assert!(s.finished(now));
        let stats = s.stats_handle();
        assert_eq!(stats.borrow().chunk_bitrates.len(), total);
        assert!(stats.borrow().finished);
    }

    #[test]
    fn forced_max_requests_top_rung() {
        let spec = corpus_1080p(1, 5)[0].clone();
        let rungs = spec.ladder.len();
        let mut s = VideoSession::new(spec, None).with_forced_max_bitrate();
        let _ = s.bytes_to_send(Time::ZERO);
        assert_eq!(s.current.as_ref().unwrap().rung, rungs - 1);
    }
}
