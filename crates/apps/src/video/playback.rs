//! Client-side playback buffer emulation.
//!
//! The paper's §6 evaluation runs "emulated video streaming on top of our
//! UDP implementation": the receiver consumes received bytes to maintain an
//! emulated playback buffer. This module is that buffer — it holds seconds
//! of decoded video, drains in real time while playing, stalls at zero
//! (rebuffering) and resumes once enough content is buffered again.

use proteus_transport::{Dur, Time};

/// Emulated playback buffer and stall accounting.
#[derive(Debug, Clone)]
pub struct Playback {
    /// Media currently buffered.
    level: Dur,
    /// Buffer capacity (the client stops requesting above this).
    capacity: Dur,
    /// Media needed before (re)starting playback.
    startup_threshold: Dur,
    /// Whether the video is currently playing (false = startup or stall).
    playing: bool,
    /// Last time `sync` advanced the model.
    last_sync: Option<Time>,
    /// Accumulated playing time.
    played: Dur,
    /// Accumulated stall (startup excluded) time.
    stalled: Dur,
    /// Number of distinct rebuffering events (after startup).
    stall_events: u64,
    /// Whether playback has started at least once.
    started: bool,
    /// Total media pushed.
    pushed: Dur,
    /// Whether the source has no more chunks (drain to the end).
    finished_feeding: bool,
}

impl Playback {
    /// Creates a buffer with the given capacity and startup threshold.
    pub fn new(capacity: Dur, startup_threshold: Dur) -> Self {
        assert!(startup_threshold <= capacity);
        Self {
            level: Dur::ZERO,
            capacity,
            startup_threshold,
            playing: false,
            last_sync: None,
            played: Dur::ZERO,
            stalled: Dur::ZERO,
            stall_events: 0,
            started: false,
            pushed: Dur::ZERO,
            finished_feeding: false,
        }
    }

    /// Advances the playback model to `now`.
    pub fn sync(&mut self, now: Time) {
        let last = match self.last_sync {
            None => {
                self.last_sync = Some(now);
                return;
            }
            Some(t) => t,
        };
        if now <= last {
            return;
        }
        let mut dt = now.since(last);
        self.last_sync = Some(now);
        if self.playing {
            if dt < self.level {
                self.level -= dt;
                self.played += dt;
            } else {
                // Drained mid-interval: play what's left, then stall.
                self.played += self.level;
                dt -= self.level;
                self.level = Dur::ZERO;
                if self.pushed_everything_played() {
                    self.playing = false; // normal end of stream
                } else {
                    self.playing = false;
                    self.stall_events += 1;
                    self.stalled += dt;
                }
            }
        } else if self.started && !self.pushed_everything_played() {
            self.stalled += dt;
        }
    }

    fn pushed_everything_played(&self) -> bool {
        self.finished_feeding && self.level.is_zero()
    }

    /// Adds one downloaded chunk of media.
    pub fn push_chunk(&mut self, now: Time, duration: Dur) {
        self.sync(now);
        self.level += duration;
        self.pushed += duration;
        if !self.playing && self.level >= self.startup_threshold {
            self.playing = true;
            self.started = true;
        }
    }

    /// Marks the source exhausted (no more chunks will arrive).
    pub fn finish_feeding(&mut self) {
        self.finished_feeding = true;
    }

    /// Seconds of media currently buffered.
    pub fn level(&self) -> Dur {
        self.level
    }

    /// Free space, media seconds.
    pub fn free(&self) -> Dur {
        self.capacity - self.level
    }

    /// Free space in chunk units of the given chunk duration (the paper's
    /// `f`, possibly fractional).
    pub fn free_chunks(&self, chunk: Dur) -> f64 {
        self.free().as_secs_f64() / chunk.as_secs_f64()
    }

    /// Whether a whole chunk currently fits.
    pub fn has_space_for(&self, chunk: Dur) -> bool {
        self.level + chunk <= self.capacity
    }

    /// Whether the client is stalled (started but not playing, content
    /// pending).
    pub fn is_rebuffering(&self) -> bool {
        self.started && !self.playing && !self.pushed_everything_played()
    }

    /// Whether playback is running.
    pub fn is_playing(&self) -> bool {
        self.playing
    }

    /// Total played time.
    pub fn played(&self) -> Dur {
        self.played
    }

    /// Total stalled (rebuffering) time.
    pub fn stalled(&self) -> Dur {
        self.stalled
    }

    /// Number of rebuffering events.
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }

    /// Rebuffer ratio: `stalled / (played + stalled)`; 0 before playback.
    pub fn rebuffer_ratio(&self) -> f64 {
        let denom = self.played + self.stalled;
        if denom.is_zero() {
            0.0
        } else {
            self.stalled.as_secs_f64() / denom.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> Playback {
        Playback::new(Dur::from_secs(12), Dur::from_secs(3))
    }

    #[test]
    fn startup_waits_for_threshold() {
        let mut b = buf();
        b.sync(Time::ZERO);
        assert!(!b.is_playing());
        b.push_chunk(Time::from_secs_f64(1.0), Dur::from_secs(3));
        assert!(b.is_playing());
        assert!(b.started);
    }

    #[test]
    fn playback_drains_in_real_time() {
        let mut b = buf();
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        b.sync(Time::from_secs_f64(2.0));
        assert_eq!(b.level(), Dur::from_secs(1));
        assert_eq!(b.played(), Dur::from_secs(2));
    }

    #[test]
    fn stall_is_counted_after_drain() {
        let mut b = buf();
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        // 5 s later the 3 s of media are gone: 2 s of stall.
        b.sync(Time::from_secs_f64(5.0));
        assert!(b.is_rebuffering());
        assert_eq!(b.stalled(), Dur::from_secs(2));
        assert_eq!(b.stall_events(), 1);
        // Stall continues until a chunk arrives and threshold is met.
        b.push_chunk(Time::from_secs_f64(6.0), Dur::from_secs(3));
        assert!(b.is_playing());
        assert_eq!(b.stalled(), Dur::from_secs(3));
        let ratio = b.rebuffer_ratio();
        assert!((ratio - 3.0 / 6.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn free_space_accounting() {
        let mut b = buf();
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        assert_eq!(b.free(), Dur::from_secs(6));
        assert!((b.free_chunks(Dur::from_secs(3)) - 2.0).abs() < 1e-9);
        assert!(b.has_space_for(Dur::from_secs(3)));
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        assert!(!b.has_space_for(Dur::from_secs(3)));
    }

    #[test]
    fn end_of_stream_is_not_a_stall() {
        let mut b = buf();
        b.push_chunk(Time::ZERO, Dur::from_secs(3));
        b.finish_feeding();
        b.sync(Time::from_secs_f64(10.0));
        assert!(!b.is_rebuffering());
        assert_eq!(b.stalled(), Dur::ZERO);
        assert_eq!(b.played(), Dur::from_secs(3));
        assert_eq!(b.rebuffer_ratio(), 0.0);
    }

    #[test]
    fn pre_start_wait_is_not_rebuffering() {
        let mut b = buf();
        b.sync(Time::ZERO);
        b.sync(Time::from_secs_f64(5.0));
        assert_eq!(b.stalled(), Dur::ZERO);
        assert!(!b.is_rebuffering());
    }
}
