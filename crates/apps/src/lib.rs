//! Application substrates for the PCC Proteus reproduction.
//!
//! The paper's application-level experiments (§6.2.2, §6.3) need two
//! workloads:
//!
//! * [`video`] — emulated DASH streaming: a synthetic 4K/1080P corpus, the
//!   BOLA bitrate-adaptation algorithm, a playback buffer with rebuffer
//!   accounting, and a [`video::VideoSession`] application
//!   that drives a simulated flow and (for Proteus-H) retunes the §4.4
//!   cross-layer switching threshold on every chunk request,
//! * [`web`] — Poisson page-load workload with log-normal page weights
//!   (the "Alexa top-30" substitute).
//!
//! Beyond the paper, [`media`] adds a frame-paced RTC source (configurable
//! fps, bitrate ladder, keyframe bursts) for the latency-SLO experiments.
//!
//! [`crosslayer::ThresholdPolicy`] implements the §4.4 threshold rules on
//! their own, so they can be unit-tested and reused outside video.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crosslayer;
pub mod media;
pub mod video;
pub mod web;

pub use crosslayer::ThresholdPolicy;
pub use media::{MediaSource, MediaSpec};
pub use video::{VideoSession, VideoSpec, VideoStats, VideoStatsHandle};
pub use web::{PageLoad, WebWorkload};
