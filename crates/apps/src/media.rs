//! Frame-paced real-time media source (RTC workload).
//!
//! Models the sender side of an interactive video call in the style of the
//! simulated RTP evaluations (Zhang, arXiv:1809.00304): an encoder emits one
//! frame every `1/fps` seconds at the current rung of a bitrate ladder, with
//! periodic keyframes several times larger than delta frames. The source is
//! **app-limited** — [`MediaSource::bytes_to_send`] exposes only the bytes of
//! frames already encoded, so the application (not the congestion window)
//! caps the long-run send rate. A simple deterministic backlog rule walks
//! the ladder: sustained queue growth drops a rung, a persistently drained
//! queue climbs one.
//!
//! Determinism: frame *instants* sit on a fixed grid anchored at the flow's
//! first poll (`anchor + i/fps`), and frame *sizes* draw jitter from a
//! private [`SmallRng`] stream seeded only by [`MediaSpec::seed`] — the
//! source never touches the simulator's RNG, so adding a media flow cannot
//! perturb the event stream of other flows.

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

use proteus_transport::{Application, Dur, FrameRecord, Time};

/// Queue depth (in nominal frames at the current rung) above which the
/// source switches one ladder rung down.
const LADDER_DOWN_BACKLOG_FRAMES: f64 = 4.0;

/// Queue depth (in nominal frames) under which a frame counts toward the
/// up-switch streak.
const LADDER_UP_BACKLOG_FRAMES: f64 = 1.0;

/// Seconds of consecutively drained frames required before climbing a rung.
const LADDER_UP_STREAK_SECS: f64 = 2.0;

/// Salt of the source's private size-jitter RNG stream (`spec.seed ^ salt`),
/// mirroring the fault/churn salt discipline (SCENARIOS.md).
const MEDIA_SEED_SALT: u64 = 0x5EED_F7A3;

/// Parameters of a frame-paced media source.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaSpec {
    /// Frames per second (default 30).
    pub fps: f64,
    /// Bitrate ladder in Mbit/s, ascending (default `[0.35, 0.75, 1.5,
    /// 2.5]`, a WebRTC-ish 360p→1080p ladder). Encoding starts on the
    /// lowest rung.
    pub ladder_mbps: Vec<f64>,
    /// Every `keyframe_every`-th frame is a keyframe (default 60, i.e. one
    /// 2-second GOP at 30 fps).
    pub keyframe_every: u32,
    /// Keyframe size multiplier relative to a delta frame (default 3.0).
    pub keyframe_scale: f64,
    /// Playout deadline per frame (default 100 ms); frames completing
    /// later count as freezes in the flow's latency-SLO metrics.
    pub deadline: Dur,
    /// Uniform ± fraction of per-frame size jitter (default 0.15).
    pub size_jitter: f64,
    /// Seed of the private frame-size jitter stream.
    pub seed: u64,
}

impl Default for MediaSpec {
    fn default() -> Self {
        Self {
            fps: 30.0,
            ladder_mbps: vec![0.35, 0.75, 1.5, 2.5],
            keyframe_every: 60,
            keyframe_scale: 3.0,
            deadline: Dur::from_millis(100),
            size_jitter: 0.15,
            seed: 1,
        }
    }
}

impl MediaSpec {
    /// Nominal delta-frame size in bytes at ladder rung `rung`.
    fn frame_bytes(&self, rung: usize) -> f64 {
        self.ladder_mbps[rung] * 1e6 / 8.0 / self.fps
    }
}

/// Frame-paced media application; implements [`Application`].
#[derive(Debug, Clone)]
pub struct MediaSource {
    spec: MediaSpec,
    rng: SmallRng,
    /// Grid anchor: instant of frame 0, set at the first poll.
    anchor: Option<Time>,
    /// Index of the next frame to encode.
    frame_idx: u64,
    /// Current ladder rung.
    rung: usize,
    /// Consecutive drained-queue frames (ladder up-switch streak).
    up_streak: u32,
    /// Encoded-but-unsent bytes.
    queued: u64,
    /// Cumulative encoded bytes (monotone; frames end at these offsets).
    gen_bytes: u64,
    /// Frames encoded but not yet handed to the driver.
    pending: Vec<FrameRecord>,
    /// Total frames encoded.
    frames_generated: u64,
    /// Ladder switches (down, up).
    switches: (u64, u64),
}

impl MediaSource {
    /// Creates a source from `spec`. Panics if the ladder is empty, fps is
    /// non-positive, or the ladder is not ascending.
    pub fn new(spec: MediaSpec) -> Self {
        assert!(!spec.ladder_mbps.is_empty(), "empty bitrate ladder");
        assert!(spec.fps > 0.0, "fps must be positive");
        assert!(
            spec.ladder_mbps.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending"
        );
        assert!(spec.keyframe_every >= 1, "keyframe_every must be >= 1");
        let rng = SmallRng::seed_from_u64(spec.seed ^ MEDIA_SEED_SALT);
        Self {
            spec,
            rng,
            anchor: None,
            frame_idx: 0,
            rung: 0,
            up_streak: 0,
            queued: 0,
            gen_bytes: 0,
            pending: Vec::new(),
            frames_generated: 0,
            switches: (0, 0),
        }
    }

    /// The source's parameters.
    pub fn spec(&self) -> &MediaSpec {
        &self.spec
    }

    /// Total frames encoded so far.
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Current bitrate-ladder rung (0 = lowest).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// `(down, up)` ladder-switch counts.
    pub fn ladder_switches(&self) -> (u64, u64) {
        self.switches
    }

    /// Encoded bytes not yet handed to the transport.
    pub fn queued_bytes(&self) -> u64 {
        self.queued
    }

    /// Instant of frame `idx` on the grid (requires the anchor to be set).
    fn frame_instant(&self, idx: u64) -> Time {
        self.anchor.expect("media source not started")
            + Dur::from_secs_f64(idx as f64 / self.spec.fps)
    }

    /// Encodes every frame whose grid instant is `<= now`.
    fn catch_up(&mut self, now: Time) {
        let anchor = *self.anchor.get_or_insert(now);
        debug_assert!(anchor <= now);
        while self.frame_instant(self.frame_idx) <= now {
            let at = self.frame_instant(self.frame_idx);
            self.adapt_ladder();
            let key = self
                .frame_idx
                .is_multiple_of(u64::from(self.spec.keyframe_every));
            let mut bytes = self.spec.frame_bytes(self.rung);
            if key {
                bytes *= self.spec.keyframe_scale;
            }
            let j = self.spec.size_jitter;
            if j > 0.0 {
                bytes *= 1.0 + j * (2.0 * self.rng.random::<f64>() - 1.0);
            }
            let bytes = (bytes.round() as u64).max(1);
            self.queued += bytes;
            self.gen_bytes += bytes;
            self.pending.push(FrameRecord {
                gen_at: at,
                end_bytes: self.gen_bytes,
                deadline: self.spec.deadline,
            });
            self.frames_generated += 1;
            self.frame_idx += 1;
        }
    }

    /// Backlog-driven ladder walk, evaluated once per encoded frame.
    fn adapt_ladder(&mut self) {
        let nominal = self.spec.frame_bytes(self.rung);
        let backlog = self.queued as f64 / nominal;
        if backlog > LADDER_DOWN_BACKLOG_FRAMES {
            if self.rung > 0 {
                self.rung -= 1;
                self.switches.0 += 1;
            }
            self.up_streak = 0;
        } else if backlog < LADDER_UP_BACKLOG_FRAMES {
            self.up_streak += 1;
            let need = (LADDER_UP_STREAK_SECS * self.spec.fps).ceil() as u32;
            if self.up_streak >= need {
                self.up_streak = 0;
                if self.rung + 1 < self.spec.ladder_mbps.len() {
                    self.rung += 1;
                    self.switches.1 += 1;
                }
            }
        } else {
            self.up_streak = 0;
        }
    }
}

impl Application for MediaSource {
    fn bytes_to_send(&mut self, now: Time) -> u64 {
        self.catch_up(now);
        self.queued
    }

    fn consume(&mut self, bytes: u64) {
        self.queued = self.queued.saturating_sub(bytes);
    }

    fn next_event(&self, _now: Time) -> Option<Time> {
        self.anchor.map(|_| self.frame_instant(self.frame_idx))
    }

    fn on_wakeup(&mut self, now: Time) {
        self.catch_up(now);
    }

    fn is_media(&self) -> bool {
        true
    }

    fn drain_frames(&mut self, sink: &mut Vec<FrameRecord>) {
        sink.append(&mut self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained(src: &mut MediaSource) -> Vec<FrameRecord> {
        let mut v = Vec::new();
        src.drain_frames(&mut v);
        v
    }

    #[test]
    fn frame_cadence_and_accounting() {
        let mut src = MediaSource::new(MediaSpec::default());
        assert_eq!(src.bytes_to_send(Time::ZERO), src.queued_bytes());
        // 10 s at 30 fps, polled every 100 ms: 301 frames (grid inclusive).
        for ms in (0..=10_000).step_by(100) {
            src.on_wakeup(Time::from_millis(ms));
        }
        assert_eq!(src.frames_generated(), 301);
        let frames = drained(&mut src);
        assert_eq!(frames.len(), 301);
        // end_bytes strictly increases and the last equals total generated.
        assert!(frames.windows(2).all(|w| w[0].end_bytes < w[1].end_bytes));
        // Frames sit on the 1/30 s grid.
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.gen_at, Time::from_secs_f64(i as f64 / 30.0));
            assert_eq!(f.deadline, Dur::from_millis(100));
        }
        // Second drain is empty.
        assert!(drained(&mut src).is_empty());
    }

    #[test]
    fn keyframes_are_larger() {
        let spec = MediaSpec {
            size_jitter: 0.0,
            ..MediaSpec::default()
        };
        let mut src = MediaSource::new(spec);
        src.on_wakeup(Time::ZERO); // anchor the grid at t=0
        src.on_wakeup(Time::from_secs_f64(2.0)); // 61 frames: idx 0..=60
        let frames = drained(&mut src);
        let sizes: Vec<u64> = frames
            .iter()
            .scan(0, |prev, f| {
                let s = f.end_bytes - *prev;
                *prev = f.end_bytes;
                Some(s)
            })
            .collect();
        // Frames 0 and 60 are keyframes, ~3x the delta size on the same rung.
        let ratio = sizes[0] as f64 / sizes[1] as f64;
        assert!((2.99..3.01).contains(&ratio), "ratio = {ratio}");
        assert!(sizes[60] >= sizes[59] * 2, "{} vs {}", sizes[60], sizes[59]);
    }

    #[test]
    fn app_limited_queue_drains() {
        let mut src = MediaSource::new(MediaSpec::default());
        let avail = src.bytes_to_send(Time::ZERO);
        assert!(avail < u64::MAX, "media source must be app-limited");
        src.consume(avail);
        assert_eq!(src.bytes_to_send(Time::ZERO), 0);
        // Next frame instant is scheduled.
        assert_eq!(
            src.next_event(Time::ZERO),
            Some(Time::from_secs_f64(1.0 / 30.0))
        );
        assert!(!src.finished(Time::ZERO));
    }

    #[test]
    fn ladder_climbs_when_drained_and_drops_on_backlog() {
        let mut src = MediaSource::new(MediaSpec::default());
        // Drain the queue after every frame for 30 s: should climb off rung 0.
        for ms in (0..30_000).step_by(10) {
            let now = Time::from_millis(ms);
            let b = src.bytes_to_send(now);
            src.consume(b);
        }
        assert!(src.rung() > 0, "rung = {}", src.rung());
        let rung_before = src.rung();
        // Now stop draining entirely: backlog builds, rung drops to 0.
        for ms in 30_000..40_000u64 {
            src.on_wakeup(Time::from_millis(ms));
        }
        assert_eq!(src.rung(), 0);
        assert!(src.ladder_switches().0 >= rung_before as u64);
    }

    #[test]
    fn sizes_deterministic_per_seed() {
        let mk = |seed| {
            let mut s = MediaSource::new(MediaSpec {
                seed,
                ..MediaSpec::default()
            });
            s.on_wakeup(Time::ZERO);
            s.on_wakeup(Time::from_secs_f64(5.0));
            drained(&mut s)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn long_run_rate_tracks_lowest_rung_when_undrained() {
        // Never consuming keeps the source on rung 0; generated bytes over
        // 60 s should be ~0.35 Mbit/s plus the keyframe surcharge.
        let mut src = MediaSource::new(MediaSpec {
            size_jitter: 0.0,
            ..MediaSpec::default()
        });
        src.on_wakeup(Time::ZERO);
        src.on_wakeup(Time::from_secs_f64(60.0));
        let mbps = src.gen_bytes as f64 * 8.0 / 60.0 / 1e6;
        // 1800 delta frames, 31 of them keyframes at 3x => ~3.4% uplift.
        assert!((0.3..0.5).contains(&mbps), "mbps = {mbps}");
    }
}
