//! Minimal JSON writer for telemetry and campaign summaries.
//!
//! The tree has no serde (the build environment is offline), and the only
//! JSON we need to *write* is flat objects of strings and numbers — JSONL
//! trace records and campaign/bench summaries. This is a small correct
//! emitter for exactly that.

use std::fmt::Write as _;

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Builder for one flat JSON object, preserving insertion order.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, key: &str, raw: String) -> &mut Self {
        self.fields.push((key.to_string(), raw));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, val: &str) -> &mut Self {
        self.push(key, format!("\"{}\"", escape(val)))
    }

    /// Adds a float field (`null` if non-finite).
    pub fn num(&mut self, key: &str, val: f64) -> &mut Self {
        self.push(key, number(val))
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, val: u64) -> &mut Self {
        self.push(key, format!("{val}"))
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, val: bool) -> &mut Self {
        self.push(key, format!("{val}"))
    }

    /// Adds an already-rendered JSON value verbatim (e.g. a nested object
    /// or array built by the caller).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.push(key, json.to_string())
    }

    /// Renders the object on one line (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from already-rendered element strings.
pub fn array(elems: &[String]) -> String {
    format!("[{}]", elems.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_rendering() {
        let mut o = Obj::new();
        o.str("name", "fig8")
            .num("rate", 2.5)
            .int("n", 3)
            .bool("ok", true);
        assert_eq!(
            o.render(),
            "{\"name\":\"fig8\",\"rate\":2.5,\"n\":3,\"ok\":true}"
        );
    }

    #[test]
    fn nested_raw_and_array() {
        let inner = {
            let mut o = Obj::new();
            o.int("a", 1);
            o.render()
        };
        let mut outer = Obj::new();
        outer.raw("items", &array(&[inner, "2".to_string()]));
        assert_eq!(outer.render(), "{\"items\":[{\"a\":1},2]}");
    }
}
