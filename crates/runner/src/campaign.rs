//! A campaign: a named batch of jobs run through cache + executor.
//!
//! `Campaign` is the high-level entry point the experiments use: push
//! [`SimJob`]s, call [`Campaign::run`], get payloads back in submission
//! order plus a [`CampaignStats`] record of how much work the cache saved.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::ResultCache;
use crate::job::SimJob;
use crate::json::Obj;
use crate::pool::Executor;

/// Options controlling how a campaign executes.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Worker threads (0 → one per available core).
    pub jobs: usize,
    /// Result-cache directory; `None` disables caching.
    pub cache: Option<PathBuf>,
    /// Print per-job progress lines to stderr.
    pub progress: bool,
    /// File to append the run's [`CampaignStats`] JSON line to (JSONL
    /// trajectory across invocations); `None` disables it.
    pub summary: Option<PathBuf>,
    /// Shard filter `(index, count)` with `index < count`: a cache-**miss**
    /// job is executed only when `key % count == index`; out-of-shard
    /// misses are *skipped* — their output slot is filled with
    /// [`skipped_payload`] and nothing is stored in the cache. Cache hits
    /// are always used regardless of shard, so shards share whatever work
    /// is already done. Because job keys are stable content hashes, the
    /// shards partition the job set deterministically across machines: run
    /// shard `i/n` on `n` machines against the same spec, merge the
    /// `results/.cache/` directories, then re-run unsharded for complete
    /// reports (~every job a hit). `None` disables sharding.
    pub shard: Option<(u32, u32)>,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        Self {
            jobs: 1,
            cache: None,
            progress: false,
            summary: None,
            shard: None,
        }
    }
}

/// Number of zero floats in a skipped job's placeholder payload — sized
/// past every float index any experiment decoder reads, so sharded runs
/// produce partial-but-well-formed reports instead of panicking.
pub const SKIPPED_PAYLOAD_FLOATS: usize = 16;

/// The placeholder payload a sharded campaign stores in the output slot of
/// an out-of-shard job: [`SKIPPED_PAYLOAD_FLOATS`] zeros, encoded with
/// [`crate::payload::encode_floats`].
pub fn skipped_payload() -> String {
    crate::payload::encode_floats(&[0.0; SKIPPED_PAYLOAD_FLOATS])
}

/// A named batch of [`SimJob`]s.
pub struct Campaign {
    name: String,
    opts: CampaignOpts,
    jobs: Vec<SimJob>,
    /// Job key → submission index, for [`Campaign::push_dedup`].
    seen: HashMap<u64, usize>,
}

/// What a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Job payloads, in submission order (index-aligned with `push` calls).
    pub outputs: Vec<String>,
    /// Execution accounting.
    pub stats: CampaignStats,
}

/// Execution accounting for one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Campaign name.
    pub name: String,
    /// Total jobs submitted.
    pub total: usize,
    /// Jobs answered from the result cache.
    pub cached: usize,
    /// Jobs actually executed.
    pub executed: usize,
    /// Cache-miss jobs skipped by the shard filter (always 0 unsharded).
    pub skipped: usize,
    /// Wall-clock seconds for the whole run (lookup + execute + store).
    pub wall_secs: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignStats {
    /// Renders the stats as a one-line JSON object.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.str("campaign", &self.name)
            .int("total", self.total as u64)
            .int("cached", self.cached as u64)
            .int("executed", self.executed as u64)
            .int("skipped", self.skipped as u64)
            .num("wall_secs", self.wall_secs)
            .int("workers", self.workers as u64);
        o.render()
    }
}

/// Process-wide log of every campaign finished since the last
/// [`take_session_stats`] call. Lets a driver binary that runs many
/// experiments (each constructing its own [`Campaign`]) report aggregate
/// cache hit/miss accounting at the end without threading state through
/// every experiment function.
static SESSION_STATS: Mutex<Vec<CampaignStats>> = Mutex::new(Vec::new());

/// Drains and returns the stats of every campaign completed in this process
/// since the previous drain, in completion order.
pub fn take_session_stats() -> Vec<CampaignStats> {
    std::mem::take(&mut *SESSION_STATS.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Campaign {
    /// Creates an empty campaign.
    pub fn new(name: impl Into<String>, opts: CampaignOpts) -> Self {
        Self {
            name: name.into(),
            opts,
            jobs: Vec::new(),
            seen: HashMap::new(),
        }
    }

    /// Adds a job and returns its submission index (its slot in
    /// [`CampaignResult::outputs`]). Results come back in push order.
    pub fn push(&mut self, job: SimJob) -> usize {
        let index = self.jobs.len();
        self.seen.insert(job.key().0, index);
        self.jobs.push(job);
        index
    }

    /// Adds a job unless one with an identical descriptor is already
    /// queued; returns the submission index whose output slot holds (or
    /// will hold) this descriptor's payload. Experiments use this to share
    /// baseline runs (e.g. "primary alone") across several tables without
    /// simulating them twice.
    pub fn push_dedup(&mut self, job: SimJob) -> usize {
        match self.seen.get(&job.key().0) {
            Some(&index) => index,
            None => self.push(job),
        }
    }

    /// Number of jobs queued so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the campaign: answers what it can from the cache, executes the
    /// rest on the pool, stores fresh results back, and returns payloads in
    /// submission order.
    pub fn run(self) -> CampaignResult {
        let start = Instant::now();
        let workers = if self.opts.jobs == 0 {
            Executor::default_workers()
        } else {
            self.opts.jobs
        };
        let total = self.jobs.len();

        let cache = self
            .opts
            .cache
            .as_ref()
            .and_then(|dir| ResultCache::at(dir).ok());

        // Partition into cache hits and jobs that must run, remembering
        // each job's submission slot so order survives the split. A job
        // with declared artifacts only counts as a hit when the payload
        // *and* every artifact are stored: then the artifacts are replayed
        // (rewritten to their declared paths); otherwise the job is forced
        // to re-execute so it regenerates them.
        if let Some((index, count)) = self.opts.shard {
            assert!(
                count > 0 && index < count,
                "invalid shard {index}/{count}: need index < count, count > 0"
            );
        }

        let mut outputs: Vec<Option<String>> = (0..total).map(|_| None).collect();
        let mut to_run: Vec<(usize, SimJob)> = Vec::new();
        let mut skipped = 0usize;
        for (index, job) in self.jobs.into_iter().enumerate() {
            let hit = cache.as_ref().and_then(|c| {
                let payload = c.get(job.key(), job.descriptor())?;
                let artifacts: Vec<String> = job
                    .artifacts()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| c.get_artifact(job.key(), job.descriptor(), i))
                    .collect::<Option<_>>()?;
                Some((payload, artifacts))
            });
            match hit {
                Some((payload, artifacts)) => {
                    for (path, content) in job.artifacts().iter().zip(&artifacts) {
                        Self::replay_artifact(path, content);
                    }
                    outputs[index] = Some(payload);
                }
                None => match self.opts.shard {
                    Some((shard_index, shard_count))
                        if job.key().0 % shard_count as u64 != shard_index as u64 =>
                    {
                        // Out-of-shard miss: another shard owns this job.
                        // Fill the slot with the placeholder (not stored in
                        // the cache) so reports stay well-formed.
                        outputs[index] = Some(skipped_payload());
                        skipped += 1;
                    }
                    _ => to_run.push((index, job)),
                },
            }
        }
        let cached = total - to_run.len() - skipped;
        let executed = to_run.len();

        if self.opts.progress && total > 0 {
            eprintln!(
                "[{}] {} job(s): {} cached, {} skipped (shard), {} to run on {} worker(s)",
                self.name, total, cached, skipped, executed, workers
            );
        }

        if !to_run.is_empty() {
            // Keep (slot, key, descriptor, artifact paths) aside: SimJob is
            // consumed by the executor, but we still need its identity to
            // store the result.
            let identities: Vec<(usize, crate::hash::JobKey, String, Vec<PathBuf>)> = to_run
                .iter()
                .map(|(slot, job)| {
                    (
                        *slot,
                        job.key(),
                        job.descriptor().to_string(),
                        job.artifacts().to_vec(),
                    )
                })
                .collect();
            let jobs: Vec<SimJob> = to_run.into_iter().map(|(_, job)| job).collect();

            let name = self.name.clone();
            let progress = self.opts.progress;
            let cb = move |done: usize, run_total: usize, label: &str| {
                if progress {
                    eprintln!("[{name}] {done}/{run_total} {label}");
                }
            };
            let payloads = Executor::new(workers).run(jobs, Some(&cb));

            for ((slot, key, descriptor, artifacts), payload) in
                identities.into_iter().zip(payloads)
            {
                if let Some(c) = cache.as_ref() {
                    c.put(key, &descriptor, &payload);
                    // Store whichever artifacts the job actually produced.
                    // A missing file leaves the stored set incomplete, which
                    // future lookups treat as a miss — never a silent hit
                    // with absent side effects.
                    for (i, path) in artifacts.iter().enumerate() {
                        if let Ok(content) = std::fs::read_to_string(path) {
                            c.put_artifact(key, &descriptor, i, &content);
                        }
                    }
                }
                outputs[slot] = Some(payload);
            }
        }

        let outputs: Vec<String> = outputs
            .into_iter()
            .map(|o| o.expect("every job slot filled by cache or executor"))
            .collect();

        let stats = CampaignStats {
            name: self.name,
            total,
            cached,
            executed,
            skipped,
            wall_secs: start.elapsed().as_secs_f64(),
            workers,
        };
        if let Some(path) = &self.opts.summary {
            Self::append_summary(path, &stats);
        }
        SESSION_STATS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stats.clone());
        CampaignResult { outputs, stats }
    }

    /// Rewrites one cached artifact to its declared path. Write failures
    /// are ignored like cache-store failures: replay is best-effort, and a
    /// reader that needs the file will see it missing and re-run without a
    /// cache (`--no-cache`) to regenerate it.
    fn replay_artifact(path: &std::path::Path, content: &str) {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(path, content);
    }

    /// Appends one stats line to the JSONL trajectory file. I/O errors are
    /// ignored: accounting must never fail a campaign.
    fn append_summary(path: &std::path::Path, stats: &CampaignStats) {
        use std::io::Write;
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{}", stats.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("proteus-runner-campaign-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn counted_jobs(n: usize, counter: &Arc<AtomicUsize>) -> Vec<SimJob> {
        (0..n)
            .map(|i| {
                let counter = Arc::clone(counter);
                SimJob::new(format!("test/campaign/{i}"), format!("j{i}"), move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    format!("{}", i * 10)
                })
            })
            .collect()
    }

    #[test]
    fn uncached_campaign_runs_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut c = Campaign::new("t", CampaignOpts::default());
        for j in counted_jobs(5, &counter) {
            c.push(j);
        }
        let r = c.run();
        assert_eq!(r.outputs, vec!["0", "10", "20", "30", "40"]);
        assert_eq!(r.stats.total, 5);
        assert_eq!(r.stats.cached, 0);
        assert_eq!(r.stats.executed, 5);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn warm_cache_executes_nothing() {
        let dir = tmp_dir("warm");
        let opts = CampaignOpts {
            cache: Some(dir.clone()),
            ..CampaignOpts::default()
        };
        let counter = Arc::new(AtomicUsize::new(0));

        let mut first = Campaign::new("t", opts.clone());
        for j in counted_jobs(4, &counter) {
            first.push(j);
        }
        let r1 = first.run();
        assert_eq!(r1.stats.executed, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);

        let mut second = Campaign::new("t", opts);
        for j in counted_jobs(4, &counter) {
            second.push(j);
        }
        let r2 = second.run();
        assert_eq!(r2.stats.cached, 4);
        assert_eq!(r2.stats.executed, 0);
        assert_eq!(counter.load(Ordering::Relaxed), 4, "no job re-ran");
        assert_eq!(r1.outputs, r2.outputs);
    }

    #[test]
    fn partial_cache_runs_only_new_jobs() {
        let dir = tmp_dir("partial");
        let opts = CampaignOpts {
            cache: Some(dir.clone()),
            ..CampaignOpts::default()
        };
        let counter = Arc::new(AtomicUsize::new(0));

        let mut first = Campaign::new("t", opts.clone());
        for j in counted_jobs(3, &counter) {
            first.push(j);
        }
        first.run();

        // Same three jobs plus one with a new descriptor.
        let mut second = Campaign::new("t", opts);
        for j in counted_jobs(3, &counter) {
            second.push(j);
        }
        second.push(SimJob::new("test/campaign/extra", "extra", || {
            "99".to_string()
        }));
        let r = second.run();
        assert_eq!(r.stats.cached, 3);
        assert_eq!(r.stats.executed, 1);
        assert_eq!(r.outputs, vec!["0", "10", "20", "99"]);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            3,
            "cached jobs never re-ran"
        );
    }

    fn artifact_job(dir: &std::path::Path, counter: &Arc<AtomicUsize>) -> SimJob {
        let out = dir.join("sub").join("trace.jsonl");
        let out2 = out.clone();
        let counter = Arc::clone(counter);
        SimJob::new("test/artifact/0", "a0", move || {
            counter.fetch_add(1, Ordering::Relaxed);
            std::fs::create_dir_all(out2.parent().unwrap()).unwrap();
            std::fs::write(&out2, "{\"event\":\"mi_close\"}\n").unwrap();
            "payload".to_string()
        })
        .with_artifact(out)
    }

    #[test]
    fn cached_job_replays_artifacts() {
        let dir = tmp_dir("artifact-replay");
        let opts = CampaignOpts {
            cache: Some(dir.join("cache")),
            ..CampaignOpts::default()
        };
        let counter = Arc::new(AtomicUsize::new(0));
        let artifact = dir.join("sub").join("trace.jsonl");

        let mut first = Campaign::new("t", opts.clone());
        first.push(artifact_job(&dir, &counter));
        assert_eq!(first.run().stats.executed, 1);
        assert!(artifact.is_file());

        // Delete the artifact; a warm-cache run must restore it without
        // re-executing the job.
        std::fs::remove_file(&artifact).unwrap();
        let mut second = Campaign::new("t", opts);
        second.push(artifact_job(&dir, &counter));
        let r = second.run();
        assert_eq!(r.stats.cached, 1);
        assert_eq!(r.stats.executed, 0);
        assert_eq!(counter.load(Ordering::Relaxed), 1, "job must not re-run");
        assert_eq!(
            std::fs::read_to_string(&artifact).unwrap(),
            "{\"event\":\"mi_close\"}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_stored_artifact_forces_re_execution() {
        let dir = tmp_dir("artifact-force");
        let opts = CampaignOpts {
            cache: Some(dir.join("cache")),
            ..CampaignOpts::default()
        };
        let counter = Arc::new(AtomicUsize::new(0));

        // Seed the cache with a payload-only entry (as if the job had been
        // run without artifacts declared — e.g. before a flag flip).
        let mut plain = Campaign::new("t", opts.clone());
        plain.push(SimJob::new("test/artifact/0", "a0", || {
            "payload".to_string()
        }));
        plain.run();

        // The artifact-declaring variant of the same descriptor must treat
        // the artifact-less entry as a miss and execute.
        let mut declared = Campaign::new("t", opts.clone());
        declared.push(artifact_job(&dir, &counter));
        let r = declared.run();
        assert_eq!(r.stats.cached, 0);
        assert_eq!(r.stats.executed, 1);
        assert_eq!(counter.load(Ordering::Relaxed), 1);

        // And now the stored set is complete: next run replays.
        let mut warm = Campaign::new("t", opts);
        warm.push(artifact_job(&dir, &counter));
        assert_eq!(warm.run().stats.cached, 1);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_zero_means_all_cores() {
        let c = Campaign::new(
            "t",
            CampaignOpts {
                jobs: 0,
                ..CampaignOpts::default()
            },
        );
        let r = c.run();
        assert_eq!(r.stats.workers, Executor::default_workers());
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn parallel_equals_serial_with_cache() {
        let mk = |jobs: usize, tag: &str| {
            let mut c = Campaign::new(
                "t",
                CampaignOpts {
                    jobs,
                    cache: Some(tmp_dir(tag)),
                    ..CampaignOpts::default()
                },
            );
            for i in 0..17u64 {
                c.push(SimJob::new(
                    format!("test/par/{i}"),
                    format!("p{i}"),
                    move || crate::payload::encode_floats(&[(i * i) as f64, 1.0 / i.max(1) as f64]),
                ));
            }
            c.run()
        };
        let serial = mk(1, "serial");
        let parallel = mk(8, "parallel");
        assert_eq!(serial.outputs, parallel.outputs);
    }

    #[test]
    fn push_dedup_shares_slots() {
        let mut c = Campaign::new("t", CampaignOpts::default());
        let mk = |d: &str, out: &'static str| {
            let out = out.to_string();
            SimJob::new(d, "j", move || out)
        };
        assert_eq!(c.push_dedup(mk("a", "1")), 0);
        assert_eq!(c.push_dedup(mk("b", "2")), 1);
        assert_eq!(
            c.push_dedup(mk("a", "1")),
            0,
            "duplicate descriptor reuses slot"
        );
        assert_eq!(c.len(), 2);
        let r = c.run();
        assert_eq!(r.outputs, vec!["1", "2"]);
    }

    #[test]
    fn summary_file_accumulates_one_line_per_run() {
        let dir = tmp_dir("summary");
        let path = dir.join("campaigns.jsonl");
        for round in 0..2 {
            let mut c = Campaign::new(
                "s",
                CampaignOpts {
                    summary: Some(path.clone()),
                    ..CampaignOpts::default()
                },
            );
            c.push(SimJob::new("test/summary/0", "j", || "1".to_string()));
            let r = c.run();
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text.lines().count(), round + 1);
            assert_eq!(text.lines().last().unwrap(), r.stats.to_json());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_registry_records_completed_campaigns() {
        // Other tests run campaigns concurrently, so only assert on our own
        // uniquely named entries rather than on the registry as a whole.
        let mut c = Campaign::new("session-registry-probe", CampaignOpts::default());
        c.push(SimJob::new("test/registry/0", "j", || "1".to_string()));
        c.push(SimJob::new("test/registry/1", "j", || "2".to_string()));
        let r = c.run();

        let mine: Vec<CampaignStats> = take_session_stats()
            .into_iter()
            .filter(|s| s.name == "session-registry-probe")
            .collect();
        assert_eq!(mine, vec![r.stats]);
    }

    #[test]
    fn stats_json_shape() {
        let s = CampaignStats {
            name: "fig8".to_string(),
            total: 10,
            cached: 4,
            executed: 5,
            skipped: 1,
            wall_secs: 1.25,
            workers: 2,
        };
        assert_eq!(
            s.to_json(),
            "{\"campaign\":\"fig8\",\"total\":10,\"cached\":4,\"executed\":5,\"skipped\":1,\"wall_secs\":1.25,\"workers\":2}"
        );
    }

    #[test]
    fn shards_partition_the_miss_set() {
        let dir = tmp_dir("shard-partition");
        let opts = |shard| CampaignOpts {
            cache: Some(dir.clone()),
            shard,
            ..CampaignOpts::default()
        };
        let counter = Arc::new(AtomicUsize::new(0));
        let n = 16;

        // Run every shard of a 3-way split on the same cache.
        let mut total_executed = 0;
        let mut total_skipped = 0;
        for i in 0..3 {
            let mut c = Campaign::new("t", opts(Some((i, 3))));
            for j in counted_jobs(n, &counter) {
                c.push(j);
            }
            let r = c.run();
            // Earlier shards' results are cache hits here, never skips.
            assert_eq!(r.stats.total, n);
            total_executed += r.stats.executed;
            total_skipped += r.stats.skipped;
            for (slot, out) in r.outputs.iter().enumerate() {
                assert!(
                    *out == format!("{}", slot * 10) || *out == skipped_payload(),
                    "slot {slot} holds neither real payload nor placeholder"
                );
            }
        }
        // The three shards exactly cover the job set, with no double work
        // (later shards see earlier shards' output as cache hits, so some
        // of their out-of-shard jobs are hits rather than skips).
        assert_eq!(total_executed, n);
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert!(total_skipped > 0, "a 3-way shard must skip something");

        // After the shards ran (caches merged — here they shared one), an
        // unsharded pass is pure replay with complete outputs.
        let mut merged = Campaign::new("t", opts(None));
        for j in counted_jobs(n, &counter) {
            merged.push(j);
        }
        let r = merged.run();
        assert_eq!(r.stats.cached, n);
        assert_eq!(r.stats.executed, 0);
        assert_eq!(r.stats.skipped, 0);
        assert_eq!(counter.load(Ordering::Relaxed), n, "no job re-ran");
        let expect: Vec<String> = (0..n).map(|i| format!("{}", i * 10)).collect();
        assert_eq!(r.outputs, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn skipped_jobs_leave_no_cache_entry() {
        let dir = tmp_dir("shard-nocache");
        let counter = Arc::new(AtomicUsize::new(0));
        // Single shard of a 64-way split: almost everything is skipped.
        let mut c = Campaign::new(
            "t",
            CampaignOpts {
                cache: Some(dir.clone()),
                shard: Some((0, 64)),
                ..CampaignOpts::default()
            },
        );
        for j in counted_jobs(8, &counter) {
            c.push(j);
        }
        let r = c.run();
        assert_eq!(r.stats.executed + r.stats.skipped, 8);
        assert!(r.stats.skipped > 0, "64-way shard must skip something");

        // A warm unsharded run re-executes exactly the skipped jobs: the
        // placeholders were never stored as results.
        let mut again = Campaign::new(
            "t",
            CampaignOpts {
                cache: Some(dir.clone()),
                ..CampaignOpts::default()
            },
        );
        for j in counted_jobs(8, &counter) {
            again.push(j);
        }
        let r2 = again.run();
        assert_eq!(r2.stats.cached, r.stats.executed);
        assert_eq!(r2.stats.executed, r.stats.skipped);
        let expect: Vec<String> = (0..8).map(|i| format!("{}", i * 10)).collect();
        assert_eq!(r2.outputs, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn invalid_shard_panics() {
        let c = Campaign::new(
            "t",
            CampaignOpts {
                shard: Some((3, 3)),
                ..CampaignOpts::default()
            },
        );
        c.run();
    }
}
