//! Parallel simulation-campaign runner for the Proteus reproduction.
//!
//! Every grid-shaped experiment in `proteus-bench` reduces to the same
//! shape: a list of *pure* `(scenario parameters, seed) → numbers` cells
//! that can run in any order. This crate gives that shape a first-class
//! abstraction and the machinery to execute it fast and reproducibly:
//!
//! * [`SimJob`] — one cell: a `Send` closure producing a text payload, plus
//!   a human-readable descriptor whose FNV-1a content hash ([`JobKey`]) is
//!   the job's stable identity,
//! * [`Executor`] — a work-stealing thread pool (std threads only) whose
//!   result ordering is *independent of the worker count*, so a campaign at
//!   `--jobs 8` is byte-identical to `--jobs 1`,
//! * [`ResultCache`] — a content-addressed disk cache (`results/.cache/`)
//!   so re-running `repro` only recomputes cells whose descriptors changed,
//! * [`Campaign`] — ties the three together and reports progress and a
//!   machine-readable JSON summary for the bench trajectory,
//! * [`payload`] / [`json`] — round-trip float encoding for job payloads
//!   and a tiny JSON writer for telemetry (no serde in the tree).
//!
//! # Example
//!
//! ```
//! use proteus_runner::{Campaign, CampaignOpts, SimJob};
//!
//! let mut c = Campaign::new("demo", CampaignOpts { jobs: 4, ..CampaignOpts::default() });
//! for n in 0..8u64 {
//!     c.push(SimJob::new(
//!         format!("demo/square/n={n}/v1"),
//!         format!("square-{n}"),
//!         move || proteus_runner::payload::encode_floats(&[(n * n) as f64]),
//!     ));
//! }
//! let result = c.run();
//! assert_eq!(result.outputs.len(), 8);
//! assert_eq!(proteus_runner::payload::decode_floats(&result.outputs[3])[0], 9.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod hash;
pub mod job;
pub mod json;
pub mod payload;
pub mod pool;

pub use cache::ResultCache;
pub use campaign::{
    skipped_payload, take_session_stats, Campaign, CampaignOpts, CampaignResult, CampaignStats,
    SKIPPED_PAYLOAD_FLOATS,
};
pub use hash::JobKey;
pub use job::SimJob;
pub use pool::Executor;
