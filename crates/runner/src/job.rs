//! The unit of campaign work: one pure simulation cell.

use std::path::PathBuf;

use crate::hash::JobKey;

/// One cell of a simulation campaign.
///
/// A job is a *pure* function of its descriptor: the closure must derive
/// everything that influences its output (scenario parameters, seeds,
/// durations, code version) from values that are also spelled out in the
/// descriptor string. That contract is what makes the content-hash key a
/// valid cache identity — two jobs with equal descriptors must produce
/// byte-identical payloads.
///
/// The payload is an arbitrary string; experiments typically encode a flat
/// list of floats with [`crate::payload::encode_floats`] so results
/// round-trip losslessly through the disk cache.
pub struct SimJob {
    key: JobKey,
    descriptor: String,
    label: String,
    artifacts: Vec<PathBuf>,
    run: Box<dyn FnOnce() -> String + Send>,
}

impl SimJob {
    /// Creates a job. `descriptor` is the content identity (see type-level
    /// docs); `label` is a short human-readable name used in progress
    /// output and telemetry file names.
    pub fn new(
        descriptor: impl Into<String>,
        label: impl Into<String>,
        run: impl FnOnce() -> String + Send + 'static,
    ) -> Self {
        let descriptor = descriptor.into();
        Self {
            key: JobKey::from_descriptor(&descriptor),
            descriptor,
            label: label.into(),
            artifacts: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Declares a side-effect file the job writes in addition to its
    /// payload (e.g. a decision-trace export). Declared artifacts become
    /// part of the cache contract: a cache hit rewrites every artifact to
    /// its declared path from the stored copy (*replay*), and a hit whose
    /// stored artifacts are incomplete is demoted to a miss so the job
    /// re-executes and regenerates them. Artifact file *contents* must be a
    /// pure function of the descriptor, like the payload; the paths
    /// themselves may differ between runs (they are not part of the key).
    pub fn with_artifact(mut self, path: impl Into<PathBuf>) -> Self {
        self.artifacts.push(path.into());
        self
    }

    /// The declared side-effect files, in declaration order.
    pub fn artifacts(&self) -> &[PathBuf] {
        &self.artifacts
    }

    /// The job's stable content-hash key.
    pub fn key(&self) -> JobKey {
        self.key
    }

    /// The content descriptor the key was derived from.
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// Short human-readable job name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the job, consuming it.
    pub fn execute(self) -> String {
        (self.run)()
    }
}

impl std::fmt::Debug for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimJob")
            .field("key", &self.key)
            .field("descriptor", &self.descriptor)
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_matches_descriptor_hash() {
        let j = SimJob::new("exp/a=1", "a1", || "42".to_string());
        assert_eq!(j.key(), JobKey::from_descriptor("exp/a=1"));
        assert_eq!(j.label(), "a1");
        assert_eq!(j.descriptor(), "exp/a=1");
        assert_eq!(j.execute(), "42");
    }
}
