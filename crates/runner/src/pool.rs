//! Work-stealing thread-pool executor with deterministic result ordering.
//!
//! Jobs are dealt round-robin onto per-worker deques; a worker drains its
//! own deque from the front and, when empty, steals from the *back* of the
//! busiest sibling. Results are reassembled by submission index, so the
//! output is a pure function of the job list — never of thread scheduling
//! or worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::job::SimJob;

/// A fixed-size pool executing [`SimJob`]s.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
}

/// One completed job, reported in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Index of the job in the submitted list.
    pub index: usize,
    /// The payload the job returned.
    pub payload: String,
}

struct Task {
    index: usize,
    job: SimJob,
}

/// Progress callback: `(jobs done, total jobs, finished job's label)`.
pub type ProgressFn<'a> = &'a (dyn Fn(usize, usize, &str) + Sync);

impl Executor {
    /// Creates an executor with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads this executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Default worker count: one per available core.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Executes all jobs and returns their payloads in submission order.
    ///
    /// `on_complete(done, total, label)` is invoked after every job
    /// finishes (from worker threads; keep it cheap).
    pub fn run(&self, jobs: Vec<SimJob>, on_complete: Option<ProgressFn<'_>>) -> Vec<String> {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        // With one worker (or one job) skip the thread machinery entirely:
        // this is also the reference order the parallel path must match.
        if self.workers == 1 || total == 1 {
            let done = AtomicUsize::new(0);
            return jobs
                .into_iter()
                .map(|job| {
                    let label = job.label().to_string();
                    let payload = job.execute();
                    if let Some(cb) = on_complete {
                        cb(done.fetch_add(1, Ordering::Relaxed) + 1, total, &label);
                    }
                    payload
                })
                .collect();
        }

        let n_workers = self.workers.min(total);
        // Deal jobs round-robin so initial load is balanced even when cost
        // correlates with submission order (e.g. sweeps over bandwidth).
        let queues: Vec<Arc<Mutex<VecDeque<Task>>>> = (0..n_workers)
            .map(|_| Arc::new(Mutex::new(VecDeque::new())))
            .collect();
        for (index, job) in jobs.into_iter().enumerate() {
            queues[index % n_workers]
                .lock()
                .expect("queue poisoned")
                .push_back(Task { index, job });
        }

        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<JobOutput>();
        std::thread::scope(|scope| {
            for me in 0..n_workers {
                let queues = &queues;
                let tx = tx.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    loop {
                        // Own work first (front), then steal (back).
                        let task = {
                            let mut own = queues[me].lock().expect("queue poisoned");
                            own.pop_front()
                        };
                        let task = match task {
                            Some(t) => Some(t),
                            None => queues
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != me)
                                .filter_map(|(_, q)| q.lock().expect("queue poisoned").pop_back())
                                .next(),
                        };
                        let Some(Task { index, job }) = task else {
                            return; // every queue drained
                        };
                        let label = job.label().to_string();
                        let payload = job.execute();
                        if let Some(cb) = on_complete {
                            cb(done.fetch_add(1, Ordering::Relaxed) + 1, total, &label);
                        }
                        let _ = tx.send(JobOutput { index, payload });
                    }
                });
            }
            drop(tx);

            // Reassemble in submission order regardless of completion order.
            let mut out: Vec<Option<String>> = (0..total).map(|_| None).collect();
            for JobOutput { index, payload } in rx {
                out[index] = Some(payload);
            }
            out.into_iter()
                .map(|o| o.expect("worker died before completing its jobs"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn square_jobs(n: usize) -> Vec<SimJob> {
        (0..n)
            .map(|i| {
                SimJob::new(format!("test/sq/{i}"), format!("sq{i}"), move || {
                    format!("{}", i * i)
                })
            })
            .collect()
    }

    #[test]
    fn ordering_is_submission_order() {
        let out = Executor::new(4).run(square_jobs(37), None);
        let expect: Vec<String> = (0..37).map(|i| format!("{}", i * i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn one_worker_equals_many_workers() {
        let a = Executor::new(1).run(square_jobs(23), None);
        let b = Executor::new(8).run(square_jobs(23), None);
        assert_eq!(a, b);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Executor::new(16).run(square_jobs(3), None);
        assert_eq!(out, vec!["0", "1", "4"]);
    }

    #[test]
    fn empty_job_list() {
        assert!(Executor::new(4).run(Vec::new(), None).is_empty());
    }

    #[test]
    fn completion_callback_counts_every_job() {
        let count = AtomicUsize::new(0);
        let cb = |_done: usize, total: usize, _label: &str| {
            assert_eq!(total, 11);
            count.fetch_add(1, Ordering::Relaxed);
        };
        Executor::new(3).run(square_jobs(11), Some(&cb));
        assert_eq!(count.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn uneven_job_costs_still_ordered() {
        // Early jobs sleep; late jobs are instant. Stealing reorders the
        // execution but never the results.
        let jobs: Vec<SimJob> = (0..12)
            .map(|i| {
                SimJob::new(format!("test/sleep/{i}"), "s", move || {
                    if i < 3 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    format!("{i}")
                })
            })
            .collect();
        let out = Executor::new(4).run(jobs, None);
        let expect: Vec<String> = (0..12).map(|i| format!("{i}")).collect();
        assert_eq!(out, expect);
    }
}
