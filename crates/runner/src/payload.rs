//! Lossless text encoding for job payloads.
//!
//! Job results travel as strings (through the thread pool and the disk
//! cache), and most experiments produce a flat list of `f64`s. `{:?}`
//! formatting of an `f64` is guaranteed to round-trip through
//! `str::parse`, so a space-joined debug rendering is a lossless,
//! human-readable wire format — no serde required.

/// Encodes floats as a single space-separated line that round-trips
/// exactly through [`decode_floats`].
pub fn encode_floats(values: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{v:?}"));
    }
    out
}

/// Decodes a payload produced by [`encode_floats`].
///
/// # Panics
///
/// Panics on malformed input: payloads are produced by this crate (or read
/// back from a descriptor-verified cache entry), so a parse failure means
/// a bug or a corrupted cache file, not a user error.
pub fn decode_floats(payload: &str) -> Vec<f64> {
    payload
        .split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .unwrap_or_else(|_| panic!("malformed float {tok:?} in job payload"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let vals = [
            0.0,
            -0.0,
            1.5,
            0.1 + 0.2, // famously not 0.3
            f64::MIN_POSITIVE,
            f64::MAX,
            -std::f64::consts::PI,
        ];
        let decoded = decode_floats(&encode_floats(&vals));
        assert_eq!(decoded.len(), vals.len());
        for (a, b) in vals.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_list() {
        assert_eq!(encode_floats(&[]), "");
        assert!(decode_floats("").is_empty());
    }

    #[test]
    fn single_value() {
        assert_eq!(decode_floats(&encode_floats(&[42.25])), vec![42.25]);
    }
}
