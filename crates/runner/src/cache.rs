//! Content-addressed disk cache for job results.
//!
//! Each completed job's payload is stored at `<dir>/<key-hex>.job` together
//! with the full descriptor, so a warm `repro` re-run loads finished cells
//! from disk and only simulates cells whose parameters (descriptor — and
//! therefore key) changed. The files are plain text for easy inspection.

use std::fs;
use std::path::{Path, PathBuf};

use crate::hash::JobKey;

const MAGIC: &str = "proteus-runner-cache v1";

/// A directory of cached job payloads, keyed by [`JobKey`].
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{}.job", key.hex()))
    }

    /// Looks up a payload. The stored descriptor must match `descriptor`
    /// exactly (guards against hash-scheme changes and collisions).
    pub fn get(&self, key: JobKey, descriptor: &str) -> Option<String> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        let mut lines = text.splitn(4, '\n');
        if lines.next() != Some(MAGIC) {
            return None;
        }
        if lines.next() != Some(descriptor) {
            return None;
        }
        if lines.next() != Some("---") {
            return None;
        }
        Some(lines.next().unwrap_or("").to_string())
    }

    /// Stores a payload. Write failures are silently ignored (a cache must
    /// never fail the campaign); a torn write is rejected on read by the
    /// header check.
    pub fn put(&self, key: JobKey, descriptor: &str, payload: &str) {
        debug_assert!(!descriptor.contains('\n'), "descriptor must be one line");
        let body = format!("{MAGIC}\n{descriptor}\n---\n{payload}");
        // Write-then-rename so readers never observe a partial entry.
        let tmp = self.dir.join(format!("{}.tmp", key.hex()));
        if fs::write(&tmp, body).is_ok() {
            let _ = fs::rename(&tmp, self.path(key));
        }
    }

    fn artifact_path(&self, key: JobKey, index: usize) -> PathBuf {
        self.dir.join(format!("{}.a{index}", key.hex()))
    }

    /// Looks up a stored artifact (a declared side-effect file of the job,
    /// see `SimJob::with_artifact`). Same header validation as
    /// [`ResultCache::get`].
    pub fn get_artifact(&self, key: JobKey, descriptor: &str, index: usize) -> Option<String> {
        let text = fs::read_to_string(self.artifact_path(key, index)).ok()?;
        let mut lines = text.splitn(4, '\n');
        if lines.next() != Some(MAGIC) {
            return None;
        }
        if lines.next() != Some(descriptor) {
            return None;
        }
        if lines.next() != Some("---") {
            return None;
        }
        Some(lines.next().unwrap_or("").to_string())
    }

    /// Stores one artifact alongside the job's payload entry, under the
    /// same key. Failure semantics match [`ResultCache::put`].
    pub fn put_artifact(&self, key: JobKey, descriptor: &str, index: usize, content: &str) {
        debug_assert!(!descriptor.contains('\n'), "descriptor must be one line");
        let body = format!("{MAGIC}\n{descriptor}\n---\n{content}");
        let tmp = self.dir.join(format!("{}.a{index}.tmp", key.hex()));
        if fs::write(&tmp, body).is_ok() {
            let _ = fs::rename(&tmp, self.artifact_path(key, index));
        }
    }

    /// Removes every cache entry (used by tests and `--no-cache` refresh).
    pub fn clear(&self) -> std::io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            let is_ours = p.extension().is_some_and(|e| {
                let e = e.to_string_lossy();
                // `.job`, `.tmp`, and artifact entries `.a0`, `.a1`, ...
                e == "job"
                    || e == "tmp"
                    || (e.len() > 1
                        && e.starts_with('a')
                        && e[1..].chars().all(|c| c.is_ascii_digit()))
            });
            if is_ours {
                let _ = fs::remove_file(p);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("proteus-runner-cache-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::at(dir).unwrap()
    }

    #[test]
    fn round_trip() {
        let c = tmp_cache("rt");
        let key = JobKey::from_descriptor("exp/a=1");
        assert_eq!(c.get(key, "exp/a=1"), None);
        c.put(key, "exp/a=1", "1.5 2.5\nsecond line");
        assert_eq!(
            c.get(key, "exp/a=1").as_deref(),
            Some("1.5 2.5\nsecond line")
        );
    }

    #[test]
    fn descriptor_mismatch_misses() {
        let c = tmp_cache("mismatch");
        let key = JobKey::from_descriptor("exp/a=1");
        c.put(key, "exp/a=1", "x");
        assert_eq!(c.get(key, "exp/a=2"), None);
    }

    #[test]
    fn empty_payload_round_trips() {
        let c = tmp_cache("empty");
        let key = JobKey::from_descriptor("e");
        c.put(key, "e", "");
        assert_eq!(c.get(key, "e").as_deref(), Some(""));
    }

    #[test]
    fn clear_removes_entries() {
        let c = tmp_cache("clear");
        let key = JobKey::from_descriptor("gone");
        c.put(key, "gone", "x");
        c.clear().unwrap();
        assert_eq!(c.get(key, "gone"), None);
    }

    #[test]
    fn artifact_round_trip_and_clear() {
        let c = tmp_cache("artifact");
        let key = JobKey::from_descriptor("exp/a=1");
        assert_eq!(c.get_artifact(key, "exp/a=1", 0), None);
        c.put_artifact(key, "exp/a=1", 0, "line1\nline2\n");
        c.put_artifact(key, "exp/a=1", 1, "{}");
        assert_eq!(
            c.get_artifact(key, "exp/a=1", 0).as_deref(),
            Some("line1\nline2\n")
        );
        assert_eq!(c.get_artifact(key, "exp/a=1", 1).as_deref(), Some("{}"));
        // Wrong descriptor or index misses.
        assert_eq!(c.get_artifact(key, "exp/a=2", 0), None);
        assert_eq!(c.get_artifact(key, "exp/a=1", 2), None);
        c.clear().unwrap();
        assert_eq!(c.get_artifact(key, "exp/a=1", 0), None);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let c = tmp_cache("corrupt");
        let key = JobKey::from_descriptor("k");
        fs::write(c.dir().join(format!("{}.job", key.hex())), "garbage").unwrap();
        assert_eq!(c.get(key, "k"), None);
    }
}
