//! Stable content hashing for job identity.
//!
//! Job keys must be stable across processes, platforms and compiler
//! versions (they name files in the on-disk result cache), so we use a
//! fixed FNV-1a 64-bit hash of the job's descriptor string rather than
//! `std::hash` (whose output is explicitly unstable).

use std::fmt;

/// Version salt folded into every key: bump when the payload format of any
/// experiment changes so stale cache entries can never be misread.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// A stable 64-bit content hash identifying one [`crate::SimJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u64);

impl JobKey {
    /// Hashes a job descriptor (FNV-1a 64, salted with
    /// [`CACHE_FORMAT_VERSION`]).
    pub fn from_descriptor(descriptor: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64 ^ CACHE_FORMAT_VERSION;
        for b in descriptor.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        JobKey(h)
    }

    /// The key as a fixed-width lower-hex string (cache file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = JobKey::from_descriptor("fig8/bw=50/rtt=30/seed=1");
        let b = JobKey::from_descriptor("fig8/bw=50/rtt=30/seed=1");
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let a = JobKey::from_descriptor("fig8/seed=1");
        let b = JobKey::from_descriptor("fig8/seed=2");
        assert_ne!(a, b);
    }

    #[test]
    fn known_vector() {
        // FNV-1a("", salt=1) must stay stable forever: cache files depend
        // on it. This pins the implementation.
        let k = JobKey::from_descriptor("");
        assert_eq!(k.0, 0xCBF2_9CE4_8422_2325u64 ^ 1);
    }

    #[test]
    fn hex_is_16_chars() {
        assert_eq!(JobKey(0xAB).hex(), "00000000000000ab");
        assert_eq!(JobKey(0xAB).to_string().len(), 16);
    }
}
