//! End-to-end behavioural tests: each baseline controller driven through the
//! dumbbell simulator must show its textbook macroscopic behaviour. These
//! are the properties the paper's evaluation relies on (e.g. CUBIC fills
//! buffers, BBR saturates shallow buffers, LEDBAT holds ~target extra
//! delay, COPA keeps queues short).

use proteus_baselines::{Bbr, Copa, Cross, Cubic, FixedRateProbe, Ledbat, Reno};
use proteus_netsim::{run, FaultSchedule, FlowSpec, LinkSpec, Scenario};
use proteus_transport::{Dur, Time};

/// The paper's standard bottleneck: 50 Mbps, 30 ms RTT.
fn paper_link(buffer: u64) -> LinkSpec {
    LinkSpec::new(50.0, Dur::from_millis(30), buffer)
}

fn single_flow<C>(link: LinkSpec, secs: u64, cc: C) -> proteus_netsim::SimResult
where
    C: proteus_transport::CongestionControl + 'static,
{
    let sc = Scenario::new(link, Dur::from_secs(secs))
        .flow(FlowSpec::bulk("flow", Dur::ZERO, move || Box::new(cc)))
        .with_seed(11);
    run(sc)
}

fn steady_throughput_mbps(res: &proteus_netsim::SimResult, secs: u64) -> f64 {
    res.flows[0].throughput_mbps(
        Time::from_secs_f64(secs as f64 * 0.3),
        Time::from_secs_f64(secs as f64),
    )
}

#[test]
fn cubic_saturates_2bdp_buffer() {
    let res = single_flow(paper_link(375_000), 30, Cubic::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 45.0, "CUBIC throughput = {thpt}");
    // Loss-based: the buffer fills, RTT inflates well past base.
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    assert!(p95 > 0.060, "CUBIC p95 RTT = {p95}");
}

#[test]
fn cubic_struggles_with_random_loss() {
    let link = paper_link(375_000).with_random_loss(0.02);
    let res = single_flow(link, 30, Cubic::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt < 25.0, "CUBIC under 2% loss = {thpt}");
}

#[test]
fn reno_saturates_with_big_buffer() {
    let res = single_flow(paper_link(375_000), 40, Reno::new());
    let thpt = steady_throughput_mbps(&res, 40);
    assert!(thpt > 40.0, "Reno throughput = {thpt}");
}

#[test]
fn bbr_saturates_shallow_buffer() {
    // 30 KB ≈ 0.16 BDP: loss-based protocols crater here, BBR should not.
    let res = single_flow(paper_link(30_000), 30, Bbr::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 40.0, "BBR throughput = {thpt}");
}

#[test]
fn bbr_keeps_rtt_near_base() {
    let res = single_flow(paper_link(375_000), 30, Bbr::new());
    let p50 = res.flows[0].rtt_percentile(50.0).unwrap();
    // BBR's steady-state inflight ≈ 2 BDP bound, but median should stay
    // well under the full 60 ms of buffering.
    assert!(p50 < 0.070, "BBR median RTT = {p50}");
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 40.0, "BBR throughput = {thpt}");
}

#[test]
fn bbr_tolerates_random_loss() {
    let link = paper_link(375_000).with_random_loss(0.02);
    let res = single_flow(link, 30, Bbr::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 35.0, "BBR under 2% loss = {thpt}");
}

#[test]
fn copa_fills_link_with_low_delay() {
    let res = single_flow(paper_link(375_000), 30, Copa::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 35.0, "COPA throughput = {thpt}");
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    // Default-mode COPA targets ~2 packets of queueing per flow; even with
    // probing dynamics it must stay far from the 60 ms full-buffer mark.
    assert!(p95 < 0.050, "COPA p95 RTT = {p95}");
}

#[test]
fn ledbat_inflates_to_its_target() {
    // Buffer large enough to accommodate the 100 ms target (> 625 KB at
    // 50 Mbps). LEDBAT approaches its target slowly (≤ GAIN·MSS/RTT), so
    // give it a long run and judge the tail.
    let res = single_flow(paper_link(1_000_000), 180, Ledbat::new());
    let thpt = steady_throughput_mbps(&res, 180);
    assert!(thpt > 40.0, "LEDBAT throughput = {thpt}");
    let tail = res.flows[0].rtt_values_in(Time::from_secs_f64(120.0), Time::from_secs_f64(180.0));
    let p50 = proteus_stats::median(&tail).unwrap();
    // base 30 ms + ~100 ms target queueing.
    assert!(p50 > 0.100 && p50 < 0.165, "LEDBAT tail median RTT = {p50}");
}

#[test]
fn ledbat25_inflates_less() {
    let res100 = single_flow(paper_link(1_000_000), 60, Ledbat::new());
    let res25 = single_flow(paper_link(1_000_000), 60, Ledbat::draft25());
    let p50_100 = res100.flows[0].rtt_percentile(50.0).unwrap();
    let p50_25 = res25.flows[0].rtt_percentile(50.0).unwrap();
    assert!(
        p50_25 < p50_100,
        "25ms target should queue less: {p50_25} vs {p50_100}"
    );
    assert!(
        p50_25 > 0.035 && p50_25 < 0.090,
        "LEDBAT-25 median RTT = {p50_25}"
    );
}

#[test]
fn ledbat_fragile_under_tiny_random_loss() {
    // The paper: LEDBAT suffers ~50% degradation at 0.001-1% random loss.
    let link = paper_link(1_000_000).with_random_loss(0.005);
    let res = single_flow(link, 60, Ledbat::new());
    let thpt = steady_throughput_mbps(&res, 60);
    assert!(thpt < 35.0, "LEDBAT under 0.5% loss = {thpt}");
}

#[test]
fn probe_holds_fixed_rate_and_sees_base_rtt() {
    let res = single_flow(paper_link(375_000), 20, FixedRateProbe::mbps(20.0));
    let thpt = steady_throughput_mbps(&res, 20);
    assert!((thpt - 20.0).abs() < 1.0, "probe throughput = {thpt}");
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    assert!(p95 < 0.035, "probe p95 RTT = {p95}");
}

#[test]
fn cubic_beats_ledbat_on_shared_bottleneck() {
    // LEDBAT's defining property: it yields to CUBIC when the buffer can
    // hold more than its target delay (1 MB ≈ 160 ms > 100 ms target).
    let sc = Scenario::new(paper_link(1_000_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk(
            "cubic",
            Dur::ZERO,
            || Box::new(Cubic::new()),
        ))
        .flow(FlowSpec::bulk("ledbat", Dur::from_secs(5), || {
            Box::new(Ledbat::new())
        }))
        .with_seed(5);
    let res = run(sc);
    let cubic = res.flows[0].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    let ledbat = res.flows[1].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    assert!(
        cubic > 3.0 * ledbat,
        "CUBIC {cubic} vs LEDBAT {ledbat}: scavenger failed to yield"
    );
}

#[test]
fn ledbat_latecomer_advantage() {
    // Two LEDBAT flows. The buffer must be able to absorb the latecomer's
    // doubled delay target (its "base" includes the first flow's ~100 ms of
    // standing queue), i.e. > 200 ms of queueing: 2.5 MB at 50 Mbps = 400 ms.
    // The second flow measures an inflated base delay and starves the first
    // (the paper's §6.1.3 latecomer issue).
    let sc = Scenario::new(paper_link(2_500_000), Dur::from_secs(400))
        .flow(FlowSpec::bulk("first", Dur::ZERO, || {
            Box::new(Ledbat::new())
        }))
        .flow(FlowSpec::bulk("second", Dur::from_secs(120), || {
            Box::new(Ledbat::new())
        }))
        .with_seed(5)
        .with_rtt_stride(4);
    let res = run(sc);
    let first =
        res.flows[0].throughput_mbps(Time::from_secs_f64(340.0), Time::from_secs_f64(400.0));
    let second =
        res.flows[1].throughput_mbps(Time::from_secs_f64(340.0), Time::from_secs_f64(400.0));
    assert!(
        second > 1.5 * first,
        "latecomer should dominate: first {first}, second {second}"
    );
}

#[test]
fn two_cubic_flows_share_fairly() {
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk("a", Dur::ZERO, || Box::new(Cubic::new())))
        .flow(FlowSpec::bulk("b", Dur::from_secs(5), || {
            Box::new(Cubic::new())
        }))
        .with_seed(5);
    let res = run(sc);
    let a = res.flows[0].throughput_mbps(Time::from_secs_f64(25.0), Time::from_secs_f64(60.0));
    let b = res.flows[1].throughput_mbps(Time::from_secs_f64(25.0), Time::from_secs_f64(60.0));
    let jain = proteus_stats::jain_index(&[a, b]).unwrap();
    assert!(jain > 0.9, "CUBIC fairness = {jain} ({a} vs {b})");
    assert!(a + b > 44.0, "joint utilization low: {}", a + b);
}

#[test]
fn cross_fills_link_with_low_delay() {
    // Alone on a clean link the delay-gradient machine probes up to
    // capacity but backs off before the queue inflates past TARGET_HIGH.
    let res = single_flow(paper_link(375_000), 30, Cross::new());
    let thpt = steady_throughput_mbps(&res, 30);
    assert!(thpt > 35.0, "Cross throughput = {thpt}");
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    // base 30 ms + ≤25 ms backoff threshold + probing overshoot.
    assert!(p95 < 0.080, "Cross p95 RTT = {p95}");
}

#[test]
fn cross_starves_against_cubic_buffer_filler() {
    // The classic delay-based weakness (shared with Vegas/LEDBAT): a
    // loss-based buffer-filler inflates delay, so Cross backs off hard.
    // This is by design for an interactive controller — it is the reason
    // the RTC campaign measures *who* harms the call, not whether Cross
    // defends throughput.
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk(
            "cubic",
            Dur::ZERO,
            || Box::new(Cubic::new()),
        ))
        .flow(FlowSpec::bulk("cross", Dur::from_secs(5), || {
            Box::new(Cross::new())
        }))
        .with_seed(5);
    let res = run(sc);
    let cubic = res.flows[0].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    let cross = res.flows[1].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    assert!(
        cubic > 3.0 * cross,
        "Cross should cede to CUBIC: cubic {cubic}, cross {cross}"
    );
}

#[test]
fn cross_safety_window_bounds_outage_losses() {
    // 5 s blackout mid-run. A purely paced sender with no window would
    // keep streaming into the dead link for the whole outage; Cross's
    // rate-derived safety window caps in-flight data, so its loss count
    // stays a small fraction of the fixed-rate probe's.
    let run_with = |cc: Box<dyn proteus_transport::CongestionControl>| {
        let cell = std::cell::RefCell::new(Some(cc));
        let sc = Scenario::new(paper_link(375_000), Dur::from_secs(20))
            .with_seed(11)
            .with_faults(FaultSchedule::new().outage(Dur::from_secs(10), Dur::from_secs(5)))
            .flow(FlowSpec::bulk("flow", Dur::ZERO, move || {
                cell.borrow_mut().take().expect("single use")
            }));
        run(sc)
    };
    let cross = run_with(Box::new(Cross::new()));
    let probe = run_with(Box::new(FixedRateProbe::mbps(20.0)));
    let cross_lost = cross.flows[0].pkts_lost;
    let probe_lost = probe.flows[0].pkts_lost;
    assert!(
        probe_lost > 4 * cross_lost,
        "windowless probe lost {probe_lost}, Cross lost {cross_lost}"
    );
    assert!(cross_lost < 2_000, "Cross outage losses = {cross_lost}");
    // And it recovers after the link returns.
    let tail = cross.flows[0].throughput_mbps(Time::from_secs_f64(17.0), Time::from_secs_f64(20.0));
    assert!(tail > 1.0, "post-outage goodput = {tail}");
}

#[test]
fn bbr_s_yields_to_cubic_in_sim() {
    // §7.1 / Fig. 14: BBR-S vs CUBIC — BBR-S should take a small share.
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk(
            "cubic",
            Dur::ZERO,
            || Box::new(Cubic::new()),
        ))
        .flow(FlowSpec::bulk("bbr-s", Dur::from_secs(5), || {
            Box::new(Bbr::scavenger())
        }))
        .with_seed(5);
    let res = run(sc);
    let cubic = res.flows[0].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    let bbrs = res.flows[1].throughput_mbps(Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
    assert!(
        cubic > 2.0 * bbrs,
        "BBR-S should yield to CUBIC: cubic {cubic}, bbr-s {bbrs}"
    );
}
