//! COPA — practical delay-based congestion control (Arun & Balakrishnan,
//! NSDI 2018).
//!
//! One of the latency-aware primary protocols LEDBAT fails to yield to
//! (§6.2). COPA steers its window toward the target rate
//! `λ = MSS / (δ · dq)` where `dq` is the *standing queueing delay*
//! (standing RTT minus windowed minimum RTT), with a velocity term that
//! doubles after three consecutive same-direction RTTs. We implement the
//! default (delay) mode with δ = 0.5; mode switching for TCP
//! competitiveness is out of scope for the paper's experiments (the authors
//! evaluated COPA as a latency-sensitive protocol).
//!
//! Like the reference implementation, individual packet losses do not
//! trigger a window cut (COPA's loss resilience in Fig. 4 depends on this);
//! retransmission timeouts collapse the window.

use proteus_transport::{
    AckInfo, CongestionControl, Dur, LossInfo, Time, WindowedMin, DEFAULT_PACKET_BYTES,
};

/// COPA's δ: equilibrium queueing of `1/δ` packets per flow.
const DEFAULT_DELTA: f64 = 0.5;
/// Window of the minimum-RTT filter (10 s, per the COPA paper).
const MIN_RTT_WINDOW: Dur = Dur::from_secs(10);
/// Minimum window, packets.
const MIN_CWND_PKTS: f64 = 4.0;
/// Initial window, packets.
const INIT_CWND_PKTS: f64 = 10.0;
/// Velocity cap to keep doubling finite.
const MAX_VELOCITY: f64 = 1u64.wrapping_shl(16) as f64;

/// COPA congestion controller (default / delay mode).
#[derive(Debug)]
pub struct Copa {
    delta: f64,
    mss: f64,
    /// Congestion window, bytes (fractional).
    cwnd: f64,
    velocity: f64,
    /// +1 growing, -1 shrinking, 0 unknown.
    direction: i8,
    /// Consecutive same-direction windows.
    same_direction_count: u32,
    /// cwnd at the start of the current observation window.
    cwnd_at_window_start: f64,
    window_started: Option<Time>,
    min_rtt: WindowedMin,
    /// Standing RTT: min over the last srtt/2.
    standing_rtt: WindowedMin,
    srtt: Option<Dur>,
    in_slow_start: bool,
}

impl Copa {
    /// COPA with the default δ = 0.5.
    pub fn new() -> Self {
        Self::with_delta(DEFAULT_DELTA)
    }

    /// COPA with a custom δ (larger δ = less queueing, smaller share).
    pub fn with_delta(delta: f64) -> Self {
        assert!(delta > 0.0);
        Self {
            delta,
            mss: DEFAULT_PACKET_BYTES as f64,
            cwnd: INIT_CWND_PKTS * DEFAULT_PACKET_BYTES as f64,
            velocity: 1.0,
            direction: 0,
            same_direction_count: 0,
            cwnd_at_window_start: INIT_CWND_PKTS * DEFAULT_PACKET_BYTES as f64,
            window_started: None,
            min_rtt: WindowedMin::new(MIN_RTT_WINDOW),
            standing_rtt: WindowedMin::new(Dur::from_millis(50)),
            srtt: None,
            in_slow_start: true,
        }
    }

    /// Current window, packets.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd / self.mss
    }

    /// Whether the controller is still in its startup phase.
    pub fn in_slow_start(&self) -> bool {
        self.in_slow_start
    }

    /// Standing queueing delay estimate, seconds.
    fn queueing_delay(&self, now: Time) -> Option<f64> {
        let min = self.min_rtt.get(now)?;
        let standing = self.standing_rtt.get(now)?;
        Some((standing - min).max(0.0))
    }

    fn update_velocity(&mut self, now: Time) {
        let srtt = match self.srtt {
            Some(s) => s,
            None => return,
        };
        let started = match self.window_started {
            Some(t) => t,
            None => {
                self.window_started = Some(now);
                self.cwnd_at_window_start = self.cwnd;
                return;
            }
        };
        if now.since(started) < srtt {
            return;
        }
        let dir: i8 = if self.cwnd > self.cwnd_at_window_start {
            1
        } else {
            -1
        };
        if dir == self.direction {
            self.same_direction_count += 1;
            // Velocity doubles only after three consecutive same-direction
            // windows (COPA §2.2).
            if self.same_direction_count >= 3 {
                self.velocity = (self.velocity * 2.0).min(MAX_VELOCITY);
            }
        } else {
            self.direction = dir;
            self.same_direction_count = 0;
            self.velocity = 1.0;
        }
        self.window_started = Some(now);
        self.cwnd_at_window_start = self.cwnd;
    }
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &str {
        "COPA"
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        let rtt_s = ack.rtt.as_secs_f64();
        self.srtt = Some(match self.srtt {
            None => ack.rtt,
            Some(s) => Dur::from_nanos((7 * s.as_nanos() + ack.rtt.as_nanos()) / 8),
        });
        // The standing window is srtt/2, re-targeted as srtt evolves.
        if let Some(srtt) = self.srtt {
            self.standing_rtt
                .set_window(Dur::from_nanos(srtt.as_nanos() / 2).max(Dur::from_millis(1)));
        }
        self.min_rtt.update(now, rtt_s);
        self.standing_rtt.update(now, rtt_s);

        let dq = self.queueing_delay(now).unwrap_or(0.0);
        let standing = self.standing_rtt.get(now).unwrap_or(rtt_s).max(1e-6);
        let current_rate = self.cwnd / standing; // bytes/sec
        let target_rate = if dq > 1e-6 {
            self.mss / (self.delta * dq)
        } else {
            f64::INFINITY
        };

        if self.in_slow_start {
            if current_rate < target_rate {
                self.cwnd += ack.bytes as f64; // double per RTT
                return;
            }
            self.in_slow_start = false;
        }

        self.update_velocity(now);
        // Window step: v / (δ · cwnd_pkts) packets per ACK.
        let step = self.velocity * self.mss * self.mss / (self.delta * self.cwnd);
        if current_rate <= target_rate {
            self.cwnd += step;
        } else {
            self.cwnd -= step;
        }
        let floor = MIN_CWND_PKTS * self.mss;
        if self.cwnd < floor {
            self.cwnd = floor;
        }
    }

    fn on_loss(&mut self, _now: Time, loss: &LossInfo) {
        if loss.by_timeout {
            self.cwnd = MIN_CWND_PKTS * self.mss;
            self.in_slow_start = true;
            self.velocity = 1.0;
            self.direction = 0;
            self.same_direction_count = 0;
        }
        // Individual (dup-ACK) losses: no reaction in default mode.
    }

    fn pacing_rate(&self) -> Option<f64> {
        // COPA paces at 2×cwnd/RTT to avoid bursts (NSDI'18 §3).
        let srtt = self.srtt?.as_secs_f64();
        if srtt <= 0.0 {
            return None;
        }
        Some(2.0 * self.cwnd / srtt)
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(seq: u64, now: Time, rtt_ms: u64) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(rtt_ms),
            recv_at: now,
            rtt: Dur::from_millis(rtt_ms),
            one_way_delay: Dur::from_millis(rtt_ms / 2),
        }
    }

    #[test]
    fn slow_start_doubles_until_target() {
        let mut c = Copa::new();
        let now = Time::from_millis(100);
        let w0 = c.cwnd_pkts();
        // Constant RTT: no queueing detected, stays in slow start.
        for i in 0..10 {
            c.on_ack(now + Dur::from_millis(i), &ack(i, now, 30));
        }
        assert!(c.in_slow_start());
        assert!((c.cwnd_pkts() - (w0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn exits_slow_start_when_queue_builds() {
        let mut c = Copa::new();
        let mut now = Time::from_millis(100);
        // Establish min RTT = 30 ms.
        c.on_ack(now, &ack(0, now, 30));
        // Large sustained queueing: dq = 60 ms ⇒ target λ = 1500/(0.5·0.06)
        // = 50 KB/s, far below the current rate.
        for i in 1..200u64 {
            now += Dur::from_millis(5);
            c.on_ack(now, &ack(i, now, 90));
        }
        assert!(!c.in_slow_start());
    }

    #[test]
    fn shrinks_when_above_target_rate() {
        let mut c = Copa::new();
        let mut now = Time::from_millis(100);
        c.on_ack(now, &ack(0, now, 30));
        for i in 1..400u64 {
            now += Dur::from_millis(5);
            c.on_ack(now, &ack(i, now, 90));
        }
        // Well above target with persistent dq: the window must have come
        // down substantially from its slow-start exit point.
        let w = c.cwnd_pkts();
        for i in 400..800u64 {
            now += Dur::from_millis(5);
            c.on_ack(now, &ack(i, now, 90));
        }
        assert!(c.cwnd_pkts() <= w);
        assert!(c.cwnd_pkts() >= MIN_CWND_PKTS);
    }

    #[test]
    fn dup_ack_loss_is_ignored_timeout_collapses() {
        let mut c = Copa::new();
        let now = Time::from_millis(100);
        for i in 0..20 {
            c.on_ack(now, &ack(i, now, 30));
        }
        let w = c.cwnd_pkts();
        c.on_loss(
            now,
            &LossInfo {
                seq: 21,
                bytes: 1500,
                sent_at: now,
                detected_at: now,
                by_timeout: false,
            },
        );
        assert_eq!(c.cwnd_pkts(), w);
        c.on_loss(
            now,
            &LossInfo {
                seq: 22,
                bytes: 1500,
                sent_at: now,
                detected_at: now,
                by_timeout: true,
            },
        );
        assert_eq!(c.cwnd_pkts(), MIN_CWND_PKTS);
        assert!(c.in_slow_start());
    }

    #[test]
    fn paces_at_twice_window_rate() {
        let mut c = Copa::new();
        assert_eq!(c.pacing_rate(), None); // no srtt yet
        let now = Time::from_millis(100);
        c.on_ack(now, &ack(0, now, 30));
        let rate = c.pacing_rate().unwrap();
        let expect = 2.0 * c.cwnd_bytes() as f64 / 0.030;
        assert!((rate - expect).abs() / expect < 0.05, "{rate} vs {expect}");
    }

    #[test]
    fn velocity_doubles_after_three_consistent_windows() {
        let mut c = Copa::with_delta(0.5);
        c.in_slow_start = false;
        c.srtt = Some(Dur::from_millis(30));
        c.direction = 1;
        c.same_direction_count = 0;
        c.velocity = 1.0;
        let mut now = Time::from_millis(100);
        for _ in 0..5 {
            c.window_started = Some(now);
            c.cwnd_at_window_start = c.cwnd - 1.0; // we grew
            now += Dur::from_millis(31);
            c.update_velocity(now);
        }
        assert!(c.velocity >= 4.0, "velocity = {}", c.velocity);
    }

    #[test]
    fn velocity_resets_on_direction_change() {
        let mut c = Copa::with_delta(0.5);
        c.in_slow_start = false;
        c.direction = 1;
        c.same_direction_count = 5;
        c.velocity = 8.0;
        c.window_started = Some(Time::ZERO);
        c.cwnd_at_window_start = c.cwnd + 10_000.0; // we shrank
        c.srtt = Some(Dur::from_millis(30));
        c.update_velocity(Time::from_millis(100));
        assert_eq!(c.velocity, 1.0);
        assert_eq!(c.direction, -1);
    }
}
