//! TCP BBR v1 (Cardwell et al., 2016), plus the paper's BBR-S variant.
//!
//! BBR models the path with two estimates — bottleneck bandwidth (windowed
//! max of per-packet delivery-rate samples) and minimum RTT (windowed min,
//! refreshed by a periodic ProbeRTT episode) — and paces at
//! `pacing_gain × btl_bw` while capping inflight at `cwnd_gain × BDP`.
//! We implement the v1 state machine: Startup (gain 2/ln 2), Drain, the
//! eight-phase ProbeBW gain cycle, and ProbeRTT every 10 s.
//!
//! **BBR-S** (§7.1 of the Proteus paper) is stock BBR with one change:
//! whenever the smoothed RTT deviation exceeds 20 ms, the sender is forced
//! into ProbeRTT for at least 40 ms, causing it to yield like a scavenger.
//! The paper uses it to show RTT deviation generalizes beyond Proteus.

use std::collections::HashMap;

use std::collections::VecDeque;

use proteus_transport::{
    AckInfo, CongestionControl, Dur, LossInfo, SentPacket, SeqNr, Time, DEFAULT_PACKET_BYTES,
};

/// Startup/Drain gain `2/ln 2`.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBW pacing-gain cycle.
const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd gain outside Startup.
const CWND_GAIN: f64 = 2.0;
/// min-RTT filter window.
const MIN_RTT_WINDOW: Dur = Dur::from_secs(10);
/// Minimum ProbeRTT dwell.
const PROBE_RTT_DURATION: Dur = Dur::from_millis(200);
/// ProbeRTT inflight cap, packets.
const PROBE_RTT_CWND_PKTS: u64 = 4;
/// Startup is declared "full pipe" after this many rounds without 25 %
/// bandwidth growth.
const FULL_BW_ROUNDS: u32 = 3;
/// Initial window, packets.
const INIT_CWND_PKTS: u64 = 10;

/// Windowed-max filter keyed by BBR round count (real BBR windows its
/// bandwidth filter over 10 *round trips*, not wall time, so the estimate
/// survives ProbeRTT's low-rate episode).
#[derive(Debug, Default)]
struct RoundMaxFilter {
    /// Monotonically decreasing (round, value) candidates.
    deque: VecDeque<(u64, f64)>,
}

impl RoundMaxFilter {
    const WINDOW_ROUNDS: u64 = 10;

    fn update(&mut self, round: u64, sample: f64) {
        while matches!(self.deque.back(), Some(&(_, v)) if v <= sample) {
            self.deque.pop_back();
        }
        self.deque.push_back((round, sample));
        while matches!(self.deque.front(), Some(&(r, _)) if r + Self::WINDOW_ROUNDS < round) {
            self.deque.pop_front();
        }
    }

    fn get(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    fn reset(&mut self) {
        self.deque.clear();
    }
}

/// BBR state-machine modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exponential bandwidth search.
    Startup,
    /// Drain the Startup queue.
    Drain,
    /// Steady-state gain cycling.
    ProbeBw,
    /// Periodic min-RTT refresh at minimal inflight.
    ProbeRtt,
}

/// Configuration of the BBR-S scavenger modification (§7.1).
#[derive(Debug, Clone, Copy)]
pub struct ScavengerMod {
    /// Smoothed-RTT-deviation threshold that forces ProbeRTT (paper: 20 ms).
    pub dev_threshold: Dur,
    /// Minimum forced-ProbeRTT dwell (paper: 40 ms).
    pub min_dwell: Dur,
}

impl Default for ScavengerMod {
    fn default() -> Self {
        Self {
            dev_threshold: Dur::from_millis(20),
            min_dwell: Dur::from_millis(40),
        }
    }
}

impl ScavengerMod {
    /// Thresholds calibrated for the packet-level simulator, whose RTT
    /// variance under competition is lower than the paper's Emulab testbed
    /// (kernel/NIC jitter is absent). The paper presents its 20 ms / 40 ms
    /// values explicitly as illustrative ("we use fixed thresholds such as
    /// 20 ms RTT deviation for illustration"); scaled to the simulator's
    /// variance, 4 ms with a 500 ms dwell reproduces Fig. 14's behaviour —
    /// BBR-S yields to BBR and CUBIC while sharing fairly with itself.
    pub fn calibrated_for_sim() -> Self {
        Self {
            dev_threshold: Dur::from_millis(4),
            min_dwell: Dur::from_millis(500),
        }
    }
}

/// TCP BBR v1 congestion controller (optionally with the BBR-S scavenger
/// modification).
#[derive(Debug)]
pub struct Bbr {
    name: &'static str,
    mss: u64,
    mode: Mode,
    /// Windowed max of delivery-rate samples over 10 rounds, bytes/sec.
    btl_bw: RoundMaxFilter,
    min_rtt: Option<Dur>,
    min_rtt_stamp: Time,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Cumulative bytes delivered (ACKed).
    delivered: u64,
    /// Per-packet delivery snapshot for rate sampling.
    packet_state: HashMap<SeqNr, (u64, Time)>,
    inflight_bytes: u64,
    /// Round tracking.
    next_round_delivered: u64,
    round_count: u64,
    round_start: bool,
    /// Startup full-pipe detection.
    full_bw: f64,
    full_bw_count: u32,
    full_pipe: bool,
    /// ProbeBW cycle position.
    cycle_index: usize,
    cycle_stamp: Time,
    /// ProbeRTT bookkeeping.
    probe_rtt_done_at: Option<Time>,
    /// Smoothed RTT + deviation (for BBR-S).
    srtt: Option<Dur>,
    rttvar: Dur,
    scavenger: Option<ScavengerMod>,
}

impl Bbr {
    /// Stock BBR v1.
    pub fn new() -> Self {
        Self::build("BBR", None)
    }

    /// BBR-S: BBR with the §7.1 RTT-deviation yield rule.
    pub fn scavenger() -> Self {
        Self::build("BBR-S", Some(ScavengerMod::default()))
    }

    /// BBR-S with custom thresholds.
    pub fn scavenger_with(cfg: ScavengerMod) -> Self {
        Self::build("BBR-S", Some(cfg))
    }

    fn build(name: &'static str, scavenger: Option<ScavengerMod>) -> Self {
        Self {
            name,
            mss: DEFAULT_PACKET_BYTES,
            mode: Mode::Startup,
            btl_bw: RoundMaxFilter::default(),
            min_rtt: None,
            min_rtt_stamp: Time::ZERO,
            pacing_gain: STARTUP_GAIN,
            cwnd_gain: STARTUP_GAIN,
            delivered: 0,
            packet_state: HashMap::new(),
            inflight_bytes: 0,
            next_round_delivered: 0,
            round_count: 0,
            round_start: false,
            full_bw: 0.0,
            full_bw_count: 0,
            full_pipe: false,
            cycle_index: 0,
            cycle_stamp: Time::ZERO,
            probe_rtt_done_at: None,
            srtt: None,
            rttvar: Dur::ZERO,
            scavenger,
        }
    }

    /// Current mode (for tests and the Fig.-14 harness).
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Bottleneck-bandwidth estimate, bytes/sec.
    pub fn btl_bw_estimate(&self, _now: Time) -> Option<f64> {
        self.btl_bw.get()
    }

    /// Minimum-RTT estimate.
    pub fn min_rtt_estimate(&self) -> Option<Dur> {
        self.min_rtt
    }

    /// Smoothed RTT deviation (the BBR-S trigger signal).
    pub fn rtt_deviation(&self) -> Dur {
        self.rttvar
    }

    fn bdp_bytes(&self, _now: Time) -> Option<f64> {
        let bw = self.btl_bw.get()?;
        let rtt = self.min_rtt?;
        Some(bw * rtt.as_secs_f64())
    }

    fn enter_probe_rtt(&mut self, now: Time, dwell: Dur) {
        self.mode = Mode::ProbeRtt;
        self.pacing_gain = 1.0;
        self.cwnd_gain = 1.0;
        let done = now + dwell;
        // Keep the later deadline if already probing.
        self.probe_rtt_done_at = Some(match self.probe_rtt_done_at {
            Some(d) if d > done => d,
            _ => done,
        });
    }

    fn exit_probe_rtt(&mut self, now: Time) {
        self.min_rtt_stamp = now;
        self.probe_rtt_done_at = None;
        if self.full_pipe {
            self.mode = Mode::ProbeBw;
            self.cycle_index = 0;
            self.cycle_stamp = now;
            self.pacing_gain = CYCLE_GAINS[0];
            self.cwnd_gain = CWND_GAIN;
        } else {
            self.mode = Mode::Startup;
            self.pacing_gain = STARTUP_GAIN;
            self.cwnd_gain = STARTUP_GAIN;
        }
    }

    fn check_full_pipe(&mut self) {
        if self.full_pipe || !self.round_start {
            return;
        }
        let bw = self.btl_bw.get().unwrap_or(0.0);
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
            if self.full_bw_count >= FULL_BW_ROUNDS {
                self.full_pipe = true;
            }
        }
    }

    fn advance_machine(&mut self, now: Time) {
        match self.mode {
            Mode::Startup => {
                self.check_full_pipe();
                if self.full_pipe {
                    self.mode = Mode::Drain;
                    self.pacing_gain = 1.0 / STARTUP_GAIN;
                    self.cwnd_gain = CWND_GAIN;
                }
            }
            Mode::Drain => {
                if let Some(bdp) = self.bdp_bytes(now) {
                    if (self.inflight_bytes as f64) <= bdp {
                        self.mode = Mode::ProbeBw;
                        self.cycle_index = 0;
                        self.cycle_stamp = now;
                        self.pacing_gain = CYCLE_GAINS[0];
                    }
                }
            }
            Mode::ProbeBw => {
                let min_rtt = self.min_rtt.unwrap_or(Dur::from_millis(10));
                let elapsed = now.since(self.cycle_stamp);
                let advance = if CYCLE_GAINS[self.cycle_index] == 0.75 {
                    // Leave the drain phase as soon as inflight is at BDP.
                    elapsed >= min_rtt
                        || self
                            .bdp_bytes(now)
                            .map(|bdp| (self.inflight_bytes as f64) <= bdp)
                            .unwrap_or(false)
                } else {
                    elapsed >= min_rtt
                };
                if advance {
                    self.cycle_index = (self.cycle_index + 1) % CYCLE_GAINS.len();
                    self.cycle_stamp = now;
                    self.pacing_gain = CYCLE_GAINS[self.cycle_index];
                }
            }
            Mode::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done_at {
                    if now >= done {
                        self.exit_probe_rtt(now);
                    }
                }
            }
        }
        // Periodic min-RTT refresh.
        if self.mode != Mode::ProbeRtt
            && self.min_rtt.is_some()
            && now.since(self.min_rtt_stamp) > MIN_RTT_WINDOW
        {
            self.enter_probe_rtt(now, PROBE_RTT_DURATION);
        }
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &str {
        self.name
    }

    fn on_packet_sent(&mut self, now: Time, pkt: &SentPacket) {
        self.packet_state.insert(pkt.seq, (self.delivered, now));
        self.inflight_bytes += pkt.bytes;
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        self.delivered += ack.bytes;
        self.inflight_bytes = self.inflight_bytes.saturating_sub(ack.bytes);

        // RFC 6298-style smoothing, used by BBR-S's trigger.
        match self.srtt {
            None => {
                self.srtt = Some(ack.rtt);
                self.rttvar = Dur::from_nanos(ack.rtt.as_nanos() / 2);
            }
            Some(s) => {
                let diff = if s >= ack.rtt {
                    s - ack.rtt
                } else {
                    ack.rtt - s
                };
                self.rttvar = Dur::from_nanos((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                self.srtt = Some(Dur::from_nanos((7 * s.as_nanos() + ack.rtt.as_nanos()) / 8));
            }
        }

        // min-RTT filter.
        if self.min_rtt.map(|m| ack.rtt <= m).unwrap_or(true) {
            self.min_rtt = Some(ack.rtt);
            self.min_rtt_stamp = now;
        }

        // Delivery-rate sample and round accounting.
        if let Some((delivered_at_send, sent)) = self.packet_state.remove(&ack.seq) {
            if delivered_at_send >= self.next_round_delivered {
                self.next_round_delivered = self.delivered;
                self.round_count += 1;
                self.round_start = true;
            } else {
                self.round_start = false;
            }
            let elapsed = now.since(sent).as_secs_f64();
            if elapsed > 0.0 {
                let rate = (self.delivered - delivered_at_send) as f64 / elapsed;
                self.btl_bw.update(self.round_count, rate);
            }
        }

        // BBR-S: yield on RTT-deviation evidence of competition.
        if let Some(cfg) = self.scavenger {
            if self.rttvar > cfg.dev_threshold && self.mode != Mode::ProbeRtt {
                self.enter_probe_rtt(now, cfg.min_dwell);
            }
        }

        self.advance_machine(now);
    }

    fn on_loss(&mut self, _now: Time, loss: &LossInfo) {
        self.packet_state.remove(&loss.seq);
        self.inflight_bytes = self.inflight_bytes.saturating_sub(loss.bytes);
        if loss.by_timeout {
            // v1's conservative RTO response: restart the model.
            self.full_pipe = false;
            self.full_bw = 0.0;
            self.full_bw_count = 0;
            self.mode = Mode::Startup;
            self.pacing_gain = STARTUP_GAIN;
            self.cwnd_gain = STARTUP_GAIN;
            self.btl_bw.reset();
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        // Before any bandwidth sample, fall back to ACK clocking on the
        // initial window.
        let bw = self.btl_bw.get()?;
        Some((self.pacing_gain * bw).max(1000.0))
    }

    fn cwnd_bytes(&self) -> u64 {
        if self.mode == Mode::ProbeRtt {
            return PROBE_RTT_CWND_PKTS * self.mss;
        }
        match (self.btl_bw.get(), self.min_rtt) {
            (Some(bw), Some(rtt)) => {
                let bdp = bw * rtt.as_secs_f64();
                ((self.cwnd_gain * bdp) as u64).max(4 * self.mss)
            }
            _ => INIT_CWND_PKTS * self.mss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds a pipelined stream: packet `i` is sent at `start + i·gap` and
    /// ACKed `rtt` later, with sends and ACKs interleaved in time order the
    /// way a real flow sees them.
    fn feed_steady(bbr: &mut Bbr, start_ms: u64, n: u64, rtt_ms: u64, gap_ms: u64) -> Time {
        let mut next_ack: u64 = 0;
        for i in 0..n {
            let send_at = start_ms + i * gap_ms;
            // Deliver any ACKs due before this send.
            while next_ack < i && start_ms + next_ack * gap_ms + rtt_ms <= send_at {
                deliver_ack(bbr, start_ms + next_ack * gap_ms, rtt_ms, next_ack);
                next_ack += 1;
            }
            let sent = Time::from_millis(send_at);
            bbr.on_packet_sent(
                sent,
                &SentPacket {
                    seq: i,
                    bytes: 1500,
                    sent_at: sent,
                },
            );
        }
        while next_ack < n {
            deliver_ack(bbr, start_ms + next_ack * gap_ms, rtt_ms, next_ack);
            next_ack += 1;
        }
        Time::from_millis(start_ms + (n - 1) * gap_ms + rtt_ms)
    }

    fn deliver_ack(bbr: &mut Bbr, sent_ms: u64, rtt_ms: u64, seq: u64) {
        let sent = Time::from_millis(sent_ms);
        let ack_at = Time::from_millis(sent_ms + rtt_ms);
        bbr.on_ack(
            ack_at,
            &AckInfo {
                seq,
                bytes: 1500,
                sent_at: sent,
                recv_at: ack_at,
                rtt: Dur::from_millis(rtt_ms),
                one_way_delay: Dur::from_millis(rtt_ms / 2),
            },
        );
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let b = Bbr::new();
        assert_eq!(b.mode(), Mode::Startup);
        assert_eq!(b.pacing_rate(), None); // no samples yet
        assert_eq!(b.cwnd_bytes(), INIT_CWND_PKTS * 1500);
    }

    #[test]
    fn estimates_bandwidth_and_rtt() {
        let mut b = Bbr::new();
        // One packet per ms at 30ms RTT => ~1.5 MB/s delivery rate.
        let end = feed_steady(&mut b, 100, 200, 30, 1);
        let bw = b.btl_bw_estimate(end).unwrap();
        assert!(bw > 1.0e6 && bw < 2.5e6, "bw = {bw}");
        assert_eq!(b.min_rtt_estimate(), Some(Dur::from_millis(30)));
    }

    #[test]
    fn leaves_startup_when_bandwidth_plateaus() {
        let mut b = Bbr::new();
        feed_steady(&mut b, 100, 2000, 30, 1);
        assert_ne!(b.mode(), Mode::Startup, "should have detected full pipe");
    }

    #[test]
    fn probe_rtt_caps_window() {
        let mut b = Bbr::new();
        feed_steady(&mut b, 100, 500, 30, 1);
        b.enter_probe_rtt(Time::from_secs_f64(5.0), PROBE_RTT_DURATION);
        assert_eq!(b.cwnd_bytes(), PROBE_RTT_CWND_PKTS * 1500);
        assert_eq!(b.mode(), Mode::ProbeRtt);
    }

    #[test]
    fn probe_rtt_expires_back_to_probe_bw() {
        let mut b = Bbr::new();
        feed_steady(&mut b, 100, 2000, 30, 1);
        let t = Time::from_secs_f64(10.0);
        b.enter_probe_rtt(t, PROBE_RTT_DURATION);
        // Next ACK after the dwell ends the episode.
        let sent = t + Dur::from_millis(300);
        b.on_packet_sent(
            sent,
            &SentPacket {
                seq: 9999,
                bytes: 1500,
                sent_at: sent,
            },
        );
        let ack_at = sent + Dur::from_millis(30);
        b.on_ack(
            ack_at,
            &AckInfo {
                seq: 9999,
                bytes: 1500,
                sent_at: sent,
                recv_at: ack_at,
                rtt: Dur::from_millis(30),
                one_way_delay: Dur::from_millis(15),
            },
        );
        assert_ne!(b.mode(), Mode::ProbeRtt);
    }

    #[test]
    fn bbr_s_yields_on_rtt_deviation() {
        let mut b = Bbr::scavenger();
        assert_eq!(b.name(), "BBR-S");
        // Alternate 30ms / 120ms RTT samples at monotone ACK times:
        // rttvar climbs above 20ms.
        let mut now = Time::from_millis(200);
        for i in 0..100u64 {
            let rtt = if i % 2 == 0 { 30 } else { 120 };
            let sent = now - Dur::from_millis(rtt);
            b.on_packet_sent(
                sent,
                &SentPacket {
                    seq: i,
                    bytes: 1500,
                    sent_at: sent,
                },
            );
            b.on_ack(
                now,
                &AckInfo {
                    seq: i,
                    bytes: 1500,
                    sent_at: sent,
                    recv_at: now,
                    rtt: Dur::from_millis(rtt),
                    one_way_delay: Dur::from_millis(rtt / 2),
                },
            );
            now += Dur::from_millis(2);
        }
        assert!(b.rtt_deviation() > Dur::from_millis(20));
        assert_eq!(b.mode(), Mode::ProbeRtt);
    }

    #[test]
    fn stock_bbr_ignores_deviation() {
        let mut b = Bbr::new();
        let mut now = Time::from_millis(200);
        for i in 0..100u64 {
            let rtt = if i % 2 == 0 { 30 } else { 120 };
            let sent = now - Dur::from_millis(rtt);
            b.on_packet_sent(
                sent,
                &SentPacket {
                    seq: i,
                    bytes: 1500,
                    sent_at: sent,
                },
            );
            b.on_ack(
                now,
                &AckInfo {
                    seq: i,
                    bytes: 1500,
                    sent_at: sent,
                    recv_at: now,
                    rtt: Dur::from_millis(rtt),
                    one_way_delay: Dur::from_millis(rtt / 2),
                },
            );
            now += Dur::from_millis(2);
        }
        assert_ne!(b.mode(), Mode::ProbeRtt);
    }

    #[test]
    fn round_max_filter_window_and_monotonic_deque() {
        let mut f = RoundMaxFilter::default();
        assert_eq!(f.get(), None);
        f.update(0, 10.0);
        f.update(1, 5.0);
        assert_eq!(f.get(), Some(10.0));
        // A bigger sample evicts the smaller candidates.
        f.update(2, 12.0);
        assert_eq!(f.get(), Some(12.0));
        // The 12.0 ages out after WINDOW_ROUNDS rounds.
        f.update(2 + RoundMaxFilter::WINDOW_ROUNDS + 1, 3.0);
        assert_eq!(f.get(), Some(3.0));
        f.reset();
        assert_eq!(f.get(), None);
    }

    #[test]
    fn rto_restarts_the_model() {
        let mut b = Bbr::new();
        feed_steady(&mut b, 100, 2000, 30, 1);
        assert_ne!(b.mode(), Mode::Startup);
        b.on_loss(
            Time::from_secs_f64(60.0),
            &LossInfo {
                seq: 5000,
                bytes: 1500,
                sent_at: Time::from_secs_f64(59.0),
                detected_at: Time::from_secs_f64(60.0),
                by_timeout: true,
            },
        );
        assert_eq!(b.mode(), Mode::Startup);
        assert_eq!(b.btl_bw_estimate(Time::from_secs_f64(60.0)), None);
    }

    #[test]
    fn inflight_accounting() {
        let mut b = Bbr::new();
        b.on_packet_sent(
            Time::ZERO,
            &SentPacket {
                seq: 0,
                bytes: 1500,
                sent_at: Time::ZERO,
            },
        );
        assert_eq!(b.inflight_bytes, 1500);
        b.on_loss(
            Time::from_millis(100),
            &LossInfo {
                seq: 0,
                bytes: 1500,
                sent_at: Time::ZERO,
                detected_at: Time::from_millis(100),
                by_timeout: false,
            },
        );
        assert_eq!(b.inflight_bytes, 0);
    }
}
