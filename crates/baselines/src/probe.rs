//! Fixed-rate UDP probe.
//!
//! The Fig.-2 experiment measures RTT deviation and RTT gradient "observed
//! by a fix-rate UDP flow at 20 Mbps" under Poisson CUBIC cross-traffic.
//! This controller paces at a constant rate, never reacts to anything, and
//! lets the harness read the RTT samples from the flow's metrics.

use proteus_transport::{AckInfo, CongestionControl, LossInfo, Time};

/// A constant-rate paced sender (UDP-like measurement probe).
#[derive(Debug, Clone, Copy)]
pub struct FixedRateProbe {
    rate_bytes_per_sec: f64,
}

impl FixedRateProbe {
    /// Creates a probe pacing at the given rate in Mbit/sec.
    pub fn mbps(rate_mbps: f64) -> Self {
        assert!(rate_mbps > 0.0);
        Self {
            rate_bytes_per_sec: rate_mbps * 1e6 / 8.0,
        }
    }

    /// Creates a probe pacing at the given rate in bytes/sec.
    pub fn bytes_per_sec(rate: f64) -> Self {
        assert!(rate > 0.0);
        Self {
            rate_bytes_per_sec: rate,
        }
    }
}

impl CongestionControl for FixedRateProbe {
    fn name(&self) -> &str {
        "fixed-rate-probe"
    }

    fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}

    fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_conversion() {
        let p = FixedRateProbe::mbps(20.0);
        assert_eq!(p.pacing_rate(), Some(2_500_000.0));
        let q = FixedRateProbe::bytes_per_sec(1000.0);
        assert_eq!(q.pacing_rate(), Some(1000.0));
        assert_eq!(q.cwnd_bytes(), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = FixedRateProbe::mbps(0.0);
    }
}
