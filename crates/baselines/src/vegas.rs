//! TCP Vegas (Brakmo et al., 1994) — the classic delay-based AIMD.
//!
//! Cited in the paper's related work as an early delay-based design; useful
//! here as an extra reference point between loss-based Reno and modern
//! latency-aware protocols. Vegas compares expected (`cwnd/baseRTT`) and
//! actual (`cwnd/RTT`) rates once per RTT: fewer than α packets of induced
//! queueing → grow by one packet, more than β → shrink by one.

use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time, DEFAULT_PACKET_BYTES};

/// Lower queueing bound, packets.
const ALPHA: f64 = 2.0;
/// Upper queueing bound, packets.
const BETA: f64 = 4.0;
/// Slow-start exit bound, packets.
const GAMMA: f64 = 1.0;
const MIN_CWND_PKTS: f64 = 2.0;
const INIT_CWND_PKTS: f64 = 4.0;

/// TCP Vegas congestion controller.
#[derive(Debug)]
pub struct Vegas {
    mss: f64,
    cwnd: f64,
    base_rtt: Option<Dur>,
    /// Smallest RTT seen in the current observation round.
    round_min_rtt: Option<Dur>,
    round_started: Option<Time>,
    in_slow_start: bool,
    recovery_until: Option<Time>,
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl Vegas {
    /// Creates a Vegas controller.
    pub fn new() -> Self {
        Self {
            mss: DEFAULT_PACKET_BYTES as f64,
            cwnd: INIT_CWND_PKTS,
            base_rtt: None,
            round_min_rtt: None,
            round_started: None,
            in_slow_start: true,
            recovery_until: None,
        }
    }

    /// Window in packets (diagnostics).
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    /// Packets of self-induced queueing Vegas currently estimates.
    fn diff_pkts(&self, rtt: Dur) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let cur = rtt.as_secs_f64();
        if base <= 0.0 || cur <= 0.0 {
            return None;
        }
        Some(self.cwnd * (cur - base) / cur)
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &str {
        "Vegas"
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        if self.base_rtt.map(|b| ack.rtt < b).unwrap_or(true) {
            self.base_rtt = Some(ack.rtt);
        }
        if self.round_min_rtt.map(|m| ack.rtt < m).unwrap_or(true) {
            self.round_min_rtt = Some(ack.rtt);
        }
        let started = *self.round_started.get_or_insert(now);
        let round_len = self.round_min_rtt.unwrap_or(ack.rtt);
        if now.since(started) < round_len {
            return; // decisions once per RTT
        }
        let rtt = self.round_min_rtt.take().unwrap_or(ack.rtt);
        self.round_started = Some(now);
        let Some(diff) = self.diff_pkts(rtt) else {
            return;
        };
        if self.in_slow_start {
            if diff > GAMMA {
                self.in_slow_start = false;
                self.cwnd = (self.cwnd - 1.0).max(MIN_CWND_PKTS);
            } else {
                self.cwnd *= 2.0; // double once per RTT
            }
            return;
        }
        if diff < ALPHA {
            self.cwnd += 1.0;
        } else if diff > BETA {
            self.cwnd = (self.cwnd - 1.0).max(MIN_CWND_PKTS);
        }
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        if let Some(until) = self.recovery_until {
            if loss.sent_at < until {
                return;
            }
        }
        self.recovery_until = Some(now);
        self.in_slow_start = false;
        self.cwnd = (self.cwnd * 0.75).max(MIN_CWND_PKTS);
        if loss.by_timeout {
            self.cwnd = MIN_CWND_PKTS;
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        None
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(seq: u64, now: Time, rtt_ms: u64) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(rtt_ms),
            recv_at: now,
            rtt: Dur::from_millis(rtt_ms),
            one_way_delay: Dur::from_millis(rtt_ms / 2),
        }
    }

    /// Feeds one ACK per `gap_ms` over `steps` decisions.
    fn drive(v: &mut Vegas, start_ms: u64, steps: u64, rtt_ms: u64) {
        let mut now = Time::from_millis(start_ms);
        for i in 0..steps {
            v.on_ack(now, &ack(i, now, rtt_ms));
            now += Dur::from_millis(rtt_ms + 1);
        }
    }

    #[test]
    fn doubles_in_slow_start_without_queueing() {
        let mut v = Vegas::new();
        let w0 = v.cwnd_pkts();
        // Constant base RTT: no queueing detected, keep doubling.
        drive(&mut v, 100, 4, 30);
        assert!(v.cwnd_pkts() >= w0 * 4.0, "{} -> {}", w0, v.cwnd_pkts());
        assert!(v.in_slow_start);
    }

    #[test]
    fn exits_slow_start_when_queue_builds() {
        let mut v = Vegas::new();
        // Establish base RTT = 30 ms, then persistent 50 ms (queueing).
        drive(&mut v, 100, 2, 30);
        drive(&mut v, 10_000, 3, 50);
        assert!(!v.in_slow_start);
    }

    #[test]
    fn holds_within_alpha_beta_band() {
        let mut v = Vegas::new();
        drive(&mut v, 100, 2, 30);
        drive(&mut v, 10_000, 3, 60); // leave slow start
        v.cwnd = 10.0;
        // diff = cwnd·(rtt-base)/rtt; choose rtt so diff ∈ (α, β):
        // 10·(40-30)/40 = 2.5.
        let before = v.cwnd_pkts();
        drive(&mut v, 20_000, 4, 40);
        assert!((v.cwnd_pkts() - before).abs() < 1e-9);
    }

    #[test]
    fn shrinks_above_beta_grows_below_alpha() {
        let mut v = Vegas::new();
        drive(&mut v, 100, 2, 30);
        drive(&mut v, 10_000, 3, 60);
        v.cwnd = 30.0;
        // diff = 30·(60-30)/60 = 15 > β: shrink.
        let before = v.cwnd_pkts();
        drive(&mut v, 20_000, 3, 60);
        assert!(v.cwnd_pkts() < before);
        // diff = cwnd·(31-30)/31 ≈ 1 < α: grow.
        v.cwnd = 20.0;
        let before = v.cwnd_pkts();
        drive(&mut v, 40_000, 3, 31);
        assert!(v.cwnd_pkts() > before);
    }

    #[test]
    fn loss_reduces_window() {
        let mut v = Vegas::new();
        v.cwnd = 20.0;
        let now = Time::from_millis(500);
        v.on_loss(
            now,
            &LossInfo {
                seq: 1,
                bytes: 1500,
                sent_at: now - Dur::from_millis(30),
                detected_at: now,
                by_timeout: false,
            },
        );
        assert!((v.cwnd_pkts() - 15.0).abs() < 1e-9);
        // Same congestion event: no second cut.
        v.on_loss(
            now,
            &LossInfo {
                seq: 2,
                bytes: 1500,
                sent_at: now - Dur::from_millis(30),
                detected_at: now,
                by_timeout: false,
            },
        );
        assert!((v.cwnd_pkts() - 15.0).abs() < 1e-9);
    }
}
