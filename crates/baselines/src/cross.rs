//! Cross-style delay-based interactive congestion control.
//!
//! A rate-based controller for real-time media in the spirit of Cross
//! (Zhang & Yang, arXiv:2409.10042) and the delay-gradient RTP controllers
//! surveyed in the simulated-environment comparison (Zhang,
//! arXiv:1809.00304): instead of filling the buffer to a loss or a fixed
//! queuing target, it watches the *one-way-delay gradient* and the
//! absolute queuing delay over RTT-length rounds and runs a three-state
//! probe/backoff machine around them:
//!
//! * **Probe** — queuing delay below [`TARGET_LOW`] and a non-rising delay
//!   gradient: multiplicatively raise the pacing rate ([`PROBE_GAIN`]).
//! * **Backoff** — queuing delay above [`TARGET_HIGH`] *or* the per-round
//!   gradient above [`GRADIENT_BACKOFF`]: multiplicatively cut the rate
//!   ([`BACKOFF_FACTOR`]) before the queue (and the call's frame latency)
//!   inflates further.
//! * **Hold** — in the dead band, or cooling down for
//!   [`HOLD_ROUNDS_AFTER_BACKOFF`] rounds after a backoff so the queue
//!   drains before the next probe; the rate is left alone.
//!
//! Base (propagation) delay is tracked LEDBAT-style as a short history of
//! per-minute one-way-delay minima, so the controller survives route
//! changes without permanently believing an inflated base. Loss reacts at
//! most once per smoothed RTT ([`LOSS_BETA`]); a retransmission timeout
//! collapses the rate toward the floor. A safety window derived from
//! `rate × srtt` caps in-flight data, so when the path blacks out the
//! sender cannot keep streaming packets into a dead link ("no cwnd
//! escape").

use std::collections::VecDeque;

use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time, DEFAULT_PACKET_BYTES};

/// Queuing delay (seconds) under which the controller may probe for rate.
pub const TARGET_LOW: f64 = 0.010;
/// Queuing delay (seconds) above which the controller backs off.
pub const TARGET_HIGH: f64 = 0.025;
/// Per-round one-way-delay gradient (s/s) that forces a backoff even while
/// absolute queuing is still inside the dead band.
pub const GRADIENT_BACKOFF: f64 = 0.01;
/// Multiplicative rate increase per probing round.
pub const PROBE_GAIN: f64 = 1.08;
/// Multiplicative rate decrease per backoff round.
pub const BACKOFF_FACTOR: f64 = 0.9;
/// Rounds the controller holds (no probing) after a backoff, letting the
/// queue drain before trusting delay samples again.
pub const HOLD_ROUNDS_AFTER_BACKOFF: u32 = 2;
/// Multiplicative rate decrease on packet loss (at most once per RTT).
pub const LOSS_BETA: f64 = 0.85;
/// Pacing-rate floor, bytes/sec (≈ 1 Mbit/s — an audio-plus-thumbnail
/// floor; interactive sources below this are better served by suspending).
pub const MIN_RATE: f64 = 125_000.0;
/// Pacing-rate ceiling, bytes/sec (safety clamp, ≈ 10 Gbit/s).
pub const MAX_RATE: f64 = 1.25e9;
/// Initial pacing rate, bytes/sec (≈ 4 Mbit/s).
const INIT_RATE: f64 = 500_000.0;
/// Number of one-minute base-delay history buckets (as in LEDBAT).
const BASE_HISTORY: usize = 10;
/// Safety-window slack: in-flight may reach this multiple of `rate × srtt`
/// (plus a few packets), bounding damage when ACKs stop arriving.
const CWND_SLACK: f64 = 1.5;
/// Safety-window floor, packets.
const MIN_CWND_PKTS: f64 = 4.0;

/// Operating state of the probe/backoff machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossState {
    /// Raising the rate multiplicatively.
    Probe,
    /// Rate frozen (dead band or post-backoff cooldown).
    Hold,
    /// Cutting the rate in response to queuing delay or its gradient.
    Backoff,
}

/// Cross delay-gradient congestion controller.
#[derive(Debug)]
pub struct Cross {
    mss: f64,
    /// Pacing rate, bytes/sec.
    rate: f64,
    state: CrossState,
    /// Remaining post-backoff cooldown rounds.
    hold_rounds: u32,
    /// Smoothed RTT (loss latch and round length).
    srtt: Dur,
    /// When the current measurement round started.
    round_started: Option<Time>,
    /// Minimum one-way delay observed this round, seconds.
    round_min_owd: f64,
    /// Minimum one-way delay of the previous round, for the gradient.
    prev_round_owd: Option<f64>,
    /// Rounds completed since flow start.
    rounds: u64,
    /// Per-minute minima of observed one-way delay, seconds; front is the
    /// current minute.
    base_history: VecDeque<f64>,
    /// When the current minute bucket started.
    bucket_started: Option<Time>,
    /// Once-per-RTT loss reaction latch.
    last_loss_at: Option<Time>,
}

impl Cross {
    /// A fresh controller at the default initial rate.
    pub fn new() -> Self {
        Self {
            mss: DEFAULT_PACKET_BYTES as f64,
            rate: INIT_RATE,
            state: CrossState::Probe,
            hold_rounds: 0,
            srtt: Dur::from_millis(100),
            round_started: None,
            round_min_owd: f64::INFINITY,
            prev_round_owd: None,
            rounds: 0,
            base_history: VecDeque::new(),
            bucket_started: None,
            last_loss_at: None,
        }
    }

    /// Current pacing rate, bytes/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current state of the probe/backoff machine.
    pub fn state(&self) -> CrossState {
        self.state
    }

    /// Measurement rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Current estimate of the path's base one-way delay, seconds.
    pub fn base_delay(&self) -> Option<f64> {
        self.base_history
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    /// Queuing delay implied by the last completed round, seconds.
    pub fn queuing_delay(&self) -> Option<f64> {
        match (self.prev_round_owd, self.base_delay()) {
            (Some(cur), Some(base)) => Some((cur - base).max(0.0)),
            _ => None,
        }
    }

    fn update_base_delay(&mut self, now: Time, owd_s: f64) {
        match self.bucket_started {
            None => {
                self.bucket_started = Some(now);
                self.base_history.push_front(owd_s);
            }
            Some(started) => {
                if now.since(started) >= Dur::from_secs(60) {
                    self.bucket_started = Some(now);
                    self.base_history.push_front(owd_s);
                    while self.base_history.len() > BASE_HISTORY {
                        self.base_history.pop_back();
                    }
                } else if let Some(front) = self.base_history.front_mut() {
                    if owd_s < *front {
                        *front = owd_s;
                    }
                }
            }
        }
    }

    /// Closes the round that started at `started`, runs the state machine,
    /// and opens the next round at `now`.
    fn close_round(&mut self, now: Time, started: Time) {
        let cur = self.round_min_owd;
        let round_s = now.since(started).as_secs_f64().max(1e-6);
        let base = self.base_delay().unwrap_or(cur);
        let queuing = (cur - base).max(0.0);
        let gradient = self
            .prev_round_owd
            .map(|prev| (cur - prev) / round_s)
            .unwrap_or(0.0);

        if queuing > TARGET_HIGH || gradient > GRADIENT_BACKOFF {
            self.state = CrossState::Backoff;
            self.hold_rounds = HOLD_ROUNDS_AFTER_BACKOFF;
            self.rate *= BACKOFF_FACTOR;
        } else if self.hold_rounds > 0 {
            self.hold_rounds -= 1;
            self.state = CrossState::Hold;
        } else if queuing < TARGET_LOW {
            self.state = CrossState::Probe;
            self.rate *= PROBE_GAIN;
        } else {
            self.state = CrossState::Hold;
        }
        self.rate = self.rate.clamp(MIN_RATE, MAX_RATE);

        self.prev_round_owd = Some(cur);
        self.round_min_owd = f64::INFINITY;
        self.round_started = Some(now);
        self.rounds += 1;
    }
}

impl Default for Cross {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cross {
    fn name(&self) -> &str {
        "Cross"
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        self.srtt = Dur::from_nanos((7 * self.srtt.as_nanos() + ack.rtt.as_nanos()) / 8);

        let owd_s = ack.one_way_delay.as_secs_f64();
        self.update_base_delay(now, owd_s);
        self.round_min_owd = self.round_min_owd.min(owd_s);

        match self.round_started {
            None => self.round_started = Some(now),
            Some(started) => {
                if now.since(started) >= self.srtt {
                    self.close_round(now, started);
                }
            }
        }
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        // At most one multiplicative cut per RTT.
        if let Some(last) = self.last_loss_at {
            if now.since(last) < self.srtt {
                return;
            }
        }
        self.last_loss_at = Some(now);
        if loss.by_timeout {
            // The path went dark: collapse toward the floor and cool down.
            self.rate = (self.rate * 0.5).max(MIN_RATE);
        } else {
            self.rate = (self.rate * LOSS_BETA).max(MIN_RATE);
        }
        self.state = CrossState::Backoff;
        self.hold_rounds = HOLD_ROUNDS_AFTER_BACKOFF;
    }

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }

    fn cwnd_bytes(&self) -> u64 {
        // Safety window only: normally the pacer (and the app-limited
        // source) governs; when ACKs stop, this caps in-flight data.
        let w = CWND_SLACK * self.rate * self.srtt.as_secs_f64() + MIN_CWND_PKTS * self.mss;
        w.max(MIN_CWND_PKTS * self.mss) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_with_owd(seq: u64, now: Time, owd: Dur) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(30),
            recv_at: now,
            rtt: Dur::from_millis(30),
            one_way_delay: owd,
        }
    }

    /// Feeds `n` ACKs with constant OWD, advancing time by `step` each.
    fn feed(c: &mut Cross, start: Time, n: u64, step: Dur, owd: Dur) -> Time {
        let mut now = start;
        for i in 0..n {
            c.on_ack(now, &ack_with_owd(i, now, owd));
            now += step;
        }
        now
    }

    #[test]
    fn probes_under_flat_low_delay() {
        let mut c = Cross::new();
        let before = c.rate();
        // 2 s of ACKs at a flat 15 ms OWD: queuing 0, gradient 0.
        feed(
            &mut c,
            Time::from_millis(100),
            100,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        assert!(c.rounds() > 10, "rounds = {}", c.rounds());
        assert_eq!(c.state(), CrossState::Probe);
        assert!(c.rate() > before, "{} -> {}", before, c.rate());
        assert!((c.base_delay().unwrap() - 0.015).abs() < 1e-9);
        assert!(c.queuing_delay().unwrap() < 1e-9);
    }

    #[test]
    fn backs_off_above_target_high() {
        let mut c = Cross::new();
        // Establish base = 15 ms over a couple of rounds.
        let now = feed(
            &mut c,
            Time::from_millis(100),
            20,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        let w = c.rate();
        // 45 ms OWD = 30 ms queuing, above TARGET_HIGH.
        feed(&mut c, now, 40, Dur::from_millis(20), Dur::from_millis(45));
        assert_eq!(c.state(), CrossState::Backoff);
        assert!(c.rate() < w, "{} -> {}", w, c.rate());
    }

    #[test]
    fn rising_gradient_triggers_backoff_inside_dead_band() {
        let mut c = Cross::new();
        let mut now = feed(
            &mut c,
            Time::from_millis(100),
            20,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        let w = c.rate();
        // OWD climbs 2 ms per 20 ms ACK (~0.1 s/s gradient) while absolute
        // queuing is still under TARGET_HIGH for the first rounds.
        for i in 0..5u64 {
            c.on_ack(
                now,
                &ack_with_owd(100 + i, now, Dur::from_millis(15 + 2 * i)),
            );
            now += Dur::from_millis(20);
        }
        assert_eq!(
            c.state(),
            CrossState::Backoff,
            "queuing {:?}",
            c.queuing_delay()
        );
        assert!(c.rate() < w);
    }

    #[test]
    fn holds_after_backoff_before_reprobing() {
        let mut c = Cross::new();
        let now = feed(
            &mut c,
            Time::from_millis(100),
            20,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        // One bad round forces a backoff...
        let now = feed(&mut c, now, 3, Dur::from_millis(20), Dur::from_millis(60));
        assert_eq!(c.state(), CrossState::Backoff);
        let rate_after_backoff = c.rate();
        // ...then delay recovers instantly; the next rounds must HOLD (the
        // cooldown) before probing resumes.
        let mut now = now;
        let mut saw_hold = false;
        for i in 0..200u64 {
            c.on_ack(now, &ack_with_owd(200 + i, now, Dur::from_millis(15)));
            if c.state() == CrossState::Hold {
                saw_hold = true;
                assert!(
                    c.rate() <= rate_after_backoff + 1e-9,
                    "hold must not raise rate"
                );
            }
            now += Dur::from_millis(20);
        }
        assert!(saw_hold, "cooldown hold rounds never observed");
        assert_eq!(c.state(), CrossState::Probe, "probing should resume");
        assert!(c.rate() > rate_after_backoff);
    }

    #[test]
    fn loss_cuts_at_most_once_per_rtt() {
        let mut c = Cross::new();
        let now = feed(
            &mut c,
            Time::from_millis(100),
            50,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        let w = c.rate();
        let mk_loss = |seq, at: Time, timeout| LossInfo {
            seq,
            bytes: 1500,
            sent_at: at - Dur::from_millis(30),
            detected_at: at,
            by_timeout: timeout,
        };
        c.on_loss(now, &mk_loss(90, now, false));
        let after_one = c.rate();
        assert!((after_one - (w * LOSS_BETA).max(MIN_RATE)).abs() < 1e-6);
        assert_eq!(c.state(), CrossState::Backoff);
        // Immediate second loss is latched out.
        c.on_loss(
            now + Dur::from_millis(1),
            &mk_loss(91, now + Dur::from_millis(1), false),
        );
        assert_eq!(c.rate(), after_one);
        // A timeout an RTT later halves toward the floor.
        let later = now + Dur::from_millis(200);
        c.on_loss(later, &mk_loss(92, later, true));
        assert!(c.rate() <= after_one * 0.5 + 1e-6 || c.rate() == MIN_RATE);
    }

    #[test]
    fn rate_never_escapes_bounds() {
        let mut c = Cross::new();
        // Many probing rounds: clamped at MAX_RATE.
        feed(
            &mut c,
            Time::from_millis(100),
            20_000,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        assert!(c.rate() <= MAX_RATE);
        // Then a long string of losses: clamped at MIN_RATE.
        let mut now = Time::from_secs_f64(500.0);
        for i in 0..200u64 {
            c.on_loss(
                now,
                &LossInfo {
                    seq: i,
                    bytes: 1500,
                    sent_at: now - Dur::from_millis(30),
                    detected_at: now,
                    by_timeout: true,
                },
            );
            now += Dur::from_millis(200);
        }
        assert!(c.rate() >= MIN_RATE);
    }

    #[test]
    fn safety_window_tracks_rate_and_bounds_outage_damage() {
        let mut c = Cross::new();
        feed(
            &mut c,
            Time::from_millis(100),
            50,
            Dur::from_millis(20),
            Dur::from_millis(15),
        );
        let w = c.cwnd_bytes() as f64;
        let bound = CWND_SLACK * c.rate() * c.srtt.as_secs_f64() + MIN_CWND_PKTS * 1500.0;
        assert!(w <= bound + 1.0, "w {w} vs bound {bound}");
        // When ACKs stop (outage), the window — not time — caps in-flight:
        // it must be finite and far below a second of sending.
        assert!(c.cwnd_bytes() < (c.rate() * 1.0) as u64);
        assert!(c.cwnd_bytes() >= (MIN_CWND_PKTS * 1500.0) as u64);
    }

    #[test]
    fn base_history_rolls_over_minutes() {
        let mut c = Cross::new();
        let mut now = Time::from_millis(100);
        c.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(40)));
        now += Dur::from_secs(61);
        c.on_ack(now, &ack_with_owd(1, now, Dur::from_millis(20)));
        assert!((c.base_delay().unwrap() - 0.020).abs() < 1e-9);
    }

    proptest::proptest! {
        /// Under any interleaving of ACKs and losses with arbitrary delays
        /// and inter-event gaps, the rate stays inside its clamps and the
        /// safety window stays finite, floored, and proportional to
        /// rate × srtt — the "no cwnd escape" invariant.
        #[test]
        fn prop_rate_and_window_always_bounded(
            kinds in proptest::collection::vec(0u8..2, 200..201),
            gaps in proptest::collection::vec(0u64..500_000, 200..201),
            delays in proptest::collection::vec(100u64..2_000_000, 200..201),
            flags in proptest::collection::vec(proptest::any::<bool>(), 200..201),
        ) {
            let mut c = Cross::new();
            let mut now = Time::from_millis(1);
            for i in 0..kinds.len() {
                let (kind, gap_us, delay_us, flag) = (kinds[i], gaps[i], delays[i], flags[i]);
                now += Dur::from_micros(gap_us);
                let seq = i as u64 + 1;
                if kind == 0 {
                    let owd = Dur::from_micros(delay_us);
                    c.on_ack(now, &AckInfo {
                        seq,
                        bytes: 1500,
                        sent_at: now - owd,
                        recv_at: now,
                        rtt: Dur::from_micros(2 * delay_us),
                        one_way_delay: owd,
                    });
                } else {
                    c.on_loss(now, &LossInfo {
                        seq,
                        bytes: 1500,
                        sent_at: now - Dur::from_micros(delay_us),
                        detected_at: now,
                        by_timeout: flag,
                    });
                }
                proptest::prop_assert!(c.rate().is_finite());
                proptest::prop_assert!((MIN_RATE..=MAX_RATE).contains(&c.rate()));
                let w = c.cwnd_bytes();
                proptest::prop_assert!(w >= (MIN_CWND_PKTS * 1500.0) as u64);
                let bound = CWND_SLACK * c.rate() * c.srtt.as_secs_f64()
                    + MIN_CWND_PKTS * 1500.0;
                proptest::prop_assert!(w as f64 <= bound + 1.0);
            }
        }
    }
}
