//! LEDBAT — Low Extra Delay Background Transport (RFC 6817).
//!
//! The incumbent scavenger the paper compares against. LEDBAT measures
//! one-way delay, estimates the path's *base delay* as a history of
//! per-minute minima, and servo-controls its window so that the queuing
//! delay it induces equals a fixed *target* (100 ms in RFC 6817 and the
//! µTorrent default; 25 ms in the original IETF draft — Appendix B).
//!
//! The latecomer advantage the paper discusses (§6.1.3) emerges naturally
//! from this implementation: a flow that starts while the queue is already
//! inflated measures an inflated "base" delay and therefore believes the
//! queue is shorter than it is.

use std::collections::VecDeque;

use proteus_transport::{AckInfo, CongestionControl, Dur, LossInfo, Time, DEFAULT_PACKET_BYTES};

/// Number of one-minute base-delay history buckets (RFC 6817
/// `BASE_HISTORY`).
const BASE_HISTORY: usize = 10;
/// Number of recent delay samples the current-delay filter keeps
/// (`CURRENT_FILTER`).
const CURRENT_FILTER: usize = 4;
/// Controller gain (`GAIN`): at most one MSS of growth per RTT per unit of
/// off-target.
const GAIN: f64 = 1.0;
/// Minimum window, packets (`MIN_CWND`).
const MIN_CWND_PKTS: f64 = 2.0;
/// Initial window, packets.
const INIT_CWND_PKTS: f64 = 2.0;

/// LEDBAT congestion controller.
#[derive(Debug)]
pub struct Ledbat {
    target: Dur,
    mss: f64,
    /// Congestion window, bytes (fractional).
    cwnd: f64,
    /// Per-minute minima of observed one-way delay, seconds; front is the
    /// current minute.
    base_history: VecDeque<f64>,
    /// When the current minute bucket started.
    bucket_started: Option<Time>,
    /// Last `CURRENT_FILTER` one-way delay samples, seconds.
    current_filter: VecDeque<f64>,
    /// Once-per-RTT loss reaction latch.
    last_loss_at: Option<Time>,
    /// Smoothed RTT for the loss latch.
    srtt: Dur,
}

impl Ledbat {
    /// LEDBAT with the RFC 6817 / µTorrent default 100 ms target.
    pub fn new() -> Self {
        Self::with_target(Dur::from_millis(100))
    }

    /// LEDBAT with the original-draft 25 ms target (Appendix B).
    pub fn draft25() -> Self {
        Self::with_target(Dur::from_millis(25))
    }

    /// LEDBAT with an arbitrary target extra delay.
    pub fn with_target(target: Dur) -> Self {
        assert!(!target.is_zero(), "target extra delay must be positive");
        Self {
            target,
            mss: DEFAULT_PACKET_BYTES as f64,
            cwnd: INIT_CWND_PKTS * DEFAULT_PACKET_BYTES as f64,
            base_history: VecDeque::new(),
            bucket_started: None,
            current_filter: VecDeque::new(),
            last_loss_at: None,
            srtt: Dur::from_millis(100),
        }
    }

    /// The configured target extra delay.
    pub fn target(&self) -> Dur {
        self.target
    }

    /// Current estimate of the path's base one-way delay, seconds.
    pub fn base_delay(&self) -> Option<f64> {
        self.base_history
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    /// Filtered current one-way delay, seconds (minimum of recent samples,
    /// per RFC 6817 §3.4.2).
    pub fn current_delay(&self) -> Option<f64> {
        self.current_filter
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    /// Current window, packets.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd / self.mss
    }

    fn update_base_delay(&mut self, now: Time, owd_s: f64) {
        match self.bucket_started {
            None => {
                self.bucket_started = Some(now);
                self.base_history.push_front(owd_s);
            }
            Some(started) => {
                if now.since(started) >= Dur::from_secs(60) {
                    // Roll over to a new minute bucket.
                    self.bucket_started = Some(now);
                    self.base_history.push_front(owd_s);
                    while self.base_history.len() > BASE_HISTORY {
                        self.base_history.pop_back();
                    }
                } else if let Some(front) = self.base_history.front_mut() {
                    if owd_s < *front {
                        *front = owd_s;
                    }
                }
            }
        }
    }
}

impl Default for Ledbat {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Ledbat {
    fn name(&self) -> &str {
        "LEDBAT"
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        // RFC 6298-lite smoothing for the loss latch only.
        self.srtt = Dur::from_nanos((7 * self.srtt.as_nanos() + ack.rtt.as_nanos()) / 8);

        let owd_s = ack.one_way_delay.as_secs_f64();
        self.update_base_delay(now, owd_s);
        self.current_filter.push_back(owd_s);
        while self.current_filter.len() > CURRENT_FILTER {
            self.current_filter.pop_front();
        }

        let (Some(base), Some(current)) = (self.base_delay(), self.current_delay()) else {
            return;
        };
        let queuing = (current - base).max(0.0);
        let target_s = self.target.as_secs_f64();
        let off_target = (target_s - queuing) / target_s;
        // RFC 6817 window update: GAIN * off_target * bytes_newly_acked *
        // MSS / cwnd, with growth clamped to slow-start-like +1 MSS/ACK.
        let delta = GAIN * off_target * ack.bytes as f64 * self.mss / self.cwnd;
        self.cwnd += delta.min(self.mss);
        let floor = MIN_CWND_PKTS * self.mss;
        if self.cwnd < floor {
            self.cwnd = floor;
        }
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        // At most one halving per RTT (RFC 6817 §3.4.2).
        if let Some(last) = self.last_loss_at {
            if now.since(last) < self.srtt {
                return;
            }
        }
        self.last_loss_at = Some(now);
        self.cwnd = (self.cwnd / 2.0).max(MIN_CWND_PKTS * self.mss);
        if loss.by_timeout {
            self.cwnd = MIN_CWND_PKTS * self.mss;
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        None // ACK-clocked, like libutp
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_with_owd(seq: u64, now: Time, owd: Dur) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(30),
            recv_at: now,
            rtt: Dur::from_millis(30),
            one_way_delay: owd,
        }
    }

    #[test]
    fn grows_below_target() {
        let mut l = Ledbat::new();
        let now = Time::from_millis(100);
        let before = l.cwnd_bytes();
        // OWD equal to base: queuing = 0, full-speed growth.
        for i in 0..20 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(15)));
        }
        assert!(l.cwnd_bytes() > before);
    }

    #[test]
    fn equilibrium_at_target() {
        let mut l = Ledbat::new();
        let now = Time::from_millis(100);
        // Establish base = 15 ms.
        l.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(15)));
        // Flush the 4-sample current-delay min filter with at-target samples.
        for i in 1..6 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(115)));
        }
        // Queuing exactly at the 100 ms target: off_target = 0, no change.
        let w = l.cwnd_pkts();
        for i in 6..20 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(115)));
        }
        let after = l.cwnd_pkts();
        assert!((after - w).abs() < 1e-9, "w {w} -> {after}");
    }

    #[test]
    fn shrinks_above_target() {
        let mut l = Ledbat::new();
        let now = Time::from_millis(100);
        l.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(15)));
        for i in 1..30 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(15)));
        }
        let w = l.cwnd_pkts();
        // 200 ms of queuing, double the target: off_target = -1.
        for i in 30..60 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(215)));
        }
        assert!(l.cwnd_pkts() < w);
    }

    #[test]
    fn draft25_reacts_earlier_than_100ms() {
        let now = Time::from_millis(100);
        let mut l100 = Ledbat::new();
        let mut l25 = Ledbat::draft25();
        for l in [&mut l100, &mut l25] {
            l.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(15)));
        }
        // 50 ms queuing: above the 25 ms target, below the 100 ms target.
        for i in 1..40 {
            let a = ack_with_owd(i, now, Dur::from_millis(65));
            l100.on_ack(now, &a);
            l25.on_ack(now, &a);
        }
        assert!(l25.cwnd_pkts() < l100.cwnd_pkts());
    }

    #[test]
    fn latecomer_measures_inflated_base() {
        let mut late = Ledbat::new();
        let now = Time::from_millis(100);
        // This flow only ever sees an inflated path (competitor filled the
        // queue): its "base" is 80 ms, so it believes queuing is low.
        for i in 0..20 {
            late.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(80)));
        }
        assert!((late.base_delay().unwrap() - 0.080).abs() < 1e-9);
        // And keeps growing despite the real queue.
        assert!(late.cwnd_pkts() > INIT_CWND_PKTS);
    }

    #[test]
    fn base_history_rolls_over_minutes() {
        let mut l = Ledbat::new();
        let mut now = Time::from_millis(100);
        l.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(40)));
        // Two minutes later a lower OWD shows up: becomes the new bucket min.
        now += Dur::from_secs(61);
        l.on_ack(now, &ack_with_owd(1, now, Dur::from_millis(20)));
        assert!((l.base_delay().unwrap() - 0.020).abs() < 1e-9);
        assert!(l.base_history.len() >= 2);
    }

    #[test]
    fn loss_halves_at_most_once_per_rtt() {
        let mut l = Ledbat::new();
        let now = Time::from_millis(1000);
        for i in 0..40 {
            l.on_ack(now, &ack_with_owd(i, now, Dur::from_millis(15)));
        }
        let w = l.cwnd_bytes();
        let mk_loss = |seq, at: Time| LossInfo {
            seq,
            bytes: 1500,
            sent_at: at - Dur::from_millis(30),
            detected_at: at,
            by_timeout: false,
        };
        l.on_loss(now, &mk_loss(50, now));
        let after_one = l.cwnd_bytes();
        assert!(after_one <= w / 2 + 1);
        // Immediate second loss is ignored.
        l.on_loss(
            now + Dur::from_millis(1),
            &mk_loss(51, now + Dur::from_millis(1)),
        );
        assert_eq!(l.cwnd_bytes(), after_one);
        // After an RTT it reacts again.
        let later = now + Dur::from_millis(100);
        l.on_loss(later, &mk_loss(52, later));
        assert!(l.cwnd_bytes() < after_one || after_one == (MIN_CWND_PKTS * 1500.0) as u64);
    }

    #[test]
    fn growth_capped_at_one_mss_per_ack() {
        let mut l = Ledbat::new();
        let now = Time::from_millis(100);
        let before = l.cwnd_bytes();
        l.on_ack(now, &ack_with_owd(0, now, Dur::from_millis(10)));
        assert!(l.cwnd_bytes() - before <= 1500);
    }
}
