//! TCP Reno (AIMD) — a simple reference loss-based controller.
//!
//! Not evaluated in the paper directly, but useful as a sanity baseline for
//! the simulator (its sawtooth and `cwnd ≈ BDP + buffer` behaviour are
//! textbook) and for ablation comparisons against CUBIC.

use proteus_transport::{
    AckInfo, CongestionControl, LossInfo, RttEstimator, Time, DEFAULT_PACKET_BYTES,
};

const MIN_CWND_PKTS: f64 = 2.0;
const INIT_CWND_PKTS: f64 = 10.0;

/// TCP Reno congestion controller (slow start + AIMD, NewReno-style single
/// reduction per congestion event).
#[derive(Debug)]
pub struct Reno {
    mss: f64,
    cwnd: f64,
    ssthresh: f64,
    rtt: RttEstimator,
    recovery_until: Option<Time>,
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl Reno {
    /// Creates a Reno controller.
    pub fn new() -> Self {
        Self {
            mss: DEFAULT_PACKET_BYTES as f64,
            cwnd: INIT_CWND_PKTS,
            ssthresh: f64::INFINITY,
            rtt: RttEstimator::new(),
            recovery_until: None,
        }
    }

    /// Current window, packets.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &str {
        "Reno"
    }

    fn on_ack(&mut self, _now: Time, ack: &AckInfo) {
        self.rtt.update(ack.rtt);
        if let Some(until) = self.recovery_until {
            if ack.sent_at < until {
                return;
            }
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        if let Some(until) = self.recovery_until {
            if loss.sent_at < until {
                return;
            }
        }
        self.recovery_until = Some(now);
        self.cwnd = (self.cwnd / 2.0).max(MIN_CWND_PKTS);
        self.ssthresh = self.cwnd;
        if loss.by_timeout {
            self.cwnd = MIN_CWND_PKTS;
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        None
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_transport::Dur;

    fn ack(seq: u64, now: Time) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(30),
            recv_at: now,
            rtt: Dur::from_millis(30),
            one_way_delay: Dur::from_millis(15),
        }
    }

    #[test]
    fn additive_increase_after_ssthresh() {
        let mut r = Reno::new();
        let now = Time::from_millis(100);
        r.on_loss(
            now,
            &LossInfo {
                seq: 0,
                bytes: 1500,
                sent_at: now - Dur::from_millis(30),
                detected_at: now,
                by_timeout: false,
            },
        );
        let w = r.cwnd_pkts();
        let later = now + Dur::from_secs(1);
        let n = w.ceil() as u64;
        for i in 0..n {
            r.on_ack(later, &ack(i, later));
        }
        // One window of ACKs ≈ +1 packet.
        assert!((r.cwnd_pkts() - (w + 1.0)).abs() < 0.2);
    }

    #[test]
    fn halves_on_loss() {
        let mut r = Reno::new();
        let now = Time::from_millis(100);
        for i in 0..30 {
            r.on_ack(now, &ack(i, now));
        }
        let before = r.cwnd_pkts();
        r.on_loss(
            now,
            &LossInfo {
                seq: 31,
                bytes: 1500,
                sent_at: now - Dur::from_millis(1),
                detected_at: now,
                by_timeout: false,
            },
        );
        assert!((r.cwnd_pkts() - before / 2.0).abs() < 1e-9);
    }
}
