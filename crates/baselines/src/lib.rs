//! Baseline congestion controllers for the PCC Proteus reproduction.
//!
//! The paper evaluates Proteus against LEDBAT (the incumbent scavenger) and
//! four primary protocols (CUBIC, BBR, COPA, PCC Vivace — the last lives in
//! `proteus-core` since it shares the PCC rate-control machinery). This
//! crate implements the baselines from their published specifications:
//!
//! * [`Cubic`] — RFC 8312 window growth, β = 0.7, fast convergence,
//! * [`Reno`] — textbook AIMD (simulator sanity baseline),
//! * [`Bbr`] — BBR v1 state machine, plus [`Bbr::scavenger`] for the
//!   paper's §7.1 BBR-S variant,
//! * [`Copa`] — default-mode COPA, δ = 0.5,
//! * [`Ledbat`] — RFC 6817 with 100 ms target, plus [`Ledbat::draft25`]
//!   for the Appendix-B 25 ms variant,
//! * [`FixedRateProbe`] — the constant-rate UDP measurement flow of Fig. 2.
//!
//! Beyond the paper, [`Cross`] implements a Cross-style delay-gradient
//! controller (arXiv:2409.10042) — the interactive-media baseline for the
//! RTC experiments.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bbr;
pub mod copa;
pub mod cross;
pub mod cubic;
pub mod ledbat;
pub mod probe;
pub mod reno;
pub mod vegas;

pub use bbr::{Bbr, Mode as BbrMode, ScavengerMod};
pub use copa::Copa;
pub use cross::{Cross, CrossState};
pub use cubic::Cubic;
pub use ledbat::Ledbat;
pub use probe::FixedRateProbe;
pub use reno::Reno;
pub use vegas::Vegas;
