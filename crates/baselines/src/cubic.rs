//! TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312).
//!
//! The dominant loss-based primary protocol in the paper's evaluation. This
//! is a faithful window-growth implementation: slow start to `ssthresh`,
//! then cubic growth `W(t) = C·(t − K)³ + W_max` with the TCP-friendly
//! (Reno-estimate) region, β = 0.7 multiplicative decrease and fast
//! convergence. The sender is ACK-clocked (no pacing), like the Linux
//! default the paper competes against.

use proteus_transport::{
    AckInfo, CongestionControl, Dur, LossInfo, RttEstimator, SeqNr, Time, DEFAULT_PACKET_BYTES,
};

/// CUBIC constant `C` (packets/sec³), per RFC 8312.
const C: f64 = 0.4;
/// Multiplicative decrease factor β.
const BETA: f64 = 0.7;
/// Minimum congestion window, packets.
const MIN_CWND_PKTS: f64 = 2.0;
/// Initial congestion window, packets (RFC 6928).
const INIT_CWND_PKTS: f64 = 10.0;

/// TCP CUBIC congestion controller.
#[derive(Debug)]
pub struct Cubic {
    mss: f64,
    /// Congestion window, packets (fractional).
    cwnd: f64,
    /// Slow-start threshold, packets.
    ssthresh: f64,
    /// Window size before the last reduction, packets.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<Time>,
    /// Time offset at which the cubic reaches `w_max`.
    k: f64,
    /// Reno-friendly window estimate, packets.
    w_est: f64,
    rtt: RttEstimator,
    /// End of the current recovery episode: losses of packets sent before
    /// this are part of the same congestion event.
    recovery_until: Option<Time>,
    /// Highest sequence sent, to bound recovery episodes.
    highest_sent: SeqNr,
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cubic {
    /// Creates a CUBIC controller with standard parameters.
    pub fn new() -> Self {
        Self {
            mss: DEFAULT_PACKET_BYTES as f64,
            cwnd: INIT_CWND_PKTS,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            rtt: RttEstimator::new(),
            recovery_until: None,
            highest_sent: 0,
        }
    }

    /// Current congestion window in packets (for tests/inspection).
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn in_recovery(&self, sent_at: Time) -> bool {
        match self.recovery_until {
            Some(until) => sent_at < until,
            None => false,
        }
    }

    fn enter_recovery(&mut self, now: Time) {
        self.recovery_until = Some(now);
        // Fast convergence: release bandwidth faster when the window is
        // still below the previous peak.
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(MIN_CWND_PKTS);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn congestion_avoidance(&mut self, now: Time) {
        let srtt = self.rtt.srtt_or(Dur::from_millis(100)).as_secs_f64();
        let t = match self.epoch_start {
            Some(start) => now.since(start).as_secs_f64(),
            None => {
                self.epoch_start = Some(now);
                let w_diff = (self.w_max - self.cwnd).max(0.0);
                self.k = (w_diff / C).cbrt();
                self.w_est = self.cwnd;
                0.0
            }
        };
        // Cubic target one RTT ahead.
        let target = C * (t + srtt - self.k).powi(3) + self.w_max;
        if target > self.cwnd {
            // Approach the target over one window of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd;
        } else {
            // Slow probing in the concave plateau.
            self.cwnd += 0.01 / self.cwnd;
        }
        // TCP-friendly region (Reno estimate).
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) / self.cwnd;
        if self.w_est > self.cwnd {
            self.cwnd = self.w_est;
        }
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &str {
        "CUBIC"
    }

    fn on_packet_sent(&mut self, _now: Time, pkt: &proteus_transport::SentPacket) {
        self.highest_sent = self.highest_sent.max(pkt.seq);
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        self.rtt.update(ack.rtt);
        if self.in_recovery(ack.sent_at) {
            return; // no growth on ACKs from before the loss event
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // slow start: +1 packet per ACK
            if self.cwnd >= self.ssthresh {
                self.epoch_start = None;
            }
        } else {
            self.congestion_avoidance(now);
        }
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        if self.in_recovery(loss.sent_at) {
            return; // one reduction per congestion event
        }
        self.enter_recovery(now);
        if loss.by_timeout {
            // RTO: collapse to the minimum window and restart slow start.
            self.cwnd = MIN_CWND_PKTS;
            self.epoch_start = None;
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        None // ACK-clocked
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_transport::SentPacket;

    fn ack(seq: SeqNr, now: Time) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(30),
            recv_at: now,
            rtt: Dur::from_millis(30),
            one_way_delay: Dur::from_millis(15),
        }
    }

    fn loss(seq: SeqNr, now: Time, by_timeout: bool) -> LossInfo {
        LossInfo {
            seq,
            bytes: 1500,
            sent_at: now - Dur::from_millis(30),
            detected_at: now,
            by_timeout,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Cubic::new();
        let start = c.cwnd_pkts();
        let mut now = Time::from_millis(100);
        for i in 0..10 {
            c.on_ack(now, &ack(i, now));
            now += Dur::from_millis(1);
        }
        assert!((c.cwnd_pkts() - (start + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_reduces_by_beta() {
        let mut c = Cubic::new();
        let now = Time::from_millis(100);
        for i in 0..40 {
            c.on_ack(now, &ack(i, now));
        }
        let before = c.cwnd_pkts();
        c.on_loss(now, &loss(40, now, false));
        assert!((c.cwnd_pkts() - before * BETA).abs() < 1e-9);
    }

    #[test]
    fn one_reduction_per_congestion_event() {
        let mut c = Cubic::new();
        let now = Time::from_millis(100);
        for i in 0..40 {
            c.on_ack(now, &ack(i, now));
        }
        c.on_loss(now, &loss(40, now, false));
        let after_first = c.cwnd_pkts();
        // A second loss of a packet sent before the event: no further cut.
        c.on_loss(now + Dur::from_millis(1), &loss(41, now, false));
        assert_eq!(c.cwnd_pkts(), after_first);
    }

    #[test]
    fn separate_events_reduce_again() {
        let mut c = Cubic::new();
        let mut now = Time::from_millis(100);
        for i in 0..40 {
            c.on_ack(now, &ack(i, now));
        }
        c.on_loss(now, &loss(40, now, false));
        let after_first = c.cwnd_pkts();
        now += Dur::from_millis(100);
        // Packet sent after recovery start: a fresh event.
        let mut l = loss(60, now, false);
        l.sent_at = now - Dur::from_millis(10);
        c.on_loss(now, &l);
        assert!(c.cwnd_pkts() < after_first);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut c = Cubic::new();
        let now = Time::from_millis(100);
        for i in 0..100 {
            c.on_ack(now, &ack(i, now));
        }
        c.on_loss(now, &loss(100, now, true));
        assert_eq!(c.cwnd_pkts(), MIN_CWND_PKTS);
    }

    #[test]
    fn cubic_growth_accelerates_away_from_wmax() {
        let mut c = Cubic::new();
        let mut now = Time::from_millis(100);
        // Build a window then lose, entering congestion avoidance.
        for i in 0..60 {
            c.on_ack(now, &ack(i, now));
        }
        c.on_loss(now, &loss(60, now, false));
        now += Dur::from_millis(50);
        // Growth right after the cut (concave region, approaching w_max)...
        let w0 = c.cwnd_pkts();
        for i in 0..30 {
            c.on_ack(now, &ack(100 + i, now));
        }
        let near_growth = c.cwnd_pkts() - w0;
        // ...is slower than growth far past K (convex region).
        now += Dur::from_secs(20);
        let w1 = c.cwnd_pkts();
        for i in 0..30 {
            c.on_ack(now, &ack(200 + i, now));
        }
        let far_growth = c.cwnd_pkts() - w1;
        assert!(
            far_growth > near_growth,
            "near {near_growth}, far {far_growth}"
        );
    }

    #[test]
    fn window_never_below_minimum() {
        let mut c = Cubic::new();
        let mut now = Time::from_millis(100);
        for i in 0..20 {
            let mut l = loss(i, now, false);
            l.sent_at = now - Dur::from_millis(1);
            c.on_loss(now, &l);
            now += Dur::from_millis(100);
        }
        assert!(c.cwnd_pkts() >= MIN_CWND_PKTS);
        assert!(c.cwnd_bytes() >= (MIN_CWND_PKTS * 1500.0) as u64);
    }

    #[test]
    fn is_ack_clocked() {
        let c = Cubic::new();
        assert_eq!(c.pacing_rate(), None);
        assert!(c.cwnd_bytes() < u64::MAX);
        assert_eq!(c.name(), "CUBIC");
    }

    #[test]
    fn tracks_highest_sent() {
        let mut c = Cubic::new();
        c.on_packet_sent(
            Time::ZERO,
            &SentPacket {
                seq: 5,
                bytes: 1500,
                sent_at: Time::ZERO,
            },
        );
        assert_eq!(c.highest_sent, 5);
    }
}
