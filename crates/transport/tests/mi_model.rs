//! Model-based property test: the hot-path [`MiTracker`] (seq-indexed
//! attribution ring, direct-index MI lookup, streaming regression) must
//! behave exactly like the structures it replaced — a `HashMap<SeqNr, MiId>`
//! plus a linear id scan plus stored RTT points fitted two-pass at MI close —
//! under randomized interleavings of MI rolls, sends, filtered/unfiltered
//! ACKs (hits, repeats, strays) and losses.
//!
//! Every field of every completed `MiStats` must match bit-for-bit except
//! the regression outputs (`rtt_gradient`, `gradient_error`), where the
//! streaming accumulator is algebraically identical but sums in a different
//! order (see DESIGN.md §4d); those match to a 1e-9 relative tolerance.

use std::collections::HashMap;

use proptest::prelude::*;
use proteus_stats::{LinearRegression, Welford};
use proteus_transport::{
    AckInfo, Dur, LossInfo, MiId, MiStats, MiTracker, SentPacket, SeqNr, Time,
};

#[derive(Debug, Clone)]
enum Op {
    /// Roll to a new MI at the current time.
    StartMi { rate_step: u64 },
    /// Transmit the next sequence number at the current time.
    Send,
    /// ACK a (usually outstanding) recent sequence number.
    Ack {
        pick: u64,
        rtt_ms: u64,
        keep_rtt: bool,
    },
    /// Declare a recent sequence number lost.
    Loss { pick: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest has no tuple strategies; derive the ACK fields
    // from disjoint-enough bit ranges of one u64 draw.
    prop_oneof![
        1 => (0u64..8).prop_map(|rate_step| Op::StartMi { rate_step }),
        4 => Just(Op::Send),
        4 => any::<u64>().prop_map(|raw| Op::Ack {
            pick: raw >> 16,
            rtt_ms: 1 + (raw >> 8) % 199,
            keep_rtt: raw & 1 == 1,
        }),
        2 => any::<u64>().prop_map(|raw| Op::Loss { pick: raw >> 8 }),
    ]
}

/// The pre-change MI state: counters plus a growable list of RTT points,
/// fitted two-pass at close.
struct RefMi {
    id: MiId,
    start: Time,
    end: Option<Time>,
    target_rate: f64,
    bytes_sent: u64,
    bytes_acked: u64,
    bytes_lost: u64,
    pkts_sent: u64,
    pkts_acked: u64,
    pkts_lost: u64,
    outstanding: u64,
    rtt_points: Vec<(f64, f64)>,
    rtt_acc: Welford,
}

impl RefMi {
    fn finish(&self) -> MiStats {
        let end = self.end.expect("closed");
        let dur_s = end.since(self.start).as_secs_f64().max(1e-9);
        let (gradient, error) = match LinearRegression::fit(&self.rtt_points) {
            Some(fit) => (fit.slope, fit.rms_residual / dur_s),
            None => (0.0, 0.0),
        };
        MiStats {
            id: self.id,
            start: self.start,
            end,
            target_rate: self.target_rate,
            bytes_sent: self.bytes_sent,
            bytes_acked: self.bytes_acked,
            bytes_lost: self.bytes_lost,
            pkts_sent: self.pkts_sent,
            pkts_acked: self.pkts_acked,
            pkts_lost: self.pkts_lost,
            throughput: self.bytes_acked as f64 / dur_s,
            send_rate: self.bytes_sent as f64 / dur_s,
            loss_rate: if self.pkts_sent == 0 {
                0.0
            } else {
                self.pkts_lost as f64 / self.pkts_sent as f64
            },
            rtt_mean: self.rtt_acc.mean(),
            rtt_dev: self.rtt_acc.std_dev(),
            rtt_gradient: gradient,
            gradient_error: error,
            rtt_samples: self.rtt_acc.count(),
            rtt_min: self.rtt_acc.min().unwrap_or(0.0),
            rtt_max: self.rtt_acc.max().unwrap_or(0.0),
        }
    }
}

/// The pre-change tracker: hashing attribution, linear id scans.
#[derive(Default)]
struct RefTracker {
    next_id: MiId,
    pending: Vec<RefMi>,
    seq_to_mi: HashMap<SeqNr, MiId>,
}

impl RefTracker {
    fn start_mi(&mut self, now: Time, rate: f64) {
        if let Some(open) = self.pending.last_mut() {
            if open.end.is_none() {
                open.end = Some(now);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(RefMi {
            id,
            start: now,
            end: None,
            target_rate: rate,
            bytes_sent: 0,
            bytes_acked: 0,
            bytes_lost: 0,
            pkts_sent: 0,
            pkts_acked: 0,
            pkts_lost: 0,
            outstanding: 0,
            rtt_points: Vec::new(),
            rtt_acc: Welford::new(),
        });
    }

    fn on_sent(&mut self, pkt: &SentPacket) {
        let Some(open) = self.pending.last_mut() else {
            return;
        };
        open.bytes_sent += pkt.bytes;
        open.pkts_sent += 1;
        open.outstanding += 1;
        self.seq_to_mi.insert(pkt.seq, open.id);
    }

    fn on_ack_filtered(&mut self, ack: &AckInfo, keep_rtt: bool, out: &mut Vec<MiStats>) {
        let Some(id) = self.seq_to_mi.remove(&ack.seq) else {
            return;
        };
        if let Some(mi) = self.pending.iter_mut().find(|m| m.id == id) {
            mi.bytes_acked += ack.bytes;
            mi.pkts_acked += 1;
            mi.outstanding = mi.outstanding.saturating_sub(1);
            if keep_rtt {
                let rel_send = ack.sent_at.since(mi.start).as_secs_f64();
                let rtt_s = ack.rtt.as_secs_f64();
                mi.rtt_points.push((rel_send, rtt_s));
                mi.rtt_acc.add(rtt_s);
            }
        }
        self.drain(out);
    }

    fn on_loss(&mut self, loss: &LossInfo, out: &mut Vec<MiStats>) {
        let Some(id) = self.seq_to_mi.remove(&loss.seq) else {
            return;
        };
        if let Some(mi) = self.pending.iter_mut().find(|m| m.id == id) {
            mi.bytes_lost += loss.bytes;
            mi.pkts_lost += 1;
            mi.outstanding = mi.outstanding.saturating_sub(1);
        }
        self.drain(out);
    }

    fn drain(&mut self, out: &mut Vec<MiStats>) {
        while let Some(front) = self.pending.first() {
            if front.end.is_some() && front.outstanding == 0 {
                out.push(self.pending.remove(0).finish());
            } else {
                break;
            }
        }
    }
}

fn assert_stats_match(new: &MiStats, reference: &MiStats) {
    assert_eq!(new.id, reference.id);
    assert_eq!(new.start, reference.start);
    assert_eq!(new.end, reference.end);
    assert_eq!(new.target_rate, reference.target_rate);
    assert_eq!(new.bytes_sent, reference.bytes_sent);
    assert_eq!(new.bytes_acked, reference.bytes_acked);
    assert_eq!(new.bytes_lost, reference.bytes_lost);
    assert_eq!(new.pkts_sent, reference.pkts_sent);
    assert_eq!(new.pkts_acked, reference.pkts_acked);
    assert_eq!(new.pkts_lost, reference.pkts_lost);
    // Same arithmetic on the same counters: bit-identical.
    assert_eq!(new.throughput, reference.throughput);
    assert_eq!(new.send_rate, reference.send_rate);
    assert_eq!(new.loss_rate, reference.loss_rate);
    // Welford sees the identical sample sequence: bit-identical.
    assert_eq!(new.rtt_mean, reference.rtt_mean);
    assert_eq!(new.rtt_dev, reference.rtt_dev);
    assert_eq!(new.rtt_samples, reference.rtt_samples);
    assert_eq!(new.rtt_min, reference.rtt_min);
    assert_eq!(new.rtt_max, reference.rtt_max);
    // Streaming vs two-pass regression: tolerance, not bit-identity. Both
    // get a small absolute floor on top of the relative term: on
    // near-collinear data the true residual is ~0 and each side computes a
    // different rounding remainder of a catastrophic cancellation (≈
    // √(ε·Σdy²), further amplified by the 1/duration factor in
    // `gradient_error` for millisecond MIs) — see the conditioning analysis
    // in crates/stats/tests/streaming_regression.rs.
    let g_scale = new.rtt_gradient.abs() + reference.rtt_gradient.abs();
    assert!(
        (new.rtt_gradient - reference.rtt_gradient).abs() <= 1e-9 * g_scale + 1e-6,
        "gradient: {} vs {}",
        new.rtt_gradient,
        reference.rtt_gradient
    );
    let e_scale = new.gradient_error.abs() + reference.gradient_error.abs();
    assert!(
        (new.gradient_error - reference.gradient_error).abs() <= 1e-9 * e_scale + 1e-4,
        "gradient_error: {} vs {}",
        new.gradient_error,
        reference.gradient_error
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tracker_matches_hashmap_reference(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        let mut tracker = MiTracker::new();
        let mut reference = RefTracker::default();
        let mut new_done: Vec<MiStats> = Vec::new();
        let mut ref_done: Vec<MiStats> = Vec::new();
        let mut next_seq: SeqNr = 0;
        let mut sent_ms: Vec<u64> = Vec::new();

        // Both trackers ignore events before the first MI; open one so the
        // interleaving exercises real accounting from the start.
        tracker.start_mi(Time::ZERO, 1e6);
        reference.start_mi(Time::ZERO, 1e6);

        for (step, op) in ops.iter().enumerate() {
            let now_ms = 1 + step as u64;
            let now = Time::from_millis(now_ms);
            match *op {
                Op::StartMi { rate_step } => {
                    let rate = 1e6 + rate_step as f64 * 250e3;
                    tracker.start_mi(now, rate);
                    reference.start_mi(now, rate);
                }
                Op::Send => {
                    let pkt = SentPacket { seq: next_seq, bytes: 1500, sent_at: now };
                    tracker.on_sent(&pkt);
                    reference.on_sent(&pkt);
                    sent_ms.push(now_ms);
                    next_seq += 1;
                }
                Op::Ack { pick, rtt_ms, keep_rtt } => {
                    // Bias toward recent (usually outstanding) seqs, with
                    // occasional strays past the tail.
                    let seq = pick % (next_seq + 2);
                    let sent_at = Time::from_millis(
                        sent_ms.get(seq as usize).copied().unwrap_or(now_ms),
                    );
                    let ack = AckInfo {
                        seq,
                        bytes: 1500,
                        sent_at,
                        recv_at: Time::from_millis(now_ms + rtt_ms),
                        rtt: Dur::from_millis(rtt_ms),
                        one_way_delay: Dur::from_millis(rtt_ms / 2),
                    };
                    tracker.on_ack_filtered_into(&ack, keep_rtt, &mut new_done);
                    reference.on_ack_filtered(&ack, keep_rtt, &mut ref_done);
                }
                Op::Loss { pick } => {
                    let seq = pick % (next_seq + 2);
                    let sent_at = Time::from_millis(
                        sent_ms.get(seq as usize).copied().unwrap_or(now_ms),
                    );
                    let loss = LossInfo {
                        seq,
                        bytes: 1500,
                        sent_at,
                        detected_at: now,
                        by_timeout: false,
                    };
                    tracker.on_loss_into(&loss, &mut new_done);
                    reference.on_loss(&loss, &mut ref_done);
                }
            }
            prop_assert_eq!(tracker.pending_count(), reference.pending.len());
        }

        prop_assert_eq!(new_done.len(), ref_done.len());
        for (new, reference) in new_done.iter().zip(&ref_done) {
            assert_stats_match(new, reference);
        }
    }
}
