//! RTT estimation: smoothed RTT/variation (RFC 6298 style) and windowed
//! min/max filters (as used by BBR's bandwidth and min-RTT estimators).

use crate::time::{Dur, Time};

/// Kernel-style smoothed RTT estimator (`srtt`, `rttvar`) plus running
/// minimum and latest sample.
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: Option<Dur>,
    rttvar: Dur,
    min_rtt: Option<Dur>,
    latest: Option<Dur>,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// Creates an estimator with no samples.
    pub fn new() -> Self {
        Self {
            srtt: None,
            rttvar: Dur::ZERO,
            min_rtt: None,
            latest: None,
        }
    }

    /// Feeds one RTT sample (RFC 6298 update with α=1/8, β=1/4).
    pub fn update(&mut self, rtt: Dur) {
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) if m <= rtt => m,
            _ => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Dur::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                let diff = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                self.rttvar = Dur::from_nanos((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(Dur::from_nanos((7 * srtt.as_nanos() + rtt.as_nanos()) / 8));
            }
        }
    }

    /// Smoothed RTT, if any sample seen.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }

    /// Smoothed RTT or a default.
    pub fn srtt_or(&self, default: Dur) -> Dur {
        self.srtt.unwrap_or(default)
    }

    /// RTT variation.
    pub fn rttvar(&self) -> Dur {
        self.rttvar
    }

    /// Minimum RTT observed over the flow's lifetime.
    pub fn min_rtt(&self) -> Option<Dur> {
        self.min_rtt
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<Dur> {
        self.latest
    }

    /// RFC 6298 retransmission timeout: `srtt + 4·rttvar`, floored at
    /// `min_rto`.
    pub fn rto(&self, min_rto: Dur) -> Dur {
        match self.srtt {
            None => min_rto,
            Some(srtt) => {
                let rto = srtt + Dur::from_nanos(4 * self.rttvar.as_nanos());
                if rto < min_rto {
                    min_rto
                } else {
                    rto
                }
            }
        }
    }
}

/// A windowed extremum filter: tracks the min (or max) of samples observed in
/// the trailing `window` of time. BBR uses this for `min_rtt` (10 s window)
/// and, via the three-slot variant below, bottleneck bandwidth (10 RTT).
#[derive(Debug, Clone, Copy)]
pub struct WindowedExtremum<const IS_MIN: bool> {
    window: Dur,
    estimate: Option<(Time, f64)>,
}

/// Windowed minimum of an `f64` signal.
pub type WindowedMin = WindowedExtremum<true>;
/// Windowed maximum of an `f64` signal.
pub type WindowedMax = WindowedExtremum<false>;

impl<const IS_MIN: bool> WindowedExtremum<IS_MIN> {
    /// Creates a filter with the given trailing window.
    pub fn new(window: Dur) -> Self {
        Self {
            window,
            estimate: None,
        }
    }

    fn better(a: f64, b: f64) -> bool {
        if IS_MIN {
            a <= b
        } else {
            a >= b
        }
    }

    /// Feeds a sample at `now`, returning the current windowed extremum.
    ///
    /// A sample replaces the estimate when it is better *or* when the
    /// existing estimate has aged out of the window.
    pub fn update(&mut self, now: Time, sample: f64) -> f64 {
        match self.estimate {
            Some((at, best)) if Self::better(best, sample) && now.since(at) <= self.window => best,
            _ => {
                self.estimate = Some((now, sample));
                sample
            }
        }
    }

    /// Current estimate, if fresh enough relative to `now`.
    pub fn get(&self, now: Time) -> Option<f64> {
        match self.estimate {
            Some((at, best)) if now.since(at) <= self.window => Some(best),
            Some((_, best)) => Some(best), // stale but better than nothing
            None => None,
        }
    }

    /// Timestamp of the current estimate.
    pub fn estimate_time(&self) -> Option<Time> {
        self.estimate.map(|(at, _)| at)
    }

    /// Clears the filter.
    pub fn reset(&mut self) {
        self.estimate = None;
    }

    /// Changes the window length.
    pub fn set_window(&mut self, window: Dur) {
        self.window = window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srtt_initializes_and_smooths() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        e.update(Dur::from_millis(100));
        assert_eq!(e.srtt(), Some(Dur::from_millis(100)));
        assert_eq!(e.rttvar(), Dur::from_millis(50));
        e.update(Dur::from_millis(50));
        // srtt = 7/8*100 + 1/8*50 = 93.75 ms
        assert_eq!(e.srtt().unwrap().as_nanos(), 93_750_000);
        assert_eq!(e.min_rtt(), Some(Dur::from_millis(50)));
        assert_eq!(e.latest(), Some(Dur::from_millis(50)));
    }

    #[test]
    fn min_rtt_is_monotone_decreasing() {
        let mut e = RttEstimator::new();
        for ms in [40, 30, 50, 35] {
            e.update(Dur::from_millis(ms));
        }
        assert_eq!(e.min_rtt(), Some(Dur::from_millis(30)));
    }

    #[test]
    fn rto_floor() {
        let mut e = RttEstimator::new();
        let floor = Dur::from_millis(200);
        assert_eq!(e.rto(floor), floor);
        e.update(Dur::from_millis(10));
        assert_eq!(e.rto(floor), floor); // 10 + 4*5 = 30ms < floor
        let mut big = RttEstimator::new();
        big.update(Dur::from_millis(300));
        // 300 + 4*150 = 900 ms
        assert_eq!(big.rto(floor), Dur::from_millis(900));
    }

    #[test]
    fn windowed_min_expires() {
        let mut f = WindowedMin::new(Dur::from_secs(10));
        assert_eq!(f.update(Time::from_secs_f64(0.0), 30.0), 30.0);
        assert_eq!(f.update(Time::from_secs_f64(1.0), 40.0), 30.0);
        assert_eq!(f.update(Time::from_secs_f64(2.0), 25.0), 25.0);
        // 11s later the 25.0 estimate has aged out; the new sample wins even
        // though it is larger.
        assert_eq!(f.update(Time::from_secs_f64(13.5), 60.0), 60.0);
    }

    #[test]
    fn windowed_max_tracks_peak() {
        let mut f = WindowedMax::new(Dur::from_secs(1));
        f.update(Time::from_secs_f64(0.0), 10.0);
        assert_eq!(f.update(Time::from_secs_f64(0.5), 5.0), 10.0);
        assert_eq!(f.update(Time::from_secs_f64(2.0), 5.0), 5.0);
    }

    #[test]
    fn get_and_reset() {
        let mut f = WindowedMax::new(Dur::from_secs(1));
        assert_eq!(f.get(Time::ZERO), None);
        f.update(Time::ZERO, 3.0);
        assert_eq!(f.get(Time::from_millis(500)), Some(3.0));
        f.reset();
        assert_eq!(f.get(Time::ZERO), None);
    }
}
