//! The congestion-control interface every protocol in this reproduction
//! implements.
//!
//! A controller is a passive state machine driven by the flow driver (in
//! `proteus-netsim`): it is told about transmissions, ACKs, losses and timer
//! expirations, and in return exposes a pacing rate and/or congestion window
//! that gate future transmissions. Window-based protocols (CUBIC, LEDBAT)
//! are ACK-clocked — they return `None` from [`CongestionControl::pacing_rate`]
//! and bound transmission with [`CongestionControl::cwnd_bytes`]. Rate-based
//! protocols (the PCC family, BBR) return a pacing rate; BBR additionally
//! caps in-flight data with a window.

use crate::packet::{AckInfo, FlowId, LossInfo, SentPacket};
use crate::time::Time;

/// A telemetry snapshot of a controller's internal decision state.
///
/// Returned by [`CongestionControl::snapshot`] so the tracing layer in
/// `proteus-netsim` can record utility-module internals (utility value,
/// active mode, mode switches) without downcasting. Controllers that have
/// no such internals (CUBIC, LEDBAT, fixed-rate test stubs) return `None`
/// from `snapshot` instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcSnapshot {
    /// Most recent utility value, if the controller is utility-driven and
    /// has completed at least one monitor interval.
    pub utility: Option<f64>,
    /// Active operating-mode name (e.g. `"Proteus-S"`).
    pub mode: Option<&'static str>,
    /// Number of mode switches since flow start.
    pub mode_switches: u64,
}

/// Congestion controller interface (see module docs).
///
/// All rates are in **bytes per second**; all windows in **bytes**.
pub trait CongestionControl {
    /// Human-readable protocol name for reports (e.g. `"CUBIC"`,
    /// `"Proteus-S"`).
    fn name(&self) -> &str;

    /// Called once when the flow starts transmitting.
    fn on_flow_start(&mut self, _now: Time) {}

    /// Called for every packet handed to the network.
    fn on_packet_sent(&mut self, _now: Time, _pkt: &SentPacket) {}

    /// Called for every acknowledgment that reaches the sender.
    fn on_ack(&mut self, now: Time, ack: &AckInfo);

    /// Called when a packet is declared lost.
    fn on_loss(&mut self, now: Time, loss: &LossInfo);

    /// Current pacing rate, bytes/sec. `None` means "not paced" (pure
    /// ACK-clocking bounded by the window).
    fn pacing_rate(&self) -> Option<f64>;

    /// Congestion window in bytes; `u64::MAX` when the protocol is purely
    /// rate-limited.
    fn cwnd_bytes(&self) -> u64 {
        u64::MAX
    }

    /// Next time the controller wants [`CongestionControl::on_timer`]
    /// invoked, if any. The driver re-queries after every event.
    fn next_timer(&self) -> Option<Time> {
        None
    }

    /// Timer callback.
    fn on_timer(&mut self, _now: Time) {}

    /// Optional snapshot of utility-module internals for telemetry.
    /// Default: `None` (controller exposes no such state).
    fn snapshot(&self) -> Option<CcSnapshot> {
        None
    }

    /// Moves any buffered decision-trace events into `out`, oldest first
    /// (see the `proteus-trace` crate). The simulator calls this
    /// periodically and at flow end; controllers without decision tracing —
    /// or with tracing disabled — use this default and append nothing.
    fn drain_decisions(&mut self, _out: &mut Vec<proteus_trace::DecisionEvent>) {}
}

/// Factory producing a fresh controller for a flow; scenarios are described
/// in terms of factories so each flow gets independent state.
pub type CcFactory = Box<dyn Fn(FlowId) -> Box<dyn CongestionControl>>;

/// Convenience helper: wraps a closure returning a concrete controller into
/// a [`CcFactory`].
pub fn factory<C, F>(f: F) -> CcFactory
where
    C: CongestionControl + 'static,
    F: Fn(FlowId) -> C + 'static,
{
    Box::new(move |id| Box::new(f(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AckInfo;
    use crate::time::Dur;

    /// Minimal controller used to exercise the trait's default methods.
    struct FixedWindow {
        cwnd: u64,
    }

    impl CongestionControl for FixedWindow {
        fn name(&self) -> &str {
            "fixed-window"
        }
        fn on_ack(&mut self, _now: Time, _ack: &AckInfo) {}
        fn on_loss(&mut self, _now: Time, _loss: &LossInfo) {}
        fn pacing_rate(&self) -> Option<f64> {
            None
        }
        fn cwnd_bytes(&self) -> u64 {
            self.cwnd
        }
    }

    #[test]
    fn trait_defaults() {
        let mut cc = FixedWindow { cwnd: 10_000 };
        assert_eq!(cc.cwnd_bytes(), 10_000);
        assert_eq!(cc.pacing_rate(), None);
        assert_eq!(cc.next_timer(), None);
        cc.on_flow_start(Time::ZERO);
        cc.on_timer(Time::ZERO);
        let ack = AckInfo {
            seq: 0,
            bytes: 1500,
            sent_at: Time::ZERO,
            recv_at: Time::from_millis(30),
            rtt: Dur::from_millis(30),
            one_way_delay: Dur::from_millis(15),
        };
        cc.on_ack(Time::from_millis(30), &ack);
        assert_eq!(cc.name(), "fixed-window");
    }

    #[test]
    fn factory_produces_independent_instances() {
        let f = factory(|_id| FixedWindow { cwnd: 5 });
        let a = f(0);
        let b = f(1);
        assert_eq!(a.cwnd_bytes(), 5);
        assert_eq!(b.cwnd_bytes(), 5);
    }
}
