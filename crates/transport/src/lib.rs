//! Transport substrate for the PCC Proteus reproduction.
//!
//! This crate defines everything a congestion-control algorithm needs that is
//! *not* specific to any one algorithm:
//!
//! * [`Time`]/[`Dur`] — integer-nanosecond simulated time,
//! * [`SentPacket`]/[`AckInfo`]/[`LossInfo`] — per-packet events,
//! * [`CongestionControl`] — the single trait all protocols (CUBIC, BBR,
//!   COPA, LEDBAT, Vivace, Proteus-P/S/H, …) implement,
//! * [`RttEstimator`] and windowed min/max filters,
//! * [`MiTracker`]/[`MiStats`] — PCC monitor-interval accounting,
//! * [`Application`] — sender-side application models (bulk, fixed-size).
//!
//! The simulator (`proteus-netsim`) drives implementations of these traits;
//! the algorithms themselves live in `proteus-baselines` and `proteus-core`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod app;
pub mod cc;
pub mod mi;
pub mod packet;
pub mod rtt;
pub mod time;

pub use app::{Application, BulkApp, FrameRecord, SizedApp};
pub use cc::{factory, CcFactory, CcSnapshot, CongestionControl};
pub use mi::{MiId, MiStats, MiTracker};
pub use packet::{AckInfo, FlowId, LossInfo, SentPacket, SeqNr, DEFAULT_PACKET_BYTES};
pub use rtt::{RttEstimator, WindowedMax, WindowedMin};
pub use time::{serialization_delay, Dur, Time};
