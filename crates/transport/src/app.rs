//! Application models that feed (or throttle) a transport flow.
//!
//! Most experiments in the paper use bulk transfers, but the web-workload
//! (Fig. 11b) needs fixed-size flows and the DASH experiments (Figs. 11a,
//! 12, 13) need a chunk-driven application that can pause the sender when
//! the playback buffer fills. All of them implement [`Application`].

use crate::time::{Dur, Time};

/// One encoded media frame, reported by a frame-paced source via
/// [`Application::drain_frames`]. The driver forwards these records to the
/// per-flow metrics, which mark the frame complete once the flow's
/// cumulative acknowledged bytes reach `end_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// When the encoder produced the frame.
    pub gen_at: Time,
    /// Cumulative application bytes through the end of this frame (frame
    /// `i`'s bytes span `(prev.end_bytes, end_bytes]`).
    pub end_bytes: u64,
    /// Playout budget: the frame freezes playback if its completion delay
    /// (`completed_at - gen_at`) exceeds this.
    pub deadline: Dur,
}

/// Sender-side application model: decides how much data is available to
/// transmit and observes delivery progress.
pub trait Application {
    /// Bytes the application currently has queued for transmission.
    /// `u64::MAX` means unlimited (bulk transfer).
    fn bytes_to_send(&mut self, now: Time) -> u64;

    /// Informs the application that `bytes` were handed to the transport
    /// (subtracted from its queue). Bulk sources ignore this.
    fn consume(&mut self, _bytes: u64) {}

    /// Called when bytes are acknowledged end-to-end.
    fn on_delivered(&mut self, _now: Time, _bytes: u64) {}

    /// Next instant at which the application's state may change on its own
    /// (e.g. a paused video client resuming); the driver re-polls then.
    fn next_event(&self, _now: Time) -> Option<Time> {
        None
    }

    /// Wakeup callback at the time returned by
    /// [`Application::next_event`].
    fn on_wakeup(&mut self, _now: Time) {}

    /// Whether the application is done and the flow should stop.
    fn finished(&self, _now: Time) -> bool {
        false
    }

    /// Whether this application is a frame-paced media source. The driver
    /// only polls [`Application::drain_frames`] (and keeps per-frame
    /// latency metrics) for flows whose application reports `true`, so
    /// media-free scenarios stay byte-identical.
    fn is_media(&self) -> bool {
        false
    }

    /// Moves any newly generated [`FrameRecord`]s into `sink`. Only called
    /// on applications whose [`Application::is_media`] returns `true`.
    fn drain_frames(&mut self, _sink: &mut Vec<FrameRecord>) {}
}

/// Unlimited bulk transfer — the workhorse of §6.1/§6.2.
#[derive(Debug, Default, Clone, Copy)]
pub struct BulkApp;

impl Application for BulkApp {
    fn bytes_to_send(&mut self, _now: Time) -> u64 {
        u64::MAX
    }
}

/// A fixed-size transfer (e.g. one web object or one Poisson cross-traffic
/// flow). The flow finishes when every byte is delivered.
#[derive(Debug, Clone, Copy)]
pub struct SizedApp {
    total: u64,
    queued: u64,
    delivered: u64,
}

impl SizedApp {
    /// Creates a transfer of `total` bytes.
    pub fn new(total: u64) -> Self {
        Self {
            total,
            queued: total,
            delivered: 0,
        }
    }

    /// Total transfer size.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Bytes confirmed delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }
}

impl Application for SizedApp {
    fn bytes_to_send(&mut self, _now: Time) -> u64 {
        self.queued
    }

    fn consume(&mut self, bytes: u64) {
        self.queued = self.queued.saturating_sub(bytes);
    }

    fn on_delivered(&mut self, _now: Time, bytes: u64) {
        self.delivered = (self.delivered + bytes).min(self.total);
    }

    fn finished(&self, _now: Time) -> bool {
        self.delivered >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_never_finishes() {
        let mut app = BulkApp;
        assert_eq!(app.bytes_to_send(Time::ZERO), u64::MAX);
        assert!(!app.finished(Time::ZERO));
        assert_eq!(app.next_event(Time::ZERO), None);
    }

    #[test]
    fn sized_app_lifecycle() {
        let mut app = SizedApp::new(3000);
        assert_eq!(app.bytes_to_send(Time::ZERO), 3000);
        app.consume(1500);
        assert_eq!(app.bytes_to_send(Time::ZERO), 1500);
        assert!(!app.finished(Time::ZERO));
        app.on_delivered(Time::ZERO, 1500);
        assert!(!app.finished(Time::ZERO));
        app.on_delivered(Time::ZERO, 1500);
        assert!(app.finished(Time::ZERO));
        assert_eq!(app.delivered_bytes(), 3000);
    }

    #[test]
    fn sized_app_delivery_saturates() {
        let mut app = SizedApp::new(1000);
        app.on_delivered(Time::ZERO, 5000);
        assert_eq!(app.delivered_bytes(), 1000);
        assert!(app.finished(Time::ZERO));
    }
}
