//! Packet and acknowledgment metadata shared between the simulator and the
//! congestion controllers.

use crate::time::{Dur, Time};

/// Sequence number of a data packet within a flow.
pub type SeqNr = u64;

/// Identifier of a flow within a simulation scenario.
pub type FlowId = usize;

/// Default MTU-sized data packet payload used throughout the reproduction
/// (the paper's testbeds use standard 1500-byte Ethernet framing).
pub const DEFAULT_PACKET_BYTES: u64 = 1500;

/// Metadata of a packet handed to the network, as seen by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentPacket {
    /// Flow-local sequence number.
    pub seq: SeqNr,
    /// Size on the wire, bytes.
    pub bytes: u64,
    /// When the sender transmitted it.
    pub sent_at: Time,
}

/// Information delivered to a congestion controller when a packet is
/// acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Sequence number being acknowledged.
    pub seq: SeqNr,
    /// Bytes acknowledged by this ACK.
    pub bytes: u64,
    /// When the acknowledged packet was sent.
    pub sent_at: Time,
    /// When the ACK reached the sender.
    pub recv_at: Time,
    /// Round-trip time measured by this ACK.
    pub rtt: Dur,
    /// One-way (sender→receiver) delay measured via the receiver timestamp.
    ///
    /// LEDBAT is a one-way-delay protocol (RFC 6817); the simulator stamps
    /// packets at the receiver so the sender can compute this like a
    /// timestamp-echo would.
    pub one_way_delay: Dur,
}

/// Information delivered to a congestion controller when a packet is declared
/// lost (via dup-ACK threshold or retransmission timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossInfo {
    /// Sequence number declared lost.
    pub seq: SeqNr,
    /// Bytes lost.
    pub bytes: u64,
    /// When the lost packet was sent.
    pub sent_at: Time,
    /// When the loss was detected at the sender.
    pub detected_at: Time,
    /// Whether the loss was detected by timeout (as opposed to dup-ACKs).
    pub by_timeout: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_rtt_consistency() {
        let ack = AckInfo {
            seq: 5,
            bytes: DEFAULT_PACKET_BYTES,
            sent_at: Time::from_millis(100),
            recv_at: Time::from_millis(130),
            rtt: Dur::from_millis(30),
            one_way_delay: Dur::from_millis(15),
        };
        assert_eq!(ack.recv_at.since(ack.sent_at), ack.rtt);
    }

    #[test]
    fn default_packet_is_mtu_sized() {
        assert_eq!(DEFAULT_PACKET_BYTES, 1500);
    }
}
