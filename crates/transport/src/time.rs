//! Integer nanosecond time for deterministic simulation.
//!
//! All timestamps in the reproduction are integer nanoseconds since the start
//! of a simulation. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and makes every experiment bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        Time((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (for utility computations and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction producing a duration.
    pub fn checked_since(self, earlier: Time) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The longest representable duration.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds (non-negative).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        Dur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Dur {
        debug_assert!(k >= 0.0 && k.is_finite());
        Dur((self.0 as f64 * k).round() as u64)
    }

    /// Integer division of durations, as a float ratio.
    pub fn ratio(self, other: Dur) -> f64 {
        debug_assert!(other.0 > 0);
        self.0 as f64 / other.0 as f64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0.saturating_add(d.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_sub(d.0);
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Converts a transmission of `bytes` at `rate_bps` bits/sec into the
/// serialization delay.
pub fn serialization_delay(bytes: u64, rate_bps: f64) -> Dur {
    debug_assert!(rate_bps > 0.0);
    Dur::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_millis(30).as_nanos(), 30_000_000);
        assert_eq!(Dur::from_secs(2).as_millis_f64(), 2000.0);
        assert!((Time::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Dur::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        assert_eq!(t.since(Time::from_millis(10)), Dur::from_millis(5));
        // Saturating: asking for time "since the future" gives zero.
        assert_eq!(Time::from_millis(1).since(Time::from_millis(2)), Dur::ZERO);
        assert_eq!(
            Time::from_millis(1).checked_since(Time::from_millis(2)),
            None
        );
        assert_eq!(t - Dur::from_millis(20), Time::ZERO);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Dur::from_millis(30).mul_f64(1.5), Dur::from_millis(45));
        assert!((Dur::from_millis(15).ratio(Dur::from_millis(30)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serialization_delay_math() {
        // 1500 bytes at 12 Mbps = 1 ms.
        assert_eq!(serialization_delay(1500, 12_000_000.0), Dur::from_millis(1));
        // 1500 bytes at 100 Mbps = 120 us.
        assert_eq!(
            serialization_delay(1500, 100_000_000.0),
            Dur::from_micros(120)
        );
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(1) < Time::from_millis(2));
        assert!(Dur::from_micros(999) < Dur::from_millis(1));
        assert_eq!(Time::ZERO, Time::default());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Dur::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Dur::from_nanos(42)), "42ns");
    }
}
